"""CI smoke test for the sweep engine's fault tolerance (ISSUE 8).

Drives ``python -m repro sweep`` as a real subprocess through two
injected disasters and asserts the recovery contracts hold end-to-end:

1. **Killed worker** — a pooled, store-backed sweep whose grid point 1
   ``os._exit``\\ s its worker process once.  Under ``--on-error collect
   --retries 2`` the pool is rebuilt, the point retried, and the sweep
   completes with every point computed and recorded.
2. **Hard interrupt + resume** — a sequential, store-backed sweep whose
   grid point 2 ``os._exit``\\ s the whole CLI process mid-campaign (no
   ``finally`` runs: the closest thing to a power cut).  The store
   keeps the two checkpointed points and a campaign stuck ``running``;
   a fault-free re-run computes only the missing tail and finishes
   ``complete``.

Fault plans travel to the subprocesses via the ``REPRO_FAULTS``
environment variable (see :mod:`repro.testing.faults`); firing counters
live in an explicit directory so this parent can verify the faults
actually fired.  Exits non-zero on any failure.

Usage: python scripts/chaos_smoke.py
"""

from __future__ import annotations

import json
import sqlite3
import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.testing import FaultRule, inject  # noqa: E402

SCENARIO = {
    "graph": {"kind": "k_regular", "params": {"degree": 4, "num_nodes": 128}},
    "mechanism": {"kind": "rr", "params": {"epsilon": 1.0}},
    "rounds": 4,
    "seed": 0,
}


def run_cli(*arguments: str, expect: int = 0) -> "subprocess.CompletedProcess":
    result = subprocess.run(
        [sys.executable, "-m", "repro", *arguments],
        capture_output=True, text=True, timeout=300,
    )
    if result.returncode != expect:
        raise SystemExit(
            f"command {' '.join(arguments)} exited {result.returncode} "
            f"(wanted {expect}):\n{result.stdout}\n{result.stderr}"
        )
    return result


def point_count(store: str) -> int:
    connection = sqlite3.connect(store)
    try:
        return connection.execute("SELECT COUNT(*) FROM points").fetchone()[0]
    finally:
        connection.close()


def killed_worker_is_retried(directory: Path) -> None:
    """Phase 1: a pooled sweep survives a murdered worker process."""
    scenario_path = directory / "scenario.json"
    scenario_path.write_text(json.dumps(SCENARIO))
    store = str(directory / "chaos-pooled.sqlite")
    with inject(
        [FaultRule(point=1, action="exit", times=1)],
        directory=directory / "counters-pooled",
    ) as plan:
        output = run_cli(
            "sweep", str(scenario_path),
            "--axis", "rounds=2,4", "--axis", "mechanism.epsilon=0.5,1.0",
            "--mode", "bound", "--workers", "2",
            "--on-error", "collect", "--retries", "2",
            "--store", store, "--campaign", "chaos",
        ).stdout
        print(output)
        assert plan.fired(0) == 1, "the worker-kill fault never fired"
    assert "4 computed, 0 reused" in output, output
    assert "failed" not in output, output
    assert point_count(store) == 4, "store is missing recovered points"
    campaigns = run_cli("results", "campaigns", "--store", store).stdout
    assert "complete" in campaigns, campaigns
    print("chaos smoke phase 1 (killed worker retried): OK")


def interrupted_sweep_resumes(directory: Path) -> None:
    """Phase 2: a hard-killed sweep resumes from its checkpoints."""
    scenario_path = directory / "scenario.json"
    scenario_path.write_text(json.dumps(SCENARIO))
    store = str(directory / "chaos-resume.sqlite")
    sweep_args = (
        "sweep", str(scenario_path),
        "--axis", "rounds=2,4,8,16", "--mode", "bound",
        "--store", store, "--campaign", "doomed",
    )
    with inject(
        [FaultRule(point=2, action="exit", exit_code=17)],
        directory=directory / "counters-resume",
    ) as plan:
        # Sequential sweeps execute points in the CLI process itself,
        # so the injected os._exit kills the whole run mid-campaign.
        run_cli(*sweep_args, expect=17)
        assert plan.fired(0) == 1, "the hard-interrupt fault never fired"
    assert point_count(store) == 2, "expected exactly the checkpointed head"
    campaigns = run_cli("results", "campaigns", "--store", store).stdout
    assert "running" in campaigns, campaigns

    resumed = run_cli(
        "sweep", str(scenario_path),
        "--axis", "rounds=2,4,8,16", "--mode", "bound",
        "--store", store, "--campaign", "second-try",
    ).stdout
    print(resumed)
    assert "2 computed, 2 reused" in resumed, resumed
    assert point_count(store) == 4, "resume did not fill the missing tail"
    campaigns = run_cli("results", "campaigns", "--store", store).stdout
    assert "complete" in campaigns, campaigns
    print("chaos smoke phase 2 (interrupted sweep resumed): OK")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-chaos-smoke-") as tmp:
        killed_worker_is_retried(Path(tmp))
        interrupted_sweep_resumes(Path(tmp))
    print("chaos smoke: OK")


if __name__ == "__main__":
    main()
