"""CI smoke test for the serving tier.

Boots ``python -m repro serve`` as a real subprocess on an ephemeral
port, waits for ``/healthz``, runs one synchronous bound query and one
enqueued audit round-trip, checks ``/stats`` saw the traffic, and shuts
the server down cleanly (SIGINT).  Exits non-zero on any failure.

Usage: python scripts/serve_smoke.py
"""

from __future__ import annotations

import json
import signal
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request

SCENARIO = {
    "graph": {"kind": "k_regular", "params": {"degree": 4, "num_nodes": 128}},
    "mechanism": {"kind": "rr", "params": {"epsilon": 1.0}},
    "rounds": 8,
    "seed": 0,
}


def request(base: str, method: str, path: str, body=None, timeout=30):
    data = None if body is None else json.dumps(body).encode("utf-8")
    req = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def wait_for_health(base: str, deadline_seconds: float = 30.0) -> dict:
    deadline = time.monotonic() + deadline_seconds
    while time.monotonic() < deadline:
        try:
            status, payload = request(base, "GET", "/healthz", timeout=2)
            if status == 200 and payload.get("status") == "ok":
                return payload
        except (urllib.error.URLError, ConnectionError, TimeoutError, OSError):
            time.sleep(0.1)
    raise SystemExit("server did not become healthy within 30s")


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def main() -> None:
    port = free_port()
    base = f"http://127.0.0.1:{port}"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(port), "--workers", "1"],
    )
    try:
        health = wait_for_health(base)
        print(f"healthz: version {health['version']}")

        status, bound = request(base, "POST", "/bound", {"scenario": SCENARIO})
        assert status == 200, (status, bound)
        assert bound["epsilon"] > 0 and bound["n"] == 128, bound
        print(f"bound: eps={bound['epsilon']:.4f} via {bound['theorem']}")

        status, job = request(base, "POST", "/audit",
                              {"scenario": SCENARIO, "trials": 200})
        assert status == 202 and job["id"].startswith("job-"), (status, job)
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            status, payload = request(base, "GET", f"/jobs/{job['id']}")
            assert status == 200, (status, payload)
            if payload["status"] in ("done", "error"):
                break
            time.sleep(0.2)
        assert payload["status"] == "done", payload
        result = payload["result"]
        assert "epsilon_lower_bound" in result, result
        print(f"audit job {job['id']}: eps_hat="
              f"{result['epsilon_lower_bound']:.4f} "
              f"({result['trials']} trials)")

        status, stats = request(base, "GET", "/stats")
        assert status == 200, (status, stats)
        assert stats["graph_cache"]["requests"] >= 1, stats
        routes = set(stats["requests"])
        assert {"POST /bound", "POST /audit", "GET /jobs/<id>"} <= routes, routes
        print(f"stats: graph_cache={stats['graph_cache']} "
              f"kernel_sampler={stats['kernel_sampler']}")
    finally:
        process.send_signal(signal.SIGINT)
        try:
            process.wait(timeout=15)
        except subprocess.TimeoutExpired:
            process.kill()
            raise SystemExit("server did not exit cleanly on SIGINT")
    assert process.returncode == 0, f"server exited {process.returncode}"
    print("serve smoke: OK (clean shutdown)")


if __name__ == "__main__":
    main()
