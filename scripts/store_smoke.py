"""CI smoke test for the campaign store's incremental-re-run contract.

Runs the same small sweep twice through ``python -m repro sweep --store``
against a temporary store, asserts the second pass computed 0 points
(everything reused), checks ``results diff`` of the two campaigns is
empty, and answers a cross-campaign aggregate through ``results query``
as a real subprocess.  Exits non-zero on any failure.

Usage: python scripts/store_smoke.py
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

SCENARIO = {
    "graph": {"kind": "k_regular", "params": {"degree": 4, "num_nodes": 128}},
    "mechanism": {"kind": "rr", "params": {"epsilon": 1.0}},
    "rounds": 4,
    "seed": 0,
}

SWEEP_ARGS = [
    "--axis", "rounds=2,4,8",
    "--axis", "mechanism.epsilon=0.5,1.0",
    "--mode", "bound",
]


def run_cli(*arguments: str) -> str:
    result = subprocess.run(
        [sys.executable, "-m", "repro", *arguments],
        capture_output=True, text=True, timeout=300,
    )
    if result.returncode != 0:
        raise SystemExit(
            f"command {' '.join(arguments)} exited {result.returncode}:\n"
            f"{result.stdout}\n{result.stderr}"
        )
    return result.stdout


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-store-smoke-") as tmp:
        directory = Path(tmp)
        scenario_path = directory / "scenario.json"
        scenario_path.write_text(json.dumps(SCENARIO))
        store = str(directory / "results.sqlite")

        first = run_cli(
            "sweep", str(scenario_path), *SWEEP_ARGS,
            "--store", store, "--campaign", "pass-one",
        )
        print(first)
        assert "6 computed, 0 reused" in first, first

        second = run_cli(
            "sweep", str(scenario_path), *SWEEP_ARGS,
            "--store", store, "--campaign", "pass-two",
        )
        print(second)
        assert "0 computed, 6 reused" in second, second

        diff = run_cli(
            "results", "diff", "pass-one", "pass-two", "--store", store
        )
        print(diff)
        assert "no differences" in diff, diff

        query = run_cli(
            "results", "query", "--store", store,
            "--x", "rounds", "--y", "epsilon",
            "--group-by", "mechanism.epsilon", "--json",
        )
        rows = json.loads(query)
        # 2 mechanism epsilons x 3 rounds values, one point per cell.
        assert len(rows) == 6, rows
        assert all(row["points"] == 1 for row in rows), rows
        assert all(row["mean"] > 0 for row in rows), rows
        print(f"query: {len(rows)} aggregate cells, all positive epsilon")

    print("store smoke: OK")


if __name__ == "__main__":
    main()
