#!/usr/bin/env python
"""Warn-only benchmark regression check.

Compares a fresh pytest-benchmark JSON export against the committed
baseline and prints a table of mean-time ratios.  Exits 0 always —
timing on shared CI runners is too noisy to gate a merge — but flags
any benchmark slower than the threshold so a human can look.

Usage:
    python scripts/check_bench_regression.py CURRENT.json [BASELINE.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Ratio above which a benchmark is flagged (current mean / baseline mean).
SLOWDOWN_THRESHOLD = 1.5
DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "benchmarks" / "baseline.json"


def load_means(path: Path) -> dict[str, float]:
    """Map benchmark name -> mean seconds from a pytest-benchmark export."""
    payload = json.loads(path.read_text())
    return {
        bench["name"]: float(bench["stats"]["mean"])
        for bench in payload.get("benchmarks", [])
    }


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__)
        return 0
    current_path = Path(argv[1])
    baseline_path = Path(argv[2]) if len(argv) > 2 else DEFAULT_BASELINE
    if not current_path.exists():
        print(f"[bench-check] no current results at {current_path}; skipping")
        return 0
    if not baseline_path.exists():
        print(f"[bench-check] no baseline at {baseline_path}; skipping")
        return 0

    current = load_means(current_path)
    baseline = load_means(baseline_path)
    flagged = []
    print(f"[bench-check] {len(current)} current vs {len(baseline)} baseline benchmarks")
    print(f"{'benchmark':<45} {'baseline':>10} {'current':>10} {'ratio':>7}")
    for name, mean in sorted(current.items()):
        base = baseline.get(name)
        if base is None:
            print(f"{name:<45} {'(new)':>10} {mean * 1e3:>8.1f}ms {'-':>7}")
            continue
        ratio = mean / base
        marker = "  <-- SLOWER" if ratio > SLOWDOWN_THRESHOLD else ""
        print(
            f"{name:<45} {base * 1e3:>8.1f}ms {mean * 1e3:>8.1f}ms "
            f"{ratio:>6.2f}x{marker}"
        )
        if ratio > SLOWDOWN_THRESHOLD:
            flagged.append((name, ratio))
    for name in sorted(set(baseline) - set(current)):
        print(f"{name:<45} {'(missing from current run)':>10}")

    if flagged:
        print(
            f"\n[bench-check] WARNING: {len(flagged)} benchmark(s) exceeded "
            f"{SLOWDOWN_THRESHOLD:.1f}x baseline — investigate before relying "
            "on perf-sensitive paths. (Warn-only: not failing the build.)"
        )
    else:
        print("\n[bench-check] all benchmarks within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
