#!/usr/bin/env python
"""Warn-only benchmark regression check against the campaign store.

Compares a fresh pytest-benchmark JSON export against a baseline and
prints a table of mean-time ratios.  Exits 0 always — timing on shared
CI runners is too noisy to gate a merge — but flags any benchmark
slower than the threshold so a human can look.

The baseline comes from the results store's benchmark trajectory
(``--store DB``, latest recorded mean per benchmark) when one is given
and has samples; otherwise it falls back to a baseline JSON file (the
retired hand-refreshed ``benchmarks/baseline.json`` format).  With
``--record``, the current means are appended to the store afterwards,
so CI maintains the trajectory instead of a human refreshing a JSON
file.

Usage:
    python scripts/check_bench_regression.py CURRENT.json [BASELINE.json]
        [--store DB] [--record]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Ratio above which a benchmark is flagged (current mean / baseline mean).
SLOWDOWN_THRESHOLD = 1.5
DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "benchmarks" / "baseline.json"


def load_means(path: Path) -> dict[str, float]:
    """Map benchmark name -> mean seconds from a pytest-benchmark export."""
    payload = json.loads(path.read_text())
    return {
        bench["name"]: float(bench["stats"]["mean"])
        for bench in payload.get("benchmarks", [])
    }


def _open_store(path: Path):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.store import ResultsStore

    return ResultsStore(path)


def main(argv: list[str]) -> int:
    arguments = list(argv[1:])
    record = "--record" in arguments
    arguments = [token for token in arguments if token != "--record"]
    store_path: Path | None = None
    if "--store" in arguments:
        index = arguments.index("--store")
        if index + 1 >= len(arguments):
            print(__doc__)
            return 0
        store_path = Path(arguments[index + 1])
        del arguments[index:index + 2]
    if not arguments:
        print(__doc__)
        return 0
    current_path = Path(arguments[0])
    baseline_path = Path(arguments[1]) if len(arguments) > 1 else DEFAULT_BASELINE
    if not current_path.exists():
        print(f"[bench-check] no current results at {current_path}; skipping")
        return 0

    current = load_means(current_path)

    store = None
    baseline: dict[str, float] = {}
    baseline_label = str(baseline_path)
    if store_path is not None:
        store = _open_store(store_path)
        baseline = store.bench_baseline()
        if baseline:
            baseline_label = f"store {store_path}"
    if not baseline:
        if baseline_path.exists():
            baseline = load_means(baseline_path)
        elif store is None or not record:
            print(f"[bench-check] no baseline at {baseline_path}; skipping")
            return 0

    flagged = []
    print(
        f"[bench-check] {len(current)} current vs {len(baseline)} baseline "
        f"benchmarks ({baseline_label})"
    )
    print(f"{'benchmark':<45} {'baseline':>10} {'current':>10} {'ratio':>7}")
    for name, mean in sorted(current.items()):
        base = baseline.get(name)
        if base is None:
            print(f"{name:<45} {'(new)':>10} {mean * 1e3:>8.1f}ms {'-':>7}")
            continue
        ratio = mean / base
        marker = "  <-- SLOWER" if ratio > SLOWDOWN_THRESHOLD else ""
        print(
            f"{name:<45} {base * 1e3:>8.1f}ms {mean * 1e3:>8.1f}ms "
            f"{ratio:>6.2f}x{marker}"
        )
        if ratio > SLOWDOWN_THRESHOLD:
            flagged.append((name, ratio))
    for name in sorted(set(baseline) - set(current)):
        print(f"{name:<45} {'(missing from current run)':>10}")

    if store is not None and record:
        written = store.record_bench_samples(current, source="ci")
        print(f"[bench-check] recorded {written} sample(s) into {store_path}")
    if store is not None:
        store.close()

    if flagged:
        print(
            f"\n[bench-check] WARNING: {len(flagged)} benchmark(s) exceeded "
            f"{SLOWDOWN_THRESHOLD:.1f}x baseline — investigate before relying "
            "on perf-sensitive paths. (Warn-only: not failing the build.)"
        )
    else:
        print("\n[bench-check] all benchmarks within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
