"""Tests for the toy ElGamal KEM."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.elgamal import (
    GENERATOR,
    PRIME,
    decrypt,
    encrypt,
    generate_keypair,
)
from repro.exceptions import CryptoError


class TestKeypair:
    def test_public_matches_private(self):
        keypair = generate_keypair(rng=0)
        assert keypair.public_key == pow(GENERATOR, keypair.private_key, PRIME)

    def test_distinct_keypairs(self):
        a = generate_keypair(rng=1)
        b = generate_keypair(rng=2)
        assert a.private_key != b.private_key

    def test_deterministic_with_seed(self):
        assert generate_keypair(rng=7) == generate_keypair(rng=7)


class TestEncryptDecrypt:
    def test_roundtrip(self):
        keypair = generate_keypair(rng=0)
        ciphertext = encrypt(keypair.public_key, b"hello world", rng=1)
        assert decrypt(keypair.private_key, ciphertext) == b"hello world"

    def test_empty_message(self):
        keypair = generate_keypair(rng=0)
        ciphertext = encrypt(keypair.public_key, b"", rng=1)
        assert decrypt(keypair.private_key, ciphertext) == b""

    def test_long_message(self):
        keypair = generate_keypair(rng=0)
        message = bytes(range(256)) * 40
        ciphertext = encrypt(keypair.public_key, message, rng=1)
        assert decrypt(keypair.private_key, ciphertext) == message

    def test_wrong_key_rejected(self):
        alice = generate_keypair(rng=0)
        eve = generate_keypair(rng=1)
        ciphertext = encrypt(alice.public_key, b"secret", rng=2)
        with pytest.raises(CryptoError):
            decrypt(eve.private_key, ciphertext)

    def test_ciphertext_differs_from_plaintext(self):
        keypair = generate_keypair(rng=0)
        ciphertext = encrypt(keypair.public_key, b"secret", rng=1)
        assert b"secret" not in ciphertext.body

    def test_randomized_encryption(self):
        """Same plaintext encrypts differently (fresh ephemeral key)."""
        keypair = generate_keypair(rng=0)
        a = encrypt(keypair.public_key, b"m", rng=1)
        b = encrypt(keypair.public_key, b"m", rng=2)
        assert a.kem_share != b.kem_share
        assert a.body != b.body

    def test_tampered_ciphertext_rejected(self):
        keypair = generate_keypair(rng=0)
        ciphertext = encrypt(keypair.public_key, b"secret data", rng=1)
        from repro.crypto.elgamal import Ciphertext

        tampered = Ciphertext(
            kem_share=ciphertext.kem_share,
            body=bytes([ciphertext.body[0] ^ 1]) + ciphertext.body[1:],
        )
        with pytest.raises(CryptoError):
            decrypt(keypair.private_key, tampered)

    def test_rejects_non_bytes(self):
        keypair = generate_keypair(rng=0)
        with pytest.raises(CryptoError):
            encrypt(keypair.public_key, "string")  # type: ignore[arg-type]

    def test_rejects_short_ciphertext(self):
        keypair = generate_keypair(rng=0)
        from repro.crypto.elgamal import Ciphertext

        with pytest.raises(CryptoError):
            decrypt(keypair.private_key, Ciphertext(kem_share=2, body=b"abc"))

    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, message):
        keypair = generate_keypair(rng=0)
        ciphertext = encrypt(keypair.public_key, message, rng=1)
        assert decrypt(keypair.private_key, ciphertext) == message
