"""Tests for PKI and the double-encryption envelope (Section 4.4)."""

from __future__ import annotations

import pytest

from repro.crypto.elgamal import Ciphertext, decrypt
from repro.crypto.envelope import (
    open_batch,
    open_envelope,
    seal_batch,
    seal_for_server,
    server_open,
    wrap_batch,
    wrap_for_hop,
)
from repro.crypto.keys import PublicKeyInfrastructure
from repro.exceptions import CryptoError


@pytest.fixture
def pki():
    infrastructure = PublicKeyInfrastructure(rng=0)
    keyrings = infrastructure.register_all(4)
    return infrastructure, {ring.user_id: ring for ring in keyrings}


class TestPKI:
    def test_registration(self, pki):
        infrastructure, keyrings = pki
        assert len(infrastructure) == 4
        for user_id in range(4):
            assert infrastructure.is_registered(user_id)
            assert infrastructure.public_key_of(user_id) == keyrings[
                user_id
            ].e2e.public_key

    def test_duplicate_registration_rejected(self, pki):
        infrastructure, _ = pki
        with pytest.raises(CryptoError):
            infrastructure.register_user(0)

    def test_unregistered_lookup_rejected(self, pki):
        infrastructure, _ = pki
        with pytest.raises(CryptoError):
            infrastructure.public_key_of(99)

    def test_server_keys_exist(self, pki):
        infrastructure, _ = pki
        assert infrastructure.server_public_key > 1
        assert infrastructure.server_private_key > 1


class TestEnvelopeLifecycle:
    def test_full_relay_chain(self, pki):
        """Seal -> wrap -> open -> rewrap -> open -> server decrypt."""
        infrastructure, keyrings = pki
        inner = seal_for_server(infrastructure, b"report-7", rng=1)
        env1 = wrap_for_hop(infrastructure, 1, inner, rng=2)
        recovered1 = open_envelope(keyrings[1], env1)
        env2 = wrap_for_hop(infrastructure, 2, recovered1, rng=3)
        recovered2 = open_envelope(keyrings[2], env2)
        assert server_open(infrastructure, recovered2) == b"report-7"

    def test_relay_cannot_read_report(self, pki):
        """Honest-but-curious safety: the hop-stripped layer is still a
        ciphertext the relay cannot decrypt."""
        infrastructure, keyrings = pki
        inner = seal_for_server(infrastructure, b"secret", rng=1)
        envelope = wrap_for_hop(infrastructure, 1, inner, rng=2)
        recovered = open_envelope(keyrings[1], envelope)
        assert isinstance(recovered, Ciphertext)
        with pytest.raises(CryptoError):
            decrypt(keyrings[1].e2e.private_key, recovered)

    def test_server_cannot_open_hop_layer(self, pki):
        """Adversarial-server safety: in-flight envelopes resist the
        server's own key."""
        infrastructure, _ = pki
        inner = seal_for_server(infrastructure, b"secret", rng=1)
        envelope = wrap_for_hop(infrastructure, 1, inner, rng=2)
        with pytest.raises(CryptoError):
            decrypt(infrastructure.server_private_key, envelope.hop_ciphertext)

    def test_wrong_relay_cannot_open(self, pki):
        infrastructure, keyrings = pki
        inner = seal_for_server(infrastructure, b"x", rng=1)
        envelope = wrap_for_hop(infrastructure, 1, inner, rng=2)
        with pytest.raises(CryptoError):
            open_envelope(keyrings[2], envelope)

    def test_unregistered_recipient_rejected(self, pki):
        """The PKI authentication gate."""
        infrastructure, _ = pki
        inner = seal_for_server(infrastructure, b"x", rng=1)
        with pytest.raises(CryptoError):
            wrap_for_hop(infrastructure, 42, inner, rng=2)

    def test_binary_payload(self, pki):
        infrastructure, keyrings = pki
        payload = bytes(range(256))
        inner = seal_for_server(infrastructure, payload, rng=1)
        envelope = wrap_for_hop(infrastructure, 0, inner, rng=2)
        recovered = open_envelope(keyrings[0], envelope)
        assert server_open(infrastructure, recovered) == payload


class TestBatchEndpoints:
    """Batched seal/wrap/open — one validated pass per protocol round."""

    def test_singleton_batch_matches_scalar_calls(self, pki):
        """A batch of one is indistinguishable from the scalar call:
        same primitives, same single KEM draw from the same seed."""
        infrastructure, keyrings = pki
        assert seal_batch(infrastructure, [b"r"], rng=1) == [
            seal_for_server(infrastructure, b"r", rng=1)
        ]
        inner = seal_for_server(infrastructure, b"r", rng=1)
        assert wrap_batch(infrastructure, [2], [inner], rng=3) == [
            wrap_for_hop(infrastructure, 2, inner, rng=3)
        ]
        envelope = wrap_for_hop(infrastructure, 2, inner, rng=3)
        assert open_batch(keyrings, [envelope]) == [
            open_envelope(keyrings[2], envelope)
        ]

    def test_full_batched_relay_chain(self, pki):
        infrastructure, keyrings = pki
        reports = [b"a", b"b", b"c"]
        inners = seal_batch(infrastructure, reports, rng=1)
        envelopes = wrap_batch(infrastructure, [1, 2, 0], inners, rng=2)
        hop_one = open_batch(keyrings, envelopes)
        assert all(isinstance(inner, Ciphertext) for inner in hop_one)
        envelopes = wrap_batch(infrastructure, [3, 3, 1], hop_one, rng=3)
        hop_two = open_batch(keyrings, envelopes)
        assert [
            server_open(infrastructure, inner) for inner in hop_two
        ] == reports

    def test_wrap_batch_length_mismatch_rejected(self, pki):
        infrastructure, _ = pki
        inners = seal_batch(infrastructure, [b"a", b"b"], rng=1)
        with pytest.raises(CryptoError):
            wrap_batch(infrastructure, [0], inners, rng=2)

    def test_wrap_batch_unregistered_recipient_rejects_whole_batch(self, pki):
        infrastructure, _ = pki
        inners = seal_batch(infrastructure, [b"a", b"b"], rng=1)
        with pytest.raises(CryptoError):
            wrap_batch(infrastructure, [0, 42], inners, rng=2)

    def test_open_batch_missing_keyring_rejected(self, pki):
        infrastructure, keyrings = pki
        inners = seal_batch(infrastructure, [b"a"], rng=1)
        envelopes = wrap_batch(infrastructure, [3], inners, rng=2)
        with pytest.raises(CryptoError):
            open_batch({0: keyrings[0]}, envelopes)

    def test_empty_batches(self, pki):
        infrastructure, keyrings = pki
        assert seal_batch(infrastructure, [], rng=1) == []
        assert wrap_batch(infrastructure, [], [], rng=1) == []
        assert open_batch(keyrings, []) == []
