"""Tests for the ``python -m repro`` CLI."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestCli:
    def test_info(self, capsys):
        main(["info"])
        output = capsys.readouterr().out
        assert "repro" in output
        assert "Network Shuffling" in output

    def test_no_arguments_prints_info(self, capsys):
        main([])
        assert "repro" in capsys.readouterr().out

    def test_plan(self, capsys):
        main(["plan", "100000", "1.0"])
        output = capsys.readouterr().out
        assert "A_all" in output
        assert "A_single" in output
        assert "eps0" in output

    def test_plan_unreachable_target(self, capsys):
        # The achievable floor at n=1000 is ~2e-5; 1e-7 is below it.
        main(["plan", "1000", "0.0000001"])
        output = capsys.readouterr().out
        assert "unreachable" in output

    def test_plan_usage_error(self):
        with pytest.raises(SystemExit):
            main(["plan", "100000"])

    def test_unknown_command(self):
        with pytest.raises(SystemExit, match="unknown command"):
            main(["dance"])

    def test_artifact_dispatch(self, capsys):
        main(["figure8"])
        output = capsys.readouterr().out
        assert "Gamma" in output

    def test_runall_writes_files(self, tmp_path, capsys):
        # Only verify dispatch wiring (a full runall takes minutes):
        # monkeypatching generators would test nothing, so run the
        # cheapest artifact through the same path instead.
        main(["table1"])
        assert "mechanism" in capsys.readouterr().out
