"""Tests for the ``python -m repro`` CLI."""

from __future__ import annotations

import pytest

from repro import Scenario
from repro.__main__ import main


@pytest.fixture
def scenario_file(tmp_path):
    scenario = Scenario(
        graph={"kind": "k_regular", "params": {"degree": 4, "num_nodes": 64}},
        mechanism={"kind": "rr", "params": {"epsilon": 1.0}},
        rounds=4,
        seed=0,
    )
    path = tmp_path / "scenario.json"
    path.write_text(scenario.to_json())
    return str(path)


@pytest.fixture
def schedule_scenario_file(tmp_path):
    scenario = Scenario(
        graph={
            "kind": "schedule",
            "params": {
                "graphs": [
                    {"kind": "k_regular",
                     "params": {"degree": 4, "num_nodes": 64}},
                    {"kind": "k_regular",
                     "params": {"degree": 6, "num_nodes": 64}},
                ],
                "selector": "epoch",
                "block": 2,
            },
        },
        mechanism={"kind": "rr", "params": {"epsilon": 1.0}},
        rounds=6,
        seed=0,
    )
    path = tmp_path / "schedule_scenario.json"
    path.write_text(scenario.to_json())
    return str(path)


class TestCli:
    def test_info(self, capsys):
        main(["info"])
        output = capsys.readouterr().out
        assert "repro" in output
        assert "Network Shuffling" in output

    def test_no_arguments_prints_info(self, capsys):
        main([])
        assert "repro" in capsys.readouterr().out

    def test_plan(self, capsys):
        main(["plan", "100000", "1.0"])
        output = capsys.readouterr().out
        assert "A_all" in output
        assert "A_single" in output
        assert "eps0" in output

    def test_plan_unreachable_target(self, capsys):
        # The achievable floor at n=1000 is ~2e-5; 1e-7 is below it.
        main(["plan", "1000", "0.0000001"])
        output = capsys.readouterr().out
        assert "unreachable" in output

    def test_plan_usage_error(self):
        with pytest.raises(SystemExit):
            main(["plan", "100000"])

    def test_unknown_command(self):
        with pytest.raises(SystemExit, match="unknown command"):
            main(["dance"])

    def test_artifact_dispatch(self, capsys):
        main(["figure8"])
        output = capsys.readouterr().out
        assert "Gamma" in output

    def test_runall_writes_files(self, tmp_path, capsys):
        # Only verify dispatch wiring (a full runall takes minutes):
        # monkeypatching generators would test nothing, so run the
        # cheapest artifact through the same path instead.
        main(["table1"])
        assert "mechanism" in capsys.readouterr().out

    def test_plan_uses_config_delta(self, capsys):
        from repro.experiments.config import DEFAULT_CONFIG

        main(["plan", "100000", "1.0"])
        assert f"delta={DEFAULT_CONFIG.delta}" in capsys.readouterr().out


class TestScenarioCommands:
    def test_run_prints_digest(self, scenario_file, capsys):
        main(["run", scenario_file])
        output = capsys.readouterr().out
        assert "central_epsilon" in output
        assert "empirical_epsilon" in output
        assert "rounds" in output

    def test_run_usage_error(self):
        with pytest.raises(SystemExit, match="usage"):
            main(["run"])

    def test_run_schedule_scenario(self, schedule_scenario_file, capsys):
        main(["run", schedule_scenario_file])
        output = capsys.readouterr().out
        assert "central_epsilon" in output
        assert "rounds" in output

    def test_audit_schedule_scenario(self, schedule_scenario_file, capsys):
        main(["audit", schedule_scenario_file, "--trials", "100"])
        output = capsys.readouterr().out
        assert "epsilon_lower_bound" in output

    def test_bound_prints_guarantee(self, scenario_file, capsys):
        main(["bound", scenario_file])
        output = capsys.readouterr().out
        assert "epsilon" in output
        assert "theorem" in output

    def test_bound_schedule_scenario_shows_accounting(
        self, schedule_scenario_file, capsys
    ):
        main(["bound", schedule_scenario_file])
        output = capsys.readouterr().out
        assert "accounting:" in output
        assert "strategy" in output

    def test_bound_json(self, schedule_scenario_file, capsys):
        import json

        main(["bound", schedule_scenario_file, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["accounting"]["strategy"] in ("dense", "blocked")
        assert payload["epsilon"] > 0

    def test_bound_profile_budget_escalates(
        self, schedule_scenario_file, capsys
    ):
        import json

        from repro.api import ProfilePolicy, set_profile_policy

        try:
            main([
                "bound", schedule_scenario_file, "--json",
                "--profile-budget", "16K",
            ])
        finally:
            # The flag installs process policy; restore for other tests.
            set_profile_policy(ProfilePolicy())
        payload = json.loads(capsys.readouterr().out)
        # 16*64*64 bytes of dense profile exceed a 16 KiB budget.
        assert payload["accounting"]["strategy"] == "blocked"

    def test_bound_rejects_bad_budget(self, scenario_file):
        from repro.api import ProfilePolicy, set_profile_policy

        try:
            with pytest.raises(SystemExit, match="profile-budget"):
                main([
                    "bound", scenario_file, "--profile-budget", "lots",
                ])
        finally:
            set_profile_policy(ProfilePolicy())

    def test_bound_usage_error(self):
        with pytest.raises(SystemExit, match="usage"):
            main(["bound"])

    def test_sweep_schedule_scenario(self, schedule_scenario_file, capsys):
        main([
            "sweep", schedule_scenario_file,
            "--axis", "rounds=2,4",
            "--axis", "graph.block=1,2",
            "--mode", "bound",
        ])
        output = capsys.readouterr().out
        assert "central eps" in output
        assert output.count("\n") >= 6  # 4 grid rows plus table frame

    def test_stationary_sweep_on_schedule_fails_cleanly(
        self, schedule_scenario_file
    ):
        with pytest.raises(SystemExit, match="sweep failed"):
            main([
                "sweep", schedule_scenario_file,
                "--axis", "rounds=2,4",
                "--mode", "stationary_bound",
            ])

    def test_sweep_prints_grid_table(self, scenario_file, capsys):
        main([
            "sweep", scenario_file,
            "--axis", "rounds=2,4",
            "--axis", "protocol=all,single",
            "--mode", "bound",
        ])
        output = capsys.readouterr().out
        assert "central eps" in output
        assert "single" in output
        assert output.count("\n") >= 6  # 4 grid rows plus table frame

    def test_sweep_run_mode_includes_empirical(self, scenario_file, capsys):
        main(["sweep", scenario_file, "--axis", "rounds=2,3"])
        output = capsys.readouterr().out
        assert "empirical eps" in output
        assert "dummies" in output

    def test_axis_value_parsing(self):
        from repro.__main__ import _parse_axis_value

        assert _parse_axis_value("8") == 8
        assert _parse_axis_value("0.5") == 0.5
        assert _parse_axis_value("True") is True
        assert _parse_axis_value("false") is False
        assert _parse_axis_value("single") == "single"
        # Scientific-notation integers collapse to int so int-validated
        # builder params (num_nodes, ...) accept them.
        assert _parse_axis_value("1e6") == 1_000_000
        assert isinstance(_parse_axis_value("1e6"), int)
        assert _parse_axis_value("2.5e-1") == 0.25

    def test_sweep_requires_axis(self, scenario_file):
        with pytest.raises(SystemExit, match="usage"):
            main(["sweep", scenario_file])

    def test_run_invalid_scenario_exits_cleanly(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"graf": {"kind": "k_regular"}}')
        with pytest.raises(SystemExit, match="invalid"):
            main(["run", str(path)])

    def test_sweep_rejects_duplicate_axis(self, scenario_file):
        with pytest.raises(SystemExit, match="duplicate"):
            main(["sweep", scenario_file,
                  "--axis", "rounds=2,4", "--axis", "rounds=8"])

    def test_sweep_rejects_non_numeric_workers(self, scenario_file):
        with pytest.raises(SystemExit, match="usage"):
            main(["sweep", scenario_file, "--axis", "rounds=2",
                  "--workers", "two"])

    def test_sweep_rejects_bad_mode(self, scenario_file):
        with pytest.raises(SystemExit, match="mode"):
            main(["sweep", scenario_file, "--axis", "rounds=2", "--mode", "warp"])


class TestJsonAndAuditCommands:
    def test_run_json(self, scenario_file, capsys):
        import json

        main(["run", scenario_file, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_users"] == 64
        assert "central_epsilon" in payload
        assert "empirical_epsilon" in payload

    def test_audit_prints_digest(self, scenario_file, capsys):
        main(["audit", scenario_file, "--trials", "300"])
        output = capsys.readouterr().out
        assert "epsilon_lower_bound" in output
        assert "best_threshold" in output

    def test_audit_json(self, scenario_file, capsys):
        import json

        main(["audit", scenario_file, "--trials", "300", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["trials"] == 300
        assert payload["mechanism"].startswith("scenario:weighted_evidence")
        assert isinstance(payload["epsilon_lower_bound"], float)

    def test_audit_usage_errors(self, scenario_file):
        with pytest.raises(SystemExit, match="usage"):
            main(["audit"])
        with pytest.raises(SystemExit, match="usage"):
            main(["audit", scenario_file, "--trials"])
        with pytest.raises(SystemExit, match="usage"):
            main(["audit", scenario_file, "--trials", "many"])

    def test_audit_invalid_scenario_fails_cleanly(self, tmp_path):
        from repro import Scenario

        scenario = Scenario(
            graph={"kind": "k_regular", "params": {"degree": 4, "num_nodes": 64}},
            mechanism={"kind": "laplace", "params": {"epsilon": 1.0}},
            rounds=2,
        )
        path = tmp_path / "laplace.json"
        path.write_text(scenario.to_json())
        with pytest.raises(SystemExit, match="audit failed"):
            main(["audit", str(path)])

    def test_sweep_audit_mode_table(self, tmp_path, capsys):
        from repro import Scenario

        scenario = Scenario(
            graph={"kind": "k_regular", "params": {"degree": 4, "num_nodes": 64}},
            mechanism={"kind": "rr", "params": {"epsilon": 1.0}},
            audit={"kind": "weighted_evidence", "params": {"trials": 200}},
            rounds=4,
            seed=0,
        )
        path = tmp_path / "audited.json"
        path.write_text(scenario.to_json())
        main([
            "sweep", str(path),
            "--axis", "rounds=0,4",
            "--mode", "audit",
        ])
        output = capsys.readouterr().out
        assert "eps_hat" in output
        assert "threshold" in output
        assert "200" in output


class TestExperimentsCommand:
    def test_single_artifact_prints_to_stdout(self, capsys):
        main(["experiments", "figure7", "--fast"])
        output = capsys.readouterr().out
        assert "figure7" in output
        assert "A_single wins" in output

    def test_out_dir_writes_files_and_manifest(self, tmp_path, capsys):
        main(["experiments", "figure8", "--fast", "--out", str(tmp_path)])
        assert (tmp_path / "figure8.txt").exists()
        assert (tmp_path / "manifest.json").exists()
        assert "manifest" in capsys.readouterr().out

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit, match="unknown artifact"):
            main(["experiments", "figure99"])

    def test_usage_error_without_artifact(self):
        with pytest.raises(SystemExit, match="usage"):
            main(["experiments"])

    def test_fast_and_full_mutually_exclusive(self):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["experiments", "figure8", "--fast", "--full"])

    def test_runall_rejects_fast_plus_full(self, tmp_path):
        from repro.experiments.runall import main as runall_main

        with pytest.raises(SystemExit, match="mutually exclusive"):
            runall_main([str(tmp_path), "--fast", "--full"])


class TestResultsCommand:
    def test_sweep_store_then_query_diff_gc(self, scenario_file, tmp_path, capsys):
        store = str(tmp_path / "results.sqlite")
        main(["sweep", scenario_file, "--axis", "rounds=1,2",
              "--mode", "stationary_bound",
              "--store", store, "--campaign", "one"])
        output = capsys.readouterr().out
        assert "2 computed, 0 reused" in output

        main(["sweep", scenario_file, "--axis", "rounds=1,2",
              "--mode", "stationary_bound",
              "--store", store, "--campaign", "two"])
        output = capsys.readouterr().out
        assert "0 computed, 2 reused" in output

        main(["results", "query", "--store", store,
              "--x", "rounds", "--y", "epsilon"])
        output = capsys.readouterr().out
        assert "k_regular" in output and "mean epsilon" in output

        main(["results", "diff", "one", "two", "--store", store])
        output = capsys.readouterr().out
        assert "no differences" in output

        main(["results", "campaigns", "--store", store])
        output = capsys.readouterr().out
        assert "one" in output and "two" in output

        main(["results", "gc", "--store", store, "--dry-run"])
        output = capsys.readouterr().out
        assert "would delete 0 points" in output

    def test_query_json_output(self, scenario_file, tmp_path, capsys):
        import json

        store = str(tmp_path / "results.sqlite")
        main(["sweep", scenario_file, "--axis", "rounds=1,2",
              "--mode", "stationary_bound", "--store", store])
        capsys.readouterr()
        main(["results", "query", "--store", store, "--json"])
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 2 and all(row["points"] == 1 for row in rows)

    def test_diff_exits_nonzero_on_changes(self, tmp_path, capsys):
        from repro.scenario import GraphSpec, MechanismSpec
        from repro.store import ResultsStore

        store_path = tmp_path / "results.sqlite"
        scenario = Scenario(
            graph=GraphSpec.of("k_regular", degree=4, num_nodes=64),
            mechanism=MechanismSpec.of("rr", epsilon=1.0),
            rounds=4,
            seed=0,
        )
        with ResultsStore(store_path) as store:
            a = store.begin_campaign("a", fingerprint="1.0.0+aaaa")
            b = store.begin_campaign("b", fingerprint="1.0.0+bbbb")
            store.record_point(scenario, "bound", {"epsilon": 1.0},
                               campaign_id=a, fingerprint="1.0.0+aaaa")
            store.record_point(scenario, "bound", {"epsilon": 2.0},
                               campaign_id=b, fingerprint="1.0.0+bbbb")
        with pytest.raises(SystemExit):
            main(["results", "diff", "a", "b", "--store", str(store_path)])
        assert "1 changed" in capsys.readouterr().out

    def test_usage_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="usage"):
            main(["results"])
        with pytest.raises(SystemExit, match="usage"):
            main(["results", "frobnicate", "--store", "x"])
        with pytest.raises(SystemExit, match="usage"):
            main(["results", "query"])  # --store is required

    def test_query_unknown_axis_fails_loudly(self, scenario_file, tmp_path):
        store = str(tmp_path / "results.sqlite")
        main(["sweep", scenario_file, "--axis", "rounds=1",
              "--mode", "stationary_bound", "--store", store])
        with pytest.raises(SystemExit, match="must match"):
            main(["results", "query", "--store", store,
                  "--x", "rounds; DROP TABLE points"])

    def test_experiments_records_campaign(self, tmp_path, capsys):
        store = str(tmp_path / "results.sqlite")
        main(["experiments", "table3", "--fast", "--store", store])
        output = capsys.readouterr().out
        assert "recorded campaign" in output
        from repro.store import ResultsStore

        with ResultsStore(store) as handle:
            artifacts = handle.artifacts()
            assert [entry["name"] for entry in artifacts] == ["table3"]
            assert artifacts[0]["preset"] == "fast"


class TestSweepFaultFlags:
    def test_collect_prints_failures_and_exits_nonzero(
        self, scenario_file, capsys
    ):
        from repro.testing import FaultRule, inject

        with inject([FaultRule(point=0, message="wired to fail")]):
            with pytest.raises(SystemExit) as excinfo:
                main(["sweep", scenario_file, "--axis", "rounds=1,2",
                      "--mode", "stationary_bound",
                      "--on-error", "collect"])
        assert excinfo.value.code == 1
        output = capsys.readouterr().out
        assert "1 of 2 points failed:" in output
        assert "InjectedFaultError (exception, 1 attempt(s))" in output
        assert "wired to fail" in output
        # The surviving point still renders in the grid table.
        assert "central eps" in output

    def test_invalid_on_error_fails_cleanly(self, scenario_file):
        with pytest.raises(SystemExit, match="sweep failed"):
            main(["sweep", scenario_file, "--axis", "rounds=1",
                  "--mode", "stationary_bound", "--on-error", "ignore"])

    def test_non_numeric_retries_is_usage_error(self, scenario_file):
        with pytest.raises(SystemExit, match="usage"):
            main(["sweep", scenario_file, "--axis", "rounds=1",
                  "--retries", "many"])

    def test_non_numeric_point_timeout_is_usage_error(self, scenario_file):
        with pytest.raises(SystemExit, match="usage"):
            main(["sweep", scenario_file, "--axis", "rounds=1",
                  "--point-timeout", "soon"])

    def test_campaigns_table_shows_status(self, scenario_file, tmp_path, capsys):
        store = str(tmp_path / "results.sqlite")
        main(["sweep", scenario_file, "--axis", "rounds=1",
              "--mode", "stationary_bound", "--store", store,
              "--campaign", "steady"])
        capsys.readouterr()
        main(["results", "campaigns", "--store", store])
        output = capsys.readouterr().out
        assert "status" in output
        assert "complete" in output

    def test_store_summary_counts_failed_points(
        self, scenario_file, tmp_path, capsys
    ):
        from repro.testing import FaultRule, inject

        store = str(tmp_path / "results.sqlite")
        with inject([FaultRule(point=1)]):
            with pytest.raises(SystemExit):
                main(["sweep", scenario_file, "--axis", "rounds=1,2",
                      "--mode", "stationary_bound", "--store", store,
                      "--on-error", "collect"])
        output = capsys.readouterr().out
        assert "1 computed, 0 reused, 1 failed" in output


class TestEngineFlag:
    """``--engine`` / ``--require-jit`` on run and sweep."""

    def test_run_engine_override_recorded_in_summary(
        self, scenario_file, capsys
    ):
        import json

        main(["run", scenario_file, "--json", "--engine", "compiled"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "compiled"
        assert payload["backend"].startswith("compiled-")

    def test_run_default_engine_backend_recorded(self, scenario_file, capsys):
        import json

        main(["run", scenario_file, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "fast"
        assert payload["backend"] == "vectorized"

    def test_run_rejects_unknown_engine(self, scenario_file):
        with pytest.raises(SystemExit, match="engine"):
            main(["run", scenario_file, "--engine", "quantum"])

    def test_run_engine_flag_requires_value(self, scenario_file):
        with pytest.raises(SystemExit, match="usage"):
            main(["run", scenario_file, "--engine"])

    def test_require_jit_fails_loudly_without_numba(
        self, scenario_file, monkeypatch
    ):
        from repro.netsim import kernels

        monkeypatch.setitem(kernels._RESOLVED, "implementation", "numpy")
        try:
            with pytest.raises(SystemExit, match="run failed"):
                main([
                    "run", scenario_file,
                    "--engine", "compiled", "--require-jit",
                ])
        finally:
            kernels.set_require_jit(False)

    def test_sweep_engine_override(self, scenario_file, capsys):
        main([
            "sweep", scenario_file,
            "--axis", "rounds=2,3",
            "--engine", "compiled",
        ])
        output = capsys.readouterr().out
        assert "empirical eps" in output

    def test_engine_is_sweepable_axis(self, scenario_file, capsys):
        main([
            "sweep", scenario_file,
            "--axis", "engine=vectorized,compiled",
            "--mode", "bound",
        ])
        output = capsys.readouterr().out
        assert "compiled" in output
