"""Scenario spec: construction, validation, and serialization round-trips."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ValidationError
from repro.scenario import (
    GRAPHS,
    MECHANISMS,
    ComponentSpec,
    FaultSpec,
    GraphSpec,
    MechanismSpec,
    Scenario,
    ValuesSpec,
)


def _base(**overrides):
    kwargs = dict(
        graph=GraphSpec.of("k_regular", degree=4, num_nodes=64),
        mechanism=MechanismSpec.of("rr", epsilon=1.0),
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


class TestConstruction:
    def test_coerces_string_and_dict_specs(self):
        scenario = Scenario(
            graph="complete",
            mechanism={"kind": "rr", "params": {"epsilon": 2.0}},
        )
        assert scenario.graph == GraphSpec.of("complete")
        assert scenario.mechanism == MechanismSpec.of("rr", epsilon=2.0)

    def test_rejects_bad_protocol_engine_analysis(self):
        with pytest.raises(ValidationError, match="protocol"):
            _base(protocol="both")
        with pytest.raises(ValidationError, match="engine"):
            _base(engine="warp")
        with pytest.raises(ValidationError, match="analysis"):
            _base(analysis="exact")

    def test_rejects_negative_rounds(self):
        with pytest.raises(ValidationError, match="rounds"):
            _base(rounds=-1)

    def test_rejects_negative_seed(self):
        with pytest.raises(ValidationError, match="seed"):
            _base(seed=-1)

    @pytest.mark.parametrize("field", ["rounds", "laziness", "epsilon0",
                                       "delta", "delta2", "seed"])
    def test_wrong_typed_numbers_raise_validation_error(self, field):
        with pytest.raises(ValidationError, match=field):
            _base(**{field: "abc"})

    def test_non_integral_rounds_rejected_not_truncated(self):
        with pytest.raises(ValidationError, match="rounds"):
            _base(rounds=4.7)
        assert _base(rounds=4.0).rounds == 4

    def test_rejects_faults_plus_laziness(self):
        with pytest.raises(ValidationError, match="faults or laziness"):
            _base(laziness=0.2, faults=FaultSpec.of("independent", probability=0.1))

    def test_params_canonicalized(self):
        spec = GraphSpec.of("grid", dims=(5, 5))
        assert spec.params == {"dims": [5, 5]}
        with pytest.raises(ValidationError, match="JSON-serializable"):
            GraphSpec.of("grid", shape=object())

    def test_non_finite_params_rejected(self):
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ValidationError, match="finite"):
                GraphSpec.of("grid", weight=bad)

    def test_frozen(self):
        scenario = _base()
        with pytest.raises(Exception):
            scenario.protocol = "single"  # type: ignore[misc]

    def test_hashable(self):
        assert len({_base(), _base(), _base(seed=1)}) == 2


class TestRoundTrip:
    @pytest.mark.parametrize("graph_kind", GRAPHS.available())
    @pytest.mark.parametrize("mechanism_kind", MECHANISMS.available())
    def test_every_graph_mechanism_combination(self, graph_kind, mechanism_kind):
        """Acceptance: from_dict(to_dict) == s for every registered combo."""
        scenario = Scenario(
            graph=GraphSpec(kind=graph_kind, params=GRAPHS.example(graph_kind)),
            mechanism=MechanismSpec(
                kind=mechanism_kind, params=MECHANISMS.example(mechanism_kind)
            ),
            protocol="single",
            rounds=5,
            laziness=0.1,
            values=ValuesSpec.of("zeros"),
            seed=42,
        )
        assert Scenario.from_dict(scenario.to_dict()) == scenario
        # Through actual JSON text, too (tuples/lists, float identity).
        assert Scenario.from_json(scenario.to_json()) == scenario
        assert Scenario.from_dict(
            json.loads(json.dumps(scenario.to_dict()))
        ) == scenario

    def test_none_fields_round_trip(self):
        scenario = Scenario(graph="complete", epsilon0=0.5)
        assert scenario.mechanism is None and scenario.rounds is None
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_from_dict_requires_graph(self):
        with pytest.raises(ValidationError, match="graph"):
            Scenario.from_dict({"protocol": "all"})

    def test_from_dict_rejects_unknown_keys(self):
        payload = _base().to_dict()
        payload["turbo"] = True
        with pytest.raises(ValidationError, match="turbo"):
            Scenario.from_dict(payload)

    def test_spec_types_distinguished(self):
        assert GraphSpec.of("x") != MechanismSpec.of("x")
        assert ComponentSpec.coerce({"kind": "x"}) == ComponentSpec.of("x")


class TestUpdated:
    def test_top_level_field(self):
        assert _base().updated(rounds=9).rounds == 9

    def test_dotted_param_override(self):
        updated = _base().updated(**{"graph.degree": 8, "mechanism.epsilon": 3.0})
        assert updated.graph.params["degree"] == 8
        assert updated.graph.params["num_nodes"] == 64
        assert updated.mechanism.params["epsilon"] == 3.0

    def test_dotted_kind_swap_keeps_params(self):
        updated = _base().updated(**{"graph.kind": "erdos_renyi"})
        assert updated.graph.kind == "erdos_renyi"
        assert updated.graph.params["num_nodes"] == 64

    def test_unknown_field_rejected(self):
        with pytest.raises(ValidationError, match="unknown scenario field"):
            _base().updated(turbo=True)

    def test_dotted_into_missing_spec_rejected(self):
        with pytest.raises(ValidationError, match="no values spec"):
            _base().updated(**{"values.rate": 0.5})

    def test_original_unchanged(self):
        base = _base()
        base.updated(**{"graph.degree": 16})
        assert base.graph.params["degree"] == 4


class TestFrozenParams:
    def test_params_are_immutable(self):
        from repro.scenario import GraphSpec

        spec = GraphSpec.of("k_regular", degree=4, num_nodes=64)
        with pytest.raises(TypeError, match="immutable"):
            spec.params["degree"] = 99
        with pytest.raises(TypeError, match="immutable"):
            del spec.params["degree"]
        assert spec.params["degree"] == 4

    def test_hash_stable_under_mutation_attempts(self):
        from repro.scenario import GraphSpec

        spec = GraphSpec.of("k_regular", degree=4, num_nodes=64)
        before = hash(spec)
        with pytest.raises(TypeError):
            spec.params["degree"] = 99
        assert hash(spec) == before

    def test_equality_with_plain_dict(self):
        from repro.scenario import GraphSpec

        spec = GraphSpec.of("k_regular", degree=4, num_nodes=64)
        assert spec.params == {"degree": 4, "num_nodes": 64}
        assert not (spec.params == {"degree": 5, "num_nodes": 64})

    def test_params_pickle_round_trip(self):
        import pickle

        from repro.scenario import FrozenParams, GraphSpec

        spec = GraphSpec.of("k_regular", degree=4, num_nodes=64)
        restored = pickle.loads(pickle.dumps(spec))
        assert restored == spec
        assert isinstance(restored.params, FrozenParams)

    def test_replacing_still_works(self):
        from repro.scenario import GraphSpec

        spec = GraphSpec.of("k_regular", degree=4, num_nodes=64)
        bigger = spec.replacing(num_nodes=128)
        assert bigger.params == {"degree": 4, "num_nodes": 128}
        assert spec.params["num_nodes"] == 64
