"""Registry behavior: examples build, unknown keys fail loudly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graphs.dynamic import DynamicGraphSchedule
from repro.graphs.graph import Graph
from repro.ldp.base import LocalRandomizer
from repro.netsim.faults import DropoutModel
from repro.scenario import (
    FAULTS,
    GRAPH_STATS,
    GRAPHS,
    MECHANISMS,
    VALUES,
    GraphSpec,
    Registry,
    Scenario,
    run,
    stationary_bound,
)


class TestUnknownKeys:
    def test_unknown_graph_kind_lists_known(self):
        with pytest.raises(ValidationError, match="unknown graph kind 'moebius'"):
            GRAPHS.build("moebius", np.random.default_rng(0))

    def test_error_names_known_keys(self):
        with pytest.raises(ValidationError, match="k_regular"):
            GRAPHS.build("moebius", np.random.default_rng(0))

    def test_unknown_mechanism_at_run_time(self):
        scenario = Scenario(graph="complete", mechanism="quantum_rr")
        scenario = scenario.updated(**{"graph.num_nodes": 16})
        with pytest.raises(ValidationError, match="unknown mechanism kind"):
            run(scenario)

    def test_unknown_graph_at_run_time(self):
        scenario = Scenario(graph="moebius", epsilon0=1.0)
        with pytest.raises(ValidationError, match="unknown graph kind"):
            run(scenario)

    def test_bad_params_mention_component(self):
        with pytest.raises(ValidationError, match="bad parameters for graph"):
            GRAPHS.build("complete", np.random.default_rng(0), sides=3)

    def test_whitespace_docstring_tolerated(self):
        registry = Registry("demo")

        @registry.register("blank")
        def _blank():
            """   """

        assert registry.get("blank").doc == ""

    def test_duplicate_registration_rejected(self):
        registry = Registry("demo")

        @registry.register("thing")
        def _build():
            return 1

        with pytest.raises(ValidationError, match="already has"):
            @registry.register("thing")
            def _again():
                return 2


class TestExamplesBuild:
    @pytest.mark.parametrize("kind", GRAPHS.available())
    def test_every_graph_example_builds(self, kind):
        graph = GRAPHS.build(kind, np.random.default_rng(0), **GRAPHS.example(kind))
        # The "schedule" kind materializes to a DynamicGraphSchedule;
        # everything else to a static Graph.
        assert isinstance(graph, (Graph, DynamicGraphSchedule))
        assert graph.num_nodes > 0

    @pytest.mark.parametrize("kind", MECHANISMS.available())
    def test_every_mechanism_example_builds(self, kind):
        mechanism = MECHANISMS.build(kind, **MECHANISMS.example(kind))
        assert isinstance(mechanism, LocalRandomizer)
        assert mechanism.epsilon > 0

    @pytest.mark.parametrize("kind", FAULTS.available())
    def test_every_fault_example_builds(self, kind):
        faults = FAULTS.build(kind, **FAULTS.example(kind))
        assert isinstance(faults, DropoutModel)
        mask = faults.offline_mask(10, 0, np.random.default_rng(0))
        assert mask.shape == (10,)

    @pytest.mark.parametrize("kind", VALUES.available())
    def test_every_values_example_builds(self, kind):
        values = VALUES.build(
            kind, np.random.default_rng(0), 20, **VALUES.example(kind)
        )
        assert len(values) == 20


class TestGraphStats:
    def test_k_regular_collision_is_uniform(self):
        stats = GRAPH_STATS.build("k_regular", degree=8, num_nodes=1000)
        assert stats.num_nodes == 1000
        assert stats.stationary_collision == pytest.approx(1e-3)
        assert stats.gamma == pytest.approx(1.0)

    def test_dataset_stats_use_published_gamma(self):
        stats = GRAPH_STATS.build("dataset", name="twitch")
        assert stats.num_nodes == 9_498
        assert stats.gamma == pytest.approx(7.5840)

    def test_stationary_bound_matches_materialized_collision(self):
        """Closed form == materialized stationary collision (complete graph)."""
        scenario = Scenario(
            graph=GraphSpec.of("complete", num_nodes=32), epsilon0=1.0
        )
        from repro.scenario import bound

        closed = stationary_bound(scenario)
        materialized = bound(scenario, rounds=10_000)
        assert closed.epsilon == pytest.approx(materialized.epsilon, rel=1e-9)

    def test_grid_stats_match_materialized_torus(self):
        """The torus closed form equals the built graph's stationary
        collision (uniform pi on the 4-regular torus)."""
        from repro.graphs.generators import grid_graph
        from repro.graphs.spectral import stationary_distribution

        for rows, cols in [(5, 5), (5, 6)]:
            stats = GRAPH_STATS.build("grid", rows=rows, cols=cols, periodic=True)
            pi = stationary_distribution(grid_graph(rows, cols, periodic=True))
            assert stats.stationary_collision == pytest.approx(
                float(np.dot(pi, pi)), rel=1e-12
            ), (rows, cols)
            assert stats.num_nodes == rows * cols

    def test_stats_refuse_non_ergodic_configurations(self):
        """Closed forms exist only where the walk actually converges —
        the same Theorem 4.3 precondition the materialized paths check."""
        with pytest.raises(ValidationError, match="bipartite|ergodic"):
            GRAPH_STATS.build("grid", rows=4, cols=6, periodic=False)
        with pytest.raises(ValidationError, match="bipartite|ergodic"):
            GRAPH_STATS.build("grid", rows=4, cols=6, periodic=True)
        with pytest.raises(ValidationError, match="ergodic"):
            GRAPH_STATS.build("cycle", num_nodes=10)
        with pytest.raises(ValidationError, match="ergodic"):
            GRAPH_STATS.build("complete", num_nodes=2)
        with pytest.raises(ValidationError, match="ergodic"):
            GRAPH_STATS.build("k_regular", degree=2, num_nodes=10)
        assert "star" not in GRAPH_STATS  # always bipartite

    def test_stationary_bound_refuses_bipartite_closed_form(self):
        """The closed-form branch must not price what bound() refuses."""
        scenario = Scenario(
            graph=GraphSpec.of("grid", rows=4, cols=4, periodic=False),
            epsilon0=1.0,
        )
        with pytest.raises(ValidationError, match="bipartite|ergodic"):
            stationary_bound(scenario)

    def test_stationary_bound_falls_back_to_materializing(self):
        scenario = Scenario(
            graph=GraphSpec.of("erdos_renyi", num_nodes=64, edge_probability=0.3),
            epsilon0=1.0,
            seed=5,
        )
        assert stationary_bound(scenario).epsilon > 0


class TestSignatureBinding:
    """build() binds the signature first: only genuinely bad parameters
    are rewrapped; builder-internal TypeErrors stay loud."""

    def test_builder_internal_type_error_not_swallowed(self):
        registry = Registry("demo")

        @registry.register("buggy")
        def _buggy(*, size: int):
            return None + size  # a genuine builder bug

        with pytest.raises(TypeError, match="unsupported operand"):
            registry.build("buggy", size=3)

    def test_bad_parameters_still_wrapped(self):
        registry = Registry("demo")

        @registry.register("strict")
        def _strict(*, size: int):
            return size

        with pytest.raises(ValidationError, match="bad parameters for demo"):
            registry.build("strict", wrong_name=3)

    def test_missing_required_parameter_wrapped(self):
        registry = Registry("demo")

        @registry.register("needs")
        def _needs(*, size: int):
            return size

        with pytest.raises(ValidationError, match="bad parameters"):
            registry.build("needs")

    def test_valid_build_unaffected(self):
        registry = Registry("demo")

        @registry.register("ok")
        def _ok(prefix: str, *, size: int = 2):
            return prefix * size

        assert registry.build("ok", "ab", size=3) == "ababab"


class TestDummyFactories:
    def test_available_kinds(self):
        from repro.scenario import DUMMIES

        assert set(DUMMIES.available()) >= {"mechanism_zero", "privunit_normal"}

    def test_mechanism_zero_randomizes_through_the_mechanism(self):
        from repro.ldp import BinaryRandomizedResponse
        from repro.scenario import DUMMIES

        factory = DUMMIES.build(
            "mechanism_zero", BinaryRandomizedResponse(1.0)
        )
        report = factory(np.random.default_rng(0))
        assert report in (0, 1)

    def test_mechanism_zero_requires_a_mechanism(self):
        from repro.scenario import DUMMIES

        with pytest.raises(ValidationError, match="has none"):
            DUMMIES.build("mechanism_zero", None)

    def test_privunit_normal_requires_privunit(self):
        from repro.ldp import BinaryRandomizedResponse
        from repro.scenario import DUMMIES

        with pytest.raises(ValidationError, match="privunit"):
            DUMMIES.build("privunit_normal", BinaryRandomizedResponse(1.0))

    def test_privunit_normal_yields_unit_scale_vectors(self):
        from repro.ldp import PrivUnit
        from repro.scenario import DUMMIES

        factory = DUMMIES.build("privunit_normal", PrivUnit(2.0, 8))
        dummy = factory(np.random.default_rng(0))
        assert dummy.shape == (8,)


class TestDummySpecInScenario:
    def test_round_trips_through_json(self):
        scenario = Scenario(
            graph=GraphSpec.of("complete", num_nodes=16),
            mechanism={"kind": "privunit",
                       "params": {"epsilon": 2.0, "dimension": 4}},
            values={"kind": "bimodal_unit_vectors",
                    "params": {"dimension": 4}},
            dummies={"kind": "privunit_normal", "params": {"mean": 5.0}},
            protocol="single",
            rounds=2,
        )
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_single_protocol_uses_the_custom_dummy(self):
        scenario = Scenario(
            graph=GraphSpec.of("complete", num_nodes=16),
            mechanism={"kind": "privunit",
                       "params": {"epsilon": 2.0, "dimension": 4}},
            values={"kind": "bimodal_unit_vectors",
                    "params": {"dimension": 4}},
            dummies={"kind": "privunit_normal"},
            protocol="single",
            rounds=3,
            seed=4,
        )
        result = run(scenario)
        if result.protocol_result.dummy_count:
            dummies = [
                report.payload
                for report in result.protocol_result.server_reports
                if report.origin == -1
            ]
            assert all(d.shape == (4,) for d in dummies)

    def test_dummies_inert_under_a_all(self):
        """A protocol axis can sweep both algorithms from one base."""
        scenario = Scenario(
            graph=GraphSpec.of("complete", num_nodes=16),
            mechanism={"kind": "privunit",
                       "params": {"epsilon": 2.0, "dimension": 4}},
            values={"kind": "bimodal_unit_vectors",
                    "params": {"dimension": 4}},
            dummies={"kind": "privunit_normal"},
            protocol="all",
            rounds=2,
        )
        result = run(scenario)
        assert result.protocol_result.dummy_count == 0

    def test_dotted_sweep_reaches_dummy_params(self):
        scenario = Scenario(
            graph=GraphSpec.of("complete", num_nodes=16),
            dummies={"kind": "privunit_normal"},
            protocol="single",
            rounds=2,
        )
        updated = scenario.updated(**{"dummies.mean": 7.5})
        assert updated.dummies.params["mean"] == 7.5
