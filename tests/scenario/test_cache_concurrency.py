"""Thread-safety of the process-wide graph cache.

The serving tier answers simultaneous bound queries from one hot
:data:`~repro.scenario.cache.GRAPH_CACHE`; the single-flight contract is
that concurrent requests for the same (graph spec, seed) run the
generator exactly once — the first caller builds, the rest wait on the
pending slot and count as memory hits.
"""

from __future__ import annotations

import threading

import pytest

from repro import api
from repro.scenario import GRAPH_CACHE, clear_graph_cache
from repro.scenario.cache import GraphCache
from repro.graphs.generators import cycle_graph

SCENARIO = {
    "graph": {"kind": "k_regular", "params": {"degree": 4, "num_nodes": 256}},
    "mechanism": {"kind": "rr", "params": {"epsilon": 1.0}},
    "rounds": 4,
    "seed": 21,
}


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_graph_cache()
    yield
    clear_graph_cache()


def _run_threads(workers, target):
    barrier = threading.Barrier(workers)
    errors = []

    def body():
        barrier.wait()
        try:
            target()
        except BaseException as error:  # noqa: BLE001 — collected
            errors.append(error)

    threads = [threading.Thread(target=body) for _ in range(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    return errors


class TestSingleFlight:
    def test_simultaneous_bounds_build_once(self):
        # The satellite acceptance test: two simultaneous bound requests
        # for the same (graph spec, seed) report exactly one build.
        before = api.cache_stats()
        scenario = api.parse_scenario(SCENARIO)
        errors = _run_threads(2, lambda: api.bound(scenario))
        assert not errors
        stats = api.cache_stats()
        assert stats["builds"] - before["builds"] == 1
        assert stats["memory_hits"] - before["memory_hits"] == 1

    def test_many_threads_still_one_build(self):
        before = api.cache_stats()
        scenario = api.parse_scenario(SCENARIO)
        errors = _run_threads(8, lambda: api.bound(scenario))
        assert not errors
        stats = api.cache_stats()
        assert stats["builds"] - before["builds"] == 1
        assert stats["memory_hits"] - before["memory_hits"] == 7

    def test_waiters_share_the_identical_bundle(self):
        cache = GraphCache()
        built = []
        bundles = []
        gate = threading.Event()

        def builder():
            built.append(1)
            gate.wait(timeout=30)  # hold the build so others queue up
            return cycle_graph(7), False

        def request():
            bundles.append(cache.bundle("k", builder))

        barrier = threading.Barrier(4 + 1)

        def body():
            barrier.wait()
            request()

        threads = [threading.Thread(target=body) for _ in range(4)]
        for thread in threads:
            thread.start()
        barrier.wait()     # all four are past the gate...
        gate.set()         # ...now let the single owner finish
        for thread in threads:
            thread.join(timeout=60)
        assert len(built) == 1
        assert len(bundles) == 4
        assert all(bundle is bundles[0] for bundle in bundles)
        assert cache.stats().builds == 1
        assert cache.stats().memory_hits == 3

    def test_build_failure_propagates_to_waiters_then_clears(self):
        cache = GraphCache()
        attempts = []

        def failing_builder():
            attempts.append(1)
            raise RuntimeError("generator exploded")

        errors = _run_threads(
            4, lambda: cache.bundle("k", failing_builder)
        )
        assert len(errors) == 4
        assert all("generator exploded" in str(error) for error in errors)
        # The failed pending slot is gone: a later request retries the
        # builder instead of replaying the stale error.
        with pytest.raises(RuntimeError):
            cache.bundle("k", failing_builder)
        assert len(attempts) >= 2

    def test_distinct_keys_build_independently(self):
        cache = GraphCache()

        def builder():
            return cycle_graph(5), False

        errors = _run_threads(
            4,
            lambda: [cache.bundle(f"k{i}", builder) for i in range(4)],
        )
        assert not errors
        assert cache.stats().builds == 4
        assert len(cache) == 4


class TestDerivativeLocking:
    def test_concurrent_spectral_summary_is_consistent(self):
        # Derivative memos (spectral summary, kernel samplers) are
        # computed under the bundle's lock; all threads must see one
        # object.
        scenario = api.parse_scenario(SCENARIO)
        api.bound(scenario)  # materialize the bundle
        results = []
        errors = _run_threads(
            4, lambda: results.append(api.stationary_bound(scenario))
        )
        assert not errors
        assert len({round(r.epsilon, 12) for r in results}) == 1

    def test_kernel_stats_counts_resident_bundles_once(self):
        scenario = api.parse_scenario(SCENARIO | {"rounds": 8})
        api.audit(scenario, trials=50)
        stats = GRAPH_CACHE.kernel_stats()
        assert stats["builds"] == 1
