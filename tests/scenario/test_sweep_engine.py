"""The sweep engine: shared graph cache, digests, registration replay,
and kernel-sampler memoization.

These are the contracts ISSUE 5 rebuilt ``repro.sweep`` around:

* each distinct (graph spec, seed) builds exactly once per host, pooled
  or not — asserted via the cache-hit counters;
* ``mode="run"`` points return slim digests unless ``results="full"``;
* runtime registry registrations replay into pool workers, and an
  unpicklable builder fails loudly *only* when the grid uses it;
* the auditor's kernel sampler memoizes per (graph spec, rounds,
  laziness) with bit-identical cached-vs-cold results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graphs.generators import cycle_graph
from repro.graphs.io import load_graph_npz, save_graph_npz
from repro.scenario import (
    GRAPHS,
    GraphSpec,
    MechanismSpec,
    RunDigest,
    Scenario,
    audit,
    clear_graph_cache,
    sweep,
)
from repro.scenario.runner import _bundle_for


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Counter assertions need an empty cache (and no disk tier)."""
    from repro.scenario import GRAPH_CACHE

    clear_graph_cache()
    GRAPH_CACHE.spill_dir = None
    yield
    clear_graph_cache()
    GRAPH_CACHE.spill_dir = None


def _base(**overrides) -> Scenario:
    kwargs = dict(
        graph=GraphSpec.of("k_regular", degree=4, num_nodes=64),
        mechanism=MechanismSpec.of("rr", epsilon=1.0),
        rounds=4,
        seed=3,
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


# ----------------------------------------------------------------------
# Custom kinds for the replay tests (module-level: picklable by
# reference, importable from pool workers).
# ----------------------------------------------------------------------
def _ring_builder(rng: np.random.Generator, *, num_nodes: int = 7):
    """An odd ring — cheap, ergodic, parameterized."""
    return cycle_graph(num_nodes)


def _ensure_ring_kind() -> None:
    if "sweep_test_ring" not in GRAPHS:
        GRAPHS.register("sweep_test_ring", example={"num_nodes": 7})(
            _ring_builder
        )


class TestGraphCacheSharing:
    def test_sequential_sweep_builds_graph_once(self):
        result = sweep(_base(), axis={"rounds": [1, 2, 3, 4]}, mode="bound")
        assert result.cache_stats.builds == 1
        assert result.cache_stats.memory_hits == 3

    def test_graph_axis_builds_each_distinct_graph_once(self):
        result = sweep(
            _base(),
            axis={"graph.degree": [4, 6], "rounds": [2, 3]},
            mode="bound",
        )
        assert result.cache_stats.builds == 2
        assert result.cache_stats.memory_hits == 2

    def test_pooled_sweep_builds_each_graph_once_per_host(self):
        """The acceptance contract: a pooled graph-axis sweep runs each
        generator exactly once on this host (parent warmup); workers
        are served from inheritance or disk."""
        result = sweep(
            _base(),
            axis={"graph.degree": [4, 6], "rounds": [2, 3]},
            mode="bound",
            workers=2,
        )
        assert result.cache_stats.builds == 2
        assert result.cache_stats.requests >= 6  # 2 warmups + 4 points

    def test_pooled_spawn_workers_load_from_disk(self):
        sequential = sweep(
            _base(), axis={"graph.degree": [4, 6]}, mode="bound"
        )
        clear_graph_cache()
        pooled = sweep(
            _base(),
            axis={"graph.degree": [4, 6]},
            mode="bound",
            workers=2,
            mp_context="spawn",
        )
        assert pooled.epsilons() == sequential.epsilons()
        # Parent built both; spawn workers (fresh processes) loaded the
        # spilled .npz instead of re-running the generator.
        assert pooled.cache_stats.builds == 2
        assert pooled.cache_stats.disk_hits >= 2

    def test_spill_dir_reused_across_sweeps(self, tmp_path):
        first = sweep(
            _base(),
            axis={"graph.degree": [4, 6]},
            mode="bound",
            workers=2,
            spill_dir=str(tmp_path),
        )
        assert first.cache_stats.builds == 2
        assert sorted(p.suffix for p in tmp_path.iterdir()) == [".npz", ".npz"]

    def test_persistent_spill_dir_survives_a_fresh_process(self, tmp_path):
        """A second process (simulated: cleared cache, no disk tier
        configured) must load the spilled graphs, not rebuild them."""
        from repro.scenario import GRAPH_CACHE

        sweep(
            _base(),
            axis={"graph.degree": [4, 6]},
            mode="bound",
            workers=2,
            spill_dir=str(tmp_path),
        )
        clear_graph_cache()
        GRAPH_CACHE.spill_dir = None
        again = sweep(
            _base(),
            axis={"graph.degree": [4, 6]},
            mode="bound",
            workers=2,
            spill_dir=str(tmp_path),
        )
        assert again.cache_stats.builds == 0
        assert again.cache_stats.disk_hits >= 2

    def test_sequential_sweep_honors_persistent_spill_dir(self, tmp_path):
        from repro.scenario import GRAPH_CACHE

        first = sweep(
            _base(),
            axis={"graph.degree": [4, 6]},
            mode="bound",
            spill_dir=str(tmp_path),
        )
        assert first.cache_stats.builds == 2
        assert len(list(tmp_path.iterdir())) == 2
        clear_graph_cache()
        GRAPH_CACHE.spill_dir = None
        again = sweep(
            _base(),
            axis={"graph.degree": [4, 6]},
            mode="bound",
            spill_dir=str(tmp_path),
        )
        assert again.cache_stats.builds == 0
        assert again.cache_stats.disk_hits == 2

    def test_pooled_stationary_bound_closed_form_builds_nothing(self):
        result = sweep(
            _base(),
            axis={"graph.num_nodes": [64, 128]},
            mode="stationary_bound",
            workers=2,
        )
        assert result.cache_stats.builds == 0

    def test_pooled_stationary_bound_materializing_kind_builds_once(self):
        """Kinds without a GRAPH_STATS closed form fall back to the
        materialized graph — the one-build-per-host contract must hold
        for them even in stationary_bound mode."""
        base = _base(
            graph=GraphSpec.of(
                "watts_strogatz",
                num_nodes=64,
                nearest_neighbors=4,
                rewire_probability=0.2,
            )
        )
        result = sweep(
            base,
            axis={"graph.num_nodes": [64, 96]},
            mode="stationary_bound",
            workers=2,
            mp_context="spawn",
        )
        assert result.cache_stats.builds == 2
        assert result.cache_stats.disk_hits >= 2

    def test_pooled_stationary_bound_mixes_stats_only_and_fallback_kinds(self):
        """A stats-only kind (gamma: no builder at all) must not be
        materialized just because another grid kind needs the warmup."""
        base = _base(graph=GraphSpec.of("gamma", gamma=1.0, num_nodes=1000))
        axis = {
            "graph": [
                {"kind": "gamma", "params": {"gamma": 1.0, "num_nodes": 1000}},
                {"kind": "watts_strogatz",
                 "params": {"num_nodes": 64, "nearest_neighbors": 4,
                            "rewire_probability": 0.2}},
            ]
        }
        sequential = sweep(base, axis=axis, mode="stationary_bound")
        clear_graph_cache()
        pooled = sweep(
            base, axis=axis, mode="stationary_bound", workers=2
        )
        assert pooled.epsilons() == sequential.epsilons()
        # Only the fallback kind (no closed form) materializes, once.
        assert pooled.cache_stats.builds == 1

    def test_seed_axis_shares_seed_independent_graphs(self):
        """A dataset spec with a pinned wiring seed builds the same
        graph for every scenario seed — the cache must share it."""
        base = _base(graph=GraphSpec.of("complete", num_nodes=64))
        result = sweep(base, axis={"seed": [0, 1, 2]}, mode="bound")
        assert result.cache_stats.builds == 1
        assert result.cache_stats.memory_hits == 2

    def test_seed_axis_rebuilds_seed_consuming_graphs(self):
        """k_regular draws its wiring from the seed stream: replicas
        are different graphs and must NOT be shared."""
        result = sweep(_base(), axis={"seed": [0, 1]}, mode="bound")
        assert result.cache_stats.builds == 2

    def test_seed_axis_rebuilds_churn_schedules(self):
        """The schedule builder consumes the graph stream via child
        SPAWNING (no direct draws) — the probe must catch that channel
        or churn replicas would wrongly alias."""
        from repro.scenario import build_graph

        base = _base(
            graph={
                "kind": "schedule",
                "params": {
                    "base": {"kind": "k_regular",
                             "params": {"degree": 4, "num_nodes": 32}},
                    "phases": 2,
                },
            },
            rounds=4,
        )
        first = build_graph(base)
        second = build_graph(base.updated(seed=base.seed + 1))
        assert first is not second
        assert not np.array_equal(
            first.graph_at(0).indices, second.graph_at(0).indices
        )

    def test_run_mode_pooled_digest_epsilons_match_sequential(self):
        axis = {"rounds": [2, 4]}
        sequential = sweep(_base(), axis=axis, mode="run")
        pooled = sweep(
            _base(), axis=axis, mode="run", workers=2, mp_context="spawn"
        )
        assert pooled.epsilons() == sequential.epsilons()
        assert all(isinstance(p.outcome, RunDigest) for p in pooled)


class TestGraphNpzRoundTrip:
    def test_round_trip_preserves_csr(self, tmp_path):
        graph = _bundle_for(_base()).graph
        path = tmp_path / "graph.npz"
        save_graph_npz(graph, path)
        loaded = load_graph_npz(path)
        assert loaded.num_nodes == graph.num_nodes
        np.testing.assert_array_equal(loaded.indptr, graph.indptr)
        np.testing.assert_array_equal(loaded.indices, graph.indices)

    def test_missing_file_is_loud(self, tmp_path):
        with pytest.raises(ValidationError, match="no such file"):
            load_graph_npz(tmp_path / "nope.npz")

    def test_non_graph_npz_is_loud(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, payload=np.arange(3))
        with pytest.raises(ValidationError, match="not a graph cache"):
            load_graph_npz(path)


class TestRegistrationReplay:
    def test_custom_graph_kind_sweeps_under_fork_pool(self):
        """The ROADMAP PR 2 follow-up regression: a runtime-registered
        kind swept under workers=2."""
        _ensure_ring_kind()
        base = _base(graph=GraphSpec.of("sweep_test_ring", num_nodes=7))
        axis = {"graph.num_nodes": [7, 9]}
        sequential = sweep(base, axis=axis, mode="bound")
        pooled = sweep(base, axis=axis, mode="bound", workers=2)
        assert pooled.epsilons() == sequential.epsilons()

    def test_custom_graph_kind_sweeps_under_spawn_pool(self):
        """Spawn workers import the registries fresh — the runtime kind
        only exists for them through the replay payload."""
        _ensure_ring_kind()
        base = _base(graph=GraphSpec.of("sweep_test_ring", num_nodes=7))
        axis = {"graph.num_nodes": [7, 9]}
        sequential = sweep(base, axis=axis, mode="bound")
        pooled = sweep(
            base, axis=axis, mode="bound", workers=2, mp_context="spawn"
        )
        assert pooled.epsilons() == sequential.epsilons()

    def test_unpicklable_builder_in_use_fails_loudly_under_spawn(self):
        if "sweep_test_unpicklable" not in GRAPHS:
            GRAPHS.register("sweep_test_unpicklable", example={})(
                lambda rng, *, num_nodes=7: cycle_graph(num_nodes)
            )
        base = _base(graph=GraphSpec.of("sweep_test_unpicklable"))
        with pytest.raises(ValidationError, match="not picklable"):
            sweep(
                base,
                axis={"rounds": [1, 2]},
                mode="bound",
                workers=2,
                mp_context="spawn",
            )

    def test_unpicklable_builder_still_works_under_fork(self):
        """Fork workers inherit the registries, so closure builders keep
        working there (pre-engine behavior)."""
        if "sweep_test_unpicklable" not in GRAPHS:
            GRAPHS.register("sweep_test_unpicklable", example={})(
                lambda rng, *, num_nodes=7: cycle_graph(num_nodes)
            )
        base = _base(graph=GraphSpec.of("sweep_test_unpicklable"))
        result = sweep(
            base,
            axis={"rounds": [1, 2]},
            mode="bound",
            workers=2,
            mp_context="fork",
        )
        assert len(result) == 2

    def test_unpicklable_stats_builder_ignored_outside_stationary_mode(self):
        """A closure GRAPH_STATS registration for a kind the grid uses
        must only matter when the mode actually consults GRAPH_STATS."""
        from repro.scenario import GRAPH_STATS

        _ensure_ring_kind()
        if "sweep_test_ring" not in GRAPH_STATS:
            GRAPH_STATS.register("sweep_test_ring", example={})(
                lambda *, num_nodes=7: None
            )
        base = _base(graph=GraphSpec.of("sweep_test_ring", num_nodes=7))
        result = sweep(
            base,
            axis={"rounds": [1, 2]},
            mode="bound",
            workers=2,
            mp_context="spawn",
        )
        assert len(result) == 2
        with pytest.raises(ValidationError, match="not picklable"):
            sweep(
                base,
                axis={"rounds": [1, 2]},
                mode="stationary_bound",
                workers=2,
                mp_context="spawn",
            )

    def test_unused_unpicklable_registration_does_not_poison_sweeps(self):
        if "sweep_test_unpicklable" not in GRAPHS:
            GRAPHS.register("sweep_test_unpicklable", example={})(
                lambda rng, *, num_nodes=7: cycle_graph(num_nodes)
            )
        # The grid never references the broken kind -> no error, on any
        # start method.
        result = sweep(
            _base(),
            axis={"rounds": [1, 2]},
            mode="bound",
            workers=2,
            mp_context="spawn",
        )
        assert len(result) == 2


class TestKernelSamplerMemo:
    def _audit_scenario(self, rounds=10):
        return Scenario(
            graph=GraphSpec.of("complete", num_nodes=48),
            mechanism=MechanismSpec.of("rr", epsilon=1.0),
            rounds=rounds,
            audit={"kind": "weighted_evidence", "params": {"trials": 60}},
            seed=5,
        )

    def test_repeated_audits_reuse_the_sampler(self):
        scenario = self._audit_scenario()
        first = audit(scenario, method="kernel")
        bundle = _bundle_for(scenario)
        assert (bundle.kernel_builds, bundle.kernel_hits) == (1, 0)
        second = audit(scenario, method="kernel")
        assert (bundle.kernel_builds, bundle.kernel_hits) == (1, 1)
        assert first == second

    def test_cached_audit_bit_identical_to_cold(self):
        """The ROADMAP PR 3 follow-up acceptance: memoized sampler ==
        cold-built sampler, bit for bit."""
        scenario = self._audit_scenario()
        audit(scenario, method="kernel")          # warm the memo
        warm = audit(scenario, method="kernel")   # served from memo
        clear_graph_cache()                       # force a cold rebuild
        cold = audit(scenario, method="kernel")
        assert warm.epsilon_lower_bound == cold.epsilon_lower_bound
        assert warm.best_threshold == cold.best_threshold
        assert warm == cold

    def test_rounds_axis_extends_power_chain_bit_identically(self):
        """An ascending rounds audit seeds M^t from the cached longest
        power; the result must equal a from-scratch build."""
        warm_results = [
            audit(self._audit_scenario(rounds=rounds), method="kernel")
            for rounds in (8, 12, 16)
        ]
        cold_results = []
        for rounds in (8, 12, 16):
            clear_graph_cache()
            cold_results.append(
                audit(self._audit_scenario(rounds=rounds), method="kernel")
            )
        for warm, cold in zip(warm_results, cold_results):
            assert warm == cold

    def test_audit_sweep_over_trials_builds_one_kernel(self):
        scenario = self._audit_scenario()
        result = sweep(
            scenario, axis={"audit.trials": [40, 60, 80]}, mode="audit"
        )
        bundle = _bundle_for(scenario)
        assert len(result) == 3
        assert bundle.kernel_builds == 1
        assert bundle.kernel_hits == 2

    def test_distinct_laziness_builds_distinct_samplers(self):
        scenario = self._audit_scenario()
        audit(scenario, method="kernel")
        audit(scenario.updated(laziness=0.2), method="kernel")
        bundle = _bundle_for(scenario)
        assert bundle.kernel_builds == 2

    def test_laziness_axis_does_not_pin_unbounded_power_chains(self):
        """Each power chain holds a dense (n, n) matrix; evicting a
        sampler must release its laziness's chain too."""
        scenario = self._audit_scenario()
        for laziness in (0.0, 0.1, 0.2, 0.3):
            audit(scenario.updated(laziness=laziness), method="kernel")
        bundle = _bundle_for(scenario)
        assert len(bundle._kernel_powers) <= bundle._KERNEL_SAMPLER_CAP


class TestRunDigest:
    def test_digest_mirrors_full_result_summary(self):
        scenario = _base()
        full = sweep(
            scenario, axis={"rounds": [3]}, mode="run", results="full"
        ).points[0].outcome
        digest = sweep(
            scenario, axis={"rounds": [3]}, mode="run"
        ).points[0].outcome
        assert isinstance(digest, RunDigest)
        assert digest.central_epsilon == full.central_epsilon
        assert digest.empirical_epsilon == full.empirical_epsilon
        assert digest.num_users == full.protocol_result.num_users
        assert digest.dummy_count == full.protocol_result.dummy_count
        meters = full.protocol_result.meters
        assert digest.total_messages_sent == int(meters.total_messages_sent())
        assert digest.max_messages_sent == int(meters.max_messages_sent())
        assert digest.max_peak_items == int(meters.max_peak_items())

    def test_digest_carries_no_per_user_payloads(self):
        digest = sweep(
            _base(), axis={"rounds": [2]}, mode="run"
        ).points[0].outcome
        assert not hasattr(digest, "protocol_result")
        assert not hasattr(digest, "graph")

    def test_digest_summary_is_jsonable(self):
        import json

        digest = sweep(
            _base(), axis={"rounds": [2]}, mode="run"
        ).points[0].outcome
        parsed = json.loads(json.dumps(digest.summary()))
        assert parsed["num_users"] == 64
        assert parsed["central_epsilon"] == digest.central_epsilon
