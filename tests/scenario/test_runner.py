"""Acceptance: a seeded ``repro.run`` reproduces the hand-wired pipeline
bit for bit — reports, meters, and accounting — on both engines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amplification.network_shuffle import (
    epsilon_all_stationary,
    epsilon_all_symmetric,
    epsilon_from_report_sizes,
    epsilon_single_stationary,
)
from repro.exceptions import ValidationError
from repro.graphs.generators import random_regular_graph
from repro.graphs.spectral import spectral_summary
from repro.graphs.walks import position_distribution
from repro.ldp import BinaryRandomizedResponse
from repro.protocols.all_protocol import run_all_protocol
from repro.protocols.single_protocol import run_single_protocol
from repro.scenario import (
    GraphSpec,
    MechanismSpec,
    Scenario,
    ValuesSpec,
    bound,
    run,
    seed_streams,
)

_N = 64
_DEGREE = 4
_ROUNDS = 6
_SEED = 2024
_EPSILON0 = 1.0
_DELTA = 1e-6


def _scenario(protocol: str, engine: str, **overrides) -> Scenario:
    kwargs = dict(
        graph=GraphSpec.of("k_regular", degree=_DEGREE, num_nodes=_N),
        mechanism=MechanismSpec.of("rr", epsilon=_EPSILON0),
        values=ValuesSpec.of("bernoulli", rate=0.4),
        protocol=protocol,
        rounds=_ROUNDS,
        engine=engine,
        delta=_DELTA,
        delta2=_DELTA,
        seed=_SEED,
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


def _hand_wired(protocol: str, engine: str):
    """The pre-Scenario pipeline, drawing RNGs per the documented contract."""
    streams = seed_streams(_SEED)
    graph = random_regular_graph(_DEGREE, _N, rng=streams.graph)
    values = (streams.values.random(_N) < 0.4).astype(int).tolist()
    randomizer = BinaryRandomizedResponse(_EPSILON0)
    runner = run_all_protocol if protocol == "all" else run_single_protocol
    result = runner(
        graph, _ROUNDS,
        values=values, randomizer=randomizer,
        engine=engine, rng=streams.protocol,
    )
    summary = spectral_summary(graph)
    sum_squared = summary.sum_squared_bound(_ROUNDS)
    if protocol == "all":
        theorem = epsilon_all_stationary(_EPSILON0, _N, sum_squared, _DELTA, _DELTA)
        # Theorem 6.1 empirical accounting applies to A_all only (the
        # A_single adversary never observes the allocation).
        empirical = epsilon_from_report_sizes(_EPSILON0, result.allocation, _DELTA)
    else:
        theorem = epsilon_single_stationary(_EPSILON0, _N, sum_squared, _DELTA)
        empirical = None
    return result, theorem, empirical


@pytest.mark.parametrize("engine", ["fast", "faithful", "compiled"])
@pytest.mark.parametrize("protocol", ["all", "single"])
class TestHandWiredEquivalence:
    def test_reports_meters_and_accounting_identical(self, protocol, engine):
        expected, expected_bound, expected_empirical = _hand_wired(protocol, engine)
        got = run(_scenario(protocol, engine))

        # Simulation: identical reports (origin AND payload), allocation.
        assert [r.origin for r in got.protocol_result.server_reports] == [
            r.origin for r in expected.server_reports
        ]
        assert got.protocol_result.payloads() == expected.payloads()
        np.testing.assert_array_equal(
            got.protocol_result.allocation, expected.allocation
        )
        np.testing.assert_array_equal(
            got.protocol_result.delivered_by, expected.delivered_by
        )
        assert got.protocol_result.dummy_count == expected.dummy_count

        # Meters: identical per-entity traffic.
        n = expected.num_users
        assert [got.meters.meter(u).messages_sent for u in range(n)] == [
            expected.meters.meter(u).messages_sent for u in range(n)
        ]
        assert got.meters.max_peak_items() == expected.meters.max_peak_items()

        # Accounting: identical amplified epsilon, exactly.
        assert got.bound.epsilon == expected_bound.epsilon
        assert got.bound.delta == expected_bound.delta
        assert got.bound.theorem == expected_bound.theorem
        assert got.empirical_epsilon == expected_empirical

    def test_engines_agree_with_each_other(self, protocol, engine):
        reference = run(_scenario(protocol, "fast"))
        other = run(_scenario(protocol, engine))
        assert [r.origin for r in other.protocol_result.server_reports] == [
            r.origin for r in reference.protocol_result.server_reports
        ]
        assert other.central_epsilon == reference.central_epsilon


class TestRunBehavior:
    def test_rounds_default_to_mixing_time(self):
        scenario = _scenario("all", "fast", rounds=None)
        result = run(scenario)
        from repro.scenario import graph_summary

        assert result.rounds == graph_summary(scenario).mixing_time

    def test_symmetric_analysis_matches_theorem_54(self):
        scenario = _scenario("all", "fast", analysis="symmetric")
        result = run(scenario)
        distribution = position_distribution(result.graph, 0, _ROUNDS)
        expected = epsilon_all_symmetric(
            _EPSILON0, _N, distribution, _DELTA, _DELTA
        )
        assert result.bound.epsilon == expected.epsilon
        assert "5.4" in result.bound.theorem

    def test_single_protocol_has_no_empirical_epsilon(self):
        """Theorem 6.1 accounts the A_all adversary; A_single hides the
        allocation, so no empirical number is surfaced."""
        result = run(_scenario("single", "fast"))
        assert result.empirical_epsilon is None
        assert result.bound is not None

    def test_no_budget_skips_accounting(self):
        result = run(_scenario("all", "fast", mechanism=None, epsilon0=None))
        assert result.bound is None
        assert result.empirical_epsilon is None
        assert result.central_epsilon is None

    def test_epsilon0_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="epsilon0"):
            run(_scenario("all", "fast", epsilon0=2.0))

    def test_laziness_reaches_the_network(self):
        """With heavy laziness, reports spread across fewer holders."""
        still = run(_scenario("all", "fast", laziness=0.95))
        mobile = run(_scenario("all", "fast"))
        assert (still.protocol_result.allocation > 0).sum() >= (
            (mobile.protocol_result.allocation > 0).sum()
        )

    def test_faults_spec_equivalent_to_laziness(self):
        lazy = run(_scenario("all", "fast", laziness=0.3))
        faulty = run(_scenario(
            "all", "fast",
            faults={"kind": "independent", "params": {"probability": 0.3}},
        ))
        np.testing.assert_array_equal(
            lazy.protocol_result.allocation, faulty.protocol_result.allocation
        )

    def test_values_materialized_per_user(self):
        result = run(_scenario("all", "fast"))
        assert len(result.values) == _N
        assert set(result.values) <= {0, 1}

    def test_summary_is_jsonable(self):
        import json

        digest = run(_scenario("single", "fast")).summary()
        text = json.dumps(digest)
        assert "central_epsilon" in text

    def test_bound_without_simulation_matches_run(self):
        scenario = _scenario("all", "fast")
        assert bound(scenario).epsilon == run(scenario).bound.epsilon

    def test_delta2_reaches_single_protocol_approx_accounting(self):
        """An approximate-DP mechanism's delta' must include the
        scenario's delta2 for A_single too (Theorem 5.5 approx path)."""
        # Small eps0 keeps the n(e^eps+1)delta1 term of delta' tiny so
        # the delta2 contribution is visible; delta0 must satisfy the
        # Lemma 5.2 clone condition (~2.3e-12 here).
        gaussian = {"kind": "gaussian", "params": {"epsilon": 0.01, "delta": 1e-25}}
        small = bound(_scenario("single", "fast", mechanism=gaussian,
                                delta2=1e-8))
        large = bound(_scenario("single", "fast", mechanism=gaussian,
                                delta2=1e-3))
        assert large.epsilon == small.epsilon
        assert large.delta - small.delta == pytest.approx(1e-3 - 1e-8)


class TestAccountingSoundness:
    """Faults/laziness must reach the privacy accounting, not just the
    simulation — a lazy walk mixes slower, so the bound must be larger."""

    def test_stationary_bound_accounts_for_laziness(self):
        healthy = bound(_scenario("all", "fast"))
        lazy = bound(_scenario("all", "fast", laziness=0.5))
        assert lazy.epsilon > healthy.epsilon

    def test_symmetric_bound_accounts_for_laziness(self):
        healthy = bound(
            _scenario("all", "fast", analysis="symmetric"), rounds=12
        )
        lazy = bound(
            _scenario("all", "fast", analysis="symmetric", laziness=0.5),
            rounds=12,
        )
        # The lazy walk has spread less at the same t: larger collision
        # mass, weaker guarantee.
        assert lazy.sum_squared > healthy.sum_squared
        assert lazy.epsilon > healthy.epsilon

    def test_independent_faults_priced_like_laziness(self):
        lazy = bound(_scenario("all", "fast", laziness=0.3))
        faulty = bound(_scenario(
            "all", "fast",
            faults={"kind": "independent", "params": {"probability": 0.3}},
        ))
        assert faulty.epsilon == lazy.epsilon

    def test_unaccountable_fault_model_refused(self):
        from repro.scenario import stationary_bound

        scenario = _scenario(
            "all", "fast",
            faults={"kind": "adversarial", "params": {"offline_users": [0, 1]}},
        )
        for accountant in (bound, run, stationary_bound):
            with pytest.raises(ValidationError, match="no\\s+lazy-walk equivalent"):
                accountant(scenario)

    def test_custom_fault_model_with_dropout_probability_accountable(self):
        """A registered model declaring dropout_probability prices like
        the lazy walk — the extension point for custom fault models."""
        from repro.netsim.faults import IndependentDropout
        from repro.scenario import FAULTS

        kind = "every_other_round_test_only"
        if kind not in FAULTS:
            @FAULTS.register(kind, example={})
            class _Custom(IndependentDropout):  # noqa: F811
                def __init__(self):
                    super().__init__(0.3)

        custom = bound(_scenario("all", "fast", faults={"kind": kind}))
        lazy = bound(_scenario("all", "fast", laziness=0.3))
        assert custom.epsilon == lazy.epsilon

    def test_adversarial_faults_fine_without_accounting(self):
        result = run(_scenario(
            "all", "fast",
            mechanism=None,
            faults={"kind": "adversarial", "params": {"offline_users": [0, 1]}},
        ))
        assert result.bound is None

    def test_symmetric_analysis_requires_regular_graph(self):
        """Theorem 5.4/5.6 from node 0's walk is only valid when every
        user's distribution is a relabeling of it (k-regular graphs)."""
        star = Scenario(
            graph={"kind": "star", "params": {"num_leaves": 31}},
            epsilon0=_EPSILON0,
            analysis="symmetric",
            rounds=8,
        )
        with pytest.raises(ValidationError, match="k-regular"):
            bound(star)
        with pytest.raises(ValidationError, match="k-regular"):
            run(star)

    def test_epsilon0_mismatch_fails_before_simulating(self, monkeypatch):
        import repro.scenario.runner as runner_module

        def _boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("simulation ran before validation")

        monkeypatch.setattr(runner_module, "run_all_protocol", _boom)
        with pytest.raises(ValidationError, match="epsilon0"):
            run(_scenario("all", "fast", epsilon0=2.0))


class TestWalkCache:
    def test_incremental_sweep_matches_from_scratch(self):
        """Ascending-rounds sweeps reuse the walk cache bit-for-bit."""
        from repro.scenario import clear_graph_cache, sweep

        base = _scenario("all", "fast", analysis="symmetric")
        swept = sweep(base, axis={"rounds": [2, 5, 9]}, mode="bound")
        fresh = []
        for steps in (2, 5, 9):
            clear_graph_cache()  # force a cold, from-scratch walk
            fresh.append(bound(base, rounds=steps).epsilon)
        assert swept.epsilons() == fresh

    def test_descending_request_recomputes(self):
        base = _scenario("all", "fast", analysis="symmetric")
        high = bound(base, rounds=9).epsilon
        low = bound(base, rounds=2).epsilon
        from repro.scenario import clear_graph_cache

        clear_graph_cache()
        assert bound(base, rounds=2).epsilon == low
        assert bound(base, rounds=9).epsilon == high
