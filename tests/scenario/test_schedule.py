"""Schedule scenarios end to end: spec, run, bound, audit, sweep.

The ``schedule`` graph-spec kind materializes a
:class:`~repro.graphs.dynamic.DynamicGraphSchedule`; this file is the
acceptance oracle that a time-varying workload rides every entry point
of the declarative API — and that the unsound shortcuts (stationarity,
symmetric analysis, default mixing-time rounds, kernel audit engine)
are refused loudly rather than silently mispriced.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.amplification.network_shuffle import epsilon_all_stationary
from repro.exceptions import ValidationError
from repro.graphs.dynamic import (
    DynamicGraphSchedule,
    collision_profile_on_schedule,
)
from repro.scenario import (
    GRAPHS,
    Scenario,
    audit,
    bound,
    build_graph,
    clear_graph_cache,
    profile_policy,
    run,
    stationary_bound,
    sweep,
)

_SUB_SPECS = [
    {"kind": "k_regular", "params": {"degree": 4, "num_nodes": 64}},
    {"kind": "k_regular", "params": {"degree": 6, "num_nodes": 64}},
]


def _schedule_scenario(**overrides) -> Scenario:
    payload = dict(
        graph={"kind": "schedule", "params": {"graphs": _SUB_SPECS}},
        mechanism={"kind": "rr", "params": {"epsilon": 1.0}},
        values={"kind": "bernoulli", "params": {"rate": 0.4}},
        rounds=6,
        seed=3,
    )
    payload.update(overrides)
    return Scenario(**payload)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_graph_cache()
    yield
    clear_graph_cache()


class TestScheduleSpec:
    def test_json_round_trip(self):
        scenario = _schedule_scenario()
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_epoch_selector_round_trips_and_builds(self):
        scenario = _schedule_scenario(
            graph={
                "kind": "schedule",
                "params": {"graphs": _SUB_SPECS, "selector": "epoch", "block": 3},
            }
        )
        assert Scenario.from_json(scenario.to_json()) == scenario
        schedule = build_graph(scenario)
        assert schedule.graph_at(0) is schedule.graph_at(2)
        assert schedule.graph_at(3) is not schedule.graph_at(2)
        assert schedule.graph_at(6) is schedule.graph_at(0)

    def test_round_robin_is_default(self):
        schedule = build_graph(_schedule_scenario())
        assert isinstance(schedule, DynamicGraphSchedule)
        assert schedule.graph_at(0) is schedule.graph_at(2)
        assert schedule.graph_at(0) is not schedule.graph_at(1)

    def test_churn_builds_distinct_phases(self):
        scenario = _schedule_scenario(
            graph={
                "kind": "schedule",
                "params": {
                    "base": {
                        "kind": "k_regular",
                        "params": {"degree": 4, "num_nodes": 64},
                    },
                    "phases": 3,
                },
            }
        )
        schedule = build_graph(scenario)
        assert schedule.num_graphs == 3
        edge_sets = {
            tuple(schedule.graph_at(i).indices.tolist()) for i in range(3)
        }
        assert len(edge_sets) == 3  # seeded re-draws: real churn

    def test_churn_is_seed_deterministic(self):
        scenario = _schedule_scenario(
            graph={
                "kind": "schedule",
                "params": {
                    "base": {
                        "kind": "k_regular",
                        "params": {"degree": 4, "num_nodes": 64},
                    },
                    "phases": 2,
                },
            }
        )
        first = build_graph(scenario)
        clear_graph_cache()
        second = build_graph(scenario)
        for index in range(2):
            np.testing.assert_array_equal(
                first.graph_at(index).indices, second.graph_at(index).indices
            )

    def test_sweepable_dotted_params(self):
        scenario = _schedule_scenario(
            graph={
                "kind": "schedule",
                "params": {"graphs": _SUB_SPECS, "selector": "epoch", "block": 1},
            }
        )
        updated = scenario.updated(**{"graph.block": 4})
        assert updated.graph.params["block"] == 4

    @pytest.mark.parametrize(
        "params, match",
        [
            ({}, "either 'graphs'"),
            ({"graphs": _SUB_SPECS, "base": _SUB_SPECS[0], "phases": 2},
             "either 'graphs'"),
            ({"graphs": []}, "non-empty"),
            ({"graphs": _SUB_SPECS, "selector": "lunar"}, "selector"),
            ({"graphs": [{"kind": "schedule",
                          "params": {"graphs": _SUB_SPECS}}]}, "nest"),
            ({"base": _SUB_SPECS[0], "phases": 0}, "phases"),
            ({"graphs": _SUB_SPECS, "block": 0}, "block"),
            # Contradictory knobs fail loudly instead of being ignored.
            ({"graphs": _SUB_SPECS, "phases": 2}, "phases"),
            ({"graphs": _SUB_SPECS, "selector": "round_robin", "block": 4},
             "block"),
        ],
    )
    def test_builder_validation(self, params, match):
        with pytest.raises(ValidationError, match=match):
            GRAPHS.build("schedule", np.random.default_rng(0), **params)

    def test_mismatched_sub_graph_sizes_rejected(self):
        with pytest.raises(ValidationError, match="node count"):
            GRAPHS.build(
                "schedule",
                np.random.default_rng(0),
                graphs=[
                    {"kind": "complete", "params": {"num_nodes": 8}},
                    {"kind": "complete", "params": {"num_nodes": 9}},
                ],
            )


class TestScheduleRun:
    def test_runs_end_to_end_with_accounting(self):
        result = run(_schedule_scenario())
        assert result.rounds == 6
        assert result.central_epsilon is not None
        assert result.empirical_epsilon is not None
        assert len(result.payloads()) == 64

    def test_engines_bit_identical_on_schedules(self):
        fast = run(_schedule_scenario())
        for engine in ("faithful", "compiled"):
            other = run(_schedule_scenario(engine=engine))
            np.testing.assert_array_equal(
                fast.protocol_result.allocation,
                other.protocol_result.allocation,
            )
            assert [
                r.origin for r in fast.protocol_result.server_reports
            ] == [r.origin for r in other.protocol_result.server_reports]
            assert fast.central_epsilon == other.central_epsilon

    def test_single_protocol_runs_on_schedule(self):
        result = run(_schedule_scenario(protocol="single"))
        assert result.protocol_result.protocol == "single"
        assert len(result.protocol_result.server_reports) == 64

    def test_laziness_supported(self):
        result = run(_schedule_scenario(laziness=0.3))
        assert result.central_epsilon is not None

    def test_rounds_required(self):
        with pytest.raises(ValidationError, match="mixing time"):
            run(_schedule_scenario(rounds=None))


class TestScheduleBound:
    def test_bound_uses_exact_worst_user_collision(self):
        scenario = _schedule_scenario()
        schedule = build_graph(scenario)
        collision = float(collision_profile_on_schedule(schedule, 6).max())
        expected = epsilon_all_stationary(
            1.0, 64, collision, scenario.delta, scenario.delta2
        )
        assert bound(scenario).epsilon == expected.epsilon

    def test_incremental_rounds_cache_is_exact(self):
        """An ascending-rounds sweep (cached incremental profile) must
        equal a cold evaluation at the final round count."""
        scenario = _schedule_scenario()
        bound(scenario, rounds=3)
        warm = bound(scenario, rounds=9)
        clear_graph_cache()
        cold = bound(scenario, rounds=9)
        assert warm.epsilon == cold.epsilon

    def test_descending_rounds_do_not_corrupt_cache(self):
        scenario = _schedule_scenario()
        bound(scenario, rounds=8)
        shorter = bound(scenario, rounds=2)
        clear_graph_cache()
        cold = bound(scenario, rounds=2)
        assert shorter.epsilon == cold.epsilon

    def test_schedule_of_one_never_beats_spectral_bound(self):
        """Exact collision <= the Equation 7 spectral *bound*, so the
        schedule epsilon is at most the static one."""
        sub = {"kind": "k_regular", "params": {"degree": 4, "num_nodes": 64}}
        dynamic = bound(_schedule_scenario(
            graph={"kind": "schedule", "params": {"graphs": [sub]}}
        ))
        static = bound(_schedule_scenario(graph=sub))
        assert dynamic.epsilon <= static.epsilon + 1e-12

    def test_stationary_bound_refused(self):
        with pytest.raises(ValidationError, match="stationarity|stationary"):
            stationary_bound(_schedule_scenario())

    def test_symmetric_analysis_refused(self):
        with pytest.raises(ValidationError, match="symmetric"):
            bound(_schedule_scenario(analysis="symmetric"))

    def test_oversized_schedule_escalates_to_blocked(self):
        """The old 4096-node cap is gone: a schedule whose dense
        profile exceeds the memory budget silently escalates to
        blocked/spilled accounting and still prices exactly."""
        scenario = _schedule_scenario(
            graph={
                "kind": "schedule",
                "params": {
                    "graphs": [
                        {"kind": "k_regular",
                         "params": {"degree": 4, "num_nodes": 5000}},
                    ]
                },
            },
            rounds=2,
        )
        with profile_policy(memory_budget=2 * 1024 * 1024):
            result = bound(scenario)
        assert result.accounting["strategy"] == "blocked"
        assert result.accounting["exact"] is True
        assert result.epsilon > 0.0

    def test_explicit_dense_over_budget_is_the_only_refusal(self):
        scenario = _schedule_scenario(rounds=2)
        with profile_policy(
            memory_budget=16 * 1024, strategy="dense"
        ), pytest.raises(ValidationError, match="profile memory budget"):
            bound(scenario)


class TestScheduleAudit:
    def test_audit_runs_on_schedule(self):
        result = audit(_schedule_scenario(), trials=200)
        assert result.trials == 200
        assert result.epsilon_lower_bound >= 0.0

    def test_kernel_method_refused(self):
        with pytest.raises(ValidationError, match="kernel"):
            audit(_schedule_scenario(), trials=200, method="kernel")

    def test_loop_method_supported(self):
        result = audit(_schedule_scenario(), trials=50, method="loop")
        assert result.epsilon_lower_bound >= 0.0

    def test_topk_statistic_on_schedule(self):
        scenario = _schedule_scenario(
            audit={"kind": "topk_evidence", "params": {"top_k": 4}}
        )
        result = audit(scenario, trials=200)
        assert result.epsilon_lower_bound >= 0.0

    def test_amplification_visible_at_t0_vs_mixed(self):
        """The schedule audit reproduces the paper's headline shape:
        raw RR at t=0, collapsed loss after mixing rounds."""
        scenario = _schedule_scenario(
            mechanism={"kind": "rr", "params": {"epsilon": 3.0}}
        )
        raw = audit(scenario, trials=400, rounds=0)
        mixed = audit(scenario, trials=400, rounds=12)
        assert raw.epsilon_lower_bound > 1.0
        assert mixed.epsilon_lower_bound < raw.epsilon_lower_bound


class TestScheduleSweep:
    def test_bound_sweep_over_rounds(self):
        result = sweep(
            _schedule_scenario(), axis={"rounds": [2, 4, 8]}, mode="bound"
        )
        epsilons = result.epsilons()
        assert len(epsilons) == 3
        # More scheduled mixing never hurts on these ergodic phases.
        assert epsilons[0] >= epsilons[-1]

    def test_run_sweep_over_schedule_block(self):
        scenario = _schedule_scenario(
            graph={
                "kind": "schedule",
                "params": {"graphs": _SUB_SPECS, "selector": "epoch", "block": 1},
            }
        )
        result = sweep(scenario, axis={"graph.block": [1, 3]}, mode="run")
        assert len(result) == 2
        assert all(point.epsilon is not None for point in result)

    def test_audit_sweep_on_schedule(self):
        scenario = _schedule_scenario(
            audit={"kind": "weighted_evidence",
                   "params": {"trials": 100}}
        )
        result = sweep(scenario, axis={"rounds": [1, 4]}, mode="audit")
        assert len(result) == 2

    def test_built_schedule_is_picklable(self):
        """Pooled sweeps pickle RunResults (which carry the schedule)
        back from workers — the epoch selector must not be a lambda."""
        import pickle

        scenario = _schedule_scenario(
            graph={
                "kind": "schedule",
                "params": {"graphs": _SUB_SPECS, "selector": "epoch", "block": 3},
            }
        )
        schedule = build_graph(scenario)
        clone = pickle.loads(pickle.dumps(schedule))
        for round_index in range(7):
            assert (
                clone.graph_at(round_index).num_edges
                == schedule.graph_at(round_index).num_edges
            )
        result = pickle.loads(pickle.dumps(run(scenario)))
        assert result.central_epsilon is not None

    def test_pooled_run_sweep_on_epoch_schedule(self):
        """The workers>=2 path that crashed pre-fix: RunResults carrying
        an epoch schedule must round-trip through the process pool."""
        scenario = _schedule_scenario(
            graph={
                "kind": "schedule",
                "params": {"graphs": _SUB_SPECS, "selector": "epoch", "block": 2},
            }
        )
        result = sweep(
            scenario, axis={"rounds": [2, 4]}, mode="run", workers=2
        )
        assert len(result) == 2
        assert all(point.epsilon is not None for point in result)
