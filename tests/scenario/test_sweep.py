"""Sweep expansion and execution (sequential + process pool)."""

from __future__ import annotations

import pytest

from repro.amplification.network_shuffle import NetworkShuffleBound
from repro.exceptions import ValidationError
from repro.scenario import (
    GraphSpec,
    MechanismSpec,
    RunDigest,
    RunResult,
    Scenario,
    sweep,
    sweep_scenarios,
)


def _base(**overrides) -> Scenario:
    kwargs = dict(
        graph=GraphSpec.of("k_regular", degree=4, num_nodes=64),
        mechanism=MechanismSpec.of("rr", epsilon=1.0),
        rounds=4,
        seed=1,
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


class TestExpansion:
    def test_grid_order_last_axis_fastest(self):
        grid = sweep_scenarios(
            _base(), {"rounds": [2, 4], "graph.degree": [4, 6]}
        )
        coords = [coordinates for coordinates, _ in grid]
        assert coords == [
            {"rounds": 2, "graph.degree": 4},
            {"rounds": 2, "graph.degree": 6},
            {"rounds": 4, "graph.degree": 4},
            {"rounds": 4, "graph.degree": 6},
        ]
        assert grid[1][1].rounds == 2
        assert grid[1][1].graph.params["degree"] == 6

    def test_empty_axis_rejected(self):
        with pytest.raises(ValidationError, match="at least one axis"):
            sweep_scenarios(_base(), {})
        with pytest.raises(ValidationError, match="no values"):
            sweep_scenarios(_base(), {"rounds": []})


class TestExecution:
    def test_run_mode_returns_digests_by_default(self):
        result = sweep(_base(), axis={"rounds": [1, 3]}, mode="run")
        assert len(result) == 2
        assert all(isinstance(p.outcome, RunDigest) for p in result)
        # More mixing, better amplification.
        eps = result.epsilons()
        assert eps[1] < eps[0]

    def test_results_full_returns_run_results(self):
        digests = sweep(_base(), axis={"rounds": [1, 3]}, mode="run")
        full = sweep(
            _base(), axis={"rounds": [1, 3]}, mode="run", results="full"
        )
        assert all(isinstance(p.outcome, RunResult) for p in full)
        # A digest is exactly the full result's summary scalars.
        assert full.epsilons() == digests.epsilons()
        for digest_point, full_point in zip(digests, full):
            assert (
                digest_point.outcome.dummy_count
                == full_point.outcome.protocol_result.dummy_count
            )

    def test_unknown_results_shape_rejected(self):
        with pytest.raises(ValidationError, match="results"):
            sweep(_base(), axis={"rounds": [1]}, results="sparse")

    def test_bound_mode_skips_simulation(self):
        result = sweep(_base(), axis={"rounds": [1, 3]}, mode="bound")
        assert all(isinstance(p.outcome, NetworkShuffleBound) for p in result)

    def test_stationary_bound_mode_needs_no_graph(self):
        result = sweep(
            _base(),
            axis={"graph.num_nodes": [10_000, 1_000_000]},
            mode="stationary_bound",
        )
        eps = result.epsilons()
        assert eps[1] < eps[0]  # larger n, stronger amplification

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValidationError, match="mode"):
            sweep(_base(), axis={"rounds": [1]}, mode="warp")

    def test_column_accessor(self):
        result = sweep(_base(), axis={"rounds": [1, 2]}, mode="bound")
        assert result.column("rounds") == [1, 2]

    def test_process_pool_matches_sequential(self):
        axis = {"rounds": [2, 4]}
        sequential = sweep(_base(), axis=axis, mode="run", results="full")
        pooled = sweep(
            _base(), axis=axis, mode="run", workers=2, results="full"
        )
        assert pooled.epsilons() == sequential.epsilons()
        for a, b in zip(pooled, sequential):
            assert a.outcome.protocol_result.payloads() == (
                b.outcome.protocol_result.payloads()
            )

    def test_pooled_digests_match_sequential(self):
        axis = {"rounds": [2, 4]}
        sequential = sweep(_base(), axis=axis, mode="run")
        pooled = sweep(_base(), axis=axis, mode="run", workers=2)
        for a, b in zip(pooled, sequential):
            # elapsed_seconds is wall-clock; everything else must agree.
            a_summary = dict(a.outcome.summary(), elapsed_seconds=None)
            b_summary = dict(b.outcome.summary(), elapsed_seconds=None)
            assert a_summary == b_summary
