"""Out-of-core schedule accounting: planning, the block store, resume.

The PR 9 escalation ladder end to end: :func:`plan_profile` picks the
strategy, :class:`ProfileStore` evolves/spills/resumes column blocks
with bit-identical results, the runner surfaces the accounting payload,
pooled sweeps split the budget per worker, and a killed process resumes
from its spilled blocks (chaos-tested through the PR 8 fault harness).
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.api import parse_scenario
from repro.exceptions import ScheduleRefusedError, ValidationError
from repro.graphs.dynamic import (
    DynamicGraphSchedule,
    collision_profile_on_schedule,
)
from repro.graphs.generators import random_regular_graph
from repro.scenario import bound, clear_graph_cache, sweep
from repro.scenario.profile import (
    DEFAULT_MEMORY_BUDGET,
    ProfilePolicy,
    ProfileStore,
    get_profile_policy,
    parse_memory_budget,
    plan_profile,
    profile_policy,
    profile_stats,
    reset_profile_stats,
    set_profile_policy,
)
from repro.testing import faults

N = 30
STEPS = 5


def _schedule() -> DynamicGraphSchedule:
    return DynamicGraphSchedule([
        random_regular_graph(4, N, rng=0),
        random_regular_graph(6, N, rng=1),
    ])


@pytest.fixture(autouse=True)
def _fresh_state():
    clear_graph_cache()
    reset_profile_stats()
    yield
    clear_graph_cache()
    reset_profile_stats()


class TestPolicy:
    def test_default_policy(self):
        policy = get_profile_policy()
        assert policy.memory_budget == DEFAULT_MEMORY_BUDGET
        assert policy.strategy == "auto"

    def test_context_manager_restores(self):
        before = get_profile_policy()
        with profile_policy(memory_budget=1024, strategy="blocked"):
            assert get_profile_policy().memory_budget == 1024
        assert get_profile_policy() == before

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValidationError, match="strategy"):
            ProfilePolicy(strategy="mmap")

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValidationError, match="budget"):
            ProfilePolicy(memory_budget=0)

    def test_set_rejects_non_policy(self):
        with pytest.raises(ValidationError, match="ProfilePolicy"):
            set_profile_policy({"memory_budget": 1024})


class TestParseMemoryBudget:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("4096", 4096),
            ("512M", 512 * 1024**2),
            ("2g", 2 * 1024**3),
            ("16KiB", 16 * 1024),
            ("1.5m", int(1.5 * 1024**2)),
            (4096, 4096),
        ],
    )
    def test_accepts(self, text, expected):
        assert parse_memory_budget(text) == expected

    @pytest.mark.parametrize("text", ["", "lots", "-1", "0", "M"])
    def test_rejects(self, text):
        with pytest.raises(ValidationError):
            parse_memory_budget(text)


class TestPlanProfile:
    def test_small_n_stays_dense(self):
        plan = plan_profile(64)
        assert plan.strategy == "dense"
        assert not plan.spill

    def test_auto_escalates_over_budget(self):
        policy = ProfilePolicy(memory_budget=16 * 1024)
        plan = plan_profile(64, policy)  # dense needs 16*64*64 = 64 KiB
        assert plan.strategy == "blocked"
        assert plan.spill
        assert 1 <= plan.block_size < 64
        assert plan.blocks * plan.block_size >= 64

    def test_explicit_dense_over_budget_refused(self):
        policy = ProfilePolicy(memory_budget=16 * 1024, strategy="dense")
        with pytest.raises(ScheduleRefusedError, match="profile memory budget"):
            plan_profile(64, policy)

    def test_explicit_block_size_wins(self):
        plan = plan_profile(64, ProfilePolicy(block_size=7))
        assert plan.strategy == "blocked"
        assert plan.block_size == 7
        assert plan.blocks == 10

    def test_block_size_clamped_to_n(self):
        plan = plan_profile(8, ProfilePolicy(block_size=100))
        assert plan.block_size == 8
        assert plan.blocks == 1


class TestProfileStore:
    def _store(self, tmp_path, **overrides):
        options = dict(
            identity="test-store", block_size=8, directory=tmp_path
        )
        options.update(overrides)
        return ProfileStore(_schedule(), **options)

    def test_collisions_match_dense_profile(self, tmp_path):
        store = self._store(tmp_path)
        collisions, dropped = store.collisions(STEPS)
        np.testing.assert_array_equal(
            collisions, collision_profile_on_schedule(_schedule(), STEPS)
        )
        assert not dropped.any()

    def test_spills_one_file_per_block(self, tmp_path):
        store = self._store(tmp_path)
        store.collisions(STEPS)
        files = sorted(store.directory.glob("block_*.npz"))
        assert len(files) == store.num_blocks == 4

    def test_second_store_resumes_from_disk(self, tmp_path):
        self._store(tmp_path).collisions(STEPS)
        reset_profile_stats()
        warm, _ = self._store(tmp_path).collisions(STEPS)
        stats = profile_stats()
        assert stats["blocks_resumed"] == 4
        assert stats["blocks_evolved"] == 0
        np.testing.assert_array_equal(
            warm, collision_profile_on_schedule(_schedule(), STEPS)
        )

    def test_ascending_rounds_resume_is_bit_identical(self, tmp_path):
        store = self._store(tmp_path)
        store.collisions(3)
        resumed, _ = store.collisions(STEPS)
        cold, _ = self._store(tmp_path / "cold").collisions(STEPS)
        np.testing.assert_array_equal(resumed, cold)

    def test_descending_rounds_recompute_without_downgrade(self, tmp_path):
        store = self._store(tmp_path)
        store.collisions(STEPS)
        shorter, _ = store.collisions(2)
        np.testing.assert_array_equal(
            shorter, collision_profile_on_schedule(_schedule(), 2)
        )
        # The spilled blocks still hold the longer evolution.
        resumed, _ = self._store(tmp_path).collisions(STEPS)
        np.testing.assert_array_equal(
            resumed, collision_profile_on_schedule(_schedule(), STEPS)
        )

    def test_corrupt_block_is_a_miss_not_an_error(self, tmp_path):
        store = self._store(tmp_path)
        store.collisions(STEPS)
        store.block_path(0).write_bytes(b"not an npz archive")
        recovered, _ = self._store(tmp_path).collisions(STEPS)
        np.testing.assert_array_equal(
            recovered, collision_profile_on_schedule(_schedule(), STEPS)
        )

    def test_spill_false_touches_no_disk(self, tmp_path):
        store = self._store(tmp_path, spill=False)
        store.collisions(STEPS)
        assert not list(tmp_path.rglob("*.npz"))

    def test_truncation_is_sound(self, tmp_path):
        # The 30-node schedule mixes to ~1/30 per entry by 5 rounds, so
        # a 0.03 tolerance provably drops mass while staying in (0, 1).
        exact = collision_profile_on_schedule(_schedule(), STEPS)
        store = self._store(tmp_path, truncation=0.03)
        truncated, dropped = store.collisions(STEPS)
        assert np.all(truncated <= exact + 1e-15)
        assert np.all(exact <= truncated + 2.0 * dropped + 1e-15)
        assert dropped.any()

    def test_rejects_bad_block_size(self, tmp_path):
        with pytest.raises(ValidationError, match="block_size"):
            self._store(tmp_path, block_size=0)

    def test_rejects_negative_steps(self, tmp_path):
        with pytest.raises(ValidationError, match="steps"):
            self._store(tmp_path).collisions(-1)


SCHEDULE_SCENARIO = {
    "graph": {"kind": "schedule", "params": {"graphs": [
        {"kind": "k_regular", "params": {"degree": 4, "num_nodes": 64}},
        {"kind": "cycle", "params": {"num_nodes": 64}},
    ]}},
    "mechanism": {"kind": "rr", "params": {"epsilon": 1.0}},
    "rounds": 6,
    "seed": 3,
}


class TestBoundAccounting:
    def test_blocked_bound_matches_dense_bound_bitwise(self):
        scenario = parse_scenario(SCHEDULE_SCENARIO)
        dense = bound(scenario)
        clear_graph_cache()
        with profile_policy(strategy="blocked", block_size=7):
            blocked = bound(scenario)
        assert blocked.sum_squared == dense.sum_squared
        assert blocked.epsilon == dense.epsilon
        assert dense.accounting["strategy"] == "dense"
        assert blocked.accounting["strategy"] == "blocked"
        assert blocked.accounting["exact"] is True

    def test_truncation_surfaces_provable_bound(self):
        scenario = parse_scenario(
            {**SCHEDULE_SCENARIO, "truncation": 1e-3}
        )
        exact = bound(parse_scenario(SCHEDULE_SCENARIO))
        result = bound(scenario)
        accounting = result.accounting
        assert accounting["truncation"] == 1e-3
        assert accounting["exact"] is False
        assert accounting["truncation_bound"] >= 0.0
        # Conservative: the fed mass upper-bounds the exact one, within
        # the reported interval width.
        assert result.sum_squared >= exact.sum_squared - 1e-15
        assert (
            result.sum_squared
            <= exact.sum_squared + accounting["truncation_bound"] + 1e-15
        )

    def test_truncation_on_static_graph_refused(self):
        scenario = parse_scenario({
            "graph": {
                "kind": "k_regular",
                "params": {"degree": 4, "num_nodes": 64},
            },
            "mechanism": {"kind": "rr", "params": {"epsilon": 1.0}},
            "rounds": 4,
            "truncation": 1e-3,
            "seed": 0,
        })
        with pytest.raises(ValidationError, match="schedule"):
            bound(scenario)


class TestPooledSweepBudget:
    def test_worker_policy_divides_budget(self):
        from repro.scenario.sweep import (
            _MIN_WORKER_PROFILE_BUDGET,
            _worker_profile_policy,
        )

        with profile_policy(memory_budget=64 * 1024 * 1024):
            split = _worker_profile_policy(4)
            assert split["memory_budget"] == 16 * 1024 * 1024
        with profile_policy(memory_budget=1024):
            floored = _worker_profile_policy(4)
            assert floored["memory_budget"] == _MIN_WORKER_PROFILE_BUDGET

    def test_pooled_bound_sweep_matches_inline(self):
        scenario = parse_scenario(SCHEDULE_SCENARIO)
        axis = {"rounds": [2, 4]}
        inline = sweep(scenario, axis=axis, mode="bound")
        clear_graph_cache()
        with profile_policy(strategy="blocked", block_size=16):
            pooled = sweep(scenario, axis=axis, mode="bound", workers=2)
        for point_a, point_b in zip(inline, pooled):
            assert point_a.epsilon == point_b.epsilon
            assert point_b.outcome.accounting["strategy"] == "blocked"


_CHAOS_CHILD = textwrap.dedent(
    """
    import sys

    import numpy as np

    from repro.graphs.dynamic import DynamicGraphSchedule
    from repro.graphs.generators import random_regular_graph
    from repro.scenario.profile import ProfileStore, profile_stats

    directory = sys.argv[1]
    schedule = DynamicGraphSchedule([
        random_regular_graph(4, 30, rng=0),
        random_regular_graph(6, 30, rng=1),
    ])
    store = ProfileStore(
        schedule, identity="chaos", block_size=8, directory=directory
    )
    collisions, _ = store.collisions(5)
    print(collisions.tobytes().hex())
    print(profile_stats()["blocks_resumed"])
    """
)


class TestChaosResume:
    def test_killed_profile_resumes_from_spilled_blocks(self, tmp_path):
        """Kill the process after block 1 spills; the re-run must resume
        (not restart) and still produce bit-identical collision mass."""
        spill = tmp_path / "blocks"
        counters = tmp_path / "counters"

        def run_child():
            # The child inherits the fault plan through the environment,
            # exactly like a pool worker would.
            env = dict(os.environ)
            env["PYTHONPATH"] = (
                "src" + os.pathsep + env.get("PYTHONPATH", "")
            )
            return subprocess.run(
                [sys.executable, "-c", _CHAOS_CHILD, str(spill)],
                capture_output=True,
                text=True,
                env=env,
                cwd="/root/repo",
                timeout=120,
            )

        with faults.inject(
            [faults.FaultRule(point=1, action="exit", channel="profile")],
            directory=counters,
        ):
            killed = run_child()
            assert killed.returncode == 17, killed.stderr
            # Blocks 0 and 1 completed (and spilled) before the kill.
            spilled = sorted(p.name for p in spill.rglob("block_*.npz"))
            assert len(spilled) == 2
            retried = run_child()
        assert retried.returncode == 0, retried.stderr
        payload, resumed = retried.stdout.split()
        expected = collision_profile_on_schedule(_schedule(), STEPS)
        assert payload == expected.tobytes().hex()
        assert int(resumed) >= 2
