"""Tests for scenario-level auditing: ``repro.audit(scenario)``."""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro
from repro.auditing.auditor import AuditResult
from repro.exceptions import ValidationError
from repro.scenario import AuditSpec, Scenario, audit, seed_streams, sweep


@pytest.fixture
def scenario():
    return Scenario(
        graph={"kind": "k_regular", "params": {"degree": 6, "num_nodes": 128}},
        mechanism={"kind": "rr", "params": {"epsilon": 1.0}},
        rounds=6,
        seed=0,
    )


class TestAuditEntryPoint:
    def test_returns_audit_result(self, scenario):
        result = audit(scenario, trials=600)
        assert isinstance(result, AuditResult)
        assert result.trials == 600
        assert result.mechanism == "scenario:weighted_evidence:t=6"

    def test_exposed_at_top_level(self, scenario):
        assert repro.audit is audit
        # The auditing subpackage stays importable alongside the function.
        from repro.auditing.auditor import audit_network_shuffle  # noqa: F401

    def test_deterministic_from_scenario_seed(self, scenario):
        assert audit(scenario, trials=500) == audit(scenario, trials=500)

    def test_different_seed_different_draws(self, scenario):
        import dataclasses

        other = dataclasses.replace(scenario, seed=1)
        a = audit(scenario, trials=800)
        b = audit(other, trials=800)
        # Same estimand, different Monte Carlo draws.
        assert (a.epsilon_lower_bound, a.best_threshold) != (
            b.epsilon_lower_bound,
            b.best_threshold,
        )

    def test_amplification_measured(self, scenario):
        unmixed = audit(scenario, rounds=0, trials=2000)
        mixed = audit(scenario, rounds=10, trials=2000)
        assert unmixed.epsilon_lower_bound == pytest.approx(1.0, abs=0.4)
        assert mixed.epsilon_lower_bound < unmixed.epsilon_lower_bound

    def test_rounds_default_to_mixing_time(self, scenario):
        import dataclasses

        from repro.scenario import graph_summary

        open_rounds = dataclasses.replace(scenario, rounds=None)
        result = audit(open_rounds, trials=300)
        mixing = graph_summary(open_rounds).mixing_time
        assert result.mechanism.endswith(f"t={mixing}")

    def test_epsilon0_without_mechanism(self, scenario):
        import dataclasses

        bare = dataclasses.replace(scenario, mechanism=None, epsilon0=1.0)
        result = audit(bare, trials=400)
        assert isinstance(result, AuditResult)

    def test_requires_budget(self):
        bare = Scenario(
            graph={"kind": "k_regular", "params": {"degree": 6, "num_nodes": 64}},
            rounds=2,
        )
        with pytest.raises(ValidationError, match="epsilon0"):
            audit(bare)

    def test_rejects_non_rr_mechanism(self, scenario):
        import dataclasses

        laplace = dataclasses.replace(
            scenario, mechanism={"kind": "laplace", "params": {"epsilon": 1.0}}
        )
        with pytest.raises(ValidationError, match="binary-RR"):
            audit(laplace)

    def test_rejects_single_protocol(self, scenario):
        import dataclasses

        single = dataclasses.replace(scenario, protocol="single")
        with pytest.raises(ValidationError, match="A_all"):
            audit(single)

    def test_audit_stream_is_independent_of_run(self, scenario):
        """Auditing consumes the dedicated 4th child stream, so the
        first three (graph, values, protocol) — and therefore every
        seeded run — are untouched."""
        streams = seed_streams(scenario.seed)
        expected = [
            streams.graph.integers(0, 1 << 30),
            streams.values.integers(0, 1 << 30),
            streams.protocol.integers(0, 1 << 30),
        ]
        audit(scenario, trials=300)
        fresh = seed_streams(scenario.seed)
        assert [
            fresh.graph.integers(0, 1 << 30),
            fresh.values.integers(0, 1 << 30),
            fresh.protocol.integers(0, 1 << 30),
        ] == expected

    def test_explicit_rng_override(self, scenario):
        a = audit(scenario, trials=400, rng=np.random.default_rng(42))
        b = audit(scenario, trials=400, rng=np.random.default_rng(42))
        assert a == b


class TestAuditSpec:
    def test_spec_controls_statistic_and_trials(self, scenario):
        import dataclasses

        specced = dataclasses.replace(
            scenario,
            audit={"kind": "topk_evidence", "params": {"trials": 350, "top_k": 4}},
        )
        result = audit(specced)
        assert result.trials == 350
        assert result.mechanism.startswith("scenario:topk_evidence")

    def test_call_trials_override_spec(self, scenario):
        import dataclasses

        specced = dataclasses.replace(
            scenario, audit={"kind": "report_sum", "params": {"trials": 350}}
        )
        assert audit(specced, trials=200).trials == 200

    def test_json_round_trip(self, scenario):
        import dataclasses

        specced = dataclasses.replace(
            scenario,
            audit=AuditSpec.of("topk_evidence", trials=400, top_k=8),
        )
        restored = Scenario.from_json(specced.to_json())
        assert restored == specced
        assert restored.audit.params == {"trials": 400, "top_k": 8}
        payload = json.loads(specced.to_json())
        assert payload["audit"]["kind"] == "topk_evidence"

    def test_unknown_statistic_kind_fails_loudly(self, scenario):
        import dataclasses

        bad = dataclasses.replace(scenario, audit="psychic")
        with pytest.raises(ValidationError, match="unknown audit statistic"):
            audit(bad)

    def test_dotted_updates_reach_audit_spec(self, scenario):
        specced = scenario.updated(audit="weighted_evidence")
        updated = specced.updated(**{"audit.trials": 250})
        assert updated.audit.params["trials"] == 250

    def test_dotted_update_on_missing_audit_spec_fails(self, scenario):
        with pytest.raises(ValidationError, match="no audit spec"):
            scenario.updated(**{"audit.trials": 100})


class TestAuditSweep:
    def test_sweep_mode_audit(self, scenario):
        import dataclasses

        fast = dataclasses.replace(
            scenario, audit=AuditSpec.of("weighted_evidence", trials=300)
        )
        result = sweep(fast, axis={"rounds": [0, 6]}, mode="audit")
        assert len(result) == 2
        epsilons = result.epsilons()
        assert all(isinstance(eps, float) for eps in epsilons)
        assert epsilons[1] < epsilons[0]

    def test_sweep_audit_trials_axis(self, scenario):
        import dataclasses

        fast = dataclasses.replace(
            scenario, audit=AuditSpec.of("weighted_evidence")
        )
        result = sweep(fast, axis={"audit.trials": [200, 300]}, mode="audit")
        assert [point.outcome.trials for point in result] == [200, 300]
