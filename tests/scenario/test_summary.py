"""Schema equality of the two run summaries.

``RunResult.summary()`` (the full in-process result) and
``RunDigest.summary()`` (the slim sweep/serving wire shape) are one wire
format; both delegate to :func:`repro.scenario.summary.run_summary_payload`,
and these tests pin that they cannot drift — same keys, same order,
same presence rules, same values.
"""

from __future__ import annotations

import pytest

from repro.scenario import Scenario, clear_graph_cache, digest_run, run
from repro.scenario.summary import run_summary_payload


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_graph_cache()
    yield
    clear_graph_cache()


def _scenario(**overrides) -> Scenario:
    payload = {
        "graph": {"kind": "k_regular", "params": {"degree": 4, "num_nodes": 64}},
        "mechanism": {"kind": "rr", "params": {"epsilon": 1.0}},
        "rounds": 4,
        "seed": 11,
    }
    payload.update(overrides)
    return Scenario.from_dict(payload)


class TestSchemaEquality:
    def test_digest_summary_equals_result_summary(self):
        result = run(_scenario())
        assert digest_run(result).summary() == result.summary()

    def test_single_protocol_case(self):
        # A_single has no Theorem 6.1 estimate: empirical_epsilon must
        # be absent from BOTH shapes, not present-as-None in one.
        result = run(_scenario(protocol="single"))
        summary = result.summary()
        assert "empirical_epsilon" not in summary
        assert digest_run(result).summary() == summary

    def test_simulation_only_case(self):
        # No mechanism -> no central bound -> the accounting quartet is
        # absent together from both shapes.
        result = run(_scenario(mechanism=None))
        summary = result.summary()
        for key in ("central_epsilon", "central_delta", "theorem", "epsilon0"):
            assert key not in summary
        assert digest_run(result).summary() == summary

    def test_key_order_is_canonical(self):
        result = run(_scenario())
        assert list(result.summary()) == list(digest_run(result).summary())


class TestPresenceRules:
    def test_execution_scalars_always_present(self):
        payload = run_summary_payload(
            protocol="all", engine="fast", num_users=10, rounds=2,
            dummy_count=0, elapsed_seconds=0.5,
        )
        assert list(payload) == [
            "protocol", "engine", "backend", "num_users", "rounds",
            "dummy_count", "elapsed_seconds",
        ]
        assert payload["backend"] == "vectorized"

    def test_accounting_quartet_travels_together(self):
        payload = run_summary_payload(
            protocol="all", engine="fast", num_users=10, rounds=2,
            dummy_count=0, elapsed_seconds=0.5,
            central_epsilon=1.0, central_delta=1e-6, theorem="5.3",
            epsilon0=2.0,
        )
        assert [k for k in payload if k.startswith(("central", "theorem", "eps"))] == [
            "central_epsilon", "central_delta", "theorem", "epsilon0",
        ]

    def test_meter_pair_travels_together(self):
        payload = run_summary_payload(
            protocol="all", engine="metered", num_users=10, rounds=2,
            dummy_count=0, elapsed_seconds=0.5,
            total_messages_sent=100, max_peak_items=7,
        )
        assert payload["total_messages_sent"] == 100
        assert payload["max_peak_items"] == 7

    def test_elapsed_is_rounded(self):
        payload = run_summary_payload(
            protocol="all", engine="fast", num_users=10, rounds=2,
            dummy_count=0, elapsed_seconds=0.123456789,
        )
        assert payload["elapsed_seconds"] == 0.123457
