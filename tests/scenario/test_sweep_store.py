"""``sweep(store=...)``: incremental re-runs against the campaign store."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.scenario import GraphSpec, MechanismSpec, Scenario, sweep
from repro.store import ResultsStore, diff, diff_is_empty

AXIS = {"rounds": [1, 2], "graph.degree": [4, 8]}


def _base(**overrides) -> Scenario:
    kwargs = dict(
        graph=GraphSpec.of("k_regular", degree=4, num_nodes=64),
        mechanism=MechanismSpec.of("rr", epsilon=1.0),
        rounds=2,
        seed=1,
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


class TestIncrementalReruns:
    def test_second_pass_computes_nothing(self, tmp_path):
        store = str(tmp_path / "results.sqlite")
        first = sweep(
            _base(), axis=AXIS, mode="stationary_bound",
            store=store, campaign="one",
        )
        assert first.computed == 4 and first.reused == 0
        assert first.campaign_id is not None

        second = sweep(
            _base(), axis=AXIS, mode="stationary_bound",
            store=store, campaign="two",
        )
        assert second.computed == 0 and second.reused == 4
        assert second.campaign_id != first.campaign_id
        for before, after in zip(first.points, second.points):
            assert before.coordinates == after.coordinates
            assert before.outcome == after.outcome

    def test_partial_overlap_computes_only_missing_points(self, tmp_path):
        store = str(tmp_path / "results.sqlite")
        sweep(
            _base(), axis={"rounds": [1, 2]}, mode="stationary_bound",
            store=store,
        )
        grown = sweep(
            _base(), axis={"rounds": [1, 2, 3]}, mode="stationary_bound",
            store=store,
        )
        assert grown.computed == 1 and grown.reused == 2
        assert len(grown.points) == 3

    def test_run_mode_digests_round_trip(self, tmp_path):
        store = str(tmp_path / "results.sqlite")
        first = sweep(_base(), axis={"rounds": [1, 2]}, store=store)
        second = sweep(_base(), axis={"rounds": [1, 2]}, store=store)
        assert first.computed == 2 and second.reused == 2
        for before, after in zip(first.points, second.points):
            assert before.outcome == after.outcome
            assert after.outcome.summary()  # still a live RunDigest

    def test_audit_mode_round_trips(self, tmp_path):
        store = str(tmp_path / "results.sqlite")
        audit_axis = {"rounds": [2]}
        base = _base(audit={"kind": "report_sum", "params": {"trials": 50}})
        first = sweep(base, axis=audit_axis, mode="audit", store=store)
        second = sweep(base, axis=audit_axis, mode="audit", store=store)
        assert second.computed == 0
        assert first.points[0].outcome == second.points[0].outcome

    def test_identical_campaigns_diff_empty(self, tmp_path):
        store_path = tmp_path / "results.sqlite"
        sweep(
            _base(), axis=AXIS, mode="stationary_bound",
            store=str(store_path), campaign="one",
        )
        sweep(
            _base(), axis=AXIS, mode="stationary_bound",
            store=str(store_path), campaign="two",
        )
        with ResultsStore(store_path) as store:
            assert diff_is_empty(diff(store, "one", "two"))

    def test_sweep_without_store_is_unchanged(self):
        result = sweep(_base(), axis={"rounds": [1]}, mode="stationary_bound")
        assert result.computed == 1 and result.reused == 0
        assert result.campaign_id is None


class TestStoreArguments:
    def test_full_results_refuse_the_store(self, tmp_path):
        with pytest.raises(ValidationError, match="digest"):
            sweep(
                _base(), axis={"rounds": [1]}, results="full",
                store=str(tmp_path / "results.sqlite"),
            )

    def test_open_store_instance_is_borrowed_not_closed(self, tmp_path):
        with ResultsStore(tmp_path / "results.sqlite") as store:
            sweep(
                _base(), axis={"rounds": [1]}, mode="stationary_bound",
                store=store,
            )
            # Still usable: sweep() must not close a caller-owned store.
            assert store.point_count() == 1

    def test_pooled_sweep_records_points(self, tmp_path):
        store_path = str(tmp_path / "results.sqlite")
        first = sweep(
            _base(), axis=AXIS, mode="stationary_bound",
            store=store_path, workers=2,
        )
        assert first.computed == 4
        second = sweep(
            _base(), axis=AXIS, mode="stationary_bound",
            store=store_path, workers=2,
        )
        assert second.computed == 0 and second.reused == 4
