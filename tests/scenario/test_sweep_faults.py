"""Fault-tolerant sweeps: isolation, crash recovery, checkpoint resume.

Every failure here is *real* — injected via :mod:`repro.testing.faults`,
points genuinely raise, ``os._exit`` their worker process, or hang —
and the assertions are the ISSUE 8 contracts: ``on_error="collect"``
isolates failures as :class:`PointFailure` values, killed workers are
rebuilt and their points retried, poison points are quarantined after
``retries`` extra attempts, hung points die at ``point_timeout``, and
store-backed sweeps resume from whatever was checkpointed before an
interruption.
"""

from __future__ import annotations

import pytest

from repro.exceptions import (
    ExecutionTimeoutError,
    ValidationError,
    WorkerCrashError,
)
from repro.scenario import (
    GraphSpec,
    MechanismSpec,
    PointFailure,
    Scenario,
    clear_graph_cache,
    sweep,
)
from repro.store import ResultsStore, campaign_status
from repro.testing import FaultRule, InjectedFaultError, inject

AXIS = {"rounds": [2, 3, 4, 5]}  # grid points 0..3, in grid order


@pytest.fixture(autouse=True)
def _fresh_cache():
    from repro.scenario import GRAPH_CACHE

    clear_graph_cache()
    GRAPH_CACHE.spill_dir = None
    yield
    clear_graph_cache()
    GRAPH_CACHE.spill_dir = None


def _base(**overrides) -> Scenario:
    kwargs = dict(
        graph=GraphSpec.of("k_regular", degree=4, num_nodes=64),
        mechanism=MechanismSpec.of("rr", epsilon=1.0),
        rounds=2,
        seed=1,
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


def _pooled(**overrides):
    kwargs = dict(
        axis=AXIS,
        mode="stationary_bound",
        workers=2,
        mp_context="fork",
        on_error="collect",
        backoff=0.01,
    )
    kwargs.update(overrides)
    return sweep(_base(), **kwargs)


class TestArgumentValidation:
    def test_unknown_on_error_refused(self):
        with pytest.raises(ValidationError, match="on_error"):
            sweep(_base(), axis=AXIS, mode="stationary_bound",
                  on_error="ignore")

    def test_negative_retries_refused(self):
        with pytest.raises(ValidationError, match="retries"):
            sweep(_base(), axis=AXIS, mode="stationary_bound", retries=-1)

    def test_nonpositive_timeout_refused(self):
        with pytest.raises(ValidationError, match="point_timeout"):
            sweep(_base(), axis=AXIS, mode="stationary_bound",
                  point_timeout=0)

    def test_negative_backoff_refused(self):
        with pytest.raises(ValidationError, match="backoff"):
            sweep(_base(), axis=AXIS, mode="stationary_bound", backoff=-0.1)


class TestSequentialIsolation:
    def test_collect_isolates_the_failing_point(self):
        with inject([FaultRule(point=1, message="wired to fail")]):
            result = sweep(
                _base(), axis=AXIS, mode="stationary_bound",
                on_error="collect",
            )
        assert result.computed == 3 and result.failed == 1
        assert len(result.points) == 4
        point = result.points[1]
        assert point.failed and point.outcome is None
        assert point.epsilon is None
        failure = point.failure
        assert isinstance(failure, PointFailure)
        assert failure.error == "InjectedFaultError"
        assert failure.kind == "exception"
        assert failure.attempts == 1 and not failure.quarantined
        assert "wired to fail" in failure.message
        assert [p.failure.error for p in result.failures] == [
            "InjectedFaultError"
        ]

    def test_raise_aborts_on_first_failure(self):
        with inject([FaultRule(point=1)]):
            with pytest.raises(InjectedFaultError):
                sweep(_base(), axis=AXIS, mode="stationary_bound")

    def test_deterministic_exceptions_are_never_retried(self):
        # retries budget crash/timeout recovery, not plain exceptions.
        with inject([FaultRule(point=0, times=5)]):
            result = sweep(
                _base(), axis=AXIS, mode="stationary_bound",
                on_error="collect", retries=3,
            )
        assert result.failed == 1
        assert result.points[0].failure.attempts == 1


class TestCrashRecovery:
    def test_killed_worker_is_rebuilt_and_the_point_retried(self):
        with inject([FaultRule(point=2, action="exit", times=1)]) as plan:
            result = _pooled(retries=2)
            assert plan.fired(0) == 1
        assert result.failed == 0 and result.computed == 4
        assert all(point.outcome is not None for point in result.points)

    def test_poison_point_is_quarantined(self):
        with inject([FaultRule(point=1, action="exit", times=10)]):
            result = _pooled(retries=1)
        assert result.failed == 1 and result.computed == 3
        failure = result.points[1].failure
        assert failure.error == "WorkerCrashError"
        assert failure.kind == "crash"
        assert failure.quarantined
        assert failure.attempts == 2  # first try + retries=1
        # Bystander points sharing the doomed pool still complete.
        assert all(
            point.outcome is not None
            for index, point in enumerate(result.points)
            if index != 1
        )

    def test_poison_point_raises_without_collect(self):
        with inject([FaultRule(point=1, action="exit", times=10)]):
            with pytest.raises(WorkerCrashError, match="poison"):
                _pooled(on_error="raise", retries=1)


class TestHungPoints:
    def test_hung_point_is_killed_and_retried(self):
        with inject([FaultRule(point=3, action="hang", seconds=60,
                               times=1)]):
            result = _pooled(retries=1, point_timeout=0.75)
        assert result.failed == 0 and result.computed == 4

    def test_persistent_hang_is_quarantined_as_timeout(self):
        with inject([FaultRule(point=0, action="hang", seconds=60,
                               times=10)]):
            result = _pooled(retries=1, point_timeout=0.5)
        failure = result.points[0].failure
        assert failure.error == "ExecutionTimeoutError"
        assert failure.kind == "timeout"
        assert failure.quarantined and failure.attempts == 2
        assert result.computed == 3

    def test_persistent_hang_raises_without_collect(self):
        with inject([FaultRule(point=0, action="hang", seconds=60,
                               times=10)]):
            with pytest.raises(ExecutionTimeoutError, match="point_timeout"):
                _pooled(on_error="raise", retries=0, point_timeout=0.5)


class TestCheckpointResume:
    def test_interrupted_sweep_resumes_only_the_missing_tail(self, tmp_path):
        store = str(tmp_path / "results.sqlite")
        with inject([FaultRule(point=2)]):
            with pytest.raises(InjectedFaultError):
                sweep(
                    _base(), axis=AXIS, mode="stationary_bound",
                    store=store, campaign="doomed",
                )
        with ResultsStore(store) as opened:
            # Points 0 and 1 were checkpointed as they completed.
            assert opened.point_count() == 2
            assert campaign_status(opened, "doomed") == "interrupted"

        resumed = sweep(
            _base(), axis=AXIS, mode="stationary_bound",
            store=store, campaign="second-try",
        )
        assert resumed.reused == 2 and resumed.computed == 2
        assert resumed.failed == 0
        with ResultsStore(store) as opened:
            assert opened.point_count() == 4
            assert campaign_status(opened, "second-try") == "complete"

    def test_failed_points_are_not_checkpointed(self, tmp_path):
        store = str(tmp_path / "results.sqlite")
        with inject([FaultRule(point=1, times=1)]):
            first = sweep(
                _base(), axis=AXIS, mode="stationary_bound",
                store=store, on_error="collect",
            )
            assert first.failed == 1 and first.computed == 3
            # Same process, fault budget now spent: only the failed
            # point is recomputed, the checkpointed three are reused.
            second = sweep(
                _base(), axis=AXIS, mode="stationary_bound",
                store=store, on_error="collect",
            )
        assert second.failed == 0
        assert second.computed == 1 and second.reused == 3

    def test_collected_failures_leave_campaign_complete(self, tmp_path):
        # A failure handled by on_error="collect" is not an
        # interruption: the sweep ran to the end of its grid.
        store = str(tmp_path / "results.sqlite")
        with inject([FaultRule(point=0)]):
            sweep(
                _base(), axis=AXIS, mode="stationary_bound",
                store=store, campaign="lossy", on_error="collect",
            )
        with ResultsStore(store) as opened:
            assert campaign_status(opened, "lossy") == "complete"

    def test_pooled_sweep_checkpoints_through_a_worker_kill(self, tmp_path):
        # The ISSUE 8 acceptance scenario: store-backed pooled sweep,
        # one worker killed mid-flight, still completes under collect
        # with every point computed and recorded.
        store = str(tmp_path / "results.sqlite")
        with inject([FaultRule(point=1, action="exit", times=1)]):
            result = _pooled(retries=2, store=store, campaign="chaos")
        assert result.failed == 0 and result.computed == 4
        with ResultsStore(store) as opened:
            assert opened.point_count() == 4
            assert campaign_status(opened, "chaos") == "complete"
