"""Two processes sweeping into one WAL store must not lose points."""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

from repro.scenario import GraphSpec, MechanismSpec, Scenario
from repro.store import ResultsStore

AXIS = {"rounds": [1, 2, 3, 4], "mechanism.epsilon": [0.5, 1.0]}


def _base() -> Scenario:
    return Scenario(
        graph=GraphSpec.of("k_regular", degree=4, num_nodes=64),
        mechanism=MechanismSpec.of("rr", epsilon=1.0),
        rounds=2,
        seed=1,
    )


def _sweep_into(arguments):
    """Module-level worker so spawn-started processes can pickle it."""
    store_path, campaign = arguments
    from repro.scenario.sweep import sweep

    result = sweep(
        _base(),
        axis=AXIS,
        mode="stationary_bound",
        store=store_path,
        campaign=campaign,
    )
    return result.computed, result.reused


class TestConcurrentWriters:
    def test_two_processes_one_store_no_lost_points(self, tmp_path):
        store_path = str(tmp_path / "shared.sqlite")
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=2, mp_context=context) as pool:
            outcomes = list(pool.map(
                _sweep_into,
                [(store_path, "left"), (store_path, "right")],
            ))
        # Both processes completed the full grid — whoever lost an
        # insert race adopted the winner's row instead of dropping it.
        assert all(computed + reused == 8 for computed, reused in outcomes)
        with ResultsStore(store_path) as store:
            assert store.point_count() == 8
            listing = {
                entry["name"]: entry["points"] for entry in store.campaigns()
            }
            assert listing == {"left": 8, "right": 8}

    def test_interleaved_record_point_from_two_connections(self, tmp_path):
        path = tmp_path / "shared.sqlite"
        scenario = _base()
        with ResultsStore(path) as first, ResultsStore(path) as second:
            id_a = first.record_point(scenario, "bound", {"epsilon": 1.0})
            id_b = second.record_point(scenario, "bound", {"epsilon": 2.0})
            assert id_a == id_b
            assert first.point_payload(scenario, "bound") == {"epsilon": 1.0}
