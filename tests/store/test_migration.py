"""Schema versioning: migrate known pasts, refuse unknown futures."""

from __future__ import annotations

import sqlite3

import pytest

from repro.exceptions import StoreVersionError
from repro.store import SCHEMA_VERSION, ResultsStore
from repro.store.schema import _DDL


def _historic_ddl(*, jobs: bool) -> str:
    """Today's DDL rewound: no campaigns.status, optionally no jobs."""
    ddl = _DDL.replace(
        "meta            TEXT,\n"
        "    status          TEXT NOT NULL DEFAULT 'complete'",
        "meta            TEXT",
    )
    assert "DEFAULT 'complete'" not in ddl, "v2 rewind failed to apply"
    if not jobs:
        ddl = ";".join(
            statement
            for statement in ddl.split(";")
            if "jobs" not in statement
        )
    return ddl


def _make_v1_store(path) -> None:
    """Write a version-1 store: no jobs table, no campaign status."""
    connection = sqlite3.connect(path)
    connection.executescript(_historic_ddl(jobs=False))
    connection.execute("PRAGMA user_version = 1")
    connection.commit()
    connection.close()


def _make_v2_store(path) -> None:
    """Write a version-2 store: jobs table, but no campaign status."""
    connection = sqlite3.connect(path)
    connection.executescript(_historic_ddl(jobs=True))
    connection.execute("PRAGMA user_version = 2")
    connection.commit()
    connection.close()


class TestMigration:
    def test_v1_upgrades_in_place(self, tmp_path):
        path = tmp_path / "old.sqlite"
        _make_v1_store(path)
        with ResultsStore(path) as store:
            # The migration added the jobs table and stamped the version.
            store.save_job(job_id="job-1", kind="run", status="done")
            assert len(store.load_jobs()) == 1
        connection = sqlite3.connect(path)
        assert (
            connection.execute("PRAGMA user_version").fetchone()[0]
            == SCHEMA_VERSION
        )
        connection.close()

    def test_v1_rows_survive_migration(self, tmp_path):
        path = tmp_path / "old.sqlite"
        _make_v1_store(path)
        connection = sqlite3.connect(path)
        connection.execute(
            "INSERT INTO points (scenario_hash, mode, code_version,"
            " graph_kind, scenario, payload, created_at)"
            " VALUES ('h', 'bound', '1.0.0+x', 'cycle', '{}', '{}', 'now')"
        )
        connection.commit()
        connection.close()
        with ResultsStore(path) as store:
            assert store.point_count() == 1

    def test_v2_gains_campaign_status(self, tmp_path):
        path = tmp_path / "v2.sqlite"
        _make_v2_store(path)
        connection = sqlite3.connect(path)
        connection.execute(
            "INSERT INTO campaigns (name, code_version, created_at)"
            " VALUES ('old-sweep', '1.0.0+x', 'now')"
        )
        connection.commit()
        connection.close()
        with ResultsStore(path) as store:
            # Pre-migration campaigns finished the only way a v2 sweep
            # could persist: by completing.
            entries = store.campaigns()
            assert entries[0]["status"] == "complete"
            fresh = store.begin_campaign("new-sweep")
            assert store.campaigns()[0]["id"] == fresh
            assert store.campaigns()[0]["status"] == "running"
        connection = sqlite3.connect(path)
        assert (
            connection.execute("PRAGMA user_version").fetchone()[0]
            == SCHEMA_VERSION
        )
        connection.close()

    def test_v1_campaigns_gain_status_too(self, tmp_path):
        path = tmp_path / "old.sqlite"
        _make_v1_store(path)
        with ResultsStore(path) as store:
            campaign = store.begin_campaign("post-migration")
            store.finish_campaign(campaign, status="interrupted")
            assert store.campaigns()[0]["status"] == "interrupted"

    def test_newer_schema_refuses_loudly(self, tmp_path):
        path = tmp_path / "future.sqlite"
        connection = sqlite3.connect(path)
        connection.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 97}")
        connection.commit()
        connection.close()
        with pytest.raises(StoreVersionError, match="newer than this code"):
            ResultsStore(path)

    def test_foreign_sqlite_file_refuses(self, tmp_path):
        path = tmp_path / "other-app.sqlite"
        connection = sqlite3.connect(path)
        connection.execute("CREATE TABLE shopping_list (item TEXT)")
        connection.commit()
        connection.close()
        with pytest.raises(StoreVersionError, match="not a repro results"):
            ResultsStore(path)

    def test_current_version_reopens_silently(self, tmp_path):
        path = tmp_path / "current.sqlite"
        ResultsStore(path).close()
        with ResultsStore(path) as store:
            assert store.point_count() == 0
