"""The code-version fingerprint stored results are keyed by."""

from __future__ import annotations

import repro
from repro.store.fingerprint import code_version, source_tree_hash


class TestFingerprint:
    def test_shape_is_version_plus_16_hex(self):
        version = code_version()
        release, separator, digest = version.partition("+")
        assert separator == "+"
        assert release == repro.__version__
        assert len(digest) == 16
        assert set(digest) <= set("0123456789abcdef")

    def test_cached_across_calls(self):
        assert code_version() is code_version()
        assert code_version(refresh=True) == code_version()

    def test_tree_hash_tracks_source_edits(self, tmp_path):
        (tmp_path / "module.py").write_text("X = 1\n")
        before = source_tree_hash(tmp_path)
        assert before == source_tree_hash(tmp_path)
        (tmp_path / "module.py").write_text("X = 2\n")
        assert source_tree_hash(tmp_path) != before

    def test_tree_hash_tracks_file_renames(self, tmp_path):
        (tmp_path / "a.py").write_text("X = 1\n")
        before = source_tree_hash(tmp_path)
        (tmp_path / "a.py").rename(tmp_path / "b.py")
        assert source_tree_hash(tmp_path) != before

    def test_tree_hash_ignores_non_python_files(self, tmp_path):
        (tmp_path / "a.py").write_text("X = 1\n")
        before = source_tree_hash(tmp_path)
        (tmp_path / "notes.txt").write_text("not code")
        assert source_tree_hash(tmp_path) == before
