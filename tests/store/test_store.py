"""ResultsStore fundamentals: points, campaigns, artifacts, bench, gc."""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.exceptions import ValidationError
from repro.scenario import GraphSpec, MechanismSpec, Scenario
from repro.store import (
    ResultsStore,
    code_version,
    open_store,
    outcome_from_payload,
    outcome_payload,
)
from repro.store.writer import _OUTCOME_TYPES


def _scenario(**overrides) -> Scenario:
    kwargs = dict(
        graph=GraphSpec.of("k_regular", degree=4, num_nodes=64),
        mechanism=MechanismSpec.of("rr", epsilon=1.0),
        rounds=4,
        seed=1,
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


@pytest.fixture
def store(tmp_path):
    with ResultsStore(tmp_path / "results.sqlite") as handle:
        yield handle


class TestOpen:
    def test_creates_file_and_parents(self, tmp_path):
        path = tmp_path / "nested" / "deeper" / "results.sqlite"
        with ResultsStore(path) as store:
            assert store.point_count() == 0
        assert path.exists()

    def test_wal_mode(self, store):
        mode = store._connection.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"

    def test_open_store_coerces_path_and_passes_through_instances(
        self, tmp_path, store
    ):
        opened = open_store(tmp_path / "other.sqlite")
        assert isinstance(opened, ResultsStore)
        opened.close()
        assert open_store(store) is store

    def test_reopen_preserves_rows(self, tmp_path):
        path = tmp_path / "results.sqlite"
        with ResultsStore(path) as store:
            store.record_point(_scenario(), "bound", {"epsilon": 1.0})
        with ResultsStore(path) as store:
            assert store.point_count() == 1


class TestPoints:
    def test_probe_misses_then_hits(self, store):
        scenario = _scenario()
        assert store.point_payload(scenario, "bound") is None
        store.record_point(scenario, "bound", {"epsilon": 2.5})
        assert store.point_payload(scenario, "bound") == {"epsilon": 2.5}

    def test_identity_is_scenario_mode_and_fingerprint(self, store):
        scenario = _scenario()
        store.record_point(scenario, "bound", {"epsilon": 1.0})
        # Same scenario, different mode: distinct row.
        store.record_point(scenario, "audit", {"epsilon_lower_bound": 0.5})
        # Different scenario: distinct row.
        store.record_point(_scenario(rounds=8), "bound", {"epsilon": 2.0})
        # Different fingerprint: distinct row, invisible to the default probe.
        store.record_point(
            scenario, "bound", {"epsilon": 9.0}, fingerprint="0.0.0+stale"
        )
        assert store.point_count() == 4
        assert store.point_payload(scenario, "bound") == {"epsilon": 1.0}
        assert (
            store.point_payload(scenario, "bound", fingerprint="0.0.0+stale")
            == {"epsilon": 9.0}
        )

    def test_duplicate_insert_adopts_existing_row(self, store):
        scenario = _scenario()
        first = store.record_point(scenario, "bound", {"epsilon": 1.0})
        second = store.record_point(scenario, "bound", {"epsilon": 777.0})
        assert first == second
        # First writer wins; the duplicate was ignored, not overwritten.
        assert store.point_payload(scenario, "bound") == {"epsilon": 1.0}

    def test_campaign_link_records_reuse_flag(self, store):
        scenario = _scenario()
        campaign = store.begin_campaign("c1")
        store.record_point(
            scenario, "bound", {"epsilon": 1.0}, campaign_id=campaign
        )
        other = store.begin_campaign("c2")
        store.record_point(
            scenario, "bound", {"epsilon": 1.0},
            campaign_id=other, reused=True,
        )
        rows = store._read(
            "SELECT campaign_id, reused FROM campaign_points"
            " ORDER BY campaign_id"
        )
        assert [(row["campaign_id"], row["reused"]) for row in rows] == [
            (campaign, 0), (other, 1),
        ]


class TestCampaigns:
    def test_listing_is_newest_first_with_counts(self, store):
        first = store.begin_campaign("alpha", preset="fast")
        second = store.begin_campaign("beta", meta={"mode": "bound"})
        store.record_point(
            _scenario(), "bound", {"epsilon": 1.0}, campaign_id=first
        )
        store.record_artifact(second, name="table1")
        listing = store.campaigns()
        assert [entry["name"] for entry in listing] == ["beta", "alpha"]
        assert listing[0]["meta"] == {"mode": "bound"}
        assert listing[0]["artifacts"] == 1 and listing[0]["points"] == 0
        assert listing[1]["preset"] == "fast"
        assert listing[1]["points"] == 1 and listing[1]["artifacts"] == 0

    def test_campaign_id_resolves_by_id_and_latest_name(self, store):
        old = store.begin_campaign("nightly")
        new = store.begin_campaign("nightly")
        assert store.campaign_id(old) == old
        assert store.campaign_id(str(old)) == old
        assert store.campaign_id("nightly") == new

    def test_campaign_id_miss_raises(self, store):
        with pytest.raises(ValidationError, match="no campaign"):
            store.campaign_id("never-ran")


class TestBenchSamples:
    def test_baseline_is_latest_per_name(self, store):
        store.record_bench_samples({"a": 1.0, "b": 2.0}, source="ci")
        store.record_bench_samples({"a": 1.5})
        assert store.bench_baseline() == {"a": 1.5, "b": 2.0}

    def test_trajectory_preserves_history(self, store):
        store.record_bench_samples({"a": 1.0})
        store.record_bench_samples({"a": 1.5})
        means = [row["mean_seconds"] for row in store.bench_trajectory("a")]
        assert means == [1.0, 1.5]


class TestJobs:
    def test_round_trip_and_upsert(self, store):
        store.save_job(
            job_id="job-1", kind="run", status="done",
            scenario_json=_scenario().to_json(),
            result={"central_epsilon": 1.0},
            submitted=100.0, finished=101.0,
        )
        store.save_job(
            job_id="job-1", kind="run", status="error",
            error={"message": "boom"}, submitted=100.0, finished=102.0,
        )
        jobs = store.load_jobs()
        assert len(jobs) == 1
        assert jobs[0]["status"] == "error"
        assert jobs[0]["error"] == {"message": "boom"}


class TestGc:
    def test_reclaims_stale_fingerprints_only(self, store):
        live = _scenario()
        store.record_point(live, "bound", {"epsilon": 1.0})
        stale_campaign = store.begin_campaign("old", fingerprint="0.0.0+old")
        store.record_point(
            _scenario(rounds=16), "bound", {"epsilon": 2.0},
            campaign_id=stale_campaign, fingerprint="0.0.0+old",
        )
        store.record_bench_samples({"a": 1.0}, fingerprint="0.0.0+old")
        store.record_bench_samples({"a": 2.0})

        preview = store.gc(dry_run=True)
        assert preview["points"] == 1 and store.point_count() == 2

        counts = store.gc()
        assert counts["points"] == 1
        assert counts["campaigns"] == 1
        assert store.point_count() == 1
        assert store.point_payload(live, "bound") == {"epsilon": 1.0}
        assert store.campaigns() == []
        # The stale bench sample survived only because it was a's latest
        # until the second record; after gc the latest remains.
        assert store.bench_baseline() == {"a": 2.0}


class TestOutcomeCodec:
    def test_every_mode_round_trips(self):
        import dataclasses

        for mode, cls in _OUTCOME_TYPES.items():
            fields = dataclasses.fields(cls)
            assert all(
                field.init for field in fields
            ), f"{mode} outcome {cls.__name__} must rebuild via cls(**asdict)"

    def test_rejects_non_dataclass(self):
        with pytest.raises(ValidationError, match="cannot store outcome"):
            outcome_payload({"not": "a dataclass"})

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValidationError, match="unknown stored mode"):
            outcome_from_payload("telepathy", {})


class TestErrors:
    def test_not_a_database_raises_store_error(self, tmp_path):
        from repro.exceptions import StoreError

        path = tmp_path / "garbage.sqlite"
        path.write_bytes(b"definitely not sqlite" * 100)
        with pytest.raises(StoreError):
            ResultsStore(path)

    def test_stored_json_is_canonical(self, store, tmp_path):
        scenario = _scenario()
        store.record_point(
            scenario, "bound", {"epsilon": 1.0}, coordinates={"rounds": 4}
        )
        connection = sqlite3.connect(store.path)
        scenario_json, axes = connection.execute(
            "SELECT scenario, axes FROM points"
        ).fetchone()
        connection.close()
        assert json.loads(scenario_json) == scenario.to_dict()
        assert json.loads(axes) == {"rounds": 4}

    def test_code_version_shape(self):
        version = code_version()
        release, _, digest = version.partition("+")
        assert release and len(digest) == 16
        assert all(char in "0123456789abcdef" for char in digest)
