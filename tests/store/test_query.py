"""Cross-campaign SQL queries: aggregates, the axis map, and diffs."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.scenario import GraphSpec, MechanismSpec, Scenario
from repro.store import ResultsStore, aggregate, diff, diff_is_empty
from repro.store.query import axis_expression, metric_expression


def _scenario(**overrides) -> Scenario:
    kwargs = dict(
        graph=GraphSpec.of("k_regular", degree=4, num_nodes=64),
        mechanism=MechanismSpec.of("rr", epsilon=1.0),
        rounds=4,
        seed=1,
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


@pytest.fixture
def store(tmp_path):
    with ResultsStore(tmp_path / "results.sqlite") as handle:
        yield handle


def _populate(store) -> int:
    """Two graph kinds x two rounds of bound points; returns campaign id."""
    campaign = store.begin_campaign("seed")
    for rounds in (2, 4):
        for spec in (
            GraphSpec.of("k_regular", degree=4, num_nodes=64),
            GraphSpec.of("cycle", num_nodes=64),
        ):
            scenario = _scenario(graph=spec, rounds=rounds)
            store.record_point(
                scenario,
                "bound",
                {"epsilon": float(rounds), "delta": 1e-6},
                coordinates={"rounds": rounds},
                campaign_id=campaign,
            )
    return campaign


class TestAxisMap:
    def test_real_columns_resolve_directly(self):
        assert axis_expression("graph_kind") == "points.graph_kind"
        assert axis_expression("mode") == "points.mode"

    def test_dotted_names_traverse_component_params(self):
        expression = axis_expression("graph.degree")
        assert "$.\"graph.degree\"" in expression
        assert "$.graph.params.degree" in expression

    def test_plain_names_fall_back_to_scenario_top_level(self):
        assert "$.rounds" in axis_expression("rounds")

    def test_epsilon_metric_spans_outcome_shapes(self):
        expression = metric_expression("epsilon")
        for member in ("central_epsilon", "epsilon", "epsilon_lower_bound"):
            assert f"$.{member}" in expression

    @pytest.mark.parametrize(
        "name", ["x; DROP TABLE points", "a'b", "", "rounds--"]
    )
    def test_hostile_names_are_rejected(self, name):
        with pytest.raises(ValidationError):
            axis_expression(name)
        with pytest.raises(ValidationError):
            metric_expression(name)


class TestAggregate:
    def test_groups_and_orders(self, store):
        _populate(store)
        rows = aggregate(store, x="rounds", y="epsilon", group_by="graph_kind")
        assert [(row["group"], row["x"]) for row in rows] == [
            ("cycle", 2), ("cycle", 4), ("k_regular", 2), ("k_regular", 4),
        ]
        assert all(row["mean"] == row["x"] for row in rows)
        assert all(row["points"] == 1 for row in rows)

    def test_mode_filter_drops_other_modes(self, store):
        _populate(store)
        store.record_point(
            _scenario(rounds=2), "audit", {"epsilon_lower_bound": 0.1}
        )
        rows = aggregate(store, x="rounds", y="epsilon", mode="bound")
        assert all(row["mean"] >= 2 for row in rows)

    def test_campaign_filter_restricts_to_observed_points(self, store):
        campaign = _populate(store)
        other = store.begin_campaign("other")
        store.record_point(
            _scenario(rounds=32), "bound", {"epsilon": 99.0},
            campaign_id=other,
        )
        rows = aggregate(store, x="rounds", y="epsilon", campaign=campaign)
        assert all(row["x"] in (2, 4) for row in rows)
        by_name = aggregate(store, x="rounds", y="epsilon", campaign="other")
        assert [row["mean"] for row in by_name] == [99.0]

    def test_fingerprint_filter(self, store):
        _populate(store)
        store.record_point(
            _scenario(rounds=2), "bound", {"epsilon": 1234.0},
            fingerprint="0.0.0+old",
        )
        rows = aggregate(
            store, x="rounds", y="epsilon", fingerprint="0.0.0+old"
        )
        assert [row["mean"] for row in rows] == [1234.0]

    def test_sweep_axis_coordinates_line_up_with_scenario_json(self, store):
        # One point recorded with explicit sweep coordinates, one with
        # none (e.g. a direct record): the axis map coalesces both.
        store.record_point(
            _scenario(rounds=2), "bound", {"epsilon": 1.0},
            coordinates={"mechanism.epsilon": 1.0},
        )
        store.record_point(
            _scenario(rounds=4, mechanism=MechanismSpec.of("rr", epsilon=2.0)),
            "bound", {"epsilon": 2.0},
        )
        rows = aggregate(
            store, x="mechanism.epsilon", y="epsilon", group_by="graph_kind"
        )
        assert [row["x"] for row in rows] == [1.0, 2.0]


class TestDiff:
    def test_identical_campaigns_share_rows_so_diff_is_empty(self, store):
        scenario = _scenario()
        a = store.begin_campaign("a")
        b = store.begin_campaign("b")
        store.record_point(
            scenario, "bound", {"epsilon": 1.0}, campaign_id=a
        )
        store.record_point(
            scenario, "bound", {"epsilon": 1.0}, campaign_id=b, reused=True
        )
        report = diff(store, "a", "b")
        assert diff_is_empty(report)
        assert report["matched"] == 1

    def test_changed_payload_across_code_versions_is_reported(self, store):
        scenario = _scenario()
        a = store.begin_campaign("a", fingerprint="1.0.0+aaaa")
        b = store.begin_campaign("b", fingerprint="1.0.0+bbbb")
        store.record_point(
            scenario, "bound", {"epsilon": 1.0, "delta": 1e-6},
            campaign_id=a, fingerprint="1.0.0+aaaa",
        )
        store.record_point(
            scenario, "bound", {"epsilon": 2.0, "delta": 1e-6},
            campaign_id=b, fingerprint="1.0.0+bbbb",
        )
        report = diff(store, "a", "b")
        assert not diff_is_empty(report)
        assert len(report["changed"]) == 1
        changes = report["changed"][0]["changes"]
        assert changes == {"epsilon": {"a": 1.0, "b": 2.0}}

    def test_numeric_tolerance_suppresses_noise(self, store):
        scenario = _scenario()
        a = store.begin_campaign("a", fingerprint="1.0.0+aaaa")
        b = store.begin_campaign("b", fingerprint="1.0.0+bbbb")
        store.record_point(
            scenario, "bound", {"epsilon": 1.0},
            campaign_id=a, fingerprint="1.0.0+aaaa",
        )
        store.record_point(
            scenario, "bound", {"epsilon": 1.0 + 1e-12},
            campaign_id=b, fingerprint="1.0.0+bbbb",
        )
        assert diff_is_empty(diff(store, "a", "b"))
        assert not diff_is_empty(diff(store, "a", "b", tolerance=0.0))

    def test_coverage_differences_land_in_only_lists(self, store):
        a = store.begin_campaign("a")
        b = store.begin_campaign("b")
        shared = _scenario()
        store.record_point(
            shared, "bound", {"epsilon": 1.0}, campaign_id=a
        )
        store.record_point(
            shared, "bound", {"epsilon": 1.0}, campaign_id=b, reused=True
        )
        store.record_point(
            _scenario(rounds=8), "bound", {"epsilon": 2.0}, campaign_id=a
        )
        report = diff(store, "a", "b")
        assert len(report["only_a"]) == 1 and not report["only_b"]
        assert not diff_is_empty(report)
