"""Tests for the reporting / curve-fitting helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ValidationError
from repro.experiments.reporting import (
    fit_exponential_rate,
    fit_power_law,
    format_table,
    geometric_range,
)


class TestFormatTable:
    def test_basic_rendering(self):
        table = format_table(["a", "b"], [(1, 2), (3, 4)])
        lines = table.splitlines()
        assert "| a" in lines[1]
        assert len(lines) == 6  # border, header, border, 2 rows, border

    def test_width_adapts(self):
        table = format_table(["x"], [("a-very-long-cell",)])
        assert "a-very-long-cell" in table

    def test_float_formatting(self):
        table = format_table(["v"], [(0.123456,), (1e-9,), (1e7,)])
        assert "0.1235" in table
        assert "1.000e-09" in table

    def test_zero_renders_as_zero(self):
        assert "| 0 " in format_table(["v"], [(0.0,)])

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValidationError):
            format_table(["a", "b"], [(1,)])


class TestFitPowerLaw:
    def test_exact_fit(self):
        x = np.array([1.0, 2.0, 4.0, 8.0])
        y = 3.0 * x**-0.5
        a, b = fit_power_law(x, y)
        assert a == pytest.approx(3.0)
        assert b == pytest.approx(-0.5)

    def test_rejects_non_positive(self):
        with pytest.raises(ValidationError):
            fit_power_law([1.0, 2.0], [1.0, -1.0])

    def test_rejects_single_point(self):
        with pytest.raises(ValidationError):
            fit_power_law([1.0], [1.0])

    @given(
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=-3.0, max_value=3.0),
    )
    @settings(max_examples=30)
    def test_recovers_parameters(self, a, b):
        x = np.geomspace(1.0, 100.0, 10)
        y = a * x**b
        a_hat, b_hat = fit_power_law(x, y)
        assert a_hat == pytest.approx(a, rel=1e-6)
        assert b_hat == pytest.approx(b, abs=1e-6)


class TestFitExponentialRate:
    def test_exact_fit(self):
        x = np.linspace(0.0, 3.0, 10)
        y = 2.0 * np.exp(1.5 * x)
        a, c = fit_exponential_rate(x, y)
        assert a == pytest.approx(2.0)
        assert c == pytest.approx(1.5)

    def test_rejects_non_positive_y(self):
        with pytest.raises(ValidationError):
            fit_exponential_rate([0.0, 1.0], [1.0, 0.0])


class TestGeometricRange:
    def test_endpoints(self):
        values = geometric_range(1.0, 100.0, 3)
        np.testing.assert_allclose(values, [1.0, 10.0, 100.0])

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValidationError):
            geometric_range(10.0, 1.0, 3)


class TestSweepTable:
    def _sweep(self):
        from repro.scenario import GraphSpec, Scenario, sweep

        base = Scenario(
            graph=GraphSpec.of("k_regular", degree=4, num_nodes=64),
            epsilon0=1.0,
            seed=0,
        )
        return sweep(base, axis={"rounds": [2, 4]}, mode="bound")

    def test_renders_axes_and_epsilons(self):
        from repro.experiments.reporting import sweep_table

        result = self._sweep()
        table = sweep_table(result)
        assert "rounds" in table and "central eps" in table
        for point in result:
            assert str(round(point.epsilon, 4)) in table

    def test_custom_value_header(self):
        from repro.experiments.reporting import sweep_table

        table = sweep_table(self._sweep(), value_header="eps_hat")
        assert "eps_hat" in table
