"""Golden parity: migrated experiments reproduce pre-migration numbers.

``golden_pre_migration.json`` holds small-scale outputs captured from
the experiment modules *before* ISSUE 5 ported them onto
scenarios/sweeps (same seeds, same parameters).  These tests pin the
scenario-backed implementations to those numbers:

* closed-form quantities (stationary limits, published-(n, Gamma)
  curves, fitted exponents, meter counters) must match exactly or to
  float-noise tolerance;
* spectral quantities carry ``rtol=1e-9`` — ARPACK's random start
  vector makes the spectral gap nondeterministic at ~1e-13 *between any
  two runs*, pre- or post-migration;
* simulation statistics whose RNG consumption order legitimately
  changed (Figure 9's squared error: the scenario seed contract draws
  values/protocol streams independently, where the old module threaded
  one sequential generator) are pinned to coarse statistical bands.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_pre_migration.json").read_text()
)

#: Tolerance for spectral-gap-dependent quantities (ARPACK start-vector
#: noise; see module docstring).
SPECTRAL_RTOL = 1e-9


class TestFigure4:
    def test_matches_pre_migration_curve(self):
        from repro.experiments.figure4 import run_figure4

        golden = GOLDEN["figure4"]
        series = run_figure4(datasets=("twitch",), max_steps=20, num_points=10)[0]
        assert series.dataset == golden["dataset"]
        assert series.steps.tolist() == golden["steps"]
        assert series.mixing_time == golden["mixing_time"]
        np.testing.assert_allclose(
            series.epsilon, golden["epsilon"], rtol=SPECTRAL_RTOL
        )
        # The asymptote is the exact stationary collision: deterministic.
        assert series.asymptotic_epsilon == golden["asymptotic_epsilon"]
        assert series.converged_step == golden["converged_step"]


class TestFigure5:
    def test_matches_pre_migration_curves(self):
        from repro.experiments.figure5 import run_figure5

        series = run_figure5(degrees=(4, 8), num_nodes=256, max_steps=10)
        for got, want in zip(series, GOLDEN["figure5"]):
            assert got.degree == want["degree"]
            assert got.mixing_time == want["mixing_time"]
            # Exact walk tracking is deterministic given the graph.
            np.testing.assert_allclose(
                got.epsilon, want["epsilon"], rtol=SPECTRAL_RTOL
            )


class TestFigure6:
    def test_published_path_bit_identical(self):
        from repro.experiments.figure6 import run_figure6

        curves = run_figure6(
            eps0_values=(0.5, 1.0), datasets=("google", "twitch")
        )
        for got, want in zip(curves, GOLDEN["figure6"]):
            assert got.dataset == want["dataset"]
            assert got.n == want["n"]
            assert got.gamma == pytest.approx(want["gamma"], rel=1e-12)
            assert got.epsilon.tolist() == want["epsilon"]


class TestFigure7:
    def test_bit_identical_curves_and_crossover(self):
        from repro.experiments.figure7 import run_figure7

        golden = GOLDEN["figure7"][0]
        comparison = run_figure7(
            eps0_values=np.linspace(0.5, 4.0, 8).tolist(), datasets=("twitch",)
        )[0]
        assert comparison.n == golden["n"]
        assert comparison.gamma == pytest.approx(golden["gamma"], rel=1e-12)
        assert comparison.epsilon_all.tolist() == golden["epsilon_all"]
        assert comparison.epsilon_single.tolist() == golden["epsilon_single"]
        assert comparison.crossover_eps0() == golden["crossover"]


class TestFigure8:
    def test_bit_identical_grid(self):
        from repro.experiments.figure8 import run_figure8

        curves = run_figure8(
            eps0_values=(0.5, 1.0),
            gammas=(1.0, 10.0),
            n_values=(10_000,),
            protocols=("all", "single"),
        )
        assert len(curves) == len(GOLDEN["figure8"])
        for got, want in zip(curves, GOLDEN["figure8"]):
            assert (got.gamma, got.n, got.protocol) == (
                want["gamma"], want["n"], want["protocol"]
            )
            assert got.epsilon.tolist() == want["epsilon"]


class TestFigure9:
    def test_central_epsilons_exact_errors_in_band(self):
        from repro.experiments.figure9 import run_figure9

        points = run_figure9(
            eps0_values=(1.0, 3.0),
            dataset="twitch",
            dimension=16,
            scale=0.4,
            repeats=2,
        )
        for got, want in zip(points, GOLDEN["figure9"]):
            assert (got.protocol, got.epsilon0) == (
                want["protocol"], want["epsilon0"]
            )
            # Theorem evaluation on the identical pinned-seed stand-in.
            assert got.central_epsilon == pytest.approx(
                want["central_epsilon"], rel=SPECTRAL_RTOL
            )
            # Simulation statistics: the scenario seed contract draws
            # values/protocol streams independently, so only the law is
            # preserved — pin to a coarse band around the recorded
            # value (errors here span decades across eps0).
            assert 0.2 * want["squared_error"] <= got.squared_error <= (
                5.0 * want["squared_error"]
            )
            if want["dummy_count"] == 0:
                assert got.dummy_count == 0
            else:
                assert got.dummy_count == pytest.approx(
                    want["dummy_count"], rel=0.05
                )


class TestTable1:
    def test_fits_match_pre_migration(self):
        from repro.experiments.table1 import run_table1

        rows = run_table1(
            n_values=(10_000, 100_000), eps0_values=(1.5, 2.0, 2.5)
        )
        for got, want in zip(rows, GOLDEN["table1"]):
            assert got.mechanism == want["mechanism"]
            assert got.fitted_eps0_exponent == pytest.approx(
                want["fitted_eps0_exponent"], rel=1e-12, abs=1e-15
            )
            assert got.fitted_n_exponent == pytest.approx(
                want["fitted_n_exponent"], rel=1e-12, abs=1e-15
            )
            assert got.epsilon_at_reference == pytest.approx(
                want["epsilon_at_reference"], rel=1e-12
            )


class TestTable3:
    def test_counters_bit_identical(self):
        from repro.experiments.table3 import measure_complexity

        points = measure_complexity((64, 128))
        for got, want in zip(points, GOLDEN["table3"]["points"]):
            assert (
                got.mechanism,
                got.n,
                got.entity_peak_memory,
                got.max_user_traffic,
            ) == (
                want["mechanism"],
                want["n"],
                want["entity_peak_memory"],
                want["max_user_traffic"],
            )


class TestTable4:
    def test_stand_in_stats_match(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.table4 import run_table4

        golden = GOLDEN["table4"][0]
        row = run_table4(
            names=("twitch",), config=ExperimentConfig(dataset_scale=0.3)
        )[0]
        assert (row.name, row.category) == (golden["name"], golden["category"])
        assert row.published_n == golden["published_n"]
        assert row.achieved_n == golden["achieved_n"]
        assert row.published_gamma == golden["published_gamma"]
        assert row.scale == golden["scale"]
        assert row.mixing_time == golden["mixing_time"]
        assert row.achieved_gamma == pytest.approx(
            golden["achieved_gamma"], rel=SPECTRAL_RTOL
        )
        assert row.spectral_gap == pytest.approx(
            golden["spectral_gap"], rel=SPECTRAL_RTOL
        )
