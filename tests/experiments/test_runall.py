"""Tests for the runall artifact regenerator (with stubbed generators)."""

from __future__ import annotations


from repro.experiments import runall


class TestArtifactGenerators:
    def test_covers_every_artifact(self):
        generators = runall.artifact_generators(full=False)
        assert set(generators) == {
            "table1", "table3", "table4",
            "figure4", "figure5", "figure6", "figure7", "figure8", "figure9",
        }

    def test_generators_are_callables(self):
        for generate in runall.artifact_generators(full=False).values():
            assert callable(generate)


class TestMain:
    def test_writes_one_file_per_artifact(self, tmp_path, monkeypatch, capsys):
        fake = {name: (lambda n=name: f"content of {n}")
                for name in runall.artifact_generators(False)}
        monkeypatch.setattr(
            runall, "artifact_generators", lambda full: fake
        )
        runall.main([str(tmp_path)])
        written = sorted(p.name for p in tmp_path.glob("*.txt"))
        assert written == sorted(f"{name}.txt" for name in fake)
        assert (tmp_path / "table1.txt").read_text() == "content of table1\n"
        assert "all artifacts regenerated" in capsys.readouterr().out

    def test_full_flag_parsed(self, tmp_path, monkeypatch):
        seen = {}

        def fake_generators(full):
            seen["full"] = full
            return {"table1": lambda: "x"}

        monkeypatch.setattr(runall, "artifact_generators", fake_generators)
        runall.main([str(tmp_path), "--full"])
        assert seen["full"] is True

    def test_default_directory(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setattr(
            runall, "artifact_generators",
            lambda full: {"table1": lambda: "x"},
        )
        runall.main([])
        assert (tmp_path / "experiments_output" / "table1.txt").exists()
