"""Tests for the campaign-backed runall regenerator and its manifest."""

from __future__ import annotations

import json

from repro.experiments import campaigns, runall


class TestArtifactGenerators:
    def test_covers_every_artifact(self):
        generators = runall.artifact_generators(full=False)
        assert set(generators) == {
            "table1", "table3", "table4",
            "figure4", "figure5", "figure6", "figure7", "figure8", "figure9",
        }
        assert set(generators) == set(campaigns.artifact_names())

    def test_generators_are_callables(self):
        for generate in runall.artifact_generators(full=False).values():
            assert callable(generate)


def _stub_artifacts(monkeypatch, names=("table1", "figure9")):
    """Replace the campaign registry with instant stub artifacts."""
    stubs = {
        name: campaigns.Artifact(
            name=name,
            title=f"stub {name}",
            default=lambda n=name: f"content of {n} (default)",
            fast=lambda n=name: f"content of {n} (fast)",
            full=lambda n=name: f"content of {n} (full)",
        )
        for name in names
    }
    monkeypatch.setattr(campaigns, "ARTIFACTS", stubs)
    return stubs


class TestMain:
    def test_writes_one_file_per_artifact_plus_manifest(
        self, tmp_path, monkeypatch, capsys
    ):
        _stub_artifacts(monkeypatch)
        manifest = runall.main([str(tmp_path)])
        written = sorted(p.name for p in tmp_path.glob("*.txt"))
        assert written == ["figure9.txt", "table1.txt"]
        assert (tmp_path / "table1.txt").read_text() == (
            "content of table1 (default)\n"
        )
        assert "all artifacts regenerated" in capsys.readouterr().out
        # The returned manifest matches the one on disk.
        on_disk = json.loads((tmp_path / "manifest.json").read_text())
        assert on_disk["preset"] == "default"
        assert [a["name"] for a in on_disk["artifacts"]] == ["table1", "figure9"]
        assert manifest["preset"] == "default"
        assert manifest["manifest_path"] == str(tmp_path / "manifest.json")
        for entry in on_disk["artifacts"]:
            assert entry["path"].endswith(f"{entry['name']}.txt")
            assert entry["elapsed_seconds"] >= 0
            assert entry["bytes"] > 0

    def test_full_and_fast_flags_select_presets(self, tmp_path, monkeypatch):
        _stub_artifacts(monkeypatch, names=("figure9",))
        runall.main([str(tmp_path), "--full"])
        assert "(full)" in (tmp_path / "figure9.txt").read_text()
        runall.main([str(tmp_path), "--fast"])
        assert "(fast)" in (tmp_path / "figure9.txt").read_text()

    def test_artifact_paths_identical_across_presets(
        self, tmp_path, monkeypatch
    ):
        """The historical bug: half-scale vs --full outputs were
        indistinguishable.  Paths stay unified; the manifest records
        the preset."""
        _stub_artifacts(monkeypatch, names=("figure9",))
        default = runall.main([str(tmp_path)])
        full = runall.main([str(tmp_path), "--full"])
        assert (
            default["artifacts"][0]["path"] == full["artifacts"][0]["path"]
        )
        assert (default["preset"], full["preset"]) == ("default", "full")

    def test_default_directory(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        _stub_artifacts(monkeypatch, names=("table1",))
        runall.main([])
        assert (tmp_path / "experiments_output" / "table1.txt").exists()
        assert (tmp_path / "experiments_output" / "manifest.json").exists()


class TestCampaignRegistry:
    def test_unknown_artifact_rejected(self):
        import pytest

        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError, match="unknown artifact"):
            campaigns.generate("figure99")

    def test_unknown_preset_rejected(self):
        import pytest

        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError, match="preset"):
            campaigns.generate("table1", preset="warp")

    def test_full_falls_back_to_default_when_absent(self, monkeypatch):
        artifact = campaigns.Artifact(
            name="x", title="x",
            default=lambda: "default text", fast=lambda: "fast text",
        )
        assert artifact.generate("full") == "default text"

    def test_run_campaign_without_output_dir_returns_manifest(
        self, monkeypatch
    ):
        _stub_artifacts(monkeypatch, names=("table1",))
        manifest = campaigns.run_campaign(preset="fast")
        assert manifest["output_dir"] is None
        assert manifest["artifacts"][0]["path"] is None
        assert "manifest_path" not in manifest
