"""Tests for Figure 9's interpolation helper and small-scale runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figure9 import (
    TradeoffPoint,
    interpolated_error_at_epsilon,
    run_figure9,
)


def _points():
    return [
        TradeoffPoint("all", 1.0, 1.0, 0.100, 0),
        TradeoffPoint("all", 2.0, 10.0, 0.010, 0),
        TradeoffPoint("all", 3.0, 100.0, 0.001, 0),
        TradeoffPoint("single", 1.0, 0.5, 0.200, 10),
    ]


class TestInterpolation:
    def test_exact_at_knots(self):
        points = _points()
        assert interpolated_error_at_epsilon(points, "all", 10.0) == pytest.approx(
            0.010
        )

    def test_log_log_midpoint(self):
        points = _points()
        # Halfway in log-eps between 1 and 10 -> halfway in log-error
        # between 0.1 and 0.01.
        value = interpolated_error_at_epsilon(points, "all", np.sqrt(10.0))
        assert value == pytest.approx(np.sqrt(0.1 * 0.01), rel=1e-9)

    def test_clamps_below_range(self):
        assert interpolated_error_at_epsilon(_points(), "all", 0.01) == 0.100

    def test_clamps_above_range(self):
        assert interpolated_error_at_epsilon(_points(), "all", 1e6) == 0.001

    def test_filters_by_protocol(self):
        assert interpolated_error_at_epsilon(_points(), "single", 0.5) == 0.200


class TestSmallScaleRun:
    def test_tiny_run_structure(self):
        points = run_figure9(
            eps0_values=(2.0,), scale=0.25, dimension=20, repeats=1
        )
        assert {p.protocol for p in points} == {"all", "single"}
        for point in points:
            assert point.squared_error >= 0.0
            assert point.central_epsilon > 0.0
        single = next(p for p in points if p.protocol == "single")
        assert single.dummy_count > 0
