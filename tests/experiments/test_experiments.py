"""Smoke + shape tests for the experiment modules (fast configurations).

The full-size shape assertions live in ``benchmarks/``; here we verify
the experiment APIs run, return well-formed rows, and respect their
parameters, at small scales suitable for the unit suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.table1 import (
    CLAIMED_EPS0_EXPONENTS,
    mechanism_functions,
    render_table1,
    run_table1,
)
from repro.experiments.table3 import fit_complexity, measure_complexity
from repro.experiments.table4 import run_table4


class TestConfig:
    def test_defaults(self):
        assert DEFAULT_CONFIG.delta == 1e-6
        assert DEFAULT_CONFIG.seed == 0

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.delta = 0.5  # type: ignore[misc]


class TestTable1:
    def test_all_mechanisms_present(self):
        functions = mechanism_functions(DEFAULT_CONFIG)
        assert set(functions) == set(CLAIMED_EPS0_EXPONENTS)

    def test_small_run(self):
        rows = run_table1(
            n_values=(10_000, 100_000),
            eps0_values=(1.5, 2.0, 2.5),
        )
        assert len(rows) == 6
        rendered = render_table1(rows)
        assert "network shuffling (single)" in rendered

    def test_no_amplification_row_flat(self):
        rows = run_table1(n_values=(10_000, 100_000), eps0_values=(1.5, 2.0))
        none = next(r for r in rows if r.mechanism == "no amplification")
        assert none.fitted_eps0_exponent == 0.0
        assert none.fitted_n_exponent == 0.0


class TestTable3:
    def test_points_per_mechanism(self):
        points = measure_complexity((64, 128))
        assert len(points) == 6
        fits = fit_complexity(points)
        assert len(fits) == 3

    def test_prochlo_memory_exact(self):
        points = measure_complexity((64, 128))
        prochlo = [p for p in points if p.mechanism == "prochlo"]
        assert [p.entity_peak_memory for p in prochlo] == [64, 128]


class TestTable4:
    def test_subset_run(self):
        rows = run_table4(
            names=("twitch",),
            config=ExperimentConfig(dataset_scale=0.3),
        )
        assert len(rows) == 1
        assert rows[0].name == "twitch"
        assert rows[0].scale == 0.3


class TestFigure4:
    def test_series_structure(self):
        series = run_figure4(
            datasets=("twitch",), max_steps=20, num_points=10,
        )
        assert len(series) == 1
        s = series[0]
        assert s.steps[0] == 0
        assert len(s.steps) == len(s.epsilon)
        assert s.converged_step >= 0


class TestFigure5:
    def test_series_structure(self):
        series = run_figure5(degrees=(4, 8), num_nodes=256, max_steps=10)
        assert [s.degree for s in series] == [4, 8]
        assert all(len(s.epsilon) == 10 for s in series)

    def test_convergence_ordering_small(self):
        series = run_figure5(degrees=(4, 16), num_nodes=256, max_steps=15)
        by_degree = {s.degree: s for s in series}
        assert (
            by_degree[16].converged_step <= by_degree[4].converged_step
        )


class TestFigure6:
    def test_uses_published_values(self):
        curves = run_figure6(eps0_values=(0.5, 1.0), datasets=("google",))
        assert curves[0].n == 855_802
        assert curves[0].gamma == pytest.approx(20.642)

    def test_epsilon_at_lookup(self):
        curves = run_figure6(eps0_values=(0.5, 1.0), datasets=("twitch",))
        assert curves[0].epsilon_at(0.5) == pytest.approx(
            float(curves[0].epsilon[0])
        )


class TestFigure7:
    def test_crossover_detection(self):
        comparisons = run_figure7(
            eps0_values=np.linspace(0.5, 4.0, 8), datasets=("twitch",)
        )
        crossover = comparisons[0].crossover_eps0()
        assert crossover is not None
        assert 0.5 <= crossover <= 4.0


class TestFigure8:
    def test_grid_size(self):
        curves = run_figure8(
            eps0_values=(0.5, 1.0),
            gammas=(1.0,),
            n_values=(10_000,),
            protocols=("all", "single"),
        )
        assert len(curves) == 2

    def test_labels(self):
        curves = run_figure8(
            eps0_values=(0.5,), gammas=(1.0,), n_values=(10_000,),
            protocols=("all",),
        )
        assert "Gamma=1" in curves[0].label
