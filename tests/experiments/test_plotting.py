"""Tests for the ASCII chart renderer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.experiments.plotting import Series, ascii_chart


@pytest.fixture
def simple_series():
    x = np.linspace(0, 10, 20)
    return [
        Series("linear", x, x),
        Series("quadratic", x, x**2 + 1),
    ]


class TestSeries:
    def test_valid(self):
        series = Series("s", [1, 2], [3, 4])
        assert series.x.shape == (2,)

    def test_rejects_mismatched(self):
        with pytest.raises(ValidationError):
            Series("s", [1, 2], [3])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            Series("s", [], [])


class TestAsciiChart:
    def test_renders_all_parts(self, simple_series):
        chart = ascii_chart(
            simple_series, title="demo", x_label="t", y_label="eps"
        )
        assert "demo" in chart
        assert "legend:" in chart
        assert "* linear" in chart
        assert "o quadratic" in chart
        assert "eps" in chart

    def test_markers_present(self, simple_series):
        chart = ascii_chart(simple_series)
        assert "*" in chart
        assert "o" in chart

    def test_log_scale(self):
        x = np.linspace(0, 10, 20)
        positive = [Series("exp", x, np.exp(x))]
        chart = ascii_chart(positive, log_y=True)
        assert "(log)" in chart

    def test_log_rejects_non_positive(self):
        series = [Series("s", [0, 1], [0.0, 1.0])]
        with pytest.raises(ValidationError):
            ascii_chart(series, log_y=True)

    def test_rejects_empty_series_list(self):
        with pytest.raises(ValidationError):
            ascii_chart([])

    def test_rejects_tiny_canvas(self, simple_series):
        with pytest.raises(ValidationError):
            ascii_chart(simple_series, width=4, height=2)

    def test_dimensions(self, simple_series):
        chart = ascii_chart(simple_series, width=40, height=10)
        plot_lines = [line for line in chart.splitlines() if "|" in line]
        assert len(plot_lines) == 10
        for line in plot_lines:
            interior = line.split("|")[1]
            assert len(interior) == 40

    def test_constant_series(self):
        chart = ascii_chart([Series("flat", [0, 1, 2], [5, 5, 5])])
        assert "flat" in chart

    def test_monotone_series_renders_monotone(self):
        """Higher y must land on a higher row (or equal)."""
        x = np.arange(10)
        chart = ascii_chart(
            [Series("inc", x, x)], width=20, height=10
        )
        rows = chart.splitlines()
        plot = [line.split("|")[1] for line in rows if "|" in line]
        first_marker_row = next(
            i for i, line in enumerate(plot) if "*" in line
        )
        last_marker_row = max(
            i for i, line in enumerate(plot) if "*" in line
        )
        first_col = plot[first_marker_row].index("*")
        last_col = plot[last_marker_row].index("*")
        # Top rows come first: the increasing series' top-row marker is
        # at a larger x (column) than its bottom-row marker.
        assert first_col > last_col


class TestSweepSeries:
    def _grid(self):
        from repro.scenario import GraphSpec, Scenario, sweep

        base = Scenario(
            graph=GraphSpec.of("k_regular", degree=4, num_nodes=64),
            epsilon0=1.0,
            seed=0,
        )
        return sweep(
            base,
            axis={"graph.degree": [4, 6], "rounds": [2, 4]},
            mode="bound",
        )

    def test_one_series_per_non_x_combination(self):
        from repro.experiments.plotting import sweep_series

        series = sweep_series(self._grid(), "rounds")
        assert [s.label for s in series] == [
            "graph.degree=4", "graph.degree=6"
        ]
        for s in series:
            assert s.x.tolist() == [2, 4]
            assert len(s.y) == 2

    def test_unknown_axis_is_loud(self):
        import pytest

        from repro.exceptions import ValidationError
        from repro.experiments.plotting import sweep_series

        with pytest.raises(ValidationError, match="not a sweep axis"):
            sweep_series(self._grid(), "laziness")

    def test_charts_directly(self):
        from repro.experiments.plotting import ascii_chart, sweep_series

        chart = ascii_chart(sweep_series(self._grid(), "rounds"), log_y=True)
        assert "graph.degree=4" in chart
