"""Tests for the estimation layer (mean / frequency / metrics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimation.frequency import run_frequency_estimation
from repro.estimation.mean import (
    generate_bimodal_unit_vectors,
    make_dummy_factory,
    run_mean_estimation,
    true_mean,
)
from repro.estimation.metrics import (
    max_absolute_error,
    mean_squared_error,
    squared_l2_error,
)
from repro.exceptions import ValidationError
from repro.graphs.generators import random_regular_graph
from repro.ldp.privunit import PrivUnit


class TestMetrics:
    def test_squared_l2(self):
        assert squared_l2_error(np.array([1.0, 2.0]), np.array([0.0, 0.0])) == 5.0

    def test_squared_l2_shape_mismatch(self):
        with pytest.raises(ValidationError):
            squared_l2_error(np.zeros(2), np.zeros(3))

    def test_mse_rows(self):
        estimates = np.array([[1.0, 0.0], [0.0, 1.0]])
        truths = np.zeros((2, 2))
        assert mean_squared_error(estimates, truths) == 1.0

    def test_max_abs(self):
        assert max_absolute_error(
            np.array([0.1, -0.5]), np.array([0.0, 0.0])
        ) == 0.5


class TestBimodalData:
    def test_unit_norms(self):
        data = generate_bimodal_unit_vectors(100, 50, rng=0)
        np.testing.assert_allclose(np.linalg.norm(data, axis=1), 1.0)

    def test_two_clusters(self):
        data = generate_bimodal_unit_vectors(200, 100, rng=0)
        half = 100
        # High-mean cluster concentrates harder on the diagonal.
        low_norm_of_mean = np.linalg.norm(data[:half].mean(axis=0))
        high_norm_of_mean = np.linalg.norm(data[half:].mean(axis=0))
        assert high_norm_of_mean > low_norm_of_mean

    def test_true_mean(self):
        data = generate_bimodal_unit_vectors(50, 10, rng=0)
        np.testing.assert_allclose(true_mean(data), data.mean(axis=0))

    def test_deterministic(self):
        a = generate_bimodal_unit_vectors(30, 10, rng=5)
        b = generate_bimodal_unit_vectors(30, 10, rng=5)
        np.testing.assert_array_equal(a, b)


class TestDummyFactory:
    def test_produces_debiased_reports(self, rng):
        randomizer = PrivUnit(2.0, 20)
        factory = make_dummy_factory(randomizer)
        dummy = factory(rng)
        assert dummy.shape == (20,)
        # Reports are scaled by 1/m, so their norm is 1/m.
        assert np.linalg.norm(dummy) == pytest.approx(
            1.0 / randomizer.scale, rel=1e-9
        )


class TestMeanEstimation:
    @pytest.fixture
    def setup(self):
        graph = random_regular_graph(6, 300, rng=0)
        values = generate_bimodal_unit_vectors(300, 30, rng=1)
        return graph, values

    def test_all_protocol_reasonable_error(self, setup):
        graph, values = setup
        result = run_mean_estimation(
            graph, values, 4.0, protocol="all", rounds=20, rng=2
        )
        assert result.protocol == "all"
        assert result.dummy_count == 0
        assert result.num_reports == 300
        assert result.squared_error < 1.0

    def test_single_protocol_has_dummies(self, setup):
        graph, values = setup
        result = run_mean_estimation(
            graph, values, 4.0, protocol="single", rounds=20, rng=2
        )
        assert result.dummy_count > 0
        assert result.num_reports == 300

    def test_error_decreases_with_epsilon(self, setup):
        graph, values = setup
        noisy = run_mean_estimation(
            graph, values, 1.0, protocol="all", rounds=10, rng=2
        )
        precise = run_mean_estimation(
            graph, values, 6.0, protocol="all", rounds=10, rng=2
        )
        assert precise.squared_error < noisy.squared_error

    def test_all_beats_single_at_same_eps0(self, setup):
        """At equal eps0 A_single pays the dummy-bias penalty on top of
        the same per-report noise.  High eps0 shrinks the shared noise
        so the penalty dominates; the comparison is seed-paired to cut
        Monte-Carlo variance."""
        graph, values = setup
        differences = []
        for seed in range(8):
            error_all = run_mean_estimation(
                graph, values, 6.0, protocol="all", rounds=15, rng=seed
            ).squared_error
            error_single = run_mean_estimation(
                graph, values, 6.0, protocol="single", rounds=15, rng=seed
            ).squared_error
            differences.append(error_single - error_all)
        assert np.mean(differences) > 0.0

    def test_default_rounds_is_mixing_time(self, setup):
        graph, values = setup
        result = run_mean_estimation(graph, values, 3.0, rng=0)
        assert result.squared_error >= 0.0

    def test_rejects_bad_protocol(self, setup):
        graph, values = setup
        with pytest.raises(ValidationError):
            run_mean_estimation(graph, values, 1.0, protocol="half", rng=0)

    def test_rejects_value_count_mismatch(self, setup):
        graph, _ = setup
        with pytest.raises(ValidationError):
            run_mean_estimation(graph, np.zeros((5, 3)), 1.0, rng=0)


class TestFrequencyEstimation:
    @pytest.fixture
    def setup(self):
        graph = random_regular_graph(6, 400, rng=0)
        symbols = np.arange(400) % 4
        return graph, symbols

    def test_estimates_frequencies(self, setup):
        graph, symbols = setup
        result = run_frequency_estimation(
            graph, symbols, 3.0, 4, rounds=15, rng=1
        )
        np.testing.assert_allclose(result.truth, 0.25)
        assert result.max_error < 0.15

    def test_single_protocol_runs(self, setup):
        graph, symbols = setup
        result = run_frequency_estimation(
            graph, symbols, 3.0, 4, protocol="single", rounds=15, rng=1
        )
        assert result.dummy_count > 0
        assert result.estimate.shape == (4,)

    def test_more_budget_less_error(self, setup):
        graph, symbols = setup
        noisy = np.mean([
            run_frequency_estimation(
                graph, symbols, 0.5, 4, rounds=10, rng=s
            ).max_error
            for s in range(5)
        ])
        precise = np.mean([
            run_frequency_estimation(
                graph, symbols, 5.0, 4, rounds=10, rng=s
            ).max_error
            for s in range(5)
        ])
        assert precise < noisy

    def test_rejects_out_of_range_symbols(self, setup):
        graph, symbols = setup
        with pytest.raises(ValidationError):
            run_frequency_estimation(graph, symbols, 1.0, 2, rng=0)

    def test_rejects_count_mismatch(self, setup):
        graph, _ = setup
        with pytest.raises(ValidationError):
            run_frequency_estimation(graph, np.array([0, 1]), 1.0, 2, rng=0)
