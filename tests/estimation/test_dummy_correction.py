"""Tests for the A_single histogram dummy correction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimation.frequency import correct_for_dummies
from repro.exceptions import ValidationError


class TestCorrectForDummies:
    def test_no_dummies_is_identity(self):
        raw = np.array([0.4, 0.3, 0.3])
        np.testing.assert_allclose(correct_for_dummies(raw, 0.0), raw)

    def test_exact_inversion(self):
        """Mix truth with a dummy spike and invert exactly."""
        truth = np.array([0.5, 0.3, 0.2])
        f = 0.4
        observed = (1 - f) * truth
        observed[0] += f
        recovered = correct_for_dummies(observed, f)
        np.testing.assert_allclose(recovered, truth, atol=1e-12)

    def test_preserves_total_mass(self):
        truth = np.array([0.25, 0.25, 0.5])
        f = 0.3
        observed = (1 - f) * truth
        observed[0] += f
        assert correct_for_dummies(observed, f).sum() == pytest.approx(1.0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValidationError):
            correct_for_dummies(np.array([1.0]), 1.0)
        with pytest.raises(ValidationError):
            correct_for_dummies(np.array([1.0]), -0.1)

    def test_end_to_end_improves_estimate(self):
        """On a real A_single run the corrected histogram beats the
        uncorrected one (regression test for the survey example)."""
        from repro.estimation.frequency import run_frequency_estimation
        from repro.graphs.generators import random_regular_graph

        graph = random_regular_graph(6, 600, rng=0)
        rng = np.random.default_rng(1)
        symbols = rng.choice(4, size=600, p=[0.4, 0.3, 0.2, 0.1])
        result = run_frequency_estimation(
            graph, symbols, 3.0, 4, protocol="single", rounds=25, rng=2
        )
        # The corrected estimate (built in) lands near the truth even
        # though ~1/e of reports were dummies at symbol 0.
        assert result.dummy_count > 100
        assert result.max_error < 0.12
