"""Tests for synthetic dataset materialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.registry import DATASETS, dataset_names, get_dataset
from repro.datasets.synthetic import (
    SyntheticDataset,
    build_dataset,
    configuration_model_graph,
)
from repro.exceptions import ValidationError
from repro.graphs.connectivity import is_connected
from repro.graphs.metrics import irregularity_gamma


class TestRegistry:
    def test_all_five_datasets(self):
        assert dataset_names() == [
            "facebook", "twitch", "deezer", "enron", "google",
        ]

    def test_published_values_match_paper(self):
        assert DATASETS["facebook"].num_nodes == 22_470
        assert DATASETS["twitch"].gamma == pytest.approx(7.584)
        assert DATASETS["google"].num_nodes == 855_802
        assert DATASETS["enron"].gamma == pytest.approx(36.866)

    def test_lookup_case_insensitive(self):
        assert get_dataset("FaceBook").name == "facebook"

    def test_unknown_raises(self):
        with pytest.raises(ValidationError, match="unknown dataset"):
            get_dataset("myspace")

    def test_scaled_nodes(self):
        spec = get_dataset("twitch")
        assert spec.scaled_nodes(0.5) == round(9_498 * 0.5)
        assert spec.scaled_nodes(1e-9) == 100  # floor

    def test_scaled_nodes_rejects_bad_scale(self):
        with pytest.raises(ValidationError):
            get_dataset("twitch").scaled_nodes(1.5)


class TestConfigurationModel:
    def test_no_self_loops_or_duplicates(self):
        degrees = np.array([3, 3, 2, 2, 2])
        graph = configuration_model_graph(degrees, rng=0)
        for u, v in graph.edges():
            assert u != v
        # Graph dedupes by construction; edge count is at most sum/2.
        assert graph.num_edges <= degrees.sum() // 2

    def test_degrees_close_to_prescribed(self):
        degrees = np.full(500, 6)
        graph = configuration_model_graph(degrees, rng=0)
        realized = graph.degrees()
        # Erasure loses a few percent at most for bounded degrees.
        assert realized.mean() == pytest.approx(6.0, rel=0.05)

    def test_rejects_odd_sum(self):
        with pytest.raises(ValidationError):
            configuration_model_graph(np.array([1, 1, 1]), rng=0)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            configuration_model_graph(np.array([-1, 1]), rng=0)

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            configuration_model_graph(np.array([]), rng=0)

    def test_deterministic(self):
        degrees = np.full(100, 4)
        a = configuration_model_graph(degrees, rng=9)
        b = configuration_model_graph(degrees, rng=9)
        assert a == b


class TestBuildDataset:
    @pytest.mark.parametrize("name", ["twitch", "deezer"])
    def test_full_scale_matches_published(self, name):
        dataset = build_dataset(name, seed=0)
        assert dataset.num_nodes == dataset.published_num_nodes
        assert dataset.gamma_relative_error <= 0.10

    def test_scaled_build(self):
        dataset = build_dataset("twitch", scale=0.25, seed=0)
        assert dataset.num_nodes == pytest.approx(9498 * 0.25, rel=0.1)

    def test_lcc_is_connected(self):
        dataset = build_dataset("twitch", scale=0.3, seed=0)
        assert is_connected(dataset.graph)

    def test_gamma_matches_graph(self):
        dataset = build_dataset("deezer", scale=0.3, seed=0)
        assert dataset.achieved_gamma == pytest.approx(
            irregularity_gamma(dataset.graph)
        )

    def test_google_uses_default_scale(self):
        dataset = build_dataset("google", seed=0)
        assert dataset.scale == 0.05
        assert dataset.num_nodes < 100_000

    def test_caching_returns_same_object(self):
        a = build_dataset("twitch", scale=0.3, seed=0)
        b = build_dataset("twitch", scale=0.3, seed=0)
        assert a is b

    def test_different_seeds_differ(self):
        a = build_dataset("twitch", scale=0.3, seed=1)
        b = build_dataset("twitch", scale=0.3, seed=2)
        assert a.graph != b.graph

    def test_result_type(self):
        dataset = build_dataset("facebook", scale=0.2, seed=0)
        assert isinstance(dataset, SyntheticDataset)
        assert dataset.name == "facebook"
        assert dataset.published_gamma == pytest.approx(5.0064)
