"""Tests for community-structured stand-ins."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.community import (
    build_community_dataset,
    planted_partition_from_degrees,
)
from repro.exceptions import ValidationError
from repro.graphs.connectivity import is_connected
from repro.graphs.spectral import spectral_gap
from repro.graphs.metrics import irregularity_gamma


class TestPlantedPartition:
    def test_basic_construction(self):
        degrees = np.full(200, 6)
        graph = planted_partition_from_degrees(degrees, 4, 0.1, rng=0)
        assert graph.num_nodes == 200
        assert graph.num_edges > 0

    def test_degrees_roughly_preserved(self):
        degrees = np.full(400, 8)
        graph = planted_partition_from_degrees(degrees, 4, 0.1, rng=0)
        assert graph.degrees().mean() == pytest.approx(8.0, rel=0.1)

    def test_zero_inter_fraction_disconnects_communities(self):
        degrees = np.full(100, 6)
        graph = planted_partition_from_degrees(degrees, 2, 0.0, rng=0)
        # No cross edges: nodes 0,2,4,... (community 0) never touch
        # community 1 (nodes 1,3,5,...).
        communities = np.arange(100) % 2
        for u, v in graph.edges():
            assert communities[u] == communities[v]

    def test_full_inter_fraction_is_plain_configuration_model(self):
        degrees = np.full(100, 6)
        graph = planted_partition_from_degrees(degrees, 2, 1.0, rng=0)
        cross = sum(
            1 for u, v in graph.edges() if (u % 2) != (v % 2)
        )
        assert cross > 0.3 * graph.num_edges

    def test_smaller_inter_fraction_smaller_gap(self):
        """The headline property: community structure slows mixing."""
        degrees = np.full(600, 8)
        weak = planted_partition_from_degrees(degrees, 6, 0.03, rng=0)
        strong = planted_partition_from_degrees(degrees, 6, 0.5, rng=0)
        if is_connected(weak) and is_connected(strong):
            assert spectral_gap(weak, validate=False) < spectral_gap(
                strong, validate=False
            )

    def test_rejects_too_many_communities(self):
        with pytest.raises(ValidationError):
            planted_partition_from_degrees(np.full(3, 2), 5, 0.1, rng=0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValidationError):
            planted_partition_from_degrees(np.full(10, 2), 2, 1.5, rng=0)


class TestBuildCommunityDataset:
    def test_slower_mixing_than_plain_standin(self):
        from repro.datasets.synthetic import build_dataset

        plain = build_dataset("twitch", scale=0.3, seed=0)
        community = build_community_dataset(
            "twitch", scale=0.3, inter_fraction=0.03, seed=0
        )
        plain_gap = spectral_gap(plain.graph, validate=False)
        community_gap = spectral_gap(community.graph, validate=False)
        assert community_gap < plain_gap / 3

    def test_metadata(self):
        dataset = build_community_dataset(
            "deezer", scale=0.1, num_communities=10, inter_fraction=0.05,
            seed=0,
        )
        assert dataset.name == "deezer"
        assert dataset.num_communities == 10
        assert dataset.inter_fraction == 0.05
        assert dataset.achieved_gamma == pytest.approx(
            irregularity_gamma(dataset.graph)
        )

    def test_lcc_connected(self):
        dataset = build_community_dataset(
            "deezer", scale=0.1, inter_fraction=0.05, seed=0
        )
        assert is_connected(dataset.graph)
