"""Tests for the power-law degree calibration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.calibration import (
    CalibrationResult,
    calibrate_shape,
    pareto_degree_sequence,
)
from repro.exceptions import CalibrationError, ValidationError
from repro.graphs.metrics import gamma_from_degrees


class TestParetoDegreeSequence:
    def test_length(self):
        degrees = pareto_degree_sequence(100, 2.0, rng=0)
        assert degrees.size == 100

    def test_min_degree_respected(self):
        degrees = pareto_degree_sequence(100, 2.0, min_degree=5, rng=0)
        assert degrees.min() >= 5

    def test_even_sum(self):
        for seed in range(5):
            degrees = pareto_degree_sequence(77, 1.5, rng=seed)
            assert degrees.sum() % 2 == 0

    def test_max_degree_cap(self):
        degrees = pareto_degree_sequence(100, 1.05, max_degree=20, rng=0)
        assert degrees.max() <= 20

    def test_deterministic(self):
        a = pareto_degree_sequence(50, 2.0, rng=3)
        b = pareto_degree_sequence(50, 2.0, rng=3)
        np.testing.assert_array_equal(a, b)

    def test_heavier_tail_with_smaller_shape(self):
        light = pareto_degree_sequence(2000, 8.0, rng=0)
        heavy = pareto_degree_sequence(2000, 1.2, rng=0)
        assert gamma_from_degrees(heavy) > gamma_from_degrees(light)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValidationError):
            pareto_degree_sequence(10, 0.0, rng=0)


class TestCalibrateShape:
    def test_hits_moderate_target(self):
        result = calibrate_shape(5000, 3.0, seed=0)
        assert result.relative_error <= 0.02

    def test_hits_heavy_target(self):
        result = calibrate_shape(20_000, 20.0, min_degree=1, seed=0)
        assert result.relative_error <= 0.02

    def test_near_regular_target(self):
        result = calibrate_shape(5000, 1.05, seed=0)
        assert result.achieved_gamma == pytest.approx(1.05, rel=0.05)

    def test_rejects_gamma_below_one(self):
        with pytest.raises(CalibrationError):
            calibrate_shape(1000, 0.5, seed=0)

    def test_boundary_acceptance(self):
        """A just-out-of-range target snaps to the reachable boundary."""
        # Find the boundary for a small n, then ask slightly beyond it.
        probe = calibrate_shape(800, 3.0, seed=0)
        assert isinstance(probe, CalibrationResult)

    def test_unreachable_target_raises(self):
        with pytest.raises(CalibrationError):
            calibrate_shape(500, 500.0, seed=0)

    def test_deterministic(self):
        a = calibrate_shape(3000, 5.0, seed=1)
        b = calibrate_shape(3000, 5.0, seed=1)
        assert a.shape == b.shape

    @given(st.floats(min_value=1.5, max_value=8.0))
    @settings(max_examples=10, deadline=None)
    def test_calibration_accuracy_property(self, target):
        result = calibrate_shape(4000, target, seed=0)
        assert result.relative_error <= 0.10
