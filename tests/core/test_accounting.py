"""Tests for the privacy accountant."""

from __future__ import annotations

import pytest

from repro.core.accounting import PrivacyAccountant
from repro.exceptions import BudgetExceededError


class TestBasicAccounting:
    def test_starts_empty(self):
        accountant = PrivacyAccountant(1.0, 1e-5)
        assert accountant.spent() == (0.0, 0.0)
        assert accountant.remaining() == (1.0, 1e-5)
        assert accountant.num_recorded == 0

    def test_records_accumulate(self):
        accountant = PrivacyAccountant(1.0, 1e-5)
        accountant.record(0.3, 1e-6)
        accountant.record(0.2, 1e-6)
        eps, delta = accountant.spent()
        assert eps == pytest.approx(0.5)
        assert delta == pytest.approx(2e-6)

    def test_budget_enforced(self):
        accountant = PrivacyAccountant(0.5, 1e-5)
        accountant.record(0.4, 0.0)
        with pytest.raises(BudgetExceededError):
            accountant.record(0.2, 0.0)

    def test_delta_budget_enforced(self):
        accountant = PrivacyAccountant(10.0, 1e-6)
        with pytest.raises(BudgetExceededError):
            accountant.record(0.1, 1e-5)

    def test_can_afford(self):
        accountant = PrivacyAccountant(1.0, 1e-5)
        assert accountant.can_afford(0.9, 0.0)
        assert not accountant.can_afford(1.1, 0.0)

    def test_failed_record_does_not_spend(self):
        accountant = PrivacyAccountant(0.5, 1e-5)
        with pytest.raises(BudgetExceededError):
            accountant.record(0.6, 0.0)
        assert accountant.spent() == (0.0, 0.0)

    def test_remaining_floors_at_zero(self):
        accountant = PrivacyAccountant(0.5, 1e-5)
        accountant.record(0.5, 0.0)
        assert accountant.remaining()[0] == 0.0


class TestAdvancedAccounting:
    def test_beats_basic_for_many_small(self):
        basic = PrivacyAccountant(100.0, 1e-2, composition="basic")
        advanced = PrivacyAccountant(100.0, 1e-2, composition="advanced")
        for _ in range(200):
            basic.record(0.05, 0.0)
            advanced.record(0.05, 0.0)
        assert advanced.spent()[0] < basic.spent()[0]

    def test_advanced_pays_slack_delta(self):
        accountant = PrivacyAccountant(
            10.0, 1e-2, composition="advanced", advanced_delta=1e-6
        )
        accountant.record(0.1, 0.0)
        assert accountant.spent()[1] == pytest.approx(1e-6)

    def test_rejects_unknown_composition(self):
        with pytest.raises(ValueError):
            PrivacyAccountant(1.0, 1e-5, composition="renyi")

    def test_rejects_bad_budget(self):
        with pytest.raises(Exception):
            PrivacyAccountant(-1.0, 1e-5)
