"""Tests for multi-collection campaigns."""

from __future__ import annotations

import pytest

from repro.core.accounting import PrivacyAccountant
from repro.core.campaign import Campaign
from repro.core.shuffler import NetworkShuffler
from repro.graphs.generators import random_regular_graph
from repro.ldp.randomized_response import BinaryRandomizedResponse


@pytest.fixture
def shuffler():
    graph = random_regular_graph(8, 300, rng=0)
    return NetworkShuffler(
        graph, epsilon0=0.3, delta=1e-8, protocol="single", rounds=20
    )


def _values(index, rng):
    return [int(b) for b in rng.integers(0, 2, size=300)]


class TestCampaign:
    def test_runs_to_max_collections(self, shuffler):
        accountant = PrivacyAccountant(100.0, 1e-2)
        campaign = Campaign(shuffler, accountant)
        summary = campaign.run(_values, max_collections=3, rng=1)
        assert summary.num_collections == 3
        assert summary.stopped_reason == "max collections reached"
        assert accountant.num_recorded == 3

    def test_stops_at_budget(self, shuffler):
        eps, _ = Campaign(
            shuffler, PrivacyAccountant(100.0, 1e-2)
        ).per_collection_guarantee
        accountant = PrivacyAccountant(2.5 * eps, 1e-2)
        campaign = Campaign(shuffler, accountant)
        summary = campaign.run(_values, max_collections=10, rng=1)
        assert summary.num_collections == 2
        assert summary.stopped_reason == "budget exhausted"

    def test_affordable_collections_prediction(self, shuffler):
        eps, _ = Campaign(
            shuffler, PrivacyAccountant(100.0, 1e-2)
        ).per_collection_guarantee
        accountant = PrivacyAccountant(3.5 * eps, 1e-2)
        campaign = Campaign(shuffler, accountant)
        predicted = campaign.affordable_collections()
        summary = campaign.run(_values, max_collections=50, rng=1)
        assert summary.num_collections == predicted == 3

    def test_advanced_composition_affords_more(self, shuffler):
        """Advanced composition's sqrt(k) scaling wins once the budget
        covers many repetitions (for a handful, basic is tighter)."""
        eps, _ = Campaign(
            shuffler, PrivacyAccountant(100.0, 1e-2)
        ).per_collection_guarantee
        budget = 200 * eps
        basic = Campaign(
            shuffler, PrivacyAccountant(budget, 1e-2, composition="basic")
        ).affordable_collections(limit=2000)
        advanced = Campaign(
            shuffler, PrivacyAccountant(budget, 1e-2, composition="advanced")
        ).affordable_collections(limit=2000)
        assert basic == 200
        assert advanced > basic

    def test_collections_carry_results(self, shuffler):
        accountant = PrivacyAccountant(100.0, 1e-2)
        campaign = Campaign(shuffler, accountant)
        summary = campaign.run(
            _values,
            randomizer=BinaryRandomizedResponse(0.3),
            max_collections=2,
            rng=1,
        )
        for record in summary.collections:
            assert record.result.protocol == "single"
            assert len(record.result.server_reports) == 300

    def test_value_source_receives_index(self, shuffler):
        seen = []

        def source(index, rng):
            seen.append(index)
            return [0] * 300

        Campaign(shuffler, PrivacyAccountant(100.0, 1e-2)).run(
            source, max_collections=3, rng=0
        )
        assert seen == [0, 1, 2]
