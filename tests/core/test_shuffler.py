"""Tests for the NetworkShuffler facade."""

from __future__ import annotations

import pytest

from repro.core.shuffler import NetworkShuffler
from repro.exceptions import NotErgodicError, ValidationError
from repro.graphs.generators import cycle_graph, random_regular_graph
from repro.ldp.randomized_response import BinaryRandomizedResponse


@pytest.fixture
def graph():
    return random_regular_graph(6, 200, rng=0)


class TestConstruction:
    def test_defaults(self, graph):
        shuffler = NetworkShuffler(graph, epsilon0=1.0, delta=1e-6)
        assert shuffler.protocol == "all"
        assert shuffler.analysis == "stationary"
        assert shuffler.rounds == shuffler.spectral.mixing_time

    def test_explicit_rounds(self, graph):
        shuffler = NetworkShuffler(graph, 1.0, 1e-6, rounds=5)
        assert shuffler.rounds == 5

    def test_config_snapshot(self, graph):
        shuffler = NetworkShuffler(graph, 1.0, 1e-6, protocol="single")
        config = shuffler.config
        assert config.protocol == "single"
        assert config.epsilon0 == 1.0

    def test_rejects_non_ergodic_graph(self):
        with pytest.raises(NotErgodicError):
            NetworkShuffler(cycle_graph(6), 1.0, 1e-6)

    def test_rejects_bad_protocol(self, graph):
        with pytest.raises(ValidationError):
            NetworkShuffler(graph, 1.0, 1e-6, protocol="some")

    def test_rejects_bad_analysis(self, graph):
        with pytest.raises(ValidationError):
            NetworkShuffler(graph, 1.0, 1e-6, analysis="exact")

    def test_symmetric_requires_regular(self):
        irregular = random_regular_graph(4, 100, rng=0).subgraph(range(99))
        if irregular.is_regular():
            pytest.skip("subgraph happened to stay regular")
        with pytest.raises(ValidationError):
            NetworkShuffler(irregular, 1.0, 1e-6, analysis="symmetric")

    def test_rejects_zero_rounds(self, graph):
        with pytest.raises(ValidationError):
            NetworkShuffler(graph, 1.0, 1e-6, rounds=0)


class TestGuarantees:
    def test_stationary_all(self, graph):
        shuffler = NetworkShuffler(graph, 1.0, 1e-6)
        bound = shuffler.central_guarantee()
        assert bound.theorem.startswith("5.3")
        assert bound.epsilon > 0

    def test_stationary_single(self, graph):
        shuffler = NetworkShuffler(graph, 1.0, 1e-6, protocol="single")
        assert shuffler.central_guarantee().theorem.startswith("5.5")

    def test_symmetric_all(self, graph):
        shuffler = NetworkShuffler(graph, 1.0, 1e-6, analysis="symmetric")
        assert "5.4" in shuffler.central_guarantee().theorem

    def test_symmetric_single(self, graph):
        shuffler = NetworkShuffler(
            graph, 1.0, 1e-6, protocol="single", analysis="symmetric"
        )
        assert "5.6" in shuffler.central_guarantee().theorem

    def test_more_rounds_no_worse(self, graph):
        shuffler = NetworkShuffler(graph, 1.0, 1e-6)
        early = shuffler.central_guarantee(rounds=1).epsilon
        late = shuffler.central_guarantee(rounds=50).epsilon
        assert late <= early

    def test_empirical_below_closed_form(self, graph):
        shuffler = NetworkShuffler(graph, 1.0, 1e-6)
        result = shuffler.run([0, 1] * 100, rng=1)
        empirical = shuffler.empirical_guarantee(result)
        assert empirical < shuffler.central_guarantee().epsilon


class TestRun:
    def test_all_protocol_run(self, graph):
        shuffler = NetworkShuffler(graph, 1.0, 1e-6)
        result = shuffler.run(
            [0, 1] * 100, BinaryRandomizedResponse(1.0), rng=0
        )
        assert result.protocol == "all"
        assert len(result.server_reports) == 200

    def test_single_protocol_run(self, graph):
        shuffler = NetworkShuffler(graph, 1.0, 1e-6, protocol="single")
        result = shuffler.run([0, 1] * 100, rng=0)
        assert result.protocol == "single"

    def test_randomizer_epsilon_mismatch_rejected(self, graph):
        shuffler = NetworkShuffler(graph, 1.0, 1e-6)
        with pytest.raises(ValidationError):
            shuffler.run([0] * 200, BinaryRandomizedResponse(2.0), rng=0)

    def test_faithful_engine(self, graph):
        shuffler = NetworkShuffler(graph, 1.0, 1e-6, rounds=3)
        result = shuffler.run([0] * 200, engine="faithful", rng=0)
        assert result.meters is not None
