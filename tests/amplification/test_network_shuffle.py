"""Tests for the network-shuffling privacy theorems (5.3-5.6, 6.1)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.amplification.network_shuffle import (
    epsilon_all_stationary,
    epsilon_all_symmetric,
    epsilon_from_report_sizes,
    epsilon_one,
    epsilon_single_small_eps0,
    epsilon_single_stationary,
    epsilon_single_symmetric,
    max_delta0_for_clone,
    report_load_l2_bound,
    sum_squared_bound,
)
from repro.exceptions import ValidationError

N = 10_000
DELTA = 1e-6
UNIFORM_S = 1.0 / N


class TestSumSquaredBound:
    def test_equation7(self):
        assert sum_squared_bound(0.001, 0.3, 5) == pytest.approx(
            0.001 + 0.7**10
        )

    def test_capped_at_one(self):
        assert sum_squared_bound(0.5, 0.01, 0) == 1.0

    def test_monotone_decreasing_in_steps(self):
        values = [sum_squared_bound(0.001, 0.2, t) for t in range(20)]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_limit_is_stationary_collision(self):
        assert sum_squared_bound(0.001, 0.3, 10_000) == pytest.approx(0.001)

    def test_rejects_bad_gap(self):
        with pytest.raises(ValidationError):
            sum_squared_bound(0.001, 1.5, 3)

    def test_rejects_negative_steps(self):
        with pytest.raises(ValidationError):
            sum_squared_bound(0.001, 0.3, -1)


class TestLemma51:
    def test_formula(self):
        bound = report_load_l2_bound(N, UNIFORM_S, DELTA)
        expected = math.sqrt((N * N - N) * UNIFORM_S) + math.sqrt(
            N * math.log(1 / DELTA)
        )
        assert bound == pytest.approx(expected)

    def test_epsilon_one_is_bound_over_n(self):
        assert epsilon_one(N, UNIFORM_S, DELTA) == pytest.approx(
            report_load_l2_bound(N, UNIFORM_S, DELTA) / N
        )

    def test_epsilon_one_grows_with_collision(self):
        low = epsilon_one(N, 1.0 / N, DELTA)
        high = epsilon_one(N, 100.0 / N, DELTA)
        assert high > low

    def test_rejects_collision_below_uniform(self):
        """sum P^2 >= 1/n always (Cauchy-Schwarz)."""
        with pytest.raises(ValidationError):
            epsilon_one(N, 0.5 / N, DELTA)

    def test_rejects_collision_above_one(self):
        with pytest.raises(ValidationError):
            epsilon_one(N, 1.1, DELTA)


class TestTheorem53:
    def test_formula_against_manual(self):
        eps0 = 1.0
        bound = epsilon_all_stationary(eps0, N, UNIFORM_S, DELTA, DELTA)
        eps1 = epsilon_one(N, UNIFORM_S, DELTA)
        amplification = math.expm1(eps0) * math.exp(2 * eps0)
        expected = (
            amplification**2 * eps1**2 / 2
            + amplification * eps1 * math.sqrt(2 * math.log(1 / DELTA))
        )
        assert bound.epsilon == pytest.approx(expected)
        assert bound.delta == pytest.approx(2 * DELTA)
        assert bound.theorem.startswith("5.3")

    def test_amplifies_at_small_eps0(self):
        bound = epsilon_all_stationary(0.2, 1_000_000, 1e-6, DELTA, DELTA)
        assert bound.epsilon < 0.2
        assert bound.amplified

    def test_monotone_in_eps0(self):
        values = [
            epsilon_all_stationary(e, N, UNIFORM_S, DELTA, DELTA).epsilon
            for e in (0.2, 0.5, 1.0, 2.0)
        ]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_monotone_in_collision_mass(self):
        low = epsilon_all_stationary(1.0, N, 1.0 / N, DELTA, DELTA).epsilon
        high = epsilon_all_stationary(1.0, N, 10.0 / N, DELTA, DELTA).epsilon
        assert high > low

    def test_larger_n_amplifies_more(self):
        small = epsilon_all_stationary(1.0, 10_000, 1.0 / 10_000, DELTA, DELTA)
        large = epsilon_all_stationary(
            1.0, 1_000_000, 1.0 / 1_000_000, DELTA, DELTA
        )
        assert large.epsilon < small.epsilon

    def test_delta2_defaults_to_delta(self):
        explicit = epsilon_all_stationary(1.0, N, UNIFORM_S, DELTA, DELTA)
        default = epsilon_all_stationary(1.0, N, UNIFORM_S, DELTA)
        assert default.epsilon == explicit.epsilon
        assert default.delta == explicit.delta

    def test_amplification_ratio(self):
        bound = epsilon_all_stationary(0.2, 1_000_000, 1e-6, DELTA, DELTA)
        assert bound.amplification_ratio == pytest.approx(0.2 / bound.epsilon)

    def test_approximate_variant_costs_more(self):
        pure = epsilon_all_stationary(0.3, N, UNIFORM_S, DELTA, DELTA)
        delta1 = 1e-9
        delta0 = max_delta0_for_clone(0.3, delta1) / 2
        approx = epsilon_all_stationary(
            0.3, N, UNIFORM_S, DELTA, DELTA, delta0=delta0, delta1=delta1
        )
        assert approx.epsilon > pure.epsilon
        assert approx.delta > pure.delta
        assert "approx" in approx.theorem

    def test_approximate_rejects_excessive_delta0(self):
        delta1 = 1e-9
        limit = max_delta0_for_clone(0.3, delta1)
        with pytest.raises(ValidationError):
            epsilon_all_stationary(
                0.3, N, UNIFORM_S, DELTA, DELTA,
                delta0=limit * 10, delta1=delta1,
            )


class TestTheorem54:
    def test_uniform_distribution_close_to_53(self):
        """With an exactly uniform position distribution (rho* = 1) the
        symmetric theorem reduces to the stationary one."""
        uniform = np.full(N, 1.0 / N)
        symmetric = epsilon_all_symmetric(1.0, N, uniform, DELTA, DELTA)
        stationary = epsilon_all_stationary(1.0, N, 1.0 / N, DELTA, DELTA)
        assert symmetric.epsilon == pytest.approx(stationary.epsilon)

    def test_rho_star_penalty(self):
        """A skewed distribution pays a rho*^2 factor."""
        uniform = np.full(1000, 1e-3)
        skewed = np.full(1000, 1e-3)
        skewed[0] = 2e-3
        skewed[1] = 0.0
        skewed /= skewed.sum()
        assert (
            epsilon_all_symmetric(1.0, 1000, skewed, DELTA, DELTA).epsilon
            > epsilon_all_symmetric(1.0, 1000, uniform, DELTA, DELTA).epsilon
        )

    def test_rejects_wrong_length(self):
        with pytest.raises(ValidationError):
            epsilon_all_symmetric(1.0, 10, np.full(5, 0.2), DELTA, DELTA)

    def test_zeros_allowed_in_distribution(self):
        distribution = np.zeros(100)
        distribution[:10] = 0.1
        bound = epsilon_all_symmetric(0.5, 100, distribution, DELTA, DELTA)
        assert bound.epsilon > 0.0


class TestTheorem55:
    def test_formula_against_manual(self):
        eps0, s = 1.0, UNIFORM_S
        bound = epsilon_single_stationary(eps0, N, s, DELTA)
        amplification = math.exp(eps0) * math.expm1(eps0)
        expected = (
            amplification**2 * s / 2
            + amplification * math.sqrt(2 * math.log(1 / DELTA) * s)
        )
        assert bound.epsilon == pytest.approx(expected)
        assert bound.delta == DELTA

    def test_single_beats_all_at_large_eps0(self):
        eps0 = 3.0
        single = epsilon_single_stationary(eps0, N, UNIFORM_S, DELTA)
        both = epsilon_all_stationary(eps0, N, UNIFORM_S, DELTA, DELTA)
        assert single.epsilon < both.epsilon

    def test_small_eps0_simplification_formula(self):
        """The paper's eps0 <= 1 simplification:
        eps' = 800 eps0^2 S + 40 eps0 sqrt(2 log(1/delta) S)."""
        eps0, s = 0.5, 1e-5
        value = epsilon_single_small_eps0(eps0, s, DELTA)
        expected = 800 * eps0**2 * s + 40 * eps0 * math.sqrt(
            2 * math.log(1 / DELTA) * s
        )
        assert value == pytest.approx(expected)

    def test_small_eps0_simplification_monotone(self):
        values = [
            epsilon_single_small_eps0(e, 1e-5, DELTA)
            for e in (0.1, 0.3, 0.6, 1.0)
        ]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_small_eps0_rejects_large(self):
        with pytest.raises(ValidationError):
            epsilon_single_small_eps0(1.5, 1e-5, DELTA)

    def test_approximate_variant(self):
        delta1 = 1e-10
        delta0 = max_delta0_for_clone(0.2, delta1) / 2
        bound = epsilon_single_stationary(
            0.2, N, UNIFORM_S, DELTA, delta0=delta0, delta1=delta1
        )
        assert "approx" in bound.theorem
        assert bound.delta > DELTA


class TestTheorem56:
    def test_matches_55_at_same_collision(self):
        distribution = np.full(N, 1.0 / N)
        symmetric = epsilon_single_symmetric(1.0, N, distribution, DELTA)
        stationary = epsilon_single_stationary(1.0, N, 1.0 / N, DELTA)
        assert symmetric.epsilon == pytest.approx(stationary.epsilon)
        assert "5.6" in symmetric.theorem

    def test_rejects_wrong_length(self):
        with pytest.raises(ValidationError):
            epsilon_single_symmetric(1.0, 10, np.full(3, 1 / 3), DELTA)


class TestMaxDelta0:
    def test_positive(self):
        assert max_delta0_for_clone(1.0, 1e-9) > 0.0

    def test_smaller_delta1_smaller_limit(self):
        assert max_delta0_for_clone(1.0, 1e-12) < max_delta0_for_clone(
            1.0, 1e-6
        )


class TestTheorem61Accounting:
    def test_uniform_allocation(self):
        sizes = np.ones(N, dtype=int)
        eps = epsilon_from_report_sizes(1.0, sizes, DELTA)
        assert eps > 0.0

    def test_concentrated_allocation_worse(self):
        uniform = np.ones(1000, dtype=int)
        concentrated = np.zeros(1000, dtype=int)
        concentrated[0] = 1000
        assert epsilon_from_report_sizes(
            1.0, concentrated, DELTA
        ) > epsilon_from_report_sizes(1.0, uniform, DELTA)

    def test_rejects_wrong_sum(self):
        with pytest.raises(ValidationError):
            epsilon_from_report_sizes(1.0, [2, 2, 2], DELTA)

    def test_rejects_negative_sizes(self):
        with pytest.raises(ValidationError):
            epsilon_from_report_sizes(1.0, [-1, 2, 2], DELTA)

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            epsilon_from_report_sizes(1.0, [], DELTA)

    def test_below_closed_form(self):
        """A typical realized allocation beats the worst-case bound."""
        rng = np.random.default_rng(0)
        holders = rng.integers(0, 1000, size=1000)
        sizes = np.bincount(holders, minlength=1000)
        empirical = epsilon_from_report_sizes(1.0, sizes, DELTA)
        closed = epsilon_all_stationary(
            1.0, 1000, 1.0 / 1000, DELTA, DELTA
        ).epsilon
        assert empirical < closed

    @given(st.integers(min_value=10, max_value=300))
    @settings(max_examples=20, deadline=None)
    def test_permutation_invariance(self, n):
        rng = np.random.default_rng(n)
        sizes = np.bincount(rng.integers(0, n, size=n), minlength=n)
        shuffled = rng.permutation(sizes)
        assert epsilon_from_report_sizes(0.5, sizes, DELTA) == pytest.approx(
            epsilon_from_report_sizes(0.5, shuffled, DELTA)
        )
