"""Tests for DP composition theorems."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.amplification.composition import (
    advanced_composition,
    basic_composition,
    heterogeneous_advanced_composition,
)


class TestBasicComposition:
    def test_epsilons_add(self):
        eps, delta = basic_composition([0.1, 0.2, 0.3])
        assert eps == pytest.approx(0.6)
        assert delta == 0.0

    def test_deltas_add(self):
        eps, delta = basic_composition([0.1], [1e-6, 1e-6])
        assert delta == pytest.approx(2e-6)

    def test_empty(self):
        assert basic_composition([]) == (0.0, 0.0)

    def test_rejects_negative(self):
        with pytest.raises(Exception):
            basic_composition([-0.1])


class TestAdvancedComposition:
    def test_formula(self):
        eps, delta = advanced_composition(0.1, 1e-6, 100)
        expected = (
            math.sqrt(2 * 100 * math.log(1e6)) * 0.1
            + 100 * 0.1 * math.expm1(0.1)
        )
        assert eps == pytest.approx(expected)
        assert delta == pytest.approx(1e-6)

    def test_beats_basic_for_many_small(self):
        k, eps0 = 400, 0.05
        advanced, _ = advanced_composition(eps0, 1e-6, k)
        basic, _ = basic_composition([eps0] * k)
        assert advanced < basic

    def test_delta_accumulates(self):
        _, delta = advanced_composition(0.1, 1e-6, 10, delta=1e-8)
        assert delta == pytest.approx(10 * 1e-8 + 1e-6)

    def test_rejects_zero_k(self):
        with pytest.raises(ValueError):
            advanced_composition(0.1, 1e-6, 0)


class TestHeterogeneousComposition:
    """Equation 6 of the paper (Kairouz-Oh-Viswanath)."""

    def test_empty_is_zero(self):
        assert heterogeneous_advanced_composition([], 1e-6) == 0.0

    def test_single_mechanism(self):
        eps0 = 0.3
        composed = heterogeneous_advanced_composition([eps0], 1e-6)
        expected = (
            math.expm1(eps0) * eps0 / (math.exp(eps0) + 1)
            + math.sqrt(2 * math.log(1e6) * eps0**2)
        )
        assert composed == pytest.approx(expected)

    def test_homogeneous_case_scaling(self):
        """For k identical mechanisms the quadratic term scales sqrt(k)."""
        eps0, delta = 0.05, 1e-6
        one = heterogeneous_advanced_composition([eps0], delta)
        hundred = heterogeneous_advanced_composition([eps0] * 100, delta)
        # Linear part is tiny at eps0=0.05; the root part scales 10x.
        assert hundred == pytest.approx(10 * one, rel=0.05)

    def test_monotone_in_each_epsilon(self):
        base = heterogeneous_advanced_composition([0.1, 0.2], 1e-6)
        bigger = heterogeneous_advanced_composition([0.1, 0.3], 1e-6)
        assert bigger > base

    def test_monotone_in_delta(self):
        strict = heterogeneous_advanced_composition([0.1] * 10, 1e-9)
        loose = heterogeneous_advanced_composition([0.1] * 10, 1e-3)
        assert strict > loose

    def test_rejects_negative_epsilon(self):
        with pytest.raises(ValueError):
            heterogeneous_advanced_composition([-0.1], 1e-6)

    def test_rejects_bad_delta(self):
        with pytest.raises(Exception):
            heterogeneous_advanced_composition([0.1], 0.0)

    def test_zero_epsilons_compose_to_zero(self):
        assert heterogeneous_advanced_composition([0.0] * 5, 1e-6) == 0.0

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=30
        ),
        st.floats(min_value=1e-9, max_value=0.1),
    )
    @settings(max_examples=50)
    def test_dominated_by_basic_plus_slack(self, epsilons, delta):
        """KOV never exceeds basic composition's epsilon sum plus the
        sqrt slack term (sanity envelope)."""
        composed = heterogeneous_advanced_composition(epsilons, delta)
        envelope = sum(epsilons) + math.sqrt(
            2 * math.log(1 / delta) * sum(e * e for e in epsilons)
        )
        assert composed <= envelope + 1e-9
