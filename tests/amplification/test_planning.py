"""Tests for deployment planning (bound inversion)."""

from __future__ import annotations

import pytest

from repro.amplification.network_shuffle import (
    epsilon_all_stationary,
    epsilon_single_stationary,
    sum_squared_bound,
)
from repro.amplification.planning import (
    minimum_central_epsilon,
    required_epsilon0,
    required_rounds,
)
from repro.exceptions import ValidationError

N = 100_000
S = 1.0 / N
DELTA = 1e-6


class TestRequiredEpsilon0:
    @pytest.mark.parametrize("protocol", ["all", "single"])
    def test_inversion_is_consistent(self, protocol):
        target = 0.5
        eps0 = required_epsilon0(target, protocol, N, S, DELTA)
        if protocol == "all":
            achieved = epsilon_all_stationary(eps0, N, S, DELTA, DELTA).epsilon
        else:
            achieved = epsilon_single_stationary(eps0, N, S, DELTA).epsilon
        assert achieved == pytest.approx(target, rel=1e-4)

    def test_single_allows_larger_eps0(self):
        """At the same central target, A_single affords more local
        budget (its amplification is stronger)."""
        target = 0.5
        all_budget = required_epsilon0(target, "all", N, S, DELTA)
        single_budget = required_epsilon0(target, "single", N, S, DELTA)
        assert single_budget > all_budget

    def test_larger_target_more_budget(self):
        tight = required_epsilon0(0.2, "all", N, S, DELTA)
        loose = required_epsilon0(1.0, "all", N, S, DELTA)
        assert loose > tight

    def test_unreachable_target_raises(self):
        floor = minimum_central_epsilon("all", 1000, 1.0 / 1000, DELTA)
        with pytest.raises(ValidationError, match="floor"):
            required_epsilon0(floor / 2, "all", 1000, 1.0 / 1000, DELTA)

    def test_huge_target_returns_bracket_ceiling(self):
        # At the bracket ceiling eps0=20 the single bound is ~1e29;
        # anything above that returns the ceiling directly.
        eps0 = required_epsilon0(1e40, "single", N, S, DELTA)
        assert eps0 == 20.0

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ValidationError):
            required_epsilon0(0.5, "both", N, S, DELTA)


class TestMinimumCentralEpsilon:
    def test_positive(self):
        assert minimum_central_epsilon("all", N, S, DELTA) > 0.0

    def test_shrinks_with_n(self):
        small = minimum_central_epsilon("all", 10_000, 1e-4, DELTA)
        large = minimum_central_epsilon("all", 1_000_000, 1e-6, DELTA)
        assert large < small


class TestRequiredRounds:
    def test_meets_target(self):
        gap, pi2 = 0.3, 1.0 / 10_000
        eps0 = 0.5
        target = 1.05 * epsilon_all_stationary(
            eps0, 10_000, pi2, DELTA, DELTA
        ).epsilon
        rounds = required_rounds(
            target, "all", eps0, 10_000, pi2, gap, DELTA
        )
        achieved = epsilon_all_stationary(
            eps0, 10_000, sum_squared_bound(pi2, gap, rounds), DELTA, DELTA
        ).epsilon
        assert achieved <= target

    def test_minimality(self):
        gap, pi2 = 0.3, 1.0 / 10_000
        eps0 = 0.5
        target = 1.05 * epsilon_all_stationary(
            eps0, 10_000, pi2, DELTA, DELTA
        ).epsilon
        rounds = required_rounds(
            target, "all", eps0, 10_000, pi2, gap, DELTA
        )
        if rounds > 0:
            before = epsilon_all_stationary(
                eps0, 10_000,
                sum_squared_bound(pi2, gap, rounds - 1), DELTA, DELTA,
            ).epsilon
            assert before > target

    def test_impossible_target_raises(self):
        with pytest.raises(ValidationError, match="reduce eps0"):
            required_rounds(1e-6, "all", 2.0, 10_000, 1e-4, 0.3, DELTA)

    def test_smaller_gap_more_rounds(self):
        pi2, eps0 = 1.0 / 10_000, 0.5
        target = 1.1 * epsilon_all_stationary(
            eps0, 10_000, pi2, DELTA, DELTA
        ).epsilon
        fast = required_rounds(target, "all", eps0, 10_000, pi2, 0.4, DELTA)
        slow = required_rounds(target, "all", eps0, 10_000, pi2, 0.02, DELTA)
        assert slow > fast
