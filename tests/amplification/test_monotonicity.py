"""Property-based monotonicity tests on the amplification bounds.

The planning module (bisection) and every figure's interpretation rely
on these monotonicities; hypothesis sweeps the parameter space for
counterexamples.
"""

from __future__ import annotations

from hypothesis import assume, given, settings, strategies as st

from repro.amplification.network_shuffle import (
    epsilon_all_stationary,
    epsilon_single_stationary,
)
from repro.amplification.subsampling import subsampled_epsilon
from repro.amplification.uniform_shuffle import clones_epsilon, clones_max_epsilon0

DELTA = 1e-6

eps0_pairs = st.tuples(
    st.floats(min_value=0.05, max_value=3.0),
    st.floats(min_value=0.05, max_value=3.0),
).filter(lambda pair: abs(pair[0] - pair[1]) > 1e-6)

n_values = st.sampled_from([1_000, 10_000, 100_000, 1_000_000])


class TestNetworkBoundsMonotone:
    @given(eps0_pairs, n_values)
    @settings(max_examples=40, deadline=None)
    def test_all_monotone_in_eps0(self, pair, n):
        low, high = sorted(pair)
        s = 1.0 / n
        assert (
            epsilon_all_stationary(low, n, s, DELTA, DELTA).epsilon
            < epsilon_all_stationary(high, n, s, DELTA, DELTA).epsilon
        )

    @given(eps0_pairs, n_values)
    @settings(max_examples=40, deadline=None)
    def test_single_monotone_in_eps0(self, pair, n):
        low, high = sorted(pair)
        s = 1.0 / n
        assert (
            epsilon_single_stationary(low, n, s, DELTA).epsilon
            < epsilon_single_stationary(high, n, s, DELTA).epsilon
        )

    @given(
        st.floats(min_value=0.1, max_value=2.0),
        n_values,
        st.floats(min_value=1.5, max_value=40.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_gamma(self, eps0, n, gamma):
        base = epsilon_single_stationary(eps0, n, 1.0 / n, DELTA).epsilon
        irregular = epsilon_single_stationary(
            eps0, n, min(1.0, gamma / n), DELTA
        ).epsilon
        assert irregular > base

    @given(st.floats(min_value=0.1, max_value=2.0))
    @settings(max_examples=30, deadline=None)
    def test_single_below_all_everywhere(self, eps0):
        n = 100_000
        s = 1.0 / n
        single = epsilon_single_stationary(eps0, n, s, DELTA).epsilon
        both = epsilon_all_stationary(eps0, n, s, DELTA, DELTA).epsilon
        assert single < both


class TestBaselinesMonotone:
    @given(eps0_pairs, st.floats(min_value=0.001, max_value=1.0))
    @settings(max_examples=40)
    def test_subsampling_monotone_in_eps0(self, pair, q):
        low, high = sorted(pair)
        assert subsampled_epsilon(low, q) < subsampled_epsilon(high, q)

    @given(eps0_pairs, n_values)
    @settings(max_examples=40)
    def test_clones_monotone_in_eps0(self, pair, n):
        low, high = sorted(pair)
        ceiling = clones_max_epsilon0(n, DELTA)
        assume(high < ceiling)
        assert clones_epsilon(low, n, DELTA) < clones_epsilon(high, n, DELTA)

    @given(st.floats(min_value=0.1, max_value=2.0))
    @settings(max_examples=30)
    def test_clones_monotone_in_n(self, eps0):
        small = clones_epsilon(eps0, 10_000, DELTA)
        large = clones_epsilon(eps0, 1_000_000, DELTA)
        assert large < small
