"""Tests for the baseline amplification bounds (Table 1 rows)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.amplification.subsampling import subsampled_epsilon, subsampling_epsilon
from repro.amplification.uniform_shuffle import (
    clones_epsilon,
    clones_max_epsilon0,
    uniform_shuffle_epsilon,
)
from repro.exceptions import ValidationError


class TestSubsampling:
    def test_exact_formula(self):
        assert subsampled_epsilon(1.0, 0.1) == pytest.approx(
            math.log1p(0.1 * math.expm1(1.0))
        )

    def test_q_one_no_amplification(self):
        assert subsampled_epsilon(1.0, 1.0) == pytest.approx(1.0)

    def test_q_zero_full_privacy(self):
        assert subsampled_epsilon(1.0, 0.0) == 0.0

    def test_monotone_in_q(self):
        values = [subsampled_epsilon(1.0, q) for q in (0.01, 0.1, 0.5, 1.0)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_table1_scaling(self):
        """At the q=1/sqrt(n) rate, eps' ~ e^{eps0}/sqrt(n) for large eps0."""
        eps0, n = 3.0, 1_000_000
        value = subsampling_epsilon(eps0, n)
        assert value == pytest.approx(math.expm1(eps0) / math.sqrt(n), rel=0.05)

    def test_rejects_bad_q(self):
        with pytest.raises(ValidationError):
            subsampled_epsilon(1.0, 1.5)


class TestUniformShuffleEFMRTT:
    def test_small_regime_formula(self):
        eps0, n, delta = 0.3, 100_000, 1e-6
        assert uniform_shuffle_epsilon(eps0, n, delta) == pytest.approx(
            12 * eps0 * math.sqrt(math.log(1 / delta) / n)
        )

    def test_continuity_at_boundary(self):
        n, delta = 100_000, 1e-6
        below = uniform_shuffle_epsilon(0.499999, n, delta)
        above = uniform_shuffle_epsilon(0.500001, n, delta)
        assert above == pytest.approx(below, rel=1e-3)

    def test_general_regime_exponential(self):
        n, delta = 100_000, 1e-6
        ratio = uniform_shuffle_epsilon(2.0, n, delta) / uniform_shuffle_epsilon(
            1.0, n, delta
        )
        assert ratio == pytest.approx(math.exp(3.0), rel=1e-6)

    def test_sqrt_n_decay(self):
        delta = 1e-6
        small = uniform_shuffle_epsilon(0.3, 10_000, delta)
        large = uniform_shuffle_epsilon(0.3, 1_000_000, delta)
        assert small / large == pytest.approx(10.0, rel=1e-9)


class TestClones:
    def test_closed_form(self):
        eps0, n, delta = 1.0, 100_000, 1e-6
        exp_eps = math.exp(eps0)
        expected = math.log1p(
            (exp_eps - 1)
            / (exp_eps + 1)
            * (
                8 * math.sqrt(exp_eps * math.log(4 / delta)) / math.sqrt(n)
                + 8 * exp_eps / n
            )
        )
        assert clones_epsilon(eps0, n, delta) == pytest.approx(expected)

    def test_validity_ceiling(self):
        n, delta = 10_000, 1e-6
        ceiling = clones_max_epsilon0(n, delta)
        assert ceiling == pytest.approx(
            math.log(n / (16 * math.log(2 / delta)))
        )
        with pytest.raises(ValidationError):
            clones_epsilon(ceiling + 0.5, n, delta)

    def test_ceiling_rejects_tiny_n(self):
        with pytest.raises(ValidationError):
            clones_max_epsilon0(10, 0.5)

    def test_beats_efmrtt_everywhere(self):
        """FMT'21 is the tighter analysis of the same mechanism."""
        n, delta = 100_000, 1e-6
        for eps0 in (0.3, 0.5, 1.0, 2.0):
            assert clones_epsilon(eps0, n, delta) < uniform_shuffle_epsilon(
                eps0, n, delta
            )

    def test_amplifies(self):
        for eps0 in (0.5, 1.0, 2.0):
            assert clones_epsilon(eps0, 100_000, 1e-6) < eps0

    @given(
        st.floats(min_value=0.1, max_value=3.0),
        st.sampled_from([10_000, 100_000, 1_000_000]),
    )
    @settings(max_examples=40)
    def test_positive_and_monotone_envelope(self, eps0, n):
        value = clones_epsilon(eps0, n, 1e-6)
        assert 0.0 < value < eps0 + 1e-9
