"""Tests for the Renyi-DP accountant."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.amplification.composition import heterogeneous_advanced_composition
from repro.amplification.network_shuffle import epsilon_from_report_sizes
from repro.amplification.rdp import (
    compose_pure_dp_rdp,
    compose_rdp,
    epsilon_from_report_sizes_rdp,
    rdp_of_pure_dp,
    rdp_to_dp,
)
from repro.exceptions import ValidationError


class TestRdpOfPureDp:
    def test_zero_epsilon(self):
        assert rdp_of_pure_dp(0.0, 2.0) == 0.0

    def test_bounded_by_epsilon(self):
        for eps in (0.1, 0.5, 1.0, 3.0):
            for alpha in (1.5, 2.0, 10.0, 100.0):
                assert rdp_of_pure_dp(eps, alpha) <= eps + 1e-12

    def test_small_eps_quadratic_regime(self):
        """r(alpha) ~ alpha eps^2 / 2 for small eps (the RDP gain)."""
        eps, alpha = 0.01, 2.0
        value = rdp_of_pure_dp(eps, alpha)
        assert value == pytest.approx(alpha * eps * eps / 2.0, rel=0.05)

    def test_monotone_in_alpha(self):
        values = [rdp_of_pure_dp(0.5, a) for a in (1.5, 2.0, 5.0, 50.0)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_monotone_in_epsilon(self):
        values = [rdp_of_pure_dp(e, 2.0) for e in (0.1, 0.5, 1.0, 2.0)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_rejects_alpha_at_most_one(self):
        with pytest.raises(ValidationError):
            rdp_of_pure_dp(1.0, 1.0)

    @given(
        st.floats(min_value=0.01, max_value=3.0),
        st.floats(min_value=1.1, max_value=100.0),
    )
    @settings(max_examples=50)
    def test_non_negative_property(self, eps, alpha):
        assert rdp_of_pure_dp(eps, alpha) >= 0.0


class TestComposeAndConvert:
    def test_composition_additive(self):
        assert compose_rdp([0.3, 0.3], 2.0) == pytest.approx(
            2 * rdp_of_pure_dp(0.3, 2.0)
        )

    def test_conversion_formula(self):
        assert rdp_to_dp(0.5, 5.0, 1e-6) == pytest.approx(
            0.5 + math.log(1e6) / 4.0
        )

    def test_conversion_rejects_negative(self):
        with pytest.raises(ValidationError):
            rdp_to_dp(-0.1, 2.0, 1e-6)

    def test_empty_sequence(self):
        assert compose_pure_dp_rdp([], 1e-6) == 0.0

    def test_never_exceeds_basic(self):
        epsilons = [0.2] * 50
        assert compose_pure_dp_rdp(epsilons, 1e-6) <= sum(epsilons)

    def test_matches_kov_for_many_small(self):
        """KOV is near-optimal for pure DP; RDP should land within a
        few percent of it (the module's documented finding)."""
        epsilons = [0.02] * 2000
        rdp = compose_pure_dp_rdp(epsilons, 1e-6)
        kov = heterogeneous_advanced_composition(epsilons, 1e-6)
        assert 0.8 * kov <= rdp <= 1.2 * kov

    def test_beats_basic_for_many_small(self):
        epsilons = [0.02] * 2000
        rdp = compose_pure_dp_rdp(epsilons, 1e-6)
        assert rdp < 0.5 * sum(epsilons)

    def test_rejects_negative_epsilon(self):
        with pytest.raises(ValidationError):
            compose_pure_dp_rdp([-0.1], 1e-6)


class TestReportSizeAccounting:
    def test_within_a_hair_of_equation6(self):
        """On a typical allocation, RDP accounting matches Equation 6
        to ~1% (the documented near-optimality of KOV for pure DP)."""
        rng = np.random.default_rng(0)
        n = 2000
        sizes = np.bincount(rng.integers(0, n, size=n), minlength=n)
        for eps0 in (0.2, 0.5, 1.0):
            rdp = epsilon_from_report_sizes_rdp(eps0, sizes, 1e-6)
            kov = epsilon_from_report_sizes(eps0, sizes, 1e-6)
            assert rdp <= 1.05 * kov

    def test_rejects_wrong_sum(self):
        with pytest.raises(ValidationError):
            epsilon_from_report_sizes_rdp(0.5, [2, 2], 1e-6)

    def test_uniform_allocation_value(self):
        sizes = np.ones(1000, dtype=int)
        value = epsilon_from_report_sizes_rdp(1.0, sizes, 1e-6)
        assert value > 0.0
