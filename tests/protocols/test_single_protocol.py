"""Tests for Algorithm 2 (A_single) simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graphs.spectral import stationary_distribution
from repro.ldp.randomized_response import BinaryRandomizedResponse
from repro.protocols.single_protocol import (
    expected_empty_handed_stationary,
    run_single_protocol,
)


class TestSingleProtocol:
    def test_one_report_per_user(self, small_regular):
        result = run_single_protocol(small_regular, 10, rng=0)
        assert len(result.server_reports) == small_regular.num_nodes
        np.testing.assert_array_equal(
            result.delivered_by, np.arange(small_regular.num_nodes)
        )

    def test_dummy_count_matches_empty_holders(self, small_regular):
        result = run_single_protocol(small_regular, 10, rng=0)
        empty_holders = int((result.allocation == 0).sum())
        assert result.dummy_count == empty_holders

    def test_dummies_marked(self, small_regular):
        result = run_single_protocol(small_regular, 10, rng=0)
        dummy_reports = [r for r in result.server_reports if r.is_dummy]
        assert len(dummy_reports) == result.dummy_count

    def test_zero_rounds_everyone_has_own_report(self, small_regular):
        result = run_single_protocol(small_regular, 0, rng=0)
        assert result.dummy_count == 0
        for user, report in enumerate(result.server_reports):
            assert report.origin == user

    def test_real_reports_subset_of_population(self, small_regular):
        values = [f"value-{i}" for i in range(small_regular.num_nodes)]
        result = run_single_protocol(small_regular, 5, values=values, rng=0)
        real_payloads = {r.payload for r in result.real_reports}
        assert real_payloads.issubset(set(values))

    def test_dummy_factory_used(self, small_regular):
        result = run_single_protocol(
            small_regular,
            10,
            values=list(range(small_regular.num_nodes)),
            dummy_factory=lambda rng: "DUMMY",
            rng=0,
        )
        dummies = [r for r in result.server_reports if r.is_dummy]
        assert dummies, "expected some dummies after mixing"
        assert all(r.payload == "DUMMY" for r in dummies)

    def test_default_dummy_uses_randomizer_of_zero(self, small_regular):
        result = run_single_protocol(
            small_regular,
            10,
            values=[1] * small_regular.num_nodes,
            randomizer=BinaryRandomizedResponse(5.0),
            rng=0,
        )
        dummies = [r for r in result.server_reports if r.is_dummy]
        # eps=5 RR of 0 is almost always 0.
        assert np.mean([r.payload for r in dummies]) < 0.3

    def test_faithful_engine(self, small_regular):
        result = run_single_protocol(
            small_regular, 5, engine="faithful", rng=0
        )
        assert len(result.server_reports) == small_regular.num_nodes
        assert result.meters is not None

    def test_rejects_unknown_engine(self, small_regular):
        with pytest.raises(ValidationError):
            run_single_protocol(small_regular, 1, engine="bogus", rng=0)

    def test_protocol_field(self, small_regular):
        assert run_single_protocol(small_regular, 1, rng=0).protocol == "single"


class TestExpectedEmptyHanded:
    def test_stationary_uniform_formula(self):
        """Uniform pi: E[#empty] = n (1 - 1/n)^n ~ n/e."""
        n = 1000
        pi = np.full(n, 1.0 / n)
        expected = expected_empty_handed_stationary(pi)
        assert expected == pytest.approx(n * (1 - 1 / n) ** n, rel=1e-9)
        assert expected == pytest.approx(n / np.e, rel=0.01)

    def test_skewed_pi_more_empty(self):
        n = 1000
        uniform = np.full(n, 1.0 / n)
        skewed = np.full(n, 0.5 / n)
        skewed[:10] += 0.05  # ten hubs absorb half the mass
        assert expected_empty_handed_stationary(
            skewed
        ) > expected_empty_handed_stationary(uniform)

    def test_matches_simulation(self, medium_regular):
        """The analytic dummy count predicts the simulated one."""
        pi = stationary_distribution(medium_regular)
        predicted = expected_empty_handed_stationary(pi)
        simulated = np.mean([
            run_single_protocol(medium_regular, 40, rng=seed).dummy_count
            for seed in range(10)
        ])
        assert simulated == pytest.approx(predicted, rel=0.1)
