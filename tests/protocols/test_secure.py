"""Tests for the encrypted (Section 4.4) protocol realization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ProtocolError
from repro.graphs.generators import complete_graph, random_regular_graph
from repro.graphs.graph import Graph
from repro.ldp.randomized_response import BinaryRandomizedResponse
from repro.netsim.message import SERVER_ID
from repro.protocols.secure import run_secure_protocol


class TestSecureProtocol:
    def test_all_reports_decrypted(self):
        graph = random_regular_graph(4, 20, rng=0)
        values = list(range(20))
        result = run_secure_protocol(graph, 4, values, rng=0)
        assert result.num_reports == 20
        assert sorted(result.decrypted_payloads) == values

    def test_randomizer_applied(self):
        graph = complete_graph(12)
        result = run_secure_protocol(
            graph, 3, [0] * 12, BinaryRandomizedResponse(0.5), rng=0
        )
        assert set(result.decrypted_payloads).issubset({0, 1})

    def test_payload_types_roundtrip(self):
        graph = complete_graph(6)
        values = [1, 2.5, "text", [1, 2], {"k": 1}, None]
        result = run_secure_protocol(graph, 2, values, rng=0)
        assert len(result.decrypted_payloads) == 6

    def test_meters_track_traffic(self):
        graph = random_regular_graph(4, 16, rng=0)
        result = run_secure_protocol(graph, 5, list(range(16)), rng=0)
        sent = [result.meters.meter(u).messages_sent for u in range(16)]
        # ~1 per round per user on average (token conservation).
        assert np.mean(sent) == pytest.approx(5.0, rel=0.5)

    def test_delivered_by_valid_users(self):
        graph = random_regular_graph(4, 16, rng=0)
        result = run_secure_protocol(graph, 3, list(range(16)), rng=0)
        assert result.delivered_by.min() >= 0
        assert result.delivered_by.max() < 16

    def test_value_count_mismatch(self):
        graph = complete_graph(5)
        with pytest.raises(ProtocolError):
            run_secure_protocol(graph, 2, [1, 2], rng=0)

    def test_deterministic(self):
        graph = complete_graph(8)
        a = run_secure_protocol(graph, 3, list(range(8)), rng=9)
        b = run_secure_protocol(graph, 3, list(range(8)), rng=9)
        assert a.decrypted_payloads == b.decrypted_payloads
        np.testing.assert_array_equal(a.delivered_by, b.delivered_by)


class TestBatchedParity:
    """``batched=True`` must reproduce the per-message loop exactly.

    Trajectories, delivery order, payloads, and every meter depend only
    on the randomness schedule Pass A replays — not on the throwaway
    encryption ephemerals — so a seeded batched run is message-for-
    message identical to the reference realization.
    """

    @pytest.mark.parametrize(
        ("num_nodes", "rounds", "seed"),
        [(8, 0, 0), (8, 1, 1), (12, 4, 2), (20, 7, 3)],
    )
    def test_outputs_identical(self, num_nodes, rounds, seed):
        graph = random_regular_graph(4, num_nodes, rng=seed)
        values = list(range(num_nodes))
        loop = run_secure_protocol(
            graph, rounds, values, rng=seed, batched=False
        )
        batched = run_secure_protocol(
            graph, rounds, values, rng=seed, batched=True
        )
        assert batched.decrypted_payloads == loop.decrypted_payloads
        np.testing.assert_array_equal(
            batched.delivered_by, loop.delivered_by
        )

    @pytest.mark.parametrize("rounds", [1, 5])
    def test_meters_identical(self, rounds):
        graph = random_regular_graph(4, 16, rng=7)
        values = list(range(16))
        loop = run_secure_protocol(
            graph, rounds, values, rng=11, batched=False
        )
        batched = run_secure_protocol(
            graph, rounds, values, rng=11, batched=True
        )
        for user in list(range(16)) + [SERVER_ID]:
            a = loop.meters.meter(user)
            b = batched.meters.meter(user)
            assert a.messages_sent == b.messages_sent, user
            assert a.messages_received == b.messages_received, user
            assert a.current_items == b.current_items, user
            assert a.peak_items == b.peak_items, user

    def test_randomizer_draws_in_same_order(self):
        graph = complete_graph(10)
        randomizer = BinaryRandomizedResponse(0.6)
        loop = run_secure_protocol(
            graph, 3, [0] * 10, randomizer, rng=5, batched=False
        )
        batched = run_secure_protocol(
            graph, 3, [0] * 10, randomizer, rng=5, batched=True
        )
        assert batched.decrypted_payloads == loop.decrypted_payloads

    def test_no_neighbor_raises_in_both_modes(self):
        graph = Graph(3, [(0, 1)])  # user 2 cannot relay
        for batched in (False, True):
            with pytest.raises(ProtocolError):
                run_secure_protocol(
                    graph, 2, [1, 2, 3], rng=0, batched=batched
                )

    def test_batched_deterministic(self):
        graph = random_regular_graph(4, 12, rng=1)
        a = run_secure_protocol(graph, 3, list(range(12)), rng=4)
        b = run_secure_protocol(graph, 3, list(range(12)), rng=4)
        assert a.decrypted_payloads == b.decrypted_payloads
        np.testing.assert_array_equal(a.delivered_by, b.delivered_by)
