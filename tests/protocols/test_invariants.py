"""Property-based tests of protocol invariants (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graphs.generators import random_regular_graph
from repro.protocols.all_protocol import run_all_protocol
from repro.protocols.single_protocol import run_single_protocol


@st.composite
def protocol_setup(draw):
    """A small random ergodic graph plus a round count and seed."""
    degree = draw(st.sampled_from([4, 6, 8]))
    # Keep degree * n even and n > degree.
    num_nodes = draw(st.sampled_from([20, 30, 40, 60]))
    rounds = draw(st.integers(min_value=0, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=2**30))
    graph = random_regular_graph(degree, num_nodes, rng=seed % 1000)
    return graph, rounds, seed


class TestAllProtocolInvariants:
    @given(protocol_setup())
    @settings(max_examples=30, deadline=None)
    def test_conservation(self, setup):
        """Every report reaches the server, exactly once."""
        graph, rounds, seed = setup
        result = run_all_protocol(graph, rounds, rng=seed)
        assert len(result.server_reports) == graph.num_nodes
        origins = sorted(r.origin for r in result.server_reports)
        assert origins == list(range(graph.num_nodes))

    @given(protocol_setup())
    @settings(max_examples=30, deadline=None)
    def test_allocation_consistency(self, setup):
        """Allocation vector sums to n and matches delivered_by."""
        graph, rounds, seed = setup
        result = run_all_protocol(graph, rounds, rng=seed)
        assert result.allocation.sum() == graph.num_nodes
        counted = np.bincount(result.delivered_by, minlength=graph.num_nodes)
        np.testing.assert_array_equal(counted, result.allocation)

    @given(protocol_setup())
    @settings(max_examples=20, deadline=None)
    def test_engines_agree_on_counts(self, setup):
        """Fast and faithful engines both conserve reports."""
        graph, rounds, seed = setup
        fast = run_all_protocol(graph, rounds, rng=seed)
        faithful = run_all_protocol(graph, rounds, engine="faithful", rng=seed)
        assert len(fast.server_reports) == len(faithful.server_reports)
        assert fast.allocation.sum() == faithful.allocation.sum()


class TestSingleProtocolInvariants:
    @given(protocol_setup())
    @settings(max_examples=30, deadline=None)
    def test_exactly_one_report_per_user(self, setup):
        graph, rounds, seed = setup
        result = run_single_protocol(graph, rounds, rng=seed)
        assert len(result.server_reports) == graph.num_nodes
        np.testing.assert_array_equal(
            result.delivered_by, np.arange(graph.num_nodes)
        )

    @given(protocol_setup())
    @settings(max_examples=30, deadline=None)
    def test_dummy_count_consistency(self, setup):
        """Dummies fill exactly the empty-handed users."""
        graph, rounds, seed = setup
        result = run_single_protocol(graph, rounds, rng=seed)
        empty = int((result.allocation == 0).sum())
        assert result.dummy_count == empty
        marked = sum(1 for r in result.server_reports if r.is_dummy)
        assert marked == result.dummy_count

    @given(protocol_setup())
    @settings(max_examples=30, deadline=None)
    def test_real_reports_are_distinct_originals(self, setup):
        """A report is sent by at most one user (no duplication)."""
        graph, rounds, seed = setup
        result = run_single_protocol(graph, rounds, rng=seed)
        real_origins = [r.origin for r in result.real_reports]
        assert len(real_origins) == len(set(real_origins))
