"""Tests for Algorithm 1 (A_all) simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graphs.generators import complete_graph
from repro.ldp.randomized_response import BinaryRandomizedResponse
from repro.netsim.faults import IndependentDropout
from repro.protocols.all_protocol import run_all_protocol


class TestFastEngine:
    def test_conservation(self, small_regular):
        result = run_all_protocol(small_regular, 10, rng=0)
        assert result.check_conservation()
        assert len(result.server_reports) == small_regular.num_nodes

    def test_allocation_sums_to_n(self, small_regular):
        result = run_all_protocol(small_regular, 10, rng=0)
        assert result.allocation.sum() == small_regular.num_nodes

    def test_origins_are_permutation_of_users(self, small_regular):
        result = run_all_protocol(small_regular, 10, rng=0)
        origins = sorted(r.origin for r in result.server_reports)
        assert origins == list(range(small_regular.num_nodes))

    def test_zero_rounds_no_shuffle(self, small_regular):
        result = run_all_protocol(small_regular, 0, rng=0)
        for report, holder in zip(result.server_reports, result.delivered_by):
            assert report.origin == holder

    def test_values_carried(self, small_regular):
        values = [f"value-{i}" for i in range(small_regular.num_nodes)]
        result = run_all_protocol(small_regular, 5, values=values, rng=0)
        payloads = sorted(r.payload for r in result.server_reports)
        assert payloads == sorted(values)

    def test_randomizer_applied(self, small_regular):
        n = small_regular.num_nodes
        values = [0] * n
        result = run_all_protocol(
            small_regular,
            3,
            values=values,
            randomizer=BinaryRandomizedResponse(1.0),
            rng=0,
        )
        payloads = [r.payload for r in result.server_reports]
        # eps=1 flips ~27% of zeros to ones.
        assert 0 < sum(payloads) < n

    def test_deterministic(self, small_regular):
        a = run_all_protocol(small_regular, 5, rng=3)
        b = run_all_protocol(small_regular, 5, rng=3)
        np.testing.assert_array_equal(a.allocation, b.allocation)

    def test_value_count_mismatch(self, small_regular):
        with pytest.raises(ValidationError):
            run_all_protocol(small_regular, 1, values=[1, 2], rng=0)

    def test_rejects_negative_rounds(self, small_regular):
        with pytest.raises(ValidationError):
            run_all_protocol(small_regular, -1, rng=0)

    def test_rejects_unknown_engine(self, small_regular):
        with pytest.raises(ValidationError):
            run_all_protocol(small_regular, 1, engine="quantum", rng=0)

    def test_delivered_by_matches_allocation(self, small_regular):
        result = run_all_protocol(small_regular, 8, rng=1)
        counted = np.bincount(
            result.delivered_by, minlength=small_regular.num_nodes
        )
        np.testing.assert_array_equal(counted, result.allocation)


class TestFaithfulEngine:
    def test_conservation(self, small_regular):
        result = run_all_protocol(small_regular, 5, engine="faithful", rng=0)
        assert result.check_conservation()

    def test_meters_populated(self, small_regular):
        result = run_all_protocol(small_regular, 5, engine="faithful", rng=0)
        assert result.meters is not None
        sent = [
            result.meters.meter(u).messages_sent
            for u in range(small_regular.num_nodes)
        ]
        # Every user relays roughly once per round plus final delivery.
        assert np.mean(sent) == pytest.approx(6.0, rel=0.35)

    def test_agrees_with_fast_statistically(self):
        """Both engines should produce the same allocation distribution."""
        graph = complete_graph(30)
        fast_max = np.mean([
            run_all_protocol(graph, 4, rng=seed).allocation.max()
            for seed in range(20)
        ])
        faithful_max = np.mean([
            run_all_protocol(graph, 4, engine="faithful", rng=seed).allocation.max()
            for seed in range(20)
        ])
        assert fast_max == pytest.approx(faithful_max, rel=0.35)

    def test_dropout_faults(self, small_regular):
        result = run_all_protocol(
            small_regular,
            5,
            engine="faithful",
            faults=IndependentDropout(0.5),
            rng=0,
        )
        assert result.check_conservation()


class TestAdversaryView:
    def test_view_shape(self, small_regular):
        result = run_all_protocol(small_regular, 5, rng=0)
        view = result.adversary_view()
        assert view.num_users == small_regular.num_nodes
        assert view.final_holder.shape == view.origin.shape

    def test_baseline_guess_perfect_at_zero_rounds(self, small_regular):
        view = run_all_protocol(small_regular, 0, rng=0).adversary_view()
        assert view.linkage_accuracy(view.baseline_guess()) == 1.0

    def test_linkage_collapses_after_mixing(self, medium_regular):
        view = run_all_protocol(medium_regular, 40, rng=0).adversary_view()
        accuracy = view.linkage_accuracy(view.baseline_guess())
        assert accuracy < 0.05

    def test_posterior_guess_interface(self, k4):
        result = run_all_protocol(k4, 2, rng=0)
        view = result.adversary_view()
        from repro.graphs.walks import position_distribution

        matrix = np.stack(
            [position_distribution(k4, i, 2) for i in range(4)]
        )
        guess = view.posterior_guess(matrix)
        assert guess.shape == view.origin.shape

    def test_posterior_rejects_bad_shape(self, k4):
        view = run_all_protocol(k4, 1, rng=0).adversary_view()
        with pytest.raises(ValueError):
            view.posterior_guess(np.ones((2, 2)) / 2)
