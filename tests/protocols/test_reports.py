"""Tests for Report / ProtocolResult containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.protocols.reports import ProtocolResult, Report


def _result(reports, protocol="all", num_users=None):
    n = num_users if num_users is not None else len(reports)
    return ProtocolResult(
        protocol=protocol,
        num_users=n,
        rounds=3,
        server_reports=list(reports),
        delivered_by=np.arange(len(reports)),
        allocation=np.ones(n, dtype=np.int64),
    )


class TestReport:
    def test_regular_report(self):
        report = Report(origin=3, payload="x")
        assert not report.is_dummy
        assert report.payload == "x"

    def test_dummy_marker(self):
        assert Report(origin=-1, payload=None).is_dummy

    def test_frozen(self):
        report = Report(origin=0, payload=1)
        with pytest.raises(Exception):
            report.origin = 5  # type: ignore[misc]


class TestProtocolResult:
    def test_real_reports_filters_dummies(self):
        reports = [Report(0, "a"), Report(-1, "d"), Report(1, "b")]
        result = _result(reports, num_users=3)
        assert len(result.real_reports) == 2

    def test_payloads_with_and_without_dummies(self):
        reports = [Report(0, "a"), Report(-1, "d")]
        result = _result(reports, num_users=2)
        assert result.payloads() == ["a", "d"]
        assert result.payloads(include_dummies=False) == ["a"]

    def test_conservation_check_all(self):
        result = _result([Report(i, i) for i in range(4)])
        assert result.check_conservation()

    def test_conservation_check_fails_on_loss(self):
        result = _result([Report(0, 0)], num_users=3)
        assert not result.check_conservation()

    def test_conservation_vacuous_for_single(self):
        result = _result([Report(0, 0)], protocol="single", num_users=3)
        assert result.check_conservation()

    def test_adversary_view_fields(self):
        reports = [Report(1, "a"), Report(0, "b")]
        result = _result(reports, num_users=2)
        view = result.adversary_view()
        np.testing.assert_array_equal(view.origin, [1, 0])
        np.testing.assert_array_equal(view.final_holder, [0, 1])
        assert view.num_users == 2

    def test_adversary_linkage_shape_mismatch(self):
        view = _result([Report(0, "a")], num_users=1).adversary_view()
        with pytest.raises(ValueError):
            view.linkage_accuracy(np.array([0, 1]))
