"""Tests for Algorithm 3 (A_fix) and the swap reduction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ldp.randomized_response import BinaryRandomizedResponse
from repro.protocols.fixed_size import fixed_size_responses, swap_first_element


class TestSwapFirstElement:
    def test_is_permutation(self):
        data = list(range(10))
        swapped = swap_first_element(data, rng=0)
        assert sorted(swapped) == data

    def test_at_most_two_positions_change(self):
        data = list(range(10))
        swapped = swap_first_element(data, rng=1)
        changed = [i for i, (a, b) in enumerate(zip(data, swapped)) if a != b]
        assert len(changed) in (0, 2)
        if changed:
            assert 0 in changed

    def test_uniform_swap_index(self):
        """The swap target is uniform over [n] — each element lands in
        front with probability 1/n."""
        n, trials = 5, 20_000
        rng = np.random.default_rng(0)
        counts = np.zeros(n)
        for _ in range(trials):
            swapped = swap_first_element(list(range(n)), rng=rng)
            counts[swapped[0]] += 1
        np.testing.assert_allclose(counts / trials, 1.0 / n, atol=0.02)

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            swap_first_element([], rng=0)

    def test_original_unchanged(self):
        data = [1, 2, 3]
        swap_first_element(data, rng=0)
        assert data == [1, 2, 3]


class TestFixedSizeResponses:
    def test_blocks_partition_dataset(self):
        data = list(range(6))
        outputs = fixed_size_responses(data, [2, 0, 3, 1])
        assert outputs == [[0, 1], [], [2, 3, 4], [5]]

    def test_report_counts_match_sizes(self):
        data = list(range(10))
        sizes = [3, 3, 2, 1, 1, 0, 0, 0, 0, 0]
        outputs = fixed_size_responses(data, sizes)
        assert [len(s) for s in outputs] == sizes

    def test_all_elements_reported_once(self):
        data = list(range(8))
        outputs = fixed_size_responses(data, [4, 4])
        flattened = [x for block in outputs for x in block]
        assert flattened == data

    def test_randomizer_applied(self, rng):
        data = [0] * 20
        outputs = fixed_size_responses(
            data, [20], BinaryRandomizedResponse(0.5), rng=rng
        )
        assert set(outputs[0]).issubset({0, 1})

    def test_rejects_size_mismatch(self):
        with pytest.raises(ValidationError):
            fixed_size_responses([1, 2, 3], [1, 1])

    def test_rejects_negative_sizes(self):
        with pytest.raises(ValidationError):
            fixed_size_responses([1, 2], [3, -1])

    def test_rejects_empty_sizes(self):
        with pytest.raises(ValidationError):
            fixed_size_responses([], [])

    def test_swap_then_fix_composition(self):
        """The Theorem 6.1 reduction runs end to end."""
        data = list(range(12))
        swapped = swap_first_element(data, rng=0)
        outputs = fixed_size_responses(swapped, [3] * 4)
        flattened = [x for block in outputs for x in block]
        assert sorted(flattened) == data
