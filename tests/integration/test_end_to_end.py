"""Cross-module integration tests: the full pipeline end to end."""

from __future__ import annotations

import numpy as np

from repro.amplification.network_shuffle import epsilon_all_stationary
from repro.core.accounting import PrivacyAccountant
from repro.core.shuffler import NetworkShuffler
from repro.datasets.synthetic import build_dataset
from repro.estimation.frequency import run_frequency_estimation
from repro.graphs.generators import random_regular_graph
from repro.graphs.spectral import spectral_summary
from repro.graphs.walks import report_allocation
from repro.ldp.randomized_response import KaryRandomizedResponse
from repro.protocols.secure import run_secure_protocol


class TestFullPipeline:
    """Dataset -> graph analysis -> protocol -> estimation -> accounting."""

    def test_private_survey_on_synthetic_dataset(self):
        dataset = build_dataset("twitch", scale=0.3, seed=0)
        graph = dataset.graph
        n = graph.num_nodes

        # Population: 60/25/15 split over three answers.
        rng = np.random.default_rng(1)
        symbols = rng.choice(3, size=n, p=[0.6, 0.25, 0.15])

        result = run_frequency_estimation(
            graph, symbols, 3.0, 3, protocol="all", rng=2
        )
        np.testing.assert_allclose(
            result.estimate, result.truth, atol=0.1
        )

        # The central guarantee for this run.
        summary = spectral_summary(graph)
        bound = epsilon_all_stationary(
            3.0, n, summary.sum_squared_bound(summary.mixing_time), 1e-6, 1e-6
        )
        assert bound.epsilon > 0

    def test_facade_plus_accountant(self):
        graph = random_regular_graph(8, 500, rng=0)
        shuffler = NetworkShuffler(graph, epsilon0=0.5, delta=1e-7,
                                   protocol="single")
        accountant = PrivacyAccountant(2.0, 1e-5)

        for day in range(3):
            bound = shuffler.central_guarantee()
            accountant.record(bound.epsilon, bound.delta)
        eps_spent, _ = accountant.spent()
        assert 0 < eps_spent <= 2.0
        assert accountant.num_recorded == 3

    def test_secure_protocol_preserves_analytics(self):
        """Encrypted transport must not change what the server computes."""
        graph = random_regular_graph(4, 24, rng=0)
        randomizer = KaryRandomizedResponse(4.0, 3)
        symbols = [int(s) for s in np.arange(24) % 3]
        secure = run_secure_protocol(graph, 4, symbols, randomizer, rng=1)
        estimate = randomizer.estimate_frequencies(
            np.asarray(secure.decrypted_payloads)
        )
        np.testing.assert_allclose(estimate, 1.0 / 3.0, atol=0.25)

    def test_walk_statistics_match_theory_bound(self):
        """Empirical sum L_i^2 respects Lemma 5.1 w.h.p."""
        from repro.amplification.network_shuffle import report_load_l2_bound

        graph = random_regular_graph(8, 1000, rng=0)
        summary = spectral_summary(graph)
        rounds = summary.mixing_time
        bound = report_load_l2_bound(
            1000, summary.sum_squared_bound(rounds), 0.01
        )
        violations = 0
        for seed in range(50):
            allocation = report_allocation(graph, rounds, rng=seed)
            if np.linalg.norm(allocation) > bound:
                violations += 1
        # delta2 = 0.01: expect ~0 violations out of 50.
        assert violations <= 2

    def test_empirical_collision_matches_spectral_bound(self):
        """Monte-Carlo sum P^2 estimate stays below the Equation 7 bound."""
        graph = random_regular_graph(8, 512, rng=0)
        summary = spectral_summary(graph)
        for steps in (2, 5, 10, 20):
            exact = np.zeros(512)
            exact[0] = 1.0
            from repro.graphs.walks import evolve_distribution

            distribution = evolve_distribution(graph, exact, steps)
            collision = float(distribution @ distribution)
            assert collision <= summary.sum_squared_bound(steps) + 1e-12


class TestPrivacyDegradationScenarios:
    """Threat-model edges: what happens when assumptions weaken."""

    def test_fewer_rounds_better_posterior_attack(self):
        """A Bayes-optimal adversary (knows P^G, Section 3.3) recovers
        origins far better after one round than after mixing."""
        from repro.graphs.walks import position_distribution

        graph = random_regular_graph(6, 100, rng=0)
        accuracies = {}
        for rounds in (1, 30):
            shuffler = NetworkShuffler(graph, 1.0, 1e-6, rounds=rounds)
            result = shuffler.run([0] * 100, rng=1)
            view = result.adversary_view()
            matrix = np.stack(
                [position_distribution(graph, i, rounds) for i in range(100)]
            )
            accuracies[rounds] = view.linkage_accuracy(
                view.posterior_guess(matrix)
            )
        assert accuracies[1] > 2 * accuracies[30]

    def test_heavy_dropout_slows_anonymization(self):
        graph = random_regular_graph(6, 200, rng=0)
        from repro.protocols.all_protocol import run_all_protocol

        crisp = run_all_protocol(graph, 6, laziness=0.0, rng=3)
        lazy = run_all_protocol(graph, 6, laziness=0.9, rng=3)
        crisp_view = crisp.adversary_view()
        lazy_view = lazy.adversary_view()
        assert lazy_view.linkage_accuracy(
            lazy_view.baseline_guess()
        ) > crisp_view.linkage_accuracy(crisp_view.baseline_guess())
