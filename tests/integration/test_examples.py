"""Smoke tests: every shipped example runs end to end."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in ALL_EXAMPLES}
    assert "quickstart.py" in names
    assert len(ALL_EXAMPLES) >= 3


@pytest.mark.parametrize(
    "script", ALL_EXAMPLES, ids=lambda path: path.stem
)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed:\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script.name} produced no output"
