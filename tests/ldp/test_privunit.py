"""Tests for PrivUnit (cap geometry, unbiasedness, privacy ratio)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ValidationError
from repro.ldp.privunit import PrivUnit, cap_mass, cap_threshold


class TestCapGeometry:
    def test_cap_mass_at_zero_is_half(self):
        assert cap_mass(0.0, 10) == pytest.approx(0.5)

    def test_cap_mass_extremes(self):
        assert cap_mass(-1.0, 10) == pytest.approx(1.0)
        assert cap_mass(1.0, 10) == pytest.approx(0.0, abs=1e-12)

    def test_cap_mass_monotone_in_gamma(self):
        masses = [cap_mass(g, 20) for g in np.linspace(-0.9, 0.9, 10)]
        assert all(b < a for a, b in zip(masses, masses[1:]))

    def test_threshold_inverts_mass(self):
        for mass in (0.1, 0.25, 0.5, 0.9):
            gamma = cap_threshold(mass, 30)
            assert cap_mass(gamma, 30) == pytest.approx(mass, rel=1e-6)

    def test_rejects_bad_gamma(self):
        with pytest.raises(ValidationError):
            cap_mass(1.5, 10)

    def test_rejects_bad_mass(self):
        with pytest.raises(ValidationError):
            cap_threshold(0.0, 10)

    def test_higher_dimension_concentrates(self):
        """In high d the dot product concentrates near 0, so a fixed
        gamma > 0 cap shrinks with d."""
        assert cap_mass(0.3, 200) < cap_mass(0.3, 10)


class TestPrivUnitConstruction:
    def test_parameters(self):
        mechanism = PrivUnit(2.0, 50)
        assert mechanism.dimension == 50
        assert 0.5 < mechanism.cap_probability < 1.0
        assert mechanism.scale > 0.0

    def test_privacy_ratio_is_exactly_eps(self):
        """p(1-q) / (q(1-p)) = e^eps by construction."""
        epsilon = 1.7
        mechanism = PrivUnit(epsilon, 100)
        p = mechanism.cap_probability
        q = cap_mass(mechanism.gamma, 100)
        ratio = (p / q) / ((1 - p) / (1 - q))
        assert math.log(ratio) == pytest.approx(epsilon, rel=1e-6)

    def test_budget_split_changes_params(self):
        even = PrivUnit(2.0, 50, budget_split=0.5)
        skewed = PrivUnit(2.0, 50, budget_split=0.8)
        assert even.gamma != skewed.gamma
        assert even.cap_probability != skewed.cap_probability

    def test_rejects_dimension_one(self):
        with pytest.raises(ValidationError):
            PrivUnit(1.0, 1)

    def test_rejects_bad_split(self):
        with pytest.raises(ValidationError):
            PrivUnit(1.0, 10, budget_split=1.0)


class TestPrivUnitSampling:
    def test_unbiased(self):
        mechanism = PrivUnit(2.0, 40)
        u = np.zeros(40)
        u[0] = 1.0
        reports = mechanism.randomize_batch(np.tile(u, (30_000, 1)), rng=0)
        estimate = reports.mean(axis=0)
        assert estimate[0] == pytest.approx(1.0, abs=0.03)
        assert np.abs(estimate[1:]).max() < 0.03

    def test_unbiased_arbitrary_direction(self):
        mechanism = PrivUnit(3.0, 25)
        rng = np.random.default_rng(1)
        u = rng.normal(size=25)
        u /= np.linalg.norm(u)
        reports = mechanism.randomize_batch(np.tile(u, (30_000, 1)), rng=2)
        np.testing.assert_allclose(reports.mean(axis=0), u, atol=0.05)

    def test_variance_matches_theory(self):
        mechanism = PrivUnit(2.0, 50)
        u = np.zeros(50)
        u[0] = 1.0
        reports = mechanism.randomize_batch(np.tile(u, (20_000, 1)), rng=0)
        empirical = ((reports - u) ** 2).sum(axis=1).mean()
        assert empirical == pytest.approx(
            mechanism.expected_squared_error(), rel=0.05
        )

    def test_error_decreases_with_epsilon(self):
        errors = [
            PrivUnit(eps, 100).expected_squared_error()
            for eps in (0.5, 1.0, 2.0, 4.0, 8.0)
        ]
        assert all(b < a for a, b in zip(errors, errors[1:]))

    def test_report_norm_is_inverse_scale(self):
        mechanism = PrivUnit(2.0, 30)
        u = np.zeros(30)
        u[0] = 1.0
        report = mechanism.randomize_batch(u[None, :], rng=0)
        assert np.linalg.norm(report) == pytest.approx(
            1.0 / mechanism.scale, rel=1e-9
        )

    def test_single_randomize(self, rng):
        mechanism = PrivUnit(1.0, 10)
        u = np.zeros(10)
        u[0] = 1.0
        report = mechanism.randomize(u, rng)
        assert report.shape == (10,)

    def test_rejects_non_unit_vector(self):
        mechanism = PrivUnit(1.0, 5)
        with pytest.raises(ValidationError):
            mechanism.randomize_batch(np.ones((1, 5)), rng=0)

    def test_rejects_wrong_dimension(self):
        mechanism = PrivUnit(1.0, 5)
        u = np.zeros(6)
        u[0] = 1.0
        with pytest.raises(ValidationError):
            mechanism.randomize_batch(u[None, :], rng=0)

    @given(st.floats(min_value=0.5, max_value=8.0))
    @settings(max_examples=15, deadline=None)
    def test_scale_positive_property(self, epsilon):
        assert PrivUnit(epsilon, 64).scale > 0.0

    def test_debias_identity(self):
        mechanism = PrivUnit(1.0, 5)
        report = np.array([0.1, 0.2, 0.3, 0.4, 0.5])
        np.testing.assert_array_equal(mechanism.debias(report), report)
