"""Tests for binary and k-ary randomized response."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ValidationError
from repro.ldp.randomized_response import (
    BinaryRandomizedResponse,
    KaryRandomizedResponse,
)


class TestBinaryRR:
    def test_truth_probability_formula(self):
        rr = BinaryRandomizedResponse(1.0)
        assert rr.truth_probability == pytest.approx(
            math.e / (math.e + 1.0)
        )

    def test_outputs_are_bits(self, rng):
        rr = BinaryRandomizedResponse(0.5)
        outputs = {rr.randomize(1, rng) for _ in range(50)}
        assert outputs.issubset({0, 1})

    def test_flip_rate_matches(self):
        rr = BinaryRandomizedResponse(1.0)
        out = rr.randomize_batch(np.zeros(100_000, dtype=int), rng=0)
        assert out.mean() == pytest.approx(1.0 - rr.truth_probability, abs=0.01)

    def test_likelihood_ratio_is_exp_eps(self):
        """The defining LDP property: P[1|1]/P[1|0] = e^eps."""
        epsilon = 0.8
        rr = BinaryRandomizedResponse(epsilon)
        p = rr.truth_probability
        assert p / (1 - p) == pytest.approx(math.exp(epsilon))

    def test_debias_unbiased(self):
        rr = BinaryRandomizedResponse(1.0)
        true_rate = 0.3
        bits = (np.arange(200_000) < 0.3 * 200_000).astype(int)
        reports = rr.randomize_batch(bits, rng=0)
        assert rr.debias(reports.mean()) == pytest.approx(true_rate, abs=0.01)

    def test_large_epsilon_mostly_truthful(self):
        rr = BinaryRandomizedResponse(10.0)
        out = rr.randomize_batch(np.ones(1000, dtype=int), rng=0)
        assert out.mean() > 0.99

    def test_rejects_non_bit(self):
        rr = BinaryRandomizedResponse(1.0)
        with pytest.raises(ValidationError):
            rr.randomize(2, rng=0)

    def test_rejects_bad_batch(self):
        rr = BinaryRandomizedResponse(1.0)
        with pytest.raises(ValidationError):
            rr.randomize_batch(np.array([0, 3]), rng=0)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(Exception):
            BinaryRandomizedResponse(-1.0)

    def test_pure_dp(self):
        assert BinaryRandomizedResponse(1.0).is_pure


class TestKaryRR:
    def test_truth_probability_formula(self):
        krr = KaryRandomizedResponse(1.0, 10)
        assert krr.truth_probability == pytest.approx(
            math.e / (math.e + 9.0)
        )

    def test_binary_special_case_matches(self):
        binary = BinaryRandomizedResponse(1.3)
        kary = KaryRandomizedResponse(1.3, 2)
        assert kary.truth_probability == pytest.approx(binary.truth_probability)

    def test_outputs_in_alphabet(self, rng):
        krr = KaryRandomizedResponse(0.5, 5)
        outputs = {krr.randomize(2, rng) for _ in range(100)}
        assert outputs.issubset(set(range(5)))

    def test_never_lies_to_itself(self):
        """A 'lie' is always a *different* symbol."""
        krr = KaryRandomizedResponse(0.1, 4)
        out = krr.randomize_batch(np.full(100_000, 2), rng=0)
        truthful = np.mean(out == 2)
        # With eps=0.1, k=4: p ~ 1.105/4.105 ~ 0.269; lies spread over
        # the OTHER three symbols uniformly.
        assert truthful == pytest.approx(krr.truth_probability, abs=0.01)
        lie_counts = np.bincount(out, minlength=4)
        others = np.delete(lie_counts, 2)
        assert others.std() / others.mean() < 0.05

    def test_frequency_estimation_unbiased(self):
        krr = KaryRandomizedResponse(1.5, 5)
        truth = np.array([0.4, 0.3, 0.15, 0.1, 0.05])
        symbols = np.repeat(np.arange(5), (truth * 100_000).astype(int))
        reports = krr.randomize_batch(symbols, rng=0)
        estimate = krr.estimate_frequencies(reports)
        np.testing.assert_allclose(estimate, truth, atol=0.02)

    def test_debias_one_hot(self):
        krr = KaryRandomizedResponse(1.0, 3)
        contribution = krr.debias(1)
        assert contribution.shape == (3,)
        assert contribution.sum() == pytest.approx(1.0)

    def test_rejects_single_symbol(self):
        with pytest.raises(ValidationError):
            KaryRandomizedResponse(1.0, 1)

    def test_rejects_out_of_range_symbol(self):
        krr = KaryRandomizedResponse(1.0, 3)
        with pytest.raises(ValidationError):
            krr.randomize(3, rng=0)

    @given(
        st.floats(min_value=0.1, max_value=5.0),
        st.integers(min_value=2, max_value=20),
    )
    @settings(max_examples=30)
    def test_likelihood_ratio_property(self, epsilon, k):
        """P[report=s | true=s] / P[report=s | true=s'] = e^eps exactly."""
        krr = KaryRandomizedResponse(epsilon, k)
        p = krr.truth_probability
        q = (1.0 - p) / (k - 1.0)
        assert p / q == pytest.approx(math.exp(epsilon), rel=1e-9)
