"""Tests for Laplace, Gaussian, and unary-encoding randomizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ldp.gaussian import GaussianMechanism, gaussian_sigma
from repro.ldp.histogram import UnaryEncoding
from repro.ldp.laplace import LaplaceMechanism


class TestLaplace:
    def test_scale_formula(self):
        mechanism = LaplaceMechanism(2.0, 0.0, 1.0)
        assert mechanism.scale == pytest.approx(0.5)

    def test_wider_domain_more_noise(self):
        narrow = LaplaceMechanism(1.0, 0.0, 1.0)
        wide = LaplaceMechanism(1.0, 0.0, 10.0)
        assert wide.scale == pytest.approx(10.0 * narrow.scale)

    def test_unbiased(self):
        mechanism = LaplaceMechanism(1.0)
        reports = mechanism.randomize_batch(np.full(100_000, 0.5), rng=0)
        assert reports.mean() == pytest.approx(0.5, abs=0.02)

    def test_noise_scale_empirical(self):
        mechanism = LaplaceMechanism(1.0)
        reports = mechanism.randomize_batch(np.zeros(100_000), rng=0)
        # Laplace variance = 2 b^2.
        assert reports.var() == pytest.approx(2.0, rel=0.05)

    def test_debias_identity(self):
        mechanism = LaplaceMechanism(1.0)
        assert mechanism.debias(0.42) == 0.42

    def test_rejects_out_of_bounds(self):
        mechanism = LaplaceMechanism(1.0, 0.0, 1.0)
        with pytest.raises(ValidationError):
            mechanism.randomize(2.0, rng=0)

    def test_rejects_bad_interval(self):
        with pytest.raises(ValidationError):
            LaplaceMechanism(1.0, 1.0, 0.0)

    def test_is_pure_dp(self):
        assert LaplaceMechanism(1.0).is_pure


class TestGaussian:
    def test_sigma_formula(self):
        sigma = gaussian_sigma(1.0, 1e-5, 1.0)
        assert sigma == pytest.approx(np.sqrt(2 * np.log(1.25e5)), rel=1e-9)

    def test_smaller_delta_more_noise(self):
        loose = GaussianMechanism(1.0, 1e-3)
        tight = GaussianMechanism(1.0, 1e-9)
        assert tight.sigma > loose.sigma

    def test_not_pure(self):
        assert not GaussianMechanism(1.0, 1e-5).is_pure
        assert GaussianMechanism(1.0, 1e-5).delta == 1e-5

    def test_unbiased(self):
        mechanism = GaussianMechanism(1.0, 1e-5)
        reports = mechanism.randomize_batch(np.full(50_000, 0.3), rng=0)
        assert reports.mean() == pytest.approx(0.3, abs=0.1)

    def test_empirical_sigma(self):
        mechanism = GaussianMechanism(1.0, 1e-5)
        reports = mechanism.randomize_batch(np.zeros(100_000), rng=0)
        assert reports.std() == pytest.approx(mechanism.sigma, rel=0.03)

    def test_rejects_zero_delta(self):
        with pytest.raises(Exception):
            GaussianMechanism(1.0, 0.0)

    def test_rejects_out_of_bounds_value(self):
        mechanism = GaussianMechanism(1.0, 1e-5)
        with pytest.raises(ValidationError):
            mechanism.randomize(-0.1, rng=0)

    def test_rejects_bad_sensitivity(self):
        with pytest.raises(ValidationError):
            gaussian_sigma(1.0, 1e-5, 0.0)


class TestUnaryEncoding:
    def test_probabilities(self):
        encoding = UnaryEncoding(2.0, 5)
        half = np.exp(1.0)
        assert encoding.keep_probability == pytest.approx(half / (half + 1))
        assert encoding.flip_probability == pytest.approx(
            1 - encoding.keep_probability
        )

    def test_output_shape_single(self, rng):
        encoding = UnaryEncoding(1.0, 6)
        report = encoding.randomize(3, rng)
        assert report.shape == (6,)
        assert set(np.unique(report)).issubset({0, 1})

    def test_output_shape_batch(self):
        encoding = UnaryEncoding(1.0, 4)
        reports = encoding.randomize_batch(np.array([0, 1, 2, 3]), rng=0)
        assert reports.shape == (4, 4)

    def test_frequency_estimation_unbiased(self):
        encoding = UnaryEncoding(2.0, 4)
        truth = np.array([0.5, 0.25, 0.15, 0.1])
        symbols = np.repeat(np.arange(4), (truth * 50_000).astype(int))
        reports = encoding.randomize_batch(symbols, rng=0)
        estimate = encoding.estimate_frequencies(reports)
        np.testing.assert_allclose(estimate, truth, atol=0.02)

    def test_true_bit_kept_at_rate_p(self):
        encoding = UnaryEncoding(2.0, 3)
        reports = encoding.randomize_batch(np.zeros(50_000, dtype=int), rng=0)
        assert reports[:, 0].mean() == pytest.approx(
            encoding.keep_probability, abs=0.01
        )
        assert reports[:, 1].mean() == pytest.approx(
            encoding.flip_probability, abs=0.01
        )

    def test_rejects_single_symbol(self):
        with pytest.raises(ValidationError):
            UnaryEncoding(1.0, 1)

    def test_rejects_bad_symbol(self):
        encoding = UnaryEncoding(1.0, 3)
        with pytest.raises(ValidationError):
            encoding.randomize(5, rng=0)

    def test_estimate_rejects_wrong_width(self):
        encoding = UnaryEncoding(1.0, 3)
        with pytest.raises(ValidationError):
            encoding.estimate_frequencies(np.zeros((10, 4)))

    def test_debias_shape(self):
        encoding = UnaryEncoding(1.0, 3)
        debiased = encoding.debias(np.array([1, 0, 0]))
        assert debiased.shape == (3,)
