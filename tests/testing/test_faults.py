"""The fault-injection harness itself: plans, counters, actions."""

from __future__ import annotations

import json
import os

import pytest

from repro.exceptions import ValidationError
from repro.testing import (
    FaultPlan,
    FaultRule,
    InjectedFaultError,
    active_plan,
    inject,
    maybe_fire,
)
from repro.testing.faults import ENV_VAR


class TestFaultRule:
    def test_unknown_action_refused(self):
        with pytest.raises(ValidationError, match="fault action"):
            FaultRule(point=0, action="explode")

    def test_nonpositive_times_refused(self):
        with pytest.raises(ValidationError, match="times"):
            FaultRule(point=0, times=0)

    def test_nonpositive_seconds_refused(self):
        with pytest.raises(ValidationError, match="seconds"):
            FaultRule(point=0, action="hang", seconds=0)

    def test_round_trips_through_dict(self):
        rule = FaultRule(point=3, action="exit", times=2, exit_code=9)
        plan = FaultPlan(rules=(rule,), directory="/tmp/x")
        assert FaultPlan.from_dict(plan.to_dict()) == plan


class TestInject:
    def test_installs_and_restores_environment(self):
        assert active_plan() is None
        with inject([FaultRule(point=0)]) as plan:
            assert json.loads(os.environ[ENV_VAR]) == plan.to_dict()
            assert active_plan() == plan
        assert ENV_VAR not in os.environ
        assert active_plan() is None

    def test_nested_plans_restore_the_outer_one(self):
        with inject([FaultRule(point=0)]) as outer:
            with inject([FaultRule(point=1)]) as inner:
                assert active_plan() == inner
            assert active_plan() == outer

    def test_mapping_rules_are_coerced(self):
        with inject([{"point": 2, "action": "raise"}]) as plan:
            assert plan.rules[0] == FaultRule(point=2, action="raise")

    def test_owned_counter_directory_is_removed(self):
        with inject([FaultRule(point=0)]) as plan:
            directory = plan.directory
            assert os.path.isdir(directory)
        assert not os.path.exists(directory)

    def test_explicit_directory_is_kept(self, tmp_path):
        target = tmp_path / "counters"
        with inject([FaultRule(point=0)], directory=target) as plan:
            assert plan.directory == str(target)
        assert target.is_dir()

    def test_malformed_plan_is_loud(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "{not json")
        with pytest.raises(ValidationError, match="cannot parse"):
            active_plan()


class TestMaybeFire:
    def test_no_plan_is_a_no_op(self):
        maybe_fire(0)  # must not raise

    def test_raise_fires_then_exhausts(self):
        with inject([FaultRule(point=1, times=2, message="boom")]) as plan:
            maybe_fire(0)  # different point: no-op
            for _ in range(2):
                with pytest.raises(InjectedFaultError, match="boom"):
                    maybe_fire(1)
            maybe_fire(1)  # budget spent: the point now succeeds
            assert plan.fired(0) == 2

    def test_counters_are_cross_process_files(self, tmp_path):
        with inject(
            [FaultRule(point=0, times=1)], directory=tmp_path
        ) as plan:
            with pytest.raises(InjectedFaultError):
                maybe_fire(0)
            counter = tmp_path / "rule-0.fired"
            assert counter.stat().st_size == 1
            assert plan.fired(0) == 1

    def test_hang_sleeps_then_returns(self, monkeypatch):
        naps = []
        monkeypatch.setattr("repro.testing.faults.time.sleep", naps.append)
        with inject([FaultRule(point=0, action="hang", seconds=1.5)]):
            maybe_fire(0)
        assert naps == [1.5]
