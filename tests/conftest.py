"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    random_regular_graph,
)
from repro.graphs.graph import Graph


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for the test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_regular() -> Graph:
    """A small ergodic 4-regular graph."""
    return random_regular_graph(4, 50, rng=7)


@pytest.fixture
def medium_regular() -> Graph:
    """A medium 8-regular graph for walk statistics."""
    return random_regular_graph(8, 400, rng=7)


@pytest.fixture
def triangle() -> Graph:
    """The smallest ergodic graph (odd cycle)."""
    return cycle_graph(3)


@pytest.fixture
def k4() -> Graph:
    """Complete graph on four nodes."""
    return complete_graph(4)
