"""Unit tests for Node and Server entities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.netsim.metrics import EntityMeter
from repro.netsim.node import Node
from repro.netsim.server import Server


@pytest.fixture
def node():
    return Node(3, np.array([1, 2, 5]), EntityMeter())


class TestNode:
    def test_initial_state(self, node):
        assert node.node_id == 3
        assert node.online
        assert node.held == []
        assert node.inbox == []

    def test_receive_goes_to_inbox(self, node):
        node.receive("payload")
        assert node.inbox == ["payload"]
        assert node.held == []
        assert node.meter.messages_received == 1

    def test_collect_inbox_moves_items(self, node):
        node.receive("a")
        node.receive("b")
        node.collect_inbox()
        assert node.held == ["a", "b"]
        assert node.inbox == []

    def test_take_all_empties_and_meters(self, node):
        node.receive("a")
        node.collect_inbox()
        items = node.take_all()
        assert items == ["a"]
        assert node.held == []
        assert node.meter.current_items == 0

    def test_sample_neighbor_uniform(self, node):
        rng = np.random.default_rng(0)
        samples = [node.sample_neighbor(rng) for _ in range(3000)]
        counts = np.bincount(samples, minlength=6)
        for neighbor in (1, 2, 5):
            assert counts[neighbor] == pytest.approx(1000, rel=0.15)
        assert counts[0] == counts[3] == counts[4] == 0

    def test_sample_neighbor_isolated_raises(self):
        from repro.exceptions import SimulationError

        isolated = Node(0, np.array([], dtype=np.int64), EntityMeter())
        with pytest.raises(SimulationError):
            isolated.sample_neighbor(np.random.default_rng(0))

    def test_repr(self, node):
        assert "id=3" in repr(node)
        assert "degree=3" in repr(node)


class TestServer:
    def test_delivery_order_preserved(self):
        server = Server(EntityMeter())
        server.deliver(2, "x")
        server.deliver(0, "y")
        assert server.reports == ["x", "y"]
        assert server.delivered_by == [2, 0]
        assert len(server) == 2

    def test_meter_counts_receives(self):
        server = Server(EntityMeter())
        for i in range(5):
            server.deliver(i, i)
        assert server.meter.messages_received == 5
        assert server.meter.peak_items == 5

    def test_reports_by_sender_grouping(self):
        server = Server(EntityMeter())
        server.deliver(1, "a")
        server.deliver(1, "b")
        server.deliver(2, "c")
        grouped = server.reports_by_sender()
        assert grouped == {1: ["a", "b"], 2: ["c"]}

    def test_reports_returns_copy(self):
        server = Server(EntityMeter())
        server.deliver(0, "a")
        reports = server.reports
        reports.append("tampered")
        assert server.reports == ["a"]
