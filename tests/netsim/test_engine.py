"""Backend equivalence: vectorized engine vs the per-message oracle.

The vectorized engine promises an *exact* RNG contract with the faithful
simulator — a seeded run must produce identical per-round held counts,
meters, and server deliveries — plus statistical agreement with the
exact distribution evolution of :mod:`repro.graphs.walks`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError, ValidationError
from repro.graphs.generators import cycle_graph, random_regular_graph
from repro.graphs.graph import Graph
from repro.graphs.walks import position_distribution
from repro.netsim.engine import VectorizedExchange
from repro.netsim.faults import (
    AdversarialDropout,
    IndependentDropout,
    NoFaults,
)
from repro.netsim.network import RoundBasedNetwork
from repro.protocols.all_protocol import run_all_protocol
from repro.protocols.single_protocol import run_single_protocol


def _paired_networks(graph, faults_factory, seed):
    """One faithful and one vectorized network with identical seeds."""
    pair = []
    for backend in ("faithful", "vectorized"):
        network = RoundBasedNetwork(
            graph, faults=faults_factory(), rng=seed, backend=backend
        )
        network.seed_items({i: [("r", i)] for i in range(graph.num_nodes)})
        pair.append(network)
    return pair


FAULT_FACTORIES = [
    NoFaults,
    lambda: IndependentDropout(0.25),
    lambda: AdversarialDropout(np.arange(0, 50, 5)),
]


class TestSeededEquivalence:
    @pytest.mark.parametrize("faults_factory", FAULT_FACTORIES)
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_identical_held_counts_every_round(
        self, small_regular, faults_factory, seed
    ):
        faithful, vectorized = _paired_networks(
            small_regular, faults_factory, seed
        )
        for _ in range(10):
            faithful.run_exchange_round()
            vectorized.run_exchange_round()
            np.testing.assert_array_equal(
                faithful.held_counts(), vectorized.held_counts()
            )

    @pytest.mark.parametrize("faults_factory", FAULT_FACTORIES)
    def test_identical_meters(self, small_regular, faults_factory):
        faithful, vectorized = _paired_networks(
            small_regular, faults_factory, 11
        )
        faithful.run_exchange(8)
        vectorized.run_exchange(8)
        for user in range(small_regular.num_nodes):
            a = faithful.meters.meter(user)
            b = vectorized.meters.meter(user)
            assert a.messages_sent == b.messages_sent
            assert a.messages_received == b.messages_received
            assert a.current_items == b.current_items
            assert a.peak_items == b.peak_items
        assert (
            faithful.meters.max_peak_items()
            == vectorized.meters.max_peak_items()
        )
        assert (
            faithful.meters.total_messages_sent()
            == vectorized.meters.total_messages_sent()
        )

    def test_identical_server_delivery(self, small_regular):
        faithful, vectorized = _paired_networks(small_regular, NoFaults, 3)
        faithful.run_exchange(6)
        vectorized.run_exchange(6)
        faithful.deliver_to_server()
        vectorized.deliver_to_server()
        assert faithful.server.delivered_by == vectorized.server.delivered_by
        assert faithful.server.reports == vectorized.server.reports
        assert faithful.held_counts().sum() == 0
        assert vectorized.held_counts().sum() == 0

    def test_identical_drain_held(self, small_regular):
        faithful, vectorized = _paired_networks(small_regular, NoFaults, 5)
        faithful.run_exchange(4)
        vectorized.run_exchange(4)
        assert faithful.drain_held() == vectorized.drain_held()

    def test_all_protocol_identical_across_engines(self, small_regular):
        fast = run_all_protocol(small_regular, 7, rng=9)
        faithful = run_all_protocol(small_regular, 7, engine="faithful", rng=9)
        np.testing.assert_array_equal(fast.allocation, faithful.allocation)
        np.testing.assert_array_equal(fast.delivered_by, faithful.delivered_by)
        assert [r.origin for r in fast.server_reports] == [
            r.origin for r in faithful.server_reports
        ]

    def test_single_protocol_identical_across_engines(self, small_regular):
        fast = run_single_protocol(small_regular, 7, rng=9)
        faithful = run_single_protocol(
            small_regular, 7, engine="faithful", rng=9
        )
        np.testing.assert_array_equal(fast.allocation, faithful.allocation)
        assert fast.dummy_count == faithful.dummy_count
        assert [r.origin for r in fast.server_reports] == [
            r.origin for r in faithful.server_reports
        ]

    def test_laziness_equivalent_to_dropout(self, small_regular):
        lazy = run_all_protocol(small_regular, 6, laziness=0.4, rng=2)
        dropout = run_all_protocol(
            small_regular, 6, faults=IndependentDropout(0.4), rng=2
        )
        np.testing.assert_array_equal(lazy.allocation, dropout.allocation)


class TestDistributionMatch:
    """Both backends must match the exact walk-engine marginals."""

    @pytest.mark.parametrize("backend", ["faithful", "vectorized"])
    def test_marginal_matches_evolve_distribution(self, backend):
        graph = random_regular_graph(4, 30, rng=1)
        steps, start, samples = 4, 0, 4000
        exact = position_distribution(graph, start, steps)
        network = RoundBasedNetwork(graph, rng=77, backend=backend)
        network.seed_items({start: list(range(samples))})
        network.run_exchange(steps)
        empirical = network.held_counts() / samples
        # L1 (graph total variation) tolerance ~ O(sqrt(n / samples)).
        assert np.abs(empirical - exact).sum() < 0.15

    def test_engine_marginal_with_laziness(self):
        # Node-level dropout correlates tokens sharing a holder (they
        # stay or move together), so one run never concentrates — the
        # single-token marginal is checked by averaging independent
        # seeded runs instead.
        graph = cycle_graph(11)
        steps, start, runs = 5, 3, 600
        exact = position_distribution(graph, start, steps, laziness=0.3)
        counts = np.zeros(graph.num_nodes)
        for seed in range(runs):
            engine = VectorizedExchange(
                graph, faults=IndependentDropout(0.3), rng=seed
            )
            engine.seed_tokens(np.array([start]))
            engine.run(steps)
            counts += engine.held_counts()
        empirical = counts / runs
        assert np.abs(empirical - exact).sum() < 0.15


class TestVectorizedEngineApi:
    def test_seed_rejects_out_of_range(self, k4):
        engine = VectorizedExchange(k4, rng=0)
        with pytest.raises(ValidationError):
            engine.seed_tokens(np.array([7]))

    def test_seed_rejects_isolated_nodes(self):
        graph = Graph(3, [(0, 1)])  # node 2 is isolated
        engine = VectorizedExchange(graph, rng=0)
        with pytest.raises(ValidationError):
            engine.seed_tokens(np.array([2]))

    def test_negative_rounds_rejected(self, k4):
        engine = VectorizedExchange(k4, rng=0)
        with pytest.raises(SimulationError):
            engine.run(-1)

    def test_trajectories_require_flag(self, k4):
        engine = VectorizedExchange(k4, rng=0)
        engine.seed_tokens(np.arange(4))
        with pytest.raises(SimulationError):
            engine.trajectories()

    def test_trajectories_shape_and_start(self, small_regular):
        engine = VectorizedExchange(
            small_regular, rng=0, record_trajectories=True
        )
        engine.seed_tokens(np.arange(small_regular.num_nodes))
        engine.run(6)
        paths = engine.trajectories()
        assert paths.shape == (small_regular.num_nodes, 7)
        np.testing.assert_array_equal(
            paths[:, 0], np.arange(small_regular.num_nodes)
        )
        np.testing.assert_array_equal(paths[:, -1], engine.token_position)

    def test_tokens_conserved(self, medium_regular):
        engine = VectorizedExchange(medium_regular, rng=0)
        origins = np.repeat(np.arange(medium_regular.num_nodes), 3)
        engine.seed_tokens(origins)
        engine.run(20)
        assert engine.held_counts().sum() == origins.size
        np.testing.assert_array_equal(engine.token_origin, origins)

    def test_double_delivery_is_idempotent(self, k4):
        """A second final delivery must deliver nothing (both backends)."""
        for backend in ("faithful", "vectorized"):
            network = RoundBasedNetwork(k4, rng=0, backend=backend)
            network.seed_items({i: [f"p{i}"] for i in range(4)})
            network.run_exchange(2)
            network.deliver_to_server()
            network.deliver_to_server()
            assert len(network.server) == 4, backend

    def test_post_delivery_rounds_are_noops_on_both_backends(self):
        """Rounds after final delivery move nothing, meter nothing, and
        keep the backends in lockstep (including fault-model draws)."""
        graph = cycle_graph(6)
        nets = {}
        for backend in ("faithful", "vectorized"):
            net = RoundBasedNetwork(
                graph, faults=IndependentDropout(0.3), rng=0, backend=backend
            )
            net.seed_items({i: [i] for i in range(6)})
            net.run_exchange(3)
            net.deliver_to_server()
            net.run_exchange_round()
            net.seed_items({i: [("n", i)] for i in range(6)})
            net.run_exchange(2)
            nets[backend] = net
        faithful, vectorized = nets["faithful"], nets["vectorized"]
        np.testing.assert_array_equal(
            faithful.held_counts(), vectorized.held_counts()
        )
        assert (
            faithful.meters.total_messages_sent()
            == vectorized.meters.total_messages_sent()
        )
        for user in range(6):
            a = faithful.meters.meter(user)
            b = vectorized.meters.meter(user)
            assert a.messages_sent == b.messages_sent
            assert a.current_items == b.current_items
            assert a.peak_items == b.peak_items

    def test_reseed_after_delivery_maps_new_payloads(self, k4):
        """A second campaign must not see the first campaign's payloads."""
        network = RoundBasedNetwork(k4, rng=0, backend="vectorized")
        network.seed_items({i: [("first", i)] for i in range(4)})
        network.run_exchange(2)
        network.deliver_to_server()
        network.seed_items({i: [("second", i)] for i in range(4)})
        network.run_exchange(2)
        flat = [p for held in network.drain_held() for p in held]
        assert len(flat) == 4
        assert all(tag == "second" for tag, _ in flat)

    def test_rejected_seed_leaves_payload_mapping_intact(self, k4):
        """A failed seed must not orphan payloads (token-id alignment)."""
        network = RoundBasedNetwork(k4, rng=0, backend="vectorized")
        network.seed_items({0: ["A"]})
        with pytest.raises(ValidationError):
            network.seed_items({99: ["B"]})
        network.seed_items({1: ["C"]})
        flat = sorted(p for held in network.drain_held() for p in held)
        assert flat == ["A", "C"]

    def test_mid_run_seeding_rejected(self, k4):
        """Interleaving seeds with rounds would break the RNG contract."""
        engine = VectorizedExchange(k4, rng=0)
        engine.seed_tokens(np.arange(4))
        engine.seed_tokens(np.arange(2))  # still pre-run: allowed
        engine.run(1)
        with pytest.raises(SimulationError):
            engine.seed_tokens(np.arange(2))

    @pytest.mark.parametrize("backend", ["faithful", "vectorized"])
    def test_mid_run_seed_items_rejected_on_both_backends(self, k4, backend):
        """The network enforces the seeding rule identically per backend."""
        network = RoundBasedNetwork(k4, rng=0, backend=backend)
        network.seed_items({0: ["a"]})
        network.seed_items({1: ["b"]})  # pre-run: allowed
        network.run_exchange(1)
        with pytest.raises(SimulationError):
            network.seed_items({2: ["c"]})
        # After the final delivery a fresh campaign may seed again.
        network.deliver_to_server()
        network.seed_items({2: ["c"]})
        network.run_exchange(1)
        assert network.held_counts().sum() == 1

    def test_reseed_after_drain_drops_old_tokens(self, small_regular):
        """Drained tokens left the network; reseeding must not revive them."""
        engine = VectorizedExchange(small_regular, rng=0)
        engine.seed_tokens(np.arange(small_regular.num_nodes))
        engine.run(3)
        engine.drain()
        engine.seed_tokens(np.arange(10))
        engine.run(2)
        assert engine.held_counts().sum() == 10

    def test_unknown_backend_rejected(self, k4):
        with pytest.raises(ValidationError):
            RoundBasedNetwork(k4, backend="quantum")

    def test_vector_meter_board_queries(self, k4):
        network = RoundBasedNetwork(k4, rng=0, backend="vectorized")
        network.seed_items({i: [i] for i in range(4)})
        network.run_exchange(3)
        board = network.meters
        assert len(board) == 5  # four users + server
        assert 0 in board and -1 in board and 99 not in board
        assert board.total_messages_sent() == 12
        assert board.max_peak_items() >= 1
        with pytest.raises(KeyError):
            board.meter(99)

    def test_deliver_with_selection_vectorized(self, k4):
        network = RoundBasedNetwork(k4, rng=0, backend="vectorized")
        network.seed_items({i: [f"item-{i}"] for i in range(4)})
        network.run_exchange(1)
        network.deliver_to_server(select=lambda node, held, rng: held[:1])
        assert len(network.server) <= 4
