"""Backend equivalence: the three-way exchange oracle.

The vectorized and compiled engines both promise an *exact* RNG
contract with the faithful simulator — a seeded run must produce
identical per-round held counts, meters, and server deliveries on all
three backends (``faithful`` ≡ ``vectorized`` ≡ ``compiled``) — plus
statistical agreement with the exact distribution evolution of
:mod:`repro.graphs.walks`.  The compiled backend is additionally
exercised through its fused multi-round path (``run(rounds)`` on a
static graph under ``NoFaults``), which must be bit-identical to its
own per-round loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError, ValidationError
from repro.graphs.dynamic import DynamicGraphSchedule, evolve_on_schedule
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    random_regular_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.walks import position_distribution, simulate_token_walks
from repro.netsim.engine import VectorizedExchange
from repro.netsim.kernels import CompiledExchange
from repro.netsim.faults import (
    AdversarialDropout,
    IndependentDropout,
    NoFaults,
)
from repro.netsim.network import RoundBasedNetwork
from repro.protocols.all_protocol import run_all_protocol
from repro.protocols.single_protocol import run_single_protocol


ALL_BACKENDS = ("faithful", "vectorized", "compiled")


def _paired_networks(graph, faults_factory, seed):
    """Identically seeded networks, one per exchange backend."""
    nets = []
    for backend in ALL_BACKENDS:
        network = RoundBasedNetwork(
            graph, faults=faults_factory(), rng=seed, backend=backend
        )
        network.seed_items({i: [("r", i)] for i in range(graph.num_nodes)})
        nets.append(network)
    return nets


FAULT_FACTORIES = [
    NoFaults,
    lambda: IndependentDropout(0.25),
    lambda: AdversarialDropout(np.arange(0, 50, 5)),
]


class TestSeededEquivalence:
    @pytest.mark.parametrize("faults_factory", FAULT_FACTORIES)
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_identical_held_counts_every_round(
        self, small_regular, faults_factory, seed
    ):
        faithful, vectorized, compiled = _paired_networks(
            small_regular, faults_factory, seed
        )
        for _ in range(10):
            faithful.run_exchange_round()
            for other in (vectorized, compiled):
                other.run_exchange_round()
                np.testing.assert_array_equal(
                    faithful.held_counts(), other.held_counts()
                )

    @pytest.mark.parametrize("faults_factory", FAULT_FACTORIES)
    def test_identical_meters(self, small_regular, faults_factory):
        faithful, vectorized, compiled = _paired_networks(
            small_regular, faults_factory, 11
        )
        # run_exchange(8) lets the compiled backend take its fused
        # multi-round path when the fault model permits.
        faithful.run_exchange(8)
        for other in (vectorized, compiled):
            other.run_exchange(8)
            for user in range(small_regular.num_nodes):
                a = faithful.meters.meter(user)
                b = other.meters.meter(user)
                assert a.messages_sent == b.messages_sent
                assert a.messages_received == b.messages_received
                assert a.current_items == b.current_items
                assert a.peak_items == b.peak_items
            assert (
                faithful.meters.max_peak_items()
                == other.meters.max_peak_items()
            )
            assert (
                faithful.meters.total_messages_sent()
                == other.meters.total_messages_sent()
            )

    def test_identical_server_delivery(self, small_regular):
        nets = _paired_networks(small_regular, NoFaults, 3)
        for net in nets:
            net.run_exchange(6)
            net.deliver_to_server()
            assert net.held_counts().sum() == 0
        faithful, vectorized, compiled = nets
        for other in (vectorized, compiled):
            assert faithful.server.delivered_by == other.server.delivered_by
            assert faithful.server.reports == other.server.reports

    def test_identical_drain_held(self, small_regular):
        faithful, vectorized, compiled = _paired_networks(
            small_regular, NoFaults, 5
        )
        for net in (faithful, vectorized, compiled):
            net.run_exchange(4)
        reference = faithful.drain_held()
        assert reference == vectorized.drain_held()
        assert reference == compiled.drain_held()

    def test_all_protocol_identical_across_engines(self, small_regular):
        fast = run_all_protocol(small_regular, 7, rng=9)
        for engine in ("faithful", "compiled"):
            other = run_all_protocol(small_regular, 7, engine=engine, rng=9)
            np.testing.assert_array_equal(fast.allocation, other.allocation)
            np.testing.assert_array_equal(
                fast.delivered_by, other.delivered_by
            )
            assert [r.origin for r in fast.server_reports] == [
                r.origin for r in other.server_reports
            ]

    def test_single_protocol_identical_across_engines(self, small_regular):
        fast = run_single_protocol(small_regular, 7, rng=9)
        for engine in ("faithful", "compiled"):
            other = run_single_protocol(
                small_regular, 7, engine=engine, rng=9
            )
            np.testing.assert_array_equal(fast.allocation, other.allocation)
            assert fast.dummy_count == other.dummy_count
            assert [r.origin for r in fast.server_reports] == [
                r.origin for r in other.server_reports
            ]

    def test_laziness_equivalent_to_dropout(self, small_regular):
        lazy = run_all_protocol(small_regular, 6, laziness=0.4, rng=2)
        dropout = run_all_protocol(
            small_regular, 6, faults=IndependentDropout(0.4), rng=2
        )
        np.testing.assert_array_equal(lazy.allocation, dropout.allocation)


class TestDistributionMatch:
    """Both backends must match the exact walk-engine marginals."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_marginal_matches_evolve_distribution(self, backend):
        graph = random_regular_graph(4, 30, rng=1)
        steps, start, samples = 4, 0, 4000
        exact = position_distribution(graph, start, steps)
        network = RoundBasedNetwork(graph, rng=77, backend=backend)
        network.seed_items({start: list(range(samples))})
        network.run_exchange(steps)
        empirical = network.held_counts() / samples
        # L1 (graph total variation) tolerance ~ O(sqrt(n / samples)).
        assert np.abs(empirical - exact).sum() < 0.15

    def test_engine_marginal_with_laziness(self):
        # Node-level dropout correlates tokens sharing a holder (they
        # stay or move together), so one run never concentrates — the
        # single-token marginal is checked by averaging independent
        # seeded runs instead.
        graph = cycle_graph(11)
        steps, start, runs = 5, 3, 600
        exact = position_distribution(graph, start, steps, laziness=0.3)
        counts = np.zeros(graph.num_nodes)
        for seed in range(runs):
            engine = VectorizedExchange(
                graph, faults=IndependentDropout(0.3), rng=seed
            )
            engine.seed_tokens(np.array([start]))
            engine.run(steps)
            counts += engine.held_counts()
        empirical = counts / runs
        assert np.abs(empirical - exact).sum() < 0.15


class TestVectorizedEngineApi:
    def test_seed_rejects_out_of_range(self, k4):
        engine = VectorizedExchange(k4, rng=0)
        with pytest.raises(ValidationError):
            engine.seed_tokens(np.array([7]))

    def test_seed_rejects_isolated_nodes(self):
        graph = Graph(3, [(0, 1)])  # node 2 is isolated
        engine = VectorizedExchange(graph, rng=0)
        with pytest.raises(ValidationError):
            engine.seed_tokens(np.array([2]))

    def test_negative_rounds_rejected(self, k4):
        engine = VectorizedExchange(k4, rng=0)
        with pytest.raises(SimulationError):
            engine.run(-1)

    def test_trajectories_require_flag(self, k4):
        engine = VectorizedExchange(k4, rng=0)
        engine.seed_tokens(np.arange(4))
        with pytest.raises(SimulationError):
            engine.trajectories()

    def test_trajectories_shape_and_start(self, small_regular):
        engine = VectorizedExchange(
            small_regular, rng=0, record_trajectories=True
        )
        engine.seed_tokens(np.arange(small_regular.num_nodes))
        engine.run(6)
        paths = engine.trajectories()
        assert paths.shape == (small_regular.num_nodes, 7)
        np.testing.assert_array_equal(
            paths[:, 0], np.arange(small_regular.num_nodes)
        )
        np.testing.assert_array_equal(paths[:, -1], engine.token_position)

    def test_tokens_conserved(self, medium_regular):
        engine = VectorizedExchange(medium_regular, rng=0)
        origins = np.repeat(np.arange(medium_regular.num_nodes), 3)
        engine.seed_tokens(origins)
        engine.run(20)
        assert engine.held_counts().sum() == origins.size
        np.testing.assert_array_equal(engine.token_origin, origins)

    def test_double_delivery_is_idempotent(self, k4):
        """A second final delivery must deliver nothing (all backends)."""
        for backend in ALL_BACKENDS:
            network = RoundBasedNetwork(k4, rng=0, backend=backend)
            network.seed_items({i: [f"p{i}"] for i in range(4)})
            network.run_exchange(2)
            network.deliver_to_server()
            network.deliver_to_server()
            assert len(network.server) == 4, backend

    def test_post_delivery_rounds_are_noops_on_all_backends(self):
        """Rounds after final delivery move nothing, meter nothing, and
        keep the backends in lockstep (including fault-model draws)."""
        graph = cycle_graph(6)
        nets = {}
        for backend in ALL_BACKENDS:
            net = RoundBasedNetwork(
                graph, faults=IndependentDropout(0.3), rng=0, backend=backend
            )
            net.seed_items({i: [i] for i in range(6)})
            net.run_exchange(3)
            net.deliver_to_server()
            net.run_exchange_round()
            net.seed_items({i: [("n", i)] for i in range(6)})
            net.run_exchange(2)
            nets[backend] = net
        faithful = nets["faithful"]
        for backend in ("vectorized", "compiled"):
            other = nets[backend]
            np.testing.assert_array_equal(
                faithful.held_counts(), other.held_counts()
            )
            assert (
                faithful.meters.total_messages_sent()
                == other.meters.total_messages_sent()
            )
            for user in range(6):
                a = faithful.meters.meter(user)
                b = other.meters.meter(user)
                assert a.messages_sent == b.messages_sent
                assert a.current_items == b.current_items
                assert a.peak_items == b.peak_items

    def test_reseed_after_delivery_maps_new_payloads(self, k4):
        """A second campaign must not see the first campaign's payloads."""
        network = RoundBasedNetwork(k4, rng=0, backend="vectorized")
        network.seed_items({i: [("first", i)] for i in range(4)})
        network.run_exchange(2)
        network.deliver_to_server()
        network.seed_items({i: [("second", i)] for i in range(4)})
        network.run_exchange(2)
        flat = [p for held in network.drain_held() for p in held]
        assert len(flat) == 4
        assert all(tag == "second" for tag, _ in flat)

    def test_rejected_seed_leaves_payload_mapping_intact(self, k4):
        """A failed seed must not orphan payloads (token-id alignment)."""
        network = RoundBasedNetwork(k4, rng=0, backend="vectorized")
        network.seed_items({0: ["A"]})
        with pytest.raises(ValidationError):
            network.seed_items({99: ["B"]})
        network.seed_items({1: ["C"]})
        flat = sorted(p for held in network.drain_held() for p in held)
        assert flat == ["A", "C"]

    def test_mid_run_seeding_rejected(self, k4):
        """Interleaving seeds with rounds would break the RNG contract."""
        engine = VectorizedExchange(k4, rng=0)
        engine.seed_tokens(np.arange(4))
        engine.seed_tokens(np.arange(2))  # still pre-run: allowed
        engine.run(1)
        with pytest.raises(SimulationError):
            engine.seed_tokens(np.arange(2))

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_mid_run_seed_items_rejected_on_both_backends(self, k4, backend):
        """The network enforces the seeding rule identically per backend."""
        network = RoundBasedNetwork(k4, rng=0, backend=backend)
        network.seed_items({0: ["a"]})
        network.seed_items({1: ["b"]})  # pre-run: allowed
        network.run_exchange(1)
        with pytest.raises(SimulationError):
            network.seed_items({2: ["c"]})
        # After the final delivery a fresh campaign may seed again.
        network.deliver_to_server()
        network.seed_items({2: ["c"]})
        network.run_exchange(1)
        assert network.held_counts().sum() == 1

    def test_reseed_after_drain_drops_old_tokens(self, small_regular):
        """Drained tokens left the network; reseeding must not revive them."""
        engine = VectorizedExchange(small_regular, rng=0)
        engine.seed_tokens(np.arange(small_regular.num_nodes))
        engine.run(3)
        engine.drain()
        engine.seed_tokens(np.arange(10))
        engine.run(2)
        assert engine.held_counts().sum() == 10

    def test_unknown_backend_rejected(self, k4):
        with pytest.raises(ValidationError):
            RoundBasedNetwork(k4, backend="quantum")

    def test_vector_meter_board_queries(self, k4):
        network = RoundBasedNetwork(k4, rng=0, backend="vectorized")
        network.seed_items({i: [i] for i in range(4)})
        network.run_exchange(3)
        board = network.meters
        assert len(board) == 5  # four users + server
        assert 0 in board and -1 in board and 99 not in board
        assert board.total_messages_sent() == 12
        assert board.max_peak_items() >= 1
        with pytest.raises(KeyError):
            board.meter(99)

    def test_deliver_with_selection_vectorized(self, k4):
        network = RoundBasedNetwork(k4, rng=0, backend="vectorized")
        network.seed_items({i: [f"item-{i}"] for i in range(4)})
        network.run_exchange(1)
        network.deliver_to_server(select=lambda node, held, rng: held[:1])
        assert len(network.server) <= 4


def _three_phase_schedule(n: int = 50) -> DynamicGraphSchedule:
    return DynamicGraphSchedule([
        random_regular_graph(4, n, rng=0),
        random_regular_graph(6, n, rng=1),
        cycle_graph(n),
    ])


class TestDynamicScheduleEquivalence:
    """The exact RNG contract must survive per-round graph swaps."""

    @pytest.mark.parametrize("faults_factory", FAULT_FACTORIES)
    @pytest.mark.parametrize("seed", [0, 11])
    def test_identical_held_counts_across_swaps(self, faults_factory, seed):
        schedule = _three_phase_schedule()
        faithful, vectorized, compiled = _paired_networks(
            schedule, faults_factory, seed
        )
        for _ in range(9):
            faithful.run_exchange_round()
            for other in (vectorized, compiled):
                other.run_exchange_round()
                np.testing.assert_array_equal(
                    faithful.held_counts(), other.held_counts()
                )

    def test_identical_meters_and_delivery_across_swaps(self):
        schedule = _three_phase_schedule()
        nets = _paired_networks(schedule, NoFaults, 5)
        for net in nets:
            net.run_exchange(7)
            net.deliver_to_server()
        faithful, vectorized, compiled = nets
        for other in (vectorized, compiled):
            for user in range(schedule.num_nodes):
                a = faithful.meters.meter(user)
                b = other.meters.meter(user)
                assert a.messages_sent == b.messages_sent
                assert a.messages_received == b.messages_received
                assert a.peak_items == b.peak_items
            assert faithful.server.delivered_by == other.server.delivered_by
            assert faithful.server.reports == other.server.reports

    def test_drain_then_reseed_across_swap_boundary(self):
        """A second campaign seeded mid-schedule must stay in lockstep:
        the reseed validates against (and the next round walks) the
        topology in force at that round, on every backend."""
        schedule = _three_phase_schedule()
        nets = {}
        for backend in ALL_BACKENDS:
            net = RoundBasedNetwork(
                schedule, faults=IndependentDropout(0.2), rng=3, backend=backend
            )
            net.seed_items({i: [("first", i)] for i in range(50)})
            net.run_exchange(2)          # stops on the swap boundary
            net.deliver_to_server()
            net.seed_items({i: [("second", i)] for i in range(50)})
            net.run_exchange(4)          # crosses two more swaps
            nets[backend] = net
        faithful = nets["faithful"]
        for backend in ("vectorized", "compiled"):
            np.testing.assert_array_equal(
                faithful.held_counts(), nets[backend].held_counts()
            )
        reference = faithful.drain_held()
        for backend in ("vectorized", "compiled"):
            assert reference == nets[backend].drain_held()

    def test_schedule_of_one_matches_static_graph(self, small_regular):
        """A single-graph schedule is bit-identical to the static run —
        the swap machinery consumes no randomness."""
        static = RoundBasedNetwork(small_regular, rng=9, backend="vectorized")
        dynamic = RoundBasedNetwork(
            DynamicGraphSchedule([small_regular]), rng=9, backend="vectorized"
        )
        for net in (static, dynamic):
            net.seed_items({i: [i] for i in range(small_regular.num_nodes)})
            net.run_exchange(6)
        np.testing.assert_array_equal(
            static.held_counts(), dynamic.held_counts()
        )
        assert static.drain_held() == dynamic.drain_held()

    def test_engine_tracks_scheduled_topology(self):
        schedule = _three_phase_schedule()
        engine = VectorizedExchange(schedule, rng=0)
        engine.seed_tokens(np.arange(50))
        for round_index in range(5):
            engine.run_round()
            assert engine.graph is schedule.graph_at(round_index)

    def test_engine_marginal_matches_exact_schedule_evolution(self):
        schedule = _three_phase_schedule()
        samples = 4000
        engine = VectorizedExchange(schedule, rng=123)
        engine.seed_tokens(np.zeros(samples, dtype=np.int64))
        engine.run(5)
        empirical = engine.held_counts() / samples
        initial = np.zeros(50)
        initial[0] = 1.0
        exact = evolve_on_schedule(schedule, initial, 5)
        assert np.abs(empirical - exact).sum() < 0.15

    def test_set_graph_rejects_node_count_mismatch(self, small_regular):
        engine = VectorizedExchange(small_regular, rng=0)
        with pytest.raises(ValidationError):
            engine.set_graph(complete_graph(small_regular.num_nodes + 1))
        network = RoundBasedNetwork(small_regular, rng=0, backend="faithful")
        with pytest.raises(ValidationError):
            network.set_graph(complete_graph(small_regular.num_nodes + 1))

    def test_set_graph_rebinds_both_backends(self, small_regular):
        replacement = complete_graph(small_regular.num_nodes)
        for backend in ("faithful", "vectorized"):
            network = RoundBasedNetwork(small_regular, rng=0, backend=backend)
            network.set_graph(replacement)
            assert network.graph is replacement
            if backend == "faithful":
                np.testing.assert_array_equal(
                    network.nodes[0].neighbors, replacement.neighbors(0)
                )

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_isolated_node_under_swap_raises(self, backend):
        """An item stranded on a node the new topology isolates must
        fail loudly — with the same exception type on both backends —
        not hop through a garbage CSR offset."""
        path = Graph(3, [(0, 1), (1, 2)])
        isolating = Graph(3, [(0, 2)])  # node 1 isolated
        schedule = DynamicGraphSchedule([path, isolating])
        network = RoundBasedNetwork(schedule, rng=0, backend=backend)
        network.seed_items({0: ["item"]})
        network.run_exchange_round()  # node 0's only neighbor is 1
        np.testing.assert_array_equal(network.held_counts(), [0, 1, 0])
        with pytest.raises(SimulationError):
            network.run_exchange_round()  # round 1 isolates node 1

    def test_seed_validates_against_scheduled_topology(self):
        """Reseeding after a drain checks isolation against the graph in
        force at the seeding round, not graph 0."""
        full = Graph(2, [(0, 1)])
        isolating = Graph(2, [])
        schedule = DynamicGraphSchedule(
            [full, isolating], selector=lambda r: 0 if r < 1 else 1
        )
        engine = VectorizedExchange(schedule, rng=0)
        engine.seed_tokens(np.array([0]))  # valid on graph 0
        engine.run_round()
        engine.drain()
        with pytest.raises(ValidationError):
            engine.seed_tokens(np.array([0]))  # round 1 isolates node 0


class _PinnedRng(np.random.Generator):
    """A real Generator whose uniform doubles are pinned to one value."""

    def __init__(self, value: float):
        super().__init__(np.random.PCG64(0))
        self._value = value

    def random(self, size=None, dtype=np.float64, out=None):
        if size is None:
            return self._value
        return np.full(size, self._value)


class TestOffsetBoundaryClamp:
    """floor(u * degree) must never index past the neighbor slice.

    A conforming float64 draw (u <= 1 - 2^-53) provably cannot reach
    offset == degree, so the top-of-range stub asserts the exact
    last-neighbor mapping; the u == 1.0 stub models a contract-violating
    generator (custom RngLike subclass, float32 upstream) and fails
    without the clamp — the regression the fix guards.
    """

    @pytest.mark.parametrize(
        "engine_cls", [VectorizedExchange, CompiledExchange]
    )
    @pytest.mark.parametrize("value", [1.0 - 2.0**-53, 1.0])
    def test_vectorized_boundary_draw_hits_last_neighbor(
        self, engine_cls, value
    ):
        graph = cycle_graph(7)
        last = graph.num_nodes - 1  # pre-fix, u=1.0 indexes past indices
        engine = engine_cls(graph, rng=_PinnedRng(value))
        engine.seed_tokens(np.array([last]))
        engine.run_round()
        assert int(engine.token_position[0]) == int(graph.neighbors(last)[-1])

    @pytest.mark.parametrize("value", [1.0 - 2.0**-53, 1.0])
    def test_compiled_fused_boundary_draw_hits_last_neighbor(self, value):
        """The fused multi-round kernel applies the same clamp."""
        graph = cycle_graph(7)
        last = graph.num_nodes - 1
        engine = CompiledExchange(graph, rng=_PinnedRng(value))
        engine.seed_tokens(np.array([last]))
        engine.run(3)  # static + NoFaults: takes the fused path
        walked = last
        for _ in range(3):
            walked = int(graph.neighbors(walked)[-1])
        assert int(engine.token_position[0]) == walked

    @pytest.mark.parametrize("value", [1.0 - 2.0**-53, 1.0])
    def test_faithful_boundary_draw_hits_last_neighbor(self, value):
        graph = cycle_graph(7)
        network = RoundBasedNetwork(graph, rng=0, backend="faithful")
        node = network.nodes[0]
        assert node.sample_neighbor(_PinnedRng(value)) == int(
            graph.neighbors(0)[-1]
        )

    @pytest.mark.parametrize("value", [1.0 - 2.0**-53, 1.0])
    def test_token_walk_boundary_draw_hits_last_neighbor(self, value):
        graph = cycle_graph(7)
        last = graph.num_nodes - 1
        finals = simulate_token_walks(
            graph, np.array([last]), 1, rng=_PinnedRng(value)
        )
        assert int(finals[0]) == int(graph.neighbors(last)[-1])
