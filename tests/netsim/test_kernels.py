"""The compiled backend's kernel module, exercised without numba.

The numba-facing loops (``_round_loop`` / ``_rounds_loop``) are plain
Python functions, so the JIT code *path* is testable on installs without
the ``repro[compiled]`` extra: wire the interpreted loops into a
:class:`CompiledExchange` and demand bit-equality with the vectorized
oracle.  Implementation resolution (numpy fallback, ``require_jit``,
broken-numba) is driven by monkeypatching the module's resolution state,
so every branch runs regardless of whether numba is installed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import BackendUnavailableError, SimulationError
from repro.graphs.dynamic import DynamicGraphSchedule
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    random_regular_graph,
)
from repro.graphs.graph import Graph
from repro.netsim.engine import _DEGREE_CACHE_LIMIT
from repro.netsim import kernels
from repro.netsim.engine import VectorizedExchange
from repro.netsim.faults import (
    AdversarialDropout,
    IndependentDropout,
    NoFaults,
)
from repro.netsim.kernels import (
    CompiledExchange,
    backend_info,
    backend_label,
    set_require_jit,
)


def _interpreted_engine(graph, seed, faults=None):
    """A compiled engine running the numba loops as plain Python."""
    engine = CompiledExchange(graph, faults=faults, rng=seed)
    engine._round_kernel = kernels._round_loop
    engine._rounds_kernel = kernels._rounds_loop
    return engine


def _assert_engines_identical(a, b):
    np.testing.assert_array_equal(a.token_position, b.token_position)
    np.testing.assert_array_equal(a.held_counts(), b.held_counts())
    np.testing.assert_array_equal(
        a.meters.messages_sent, b.meters.messages_sent
    )
    np.testing.assert_array_equal(
        a.meters.messages_received, b.meters.messages_received
    )
    np.testing.assert_array_equal(a.meters.peak_items, b.meters.peak_items)
    np.testing.assert_array_equal(
        a.meters.current_items, b.meters.current_items
    )
    # Same stream position: the engines drew the same number of doubles.
    assert a.rng.random() == b.rng.random()


FAULT_FACTORIES = [
    NoFaults,
    lambda: IndependentDropout(0.3),
    lambda: AdversarialDropout(np.arange(0, 30, 4)),
]


class TestInterpretedLoopKernels:
    """The numba code path, run interpreted, against the oracle."""

    @pytest.mark.parametrize("faults_factory", FAULT_FACTORIES)
    def test_round_loop_matches_vectorized(self, faults_factory):
        graph = random_regular_graph(4, 30, rng=0)
        oracle = VectorizedExchange(graph, faults=faults_factory(), rng=42)
        loop = _interpreted_engine(graph, 42, faults=faults_factory())
        for engine in (oracle, loop):
            engine.seed_tokens(np.arange(30))
        for _ in range(8):
            oracle.run_round()
            loop.run_round()
        _assert_engines_identical(oracle, loop)

    def test_rounds_loop_matches_vectorized(self):
        graph = random_regular_graph(4, 30, rng=1)
        oracle = VectorizedExchange(graph, rng=9)
        loop = _interpreted_engine(graph, 9)
        for engine in (oracle, loop):
            engine.seed_tokens(np.repeat(np.arange(30), 2))
            engine.run(9)  # loop takes the fused NoFaults fast path
        _assert_engines_identical(oracle, loop)

    def test_round_loop_matches_across_schedule_swaps(self):
        schedule = DynamicGraphSchedule([
            random_regular_graph(4, 24, rng=0),
            cycle_graph(24),
            complete_graph(24),
        ])
        oracle = VectorizedExchange(
            schedule, faults=IndependentDropout(0.2), rng=5
        )
        loop = _interpreted_engine(
            schedule, 5, faults=IndependentDropout(0.2)
        )
        for engine in (oracle, loop):
            engine.seed_tokens(np.arange(24))
            engine.run(7)
        _assert_engines_identical(oracle, loop)

    def test_warm_up_accepts_interpreted_kernels(self):
        kernels._warm_up(kernels._round_loop, kernels._rounds_loop)


class TestCompiledEngine:
    def test_fused_run_matches_per_round_loop(self):
        graph = random_regular_graph(6, 40, rng=2)
        fused = CompiledExchange(graph, rng=77)
        stepped = CompiledExchange(graph, rng=77)
        for engine in (fused, stepped):
            engine.seed_tokens(np.arange(40))
        fused.run(9)  # odd round count exercises the order swap
        for _ in range(9):
            stepped.run_round()
        _assert_engines_identical(fused, stepped)
        assert fused.round_index == stepped.round_index == 9

    def test_fused_run_chunks_uniform_blocks(self, monkeypatch):
        """Chunked pre-draws consume the identical stream."""
        graph = cycle_graph(10)
        whole = CompiledExchange(graph, rng=3)
        chunked = CompiledExchange(graph, rng=3)
        for engine in (whole, chunked):
            engine.seed_tokens(np.arange(10))
        whole.run(8)
        # Force 3-round blocks (8 = 3 + 3 + 2 → odd/even chunk parity).
        monkeypatch.setattr(kernels, "_UNIFORM_BLOCK", 30)
        chunked.run(8)
        _assert_engines_identical(whole, chunked)

    def test_buffers_reused_across_rounds(self):
        graph = cycle_graph(12)
        engine = CompiledExchange(graph, rng=0)
        engine.seed_tokens(np.arange(12))
        engine.run_round()
        buffers = engine._buffers
        engine.run(5)
        assert engine._buffers is buffers

    def test_buffers_rebuilt_on_token_count_change(self):
        graph = cycle_graph(12)
        engine = CompiledExchange(graph, rng=0)
        engine.seed_tokens(np.arange(12))
        engine.run(2)
        first = engine._buffers
        engine.drain()
        engine.seed_tokens(np.arange(5))
        engine.run(2)
        assert engine._buffers is not first
        assert engine._buffers.alt_order.shape == (5,)

    def test_drained_fused_run_only_advances_clock(self):
        graph = cycle_graph(8)
        engine = CompiledExchange(graph, rng=0)
        engine.seed_tokens(np.arange(8))
        engine.run(2)
        engine.drain()
        engine.run(5)
        assert engine.round_index == 7
        assert engine.held_counts().sum() == 0

    def test_trajectories_recorded_per_round(self):
        graph = cycle_graph(9)
        plain = CompiledExchange(graph, rng=4)
        recording = CompiledExchange(graph, rng=4, record_trajectories=True)
        for engine in (plain, recording):
            engine.seed_tokens(np.arange(9))
            engine.run(5)  # recording engine must not take the fused path
        paths = recording.trajectories()
        assert paths.shape == (9, 6)
        np.testing.assert_array_equal(paths[:, -1], plain.token_position)

    def test_isolated_holder_raises_from_run(self):
        graph_with_isolate = DynamicGraphSchedule([
            Graph(3, [(0, 1), (1, 2)]),
            Graph(3, [(0, 2)]),  # node 1 isolated
        ])
        engine = CompiledExchange(graph_with_isolate, rng=0)
        engine.seed_tokens(np.array([0]))
        engine.run_round()
        np.testing.assert_array_equal(engine.held_counts(), [0, 1, 0])
        with pytest.raises(SimulationError):
            engine.run(1)


class TestImplementationResolution:
    def test_resolves_numpy_without_numba(self, monkeypatch):
        monkeypatch.setattr(kernels, "NUMBA_AVAILABLE", False)
        monkeypatch.setitem(kernels._RESOLVED, "implementation", None)
        assert kernels.resolve_implementation() == "numpy"

    def test_require_jit_argument_raises_on_numpy_fallback(self, monkeypatch):
        monkeypatch.setitem(kernels._RESOLVED, "implementation", "numpy")
        with pytest.raises(BackendUnavailableError):
            kernels.resolve_implementation(require_jit=True)

    def test_require_jit_flag_raises_in_engine_constructor(self, monkeypatch):
        monkeypatch.setitem(kernels._RESOLVED, "implementation", "numpy")
        previous = set_require_jit(True)
        try:
            assert kernels.require_jit_enabled()
            with pytest.raises(BackendUnavailableError):
                CompiledExchange(cycle_graph(4), rng=0)
        finally:
            set_require_jit(previous)

    def test_engine_require_jit_overrides_process_flag(self, monkeypatch):
        monkeypatch.setitem(kernels._RESOLVED, "implementation", "numpy")
        previous = set_require_jit(True)
        try:
            engine = CompiledExchange(cycle_graph(4), rng=0, require_jit=False)
            assert engine.implementation == "numpy"
        finally:
            set_require_jit(previous)

    def test_broken_numba_always_raises(self, monkeypatch):
        monkeypatch.setitem(kernels._RESOLVED, "implementation", "broken")
        monkeypatch.setitem(
            kernels._RESOLVED, "error", RuntimeError("jit exploded")
        )
        with pytest.raises(BackendUnavailableError, match="jit exploded"):
            kernels.resolve_implementation()
        with pytest.raises(BackendUnavailableError):
            kernels.resolve_implementation(require_jit=False)

    def test_backend_label_per_engine(self, monkeypatch):
        monkeypatch.setitem(kernels._RESOLVED, "implementation", "numpy")
        assert backend_label("fast") == "vectorized"
        assert backend_label("vectorized") == "vectorized"
        assert backend_label("faithful") == "faithful"
        assert backend_label("compiled") == "compiled-numpy"
        monkeypatch.setitem(kernels._RESOLVED, "implementation", "broken")
        monkeypatch.setitem(kernels._RESOLVED, "error", RuntimeError("x"))
        assert backend_label("compiled") == "compiled-broken"

    def test_backend_info_payload(self):
        info = backend_info()
        assert set(info) == {
            "numba_available", "compiled_kernels", "require_jit"
        }
        assert info["numba_available"] == kernels.NUMBA_AVAILABLE
        assert info["compiled_kernels"] in ("numba", "numpy", "broken")


class TestBoundedDegreeCache:
    def test_static_engine_never_populates_cache(self):
        """Manual swaps on a static engine bypass the cache entirely —
        nothing pins the replaced graphs alive."""
        engine = VectorizedExchange(cycle_graph(10), rng=0)
        assert engine._degree_cache_limit == 1
        for seed in range(6):
            engine.set_graph(random_regular_graph(4, 10, rng=seed))
            assert len(engine._degree_cache) == 0

    def test_schedule_cache_bounded_by_distinct_graphs(self):
        schedule = DynamicGraphSchedule([
            random_regular_graph(4, 20, rng=0),
            cycle_graph(20),
            complete_graph(20),
        ])
        engine = VectorizedExchange(schedule, rng=0)
        assert engine._degree_cache_limit == 3
        engine.seed_tokens(np.arange(20))
        engine.run(9)  # cycles through every graph three times
        assert len(engine._degree_cache) <= 3

    def test_repeated_graph_hits_cache(self):
        schedule = DynamicGraphSchedule([
            random_regular_graph(4, 16, rng=0),
            cycle_graph(16),
        ])
        engine = VectorizedExchange(schedule, rng=0)
        engine.seed_tokens(np.arange(16))
        engine.run_round()  # graph 0 (bound at construction)
        engine.run_round()  # graph 1 — cached by set_graph
        degrees_graph_one = engine._degrees
        engine.run_round()  # graph 0 again
        engine.run_round()  # graph 1 — must hit, not recompute
        assert engine._degrees is degrees_graph_one

    def test_cache_limit_caps_lazy_schedules(self):
        graphs = [random_regular_graph(4, 12, rng=seed) for seed in range(5)]
        schedule = DynamicGraphSchedule(graphs)
        engine = VectorizedExchange(schedule, rng=0)
        # The bound formula: min(num_graphs, module cap).
        assert engine._degree_cache_limit == min(
            schedule.num_graphs, _DEGREE_CACHE_LIMIT
        )
        for graph in graphs * 2:
            engine.set_graph(graph)
        assert len(engine._degree_cache) <= engine._degree_cache_limit
