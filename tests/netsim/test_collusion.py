"""Tests for the collusion-threat analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.netsim.collusion import (
    collect_observations,
    run_collusion_attack,
    simulate_walk_trajectories,
)


class TestTrajectories:
    def test_shape(self, small_regular):
        trajectories = simulate_walk_trajectories(small_regular, 7, rng=0)
        assert trajectories.shape == (small_regular.num_nodes, 8)

    def test_starts_at_own_node(self, small_regular):
        trajectories = simulate_walk_trajectories(small_regular, 3, rng=0)
        np.testing.assert_array_equal(
            trajectories[:, 0], np.arange(small_regular.num_nodes)
        )

    def test_consecutive_positions_are_neighbors(self, small_regular):
        trajectories = simulate_walk_trajectories(small_regular, 5, rng=0)
        for token in range(0, small_regular.num_nodes, 7):
            for t in range(5):
                u = int(trajectories[token, t])
                v = int(trajectories[token, t + 1])
                assert small_regular.has_edge(u, v)

    def test_deterministic(self, small_regular):
        a = simulate_walk_trajectories(small_regular, 5, rng=4)
        b = simulate_walk_trajectories(small_regular, 5, rng=4)
        np.testing.assert_array_equal(a, b)

    def test_rejects_negative_steps(self, small_regular):
        with pytest.raises(ValidationError):
            simulate_walk_trajectories(small_regular, -1, rng=0)


class TestObservations:
    def test_no_colluders_no_observations(self, small_regular):
        trajectories = simulate_walk_trajectories(small_regular, 5, rng=0)
        assert collect_observations(trajectories, np.array([])) == []

    def test_all_colluders_observe_everything_round_one(self, small_regular):
        trajectories = simulate_walk_trajectories(small_regular, 5, rng=0)
        everyone = np.arange(small_regular.num_nodes)
        observations = collect_observations(trajectories, everyone)
        assert len(observations) == small_regular.num_nodes
        assert all(obs.round_index == 1 for obs in observations)

    def test_earliest_sighting_recorded(self, small_regular):
        trajectories = simulate_walk_trajectories(small_regular, 8, rng=0)
        colluders = np.array([0, 1, 2])
        observations = collect_observations(trajectories, colluders)
        for obs in observations:
            path = trajectories[obs.token]
            # No earlier sighting exists.
            for earlier in range(1, obs.round_index):
                assert int(path[earlier]) not in {0, 1, 2}
            assert int(path[obs.round_index]) in {0, 1, 2}
            assert int(path[obs.round_index - 1]) == obs.sender


class TestAttack:
    def test_no_colluders_equals_baseline(self, medium_regular):
        result = run_collusion_attack(medium_regular, 20, [], rng=0)
        assert result.num_colluders == 0
        assert result.observed_tokens == 0
        assert result.linkage_accuracy == result.baseline_accuracy

    def test_more_colluders_more_linkage(self, medium_regular):
        few = run_collusion_attack(
            medium_regular, 20, range(10), rng=0
        )
        many = run_collusion_attack(
            medium_regular, 20, range(100), rng=0
        )
        assert many.observed_tokens > few.observed_tokens
        assert many.linkage_accuracy >= few.linkage_accuracy

    def test_colluders_beat_baseline(self, medium_regular):
        result = run_collusion_attack(
            medium_regular, 20, range(80), rng=0
        )
        assert result.linkage_accuracy > 2 * result.baseline_accuracy

    def test_observation_rate_property(self, medium_regular):
        result = run_collusion_attack(medium_regular, 20, range(40), rng=0)
        assert 0.0 <= result.observation_rate <= 1.0

    def test_rejects_bad_colluder_ids(self, small_regular):
        with pytest.raises(ValidationError):
            run_collusion_attack(small_regular, 5, [9999], rng=0)


class TestVectorizedParity:
    """The batched attack must match the scalar reference exactly."""

    def test_observations_match_loop_reference(self, small_regular):
        trajectories = simulate_walk_trajectories(small_regular, 8, rng=0)
        colluders = np.array([0, 5, 9])
        colluder_set = {0, 5, 9}
        expected = []
        for token in range(trajectories.shape[0]):
            path = trajectories[token]
            for round_index in range(1, trajectories.shape[1]):
                if int(path[round_index]) in colluder_set:
                    expected.append(
                        (token, round_index, int(path[round_index - 1]))
                    )
                    break
        observed = [
            (obs.token, obs.round_index, obs.sender)
            for obs in collect_observations(trajectories, colluders)
        ]
        assert observed == expected

    def test_batched_posterior_matches_scalar(self, medium_regular):
        from repro.netsim.collusion import (
            _batched_reverse_posterior_argmax,
            _reverse_posterior_argmax,
        )

        rng = np.random.default_rng(0)
        anchors = rng.integers(0, medium_regular.num_nodes, 40)
        free_rounds = rng.integers(0, 9, 40)
        batched = _batched_reverse_posterior_argmax(
            medium_regular, anchors, free_rounds
        )
        scalar = np.array([
            _reverse_posterior_argmax(medium_regular, int(a), int(r))
            for a, r in zip(anchors, free_rounds)
        ])
        np.testing.assert_array_equal(batched, scalar)

    def test_attack_guesses_match_scalar_pipeline(self, medium_regular):
        """Seeded end-to-end parity: the vectorized attack reproduces the
        per-token loop implementation bit for bit."""
        from repro.netsim.collusion import _reverse_posterior_argmax

        rounds, colluders = 10, list(range(25))
        result = run_collusion_attack(medium_regular, rounds, colluders, rng=5)

        trajectories = simulate_walk_trajectories(medium_regular, rounds, rng=5)
        n = medium_regular.num_nodes
        baseline = np.array([
            _reverse_posterior_argmax(medium_regular, int(h), rounds)
            for h in trajectories[:, -1]
        ])
        guesses = baseline.copy()
        for obs in collect_observations(trajectories, np.array(colluders)):
            guesses[obs.token] = _reverse_posterior_argmax(
                medium_regular, obs.sender, obs.round_index - 1
            )
        assert result.baseline_accuracy == float(
            np.mean(baseline == np.arange(n))
        )
        assert result.linkage_accuracy == float(
            np.mean(guesses == np.arange(n))
        )

    def test_empty_colluders_vectorized(self, small_regular):
        trajectories = simulate_walk_trajectories(small_regular, 4, rng=1)
        assert collect_observations(trajectories, np.array([])) == []

    def test_chunked_posterior_matches_unchunked(self, medium_regular, monkeypatch):
        """Column chunking (the large-graph memory guard) must not
        change a single guess."""
        from repro.netsim import collusion as module

        rng = np.random.default_rng(3)
        anchors = rng.integers(0, medium_regular.num_nodes, 50)
        free_rounds = rng.integers(0, 7, 50)
        full = module._batched_reverse_posterior_argmax(
            medium_regular, anchors, free_rounds
        )
        monkeypatch.setattr(module, "_MAX_BLOCK_CELLS", medium_regular.num_nodes * 3)
        chunked = module._batched_reverse_posterior_argmax(
            medium_regular, anchors, free_rounds
        )
        np.testing.assert_array_equal(full, chunked)
