"""Tests for the round-based network simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.netsim.faults import AdversarialDropout, IndependentDropout, NoFaults
from repro.netsim.metrics import EntityMeter, MeterBoard
from repro.netsim.network import RoundBasedNetwork


class TestEntityMeter:
    def test_send_receive_counting(self):
        meter = EntityMeter()
        meter.record_send(3)
        meter.record_receive()
        assert meter.messages_sent == 3
        assert meter.messages_received == 1
        assert meter.total_traffic == 4

    def test_peak_tracking(self):
        meter = EntityMeter()
        meter.record_store(5)
        meter.record_release(3)
        meter.record_store(2)
        assert meter.peak_items == 5
        assert meter.current_items == 4

    def test_release_floors_at_zero(self):
        meter = EntityMeter()
        meter.record_release(10)
        assert meter.current_items == 0


class TestMeterBoard:
    def test_meter_created_on_access(self):
        board = MeterBoard()
        assert 5 not in board
        board.meter(5).record_send()
        assert 5 in board
        assert len(board) == 1

    def test_aggregates(self):
        board = MeterBoard()
        board.meter(0).record_send(2)
        board.meter(1).record_send(4)
        board.meter(1).record_store(3)
        assert board.max_messages_sent() == 4
        assert board.mean_messages_sent() == 3.0
        assert board.total_messages_sent() == 6
        assert board.max_peak_items() == 3

    def test_empty_aggregates(self):
        board = MeterBoard()
        assert board.max_peak_items() == 0
        assert board.mean_messages_sent() == 0.0


class TestRoundBasedNetwork:
    def test_seed_and_count(self, k4):
        network = RoundBasedNetwork(k4, rng=0)
        network.seed_items({0: ["a"], 1: ["b", "c"]})
        np.testing.assert_array_equal(network.held_counts(), [1, 2, 0, 0])

    def test_exchange_conserves_items(self, small_regular):
        network = RoundBasedNetwork(small_regular, rng=0)
        network.seed_items({i: [i] for i in range(small_regular.num_nodes)})
        network.run_exchange(10)
        assert network.held_counts().sum() == small_regular.num_nodes

    def test_items_move_each_round(self, k4):
        network = RoundBasedNetwork(k4, rng=0)
        network.seed_items({0: ["token"]})
        network.run_exchange_round()
        counts = network.held_counts()
        assert counts[0] == 0
        assert counts.sum() == 1

    def test_round_index_advances(self, k4):
        network = RoundBasedNetwork(k4, rng=0)
        network.run_exchange(3)
        assert network.round_index == 3

    def test_negative_rounds_rejected(self, k4):
        network = RoundBasedNetwork(k4, rng=0)
        with pytest.raises(SimulationError):
            network.run_exchange(-1)

    def test_deliver_all_to_server(self, k4):
        network = RoundBasedNetwork(k4, rng=0)
        network.seed_items({i: [f"item-{i}"] for i in range(4)})
        network.run_exchange(2)
        network.deliver_to_server()
        assert len(network.server) == 4
        assert network.held_counts().sum() == 0

    def test_deliver_with_selection(self, k4):
        network = RoundBasedNetwork(k4, rng=0)
        network.seed_items({i: [f"item-{i}"] for i in range(4)})
        network.run_exchange(1)
        network.deliver_to_server(select=lambda node, held, rng: held[:1])
        assert len(network.server) <= 4

    def test_server_records_sender(self, k4):
        network = RoundBasedNetwork(k4, rng=0)
        network.seed_items({0: ["x"]})
        network.deliver_to_server()
        assert network.server.delivered_by == [0]
        assert network.server.reports == ["x"]

    def test_reports_by_sender(self, k4):
        network = RoundBasedNetwork(k4, rng=0)
        network.seed_items({1: ["a", "b"]})
        network.deliver_to_server()
        grouped = network.server.reports_by_sender()
        assert grouped == {1: ["a", "b"]}


class TestFaultModels:
    def test_no_faults(self, rng):
        mask = NoFaults().offline_mask(10, 0, rng)
        assert not mask.any()

    def test_independent_dropout_rate(self, rng):
        model = IndependentDropout(0.3)
        masks = [model.offline_mask(1000, r, rng) for r in range(20)]
        rate = np.mean([m.mean() for m in masks])
        assert rate == pytest.approx(0.3, abs=0.02)

    def test_adversarial_dropout_fixed_set(self, rng):
        model = AdversarialDropout(np.array([1, 3]))
        mask = model.offline_mask(5, 0, rng)
        np.testing.assert_array_equal(mask, [False, True, False, True, False])

    def test_adversarial_ignores_out_of_range(self, rng):
        model = AdversarialDropout(np.array([99]))
        mask = model.offline_mask(5, 0, rng)
        assert not mask.any()

    def test_offline_users_hold_items(self, small_regular):
        """Fully offline network: nothing moves (lazy-walk limit)."""
        network = RoundBasedNetwork(
            small_regular, faults=IndependentDropout(1.0), rng=0
        )
        network.seed_items({i: [i] for i in range(small_regular.num_nodes)})
        network.run_exchange(5)
        counts = network.held_counts()
        np.testing.assert_array_equal(counts, np.ones(small_regular.num_nodes))

    def test_rejects_bad_probability(self):
        with pytest.raises(Exception):
            IndependentDropout(1.7)
