"""Public auditor planning API: resolve_method / should_memoize.

These were ``_resolve_method`` and ``_KERNEL_MAX_NODES`` — private
heuristics the scenario layer reached into.  Now they are documented
exports, with deprecation shims on the old spellings.
"""

from __future__ import annotations

import pytest

from repro.auditing import (
    KERNEL_MAX_NODES,
    resolve_method,
    should_memoize,
)
from repro.exceptions import ScheduleRefusedError, ValidationError
from repro.graphs.dynamic import DynamicGraphSchedule
from repro.graphs.generators import cycle_graph, random_regular_graph


@pytest.fixture
def small_graph():
    return random_regular_graph(4, 50, rng=7)


@pytest.fixture
def schedule():
    return DynamicGraphSchedule([cycle_graph(9), cycle_graph(9)])


class TestResolveMethod:
    def test_explicit_methods_pass_through(self, small_graph):
        assert resolve_method("kernel", small_graph, rounds=64) == "kernel"
        assert resolve_method("tiled", small_graph, rounds=64) == "tiled"

    def test_auto_prefers_kernel_on_small_graphs(self, small_graph):
        assert resolve_method("auto", small_graph, rounds=64) == "kernel"

    def test_auto_falls_back_for_short_walks(self, small_graph):
        # Few rounds: step-simulating is cheaper than building M^t.
        assert resolve_method("auto", small_graph, rounds=1) == "tiled"

    def test_unknown_method_is_a_validation_error(self, small_graph):
        with pytest.raises(ValidationError, match="method"):
            resolve_method("warp", small_graph, rounds=8)

    def test_kernel_on_schedule_is_refused(self, schedule):
        with pytest.raises(ScheduleRefusedError):
            resolve_method("kernel", schedule, rounds=8)

    def test_auto_on_schedule_step_simulates(self, schedule):
        assert resolve_method("auto", schedule, rounds=8) == "tiled"


class TestShouldMemoize:
    def test_small_static_graph_memoizes(self, small_graph):
        assert should_memoize(small_graph) is True

    def test_schedule_never_memoizes(self, schedule):
        assert should_memoize(schedule) is False

    def test_cap_is_the_kernel_cap(self, small_graph):
        assert small_graph.num_nodes <= KERNEL_MAX_NODES


class TestDeprecatedSpellings:
    def test_private_resolve_method_warns_and_aliases(self):
        from repro.auditing import auditor

        with pytest.warns(DeprecationWarning, match="resolve_method"):
            old = auditor._resolve_method
        assert old is resolve_method

    def test_private_kernel_cap_warns_and_aliases(self):
        from repro.auditing import auditor

        with pytest.warns(DeprecationWarning, match="KERNEL_MAX_NODES"):
            old = auditor._KERNEL_MAX_NODES
        assert old == KERNEL_MAX_NODES

    def test_unknown_attribute_still_raises(self):
        from repro.auditing import auditor

        with pytest.raises(AttributeError):
            auditor._no_such_name

    def test_scenario_auditing_imports_no_private_names(self):
        # The acceptance criterion: the scenario layer uses only the
        # public planning API.
        import inspect

        from repro.scenario import auditing

        source = inspect.getsource(auditing)
        assert "_resolve_method" not in source
        assert "_KERNEL_MAX_NODES" not in source
