"""The documented public facade: ``repro.api``.

The facade is the stable surface programmatic callers (and the serving
tier) import from; these tests pin its exports, the one shared
scenario-ingestion path, the payload renderers, and the exception ->
HTTP contract.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.exceptions import (
    BackendUnavailableError,
    BudgetExceededError,
    InvalidScenarioError,
    JobNotFoundError,
    ReproError,
    ScheduleRefusedError,
    ValidationError,
    error_payload,
    http_status_for,
)

SCENARIO_DICT = {
    "graph": {"kind": "k_regular", "params": {"degree": 4, "num_nodes": 64}},
    "mechanism": {"kind": "rr", "params": {"epsilon": 1.0}},
    "rounds": 4,
    "seed": 3,
}


@pytest.fixture(autouse=True)
def _fresh_cache():
    api.clear_graph_cache()
    yield
    api.clear_graph_cache()


class TestSurface:
    def test_every_advertised_name_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_operations_are_the_scenario_entry_points(self):
        from repro import scenario

        assert api.run is scenario.run
        assert api.bound is scenario.bound
        assert api.stationary_bound is scenario.stationary_bound
        assert api.audit is scenario.audit
        assert api.sweep is scenario.sweep

    def test_auditor_planning_is_public(self):
        from repro import auditing

        assert api.resolve_method is auditing.resolve_method
        assert api.should_memoize is auditing.should_memoize


class TestParseScenario:
    def test_scenario_passthrough(self):
        scenario = api.parse_scenario(SCENARIO_DICT)
        assert api.parse_scenario(scenario) is scenario

    def test_mapping_and_json_agree(self):
        from_dict = api.parse_scenario(SCENARIO_DICT)
        from_json = api.parse_scenario(from_dict.to_json())
        assert from_json == from_dict

    def test_bad_json_is_invalid_scenario(self):
        with pytest.raises(InvalidScenarioError, match="not valid JSON"):
            api.parse_scenario("{nope")

    def test_bad_keys_are_invalid_scenario(self):
        with pytest.raises(InvalidScenarioError, match="invalid scenario"):
            api.parse_scenario({"graf": {"kind": "k_regular"}})

    def test_wrong_type_is_invalid_scenario(self):
        with pytest.raises(InvalidScenarioError, match="got list"):
            api.parse_scenario([SCENARIO_DICT])


class TestPayloads:
    def test_bound_payload_fields(self):
        payload = api.bound_payload(api.bound(api.parse_scenario(SCENARIO_DICT)))
        assert set(payload) == {
            "epsilon", "delta", "theorem", "epsilon0", "sum_squared", "n",
            "amplification_ratio", "amplified", "accounting",
        }
        assert payload["n"] == 64
        assert payload["epsilon0"] == 1.0
        # Single-graph scenario: no schedule, so no accounting block.
        assert payload["accounting"] is None

    def test_run_payload_is_the_summary(self):
        result = api.run(api.parse_scenario(SCENARIO_DICT))
        assert api.run_payload(result) == result.summary()
        digest = api.digest_run(result)
        assert api.run_payload(digest) == digest.summary()

    def test_audit_payload_is_the_summary(self):
        result = api.audit(api.parse_scenario(SCENARIO_DICT), trials=200)
        payload = api.audit_payload(result)
        assert payload == result.summary()
        assert "epsilon_lower_bound" in payload


class TestHttpContract:
    @pytest.mark.parametrize(
        "error, status",
        [
            (JobNotFoundError("gone"), 404),
            (ScheduleRefusedError("no stationary distribution"), 422),
            (InvalidScenarioError("bad body"), 400),
            (ValidationError("bad arg"), 400),
            (BudgetExceededError("spent"), 409),
            (BackendUnavailableError("no jit"), 501),
            (ReproError("boom"), 500),
            (RuntimeError("not ours"), 500),
        ],
    )
    def test_status_mapping(self, error, status):
        assert http_status_for(error) == status

    def test_error_payload_shape(self):
        payload = error_payload(ScheduleRefusedError("no mixing time"))
        assert payload == {
            "error": "ScheduleRefusedError",
            "status": 422,
            "message": "no mixing time",
        }

    def test_subclasses_win_over_bases(self):
        # InvalidScenarioError and ScheduleRefusedError both derive from
        # ValidationError; the map must answer for the subclass first.
        assert http_status_for(ScheduleRefusedError("x")) != http_status_for(
            ValidationError("x")
        )


class TestCacheTelemetry:
    def test_cache_stats_counts_builds_and_hits(self):
        # Counters are monotone (a clear changes residency, not
        # history), so assert on deltas.
        before = api.cache_stats()
        scenario = api.parse_scenario(SCENARIO_DICT)
        api.bound(scenario)
        api.bound(scenario)
        stats = api.cache_stats()
        assert stats["builds"] == before["builds"] + 1
        assert stats["memory_hits"] >= before["memory_hits"] + 1
        assert stats["resident"] == 1
        assert stats["requests"] == (
            stats["builds"] + stats["memory_hits"] + stats["disk_hits"]
        )

    def test_sampler_stats_counts_kernel_memoization(self):
        # Sampler counts live on the bundles, so the autouse clear
        # zeroes them; two audits of one scenario share one sampler.
        scenario = api.parse_scenario(SCENARIO_DICT | {"rounds": 8})
        api.audit(scenario, trials=100)
        api.audit(scenario, trials=100)
        stats = api.sampler_stats()
        assert stats["builds"] == 1
        assert stats["hits"] >= 1

    def test_attach_spill_and_spill_graph(self, tmp_path):
        from repro.scenario import GRAPH_CACHE

        directory = api.attach_spill(tmp_path / "tier")
        try:
            assert directory.is_dir()
            scenario = api.parse_scenario(SCENARIO_DICT)
            api.bound(scenario)
            path = api.spill_graph(scenario)
            assert path is not None and path.exists()
            assert path.suffix == ".npz"
        finally:
            GRAPH_CACHE.spill_dir = None

    def test_spill_graph_without_tier_is_a_noop(self):
        assert api.spill_graph(api.parse_scenario(SCENARIO_DICT)) is None
