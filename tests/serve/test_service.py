"""The HTTP serving tier: ``python -m repro serve``.

Boots a real server (ephemeral port, background thread) per test class
and exercises every endpoint with stdlib ``http.client`` — the same
wire path a curl caller takes.
"""

from __future__ import annotations

import http.client
import json
import time

import pytest

from repro.scenario import clear_graph_cache
from repro.serve import ReproService, ServerHandle

SCENARIO = {
    "graph": {"kind": "k_regular", "params": {"degree": 4, "num_nodes": 128}},
    "mechanism": {"kind": "rr", "params": {"epsilon": 1.0}},
    "rounds": 4,
    "seed": 5,
}

SCHEDULE_SCENARIO = {
    "graph": {
        "kind": "schedule",
        "params": {
            "graphs": [
                {"kind": "cycle", "params": {"num_nodes": 24}},
                {"kind": "k_regular", "params": {"degree": 4, "num_nodes": 24}},
            ],
        },
    },
    "mechanism": {"kind": "rr", "params": {"epsilon": 1.0}},
    "seed": 5,
}


@pytest.fixture(scope="module")
def server():
    clear_graph_cache()
    with ServerHandle.start() as handle:
        yield handle
    clear_graph_cache()


@pytest.fixture
def client(server):
    connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
    yield connection
    connection.close()


def request(client, method, path, body=None):
    payload = None if body is None else json.dumps(body)
    client.request(method, path, body=payload,
                   headers={"Content-Type": "application/json"})
    response = client.getresponse()
    return response.status, json.loads(response.read())


def wait_for_job(client, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, payload = request(client, "GET", f"/jobs/{job_id}")
        assert status == 200
        if payload["status"] in ("done", "error"):
            return payload
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


class TestIntrospection:
    def test_healthz(self, client):
        import repro

        status, payload = request(client, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["version"] == repro.__version__
        assert payload["uptime_seconds"] >= 0

    def test_stats_shape(self, client):
        status, payload = request(client, "GET", "/stats")
        assert status == 200
        assert set(payload) == {
            "uptime_seconds", "graph_cache", "kernel_sampler", "jobs",
            "queue", "store_errors", "requests", "profile_store",
            "exchange_backend",
        }
        assert payload["store_errors"] == 0
        assert set(payload["exchange_backend"]) == {
            "numba_available", "compiled_kernels", "require_jit",
            "engine_override",
        }
        assert payload["exchange_backend"]["engine_override"] is None
        assert payload["exchange_backend"]["compiled_kernels"] in (
            "numba", "numpy", "broken"
        )
        assert set(payload["queue"]) == {"depth", "max"}
        assert set(payload["graph_cache"]) == {
            "builds", "memory_hits", "disk_hits", "requests", "resident",
        }
        assert set(payload["kernel_sampler"]) == {"builds", "hits"}
        assert set(payload["profile_store"]) == {
            "dense_profiles", "blocked_profiles", "blocks_evolved",
            "blocks_resumed", "blocks_spilled", "spill_bytes",
            "truncated_profiles",
        }

    def test_stats_records_route_latencies(self, client):
        request(client, "GET", "/healthz")
        _, payload = request(client, "GET", "/stats")
        metrics = payload["requests"]["GET /healthz"]
        assert metrics["count"] >= 1
        assert metrics["mean_ms"] >= 0
        assert metrics["max_ms"] >= metrics["mean_ms"] or metrics["count"] == 1


class TestSynchronousBounds:
    def test_bound(self, client):
        status, payload = request(client, "POST", "/bound",
                                  {"scenario": SCENARIO})
        assert status == 200
        assert payload["n"] == 128
        assert payload["epsilon0"] == 1.0
        assert payload["epsilon"] > 0
        assert "theorem" in payload

    def test_bound_with_rounds_override(self, client):
        _, at_4 = request(client, "POST", "/bound",
                          {"scenario": SCENARIO, "rounds": 4})
        _, at_64 = request(client, "POST", "/bound",
                           {"scenario": SCENARIO, "rounds": 64})
        assert at_64["epsilon"] <= at_4["epsilon"]

    def test_stationary_bound(self, client):
        status, payload = request(client, "POST", "/stationary_bound",
                                  {"scenario": SCENARIO})
        assert status == 200
        # Regular graph: stationary collision mass is exactly 1/n.
        assert payload["sum_squared"] == pytest.approx(1 / 128)

    def test_repeat_bounds_hit_the_cache(self, client):
        _, before = request(client, "GET", "/stats")
        for _ in range(5):
            status, _ = request(client, "POST", "/bound",
                                {"scenario": SCENARIO})
            assert status == 200
        _, after = request(client, "GET", "/stats")
        grew = after["graph_cache"]["memory_hits"] - \
            before["graph_cache"]["memory_hits"]
        built = after["graph_cache"]["builds"] - \
            before["graph_cache"]["builds"]
        assert grew >= 4
        assert built <= 1


class TestJobs:
    def test_run_job_round_trip(self, client):
        status, job = request(client, "POST", "/run", {"scenario": SCENARIO})
        assert status == 202
        assert job["id"].startswith("job-")
        assert job["status"] in ("queued", "running", "done")
        finished = wait_for_job(client, job["id"])
        assert finished["status"] == "done"
        result = finished["result"]
        assert result["num_users"] == 128
        assert result["rounds"] == 4
        assert "central_epsilon" in result

    def test_audit_job_round_trip(self, client):
        status, job = request(client, "POST", "/audit",
                              {"scenario": SCENARIO, "trials": 200})
        assert status == 202
        finished = wait_for_job(client, job["id"])
        assert finished["status"] == "done"
        result = finished["result"]
        assert result["trials"] == 200
        assert "epsilon_lower_bound" in result

    def test_job_result_matches_library_summary(self, client):
        # The job result IS the canonical summary payload — same keys as
        # calling the library directly.
        from repro import api

        status, job = request(client, "POST", "/run", {"scenario": SCENARIO})
        assert status == 202
        finished = wait_for_job(client, job["id"])
        local = api.run_payload(
            api.digest_run(api.run(api.parse_scenario(SCENARIO)))
        )
        assert list(finished["result"]) == list(local)

    def test_failing_job_records_error_payload(self, client):
        # Auditing a Laplace scenario is refused (not pure-DP); the job
        # finishes with the canonical error payload, not a traceback.
        scenario = dict(SCENARIO, mechanism={
            "kind": "laplace", "params": {"epsilon": 1.0}})
        status, job = request(client, "POST", "/audit",
                              {"scenario": scenario})
        assert status == 202
        finished = wait_for_job(client, job["id"])
        assert finished["status"] == "error"
        assert set(finished["error"]) == {"error", "status", "message"}

    def test_unknown_job_is_404(self, client):
        status, payload = request(client, "GET", "/jobs/job-99999")
        assert status == 404
        assert payload["error"] == "JobNotFoundError"


class TestErrorTaxonomy:
    def test_invalid_scenario_is_400(self, client):
        status, payload = request(client, "POST", "/bound",
                                  {"scenario": {"graf": 1}})
        assert status == 400
        assert payload["error"] == "InvalidScenarioError"
        assert "invalid scenario" in payload["message"]

    def test_missing_scenario_member_is_400(self, client):
        status, payload = request(client, "POST", "/bound", {"rounds": 4})
        assert status == 400
        assert "scenario" in payload["message"]

    def test_malformed_json_body_is_400(self, client):
        client.request("POST", "/bound", body="{nope",
                       headers={"Content-Type": "application/json"})
        response = client.getresponse()
        payload = json.loads(response.read())
        assert response.status == 400
        assert "not valid JSON" in payload["message"]

    def test_schedule_refusal_is_422(self, client):
        # stationary_bound on a time-varying topology: well-formed
        # request, unsound analysis.
        status, payload = request(client, "POST", "/stationary_bound",
                                  {"scenario": SCHEDULE_SCENARIO})
        assert status == 422
        assert payload["error"] == "ScheduleRefusedError"

    def test_error_text_matches_the_cli(self, client, tmp_path, capsys):
        # One taxonomy, two surfaces: the HTTP message is the text the
        # CLI prints for the same fault.
        from repro.__main__ import main

        _, payload = request(client, "POST", "/bound",
                             {"scenario": {"graf": 1}})
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"graf": 1}))
        with pytest.raises(SystemExit) as excinfo:
            main(["run", str(path)])
        assert payload["message"] in str(excinfo.value)

    def test_unknown_route_is_404(self, client):
        status, payload = request(client, "GET", "/nope")
        assert status == 404

    def test_wrong_method_is_405(self, client):
        status, payload = request(client, "GET", "/bound")
        assert status == 405
        status, _ = request(client, "POST", "/healthz", {})
        assert status == 405

    def test_non_integer_rounds_is_400(self, client):
        status, payload = request(
            client, "POST", "/bound",
            {"scenario": SCENARIO, "rounds": "eight"})
        assert status == 400
        assert "rounds" in payload["message"]


class TestKeepAlive:
    def test_one_connection_serves_many_requests(self, server):
        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=30)
        try:
            for _ in range(10):
                status, _ = request(connection, "GET", "/healthz")
                assert status == 200
        finally:
            connection.close()


class TestServiceInternals:
    def test_job_retention_evicts_oldest_finished(self):
        # Direct exercise of the eviction rule: 4 finished jobs,
        # cap 2 -> the two oldest go; queued/running jobs are immune.
        from repro.serve import _Job

        service = ReproService(workers=1, retain_jobs=2)
        try:
            for index in range(4):
                service._jobs[f"job-{index}"] = _Job(
                    id=f"job-{index}", kind="run", scenario=None,
                    status="done")
            service._jobs["job-4"] = _Job(
                id="job-4", kind="run", scenario=None, status="running")
            with service._jobs_lock:
                service._evict_finished_locked()
            # excess = 5 - 2 = 3; the three oldest *finished* jobs go.
            assert list(service._jobs) == ["job-3", "job-4"]
        finally:
            service.close()

    def test_cli_serve_usage(self):
        from repro.serve import main

        with pytest.raises(SystemExit, match="usage"):
            main(["--port"])
        with pytest.raises(SystemExit, match="usage"):
            main(["--port", "eight"])
        with pytest.raises(SystemExit, match="usage"):
            main(["--frobnicate", "1"])


def request_with_headers(host, port, method, path, body=None):
    """One-shot request that also returns the response headers."""
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        payload = None if body is None else json.dumps(body)
        connection.request(method, path, body=payload,
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        return (
            response.status,
            json.loads(response.read()),
            dict(response.getheaders()),
        )
    finally:
        connection.close()


class TestBackPressure:
    def test_full_queue_answers_429_with_retry_after(self, tmp_path):
        # max_queue=0 rejects every enqueue deterministically — no
        # timing games with the worker pool needed.
        with ServerHandle.start(max_queue=0) as handle:
            status, payload, headers = request_with_headers(
                handle.host, handle.port, "POST", "/run",
                {"scenario": SCENARIO},
            )
            assert status == 429
            assert payload["error"] == "ServiceBusyError"
            assert headers["Retry-After"] == "1"
            # Synchronous accounting is NOT back-pressured: the queue
            # cap only guards the job pool.
            status, payload, _ = request_with_headers(
                handle.host, handle.port, "POST", "/bound",
                {"scenario": SCENARIO},
            )
            assert status == 200 and payload["epsilon"] > 0

    def test_queue_depth_in_stats(self, tmp_path):
        with ServerHandle.start(max_queue=3) as handle:
            _, stats, _ = request_with_headers(
                handle.host, handle.port, "GET", "/stats"
            )
            assert stats["queue"] == {"depth": 0, "max": 3}

    def test_uncapped_by_default(self):
        service = ReproService(workers=1)
        try:
            assert service._max_queue is None
        finally:
            service.close()


class TestJobPersistence:
    def test_finished_jobs_survive_restart(self, tmp_path):
        store = str(tmp_path / "serve.sqlite")
        with ServerHandle.start(store=store, workers=1) as handle:
            connection = http.client.HTTPConnection(
                handle.host, handle.port, timeout=30)
            try:
                status, job = request(
                    connection, "POST", "/run", {"scenario": SCENARIO})
                assert status == 202
                finished = wait_for_job(connection, job["id"])
                assert finished["status"] == "done"
            finally:
                connection.close()
        # A new process (fresh service, same store) replays the outcome.
        with ServerHandle.start(store=store, workers=1) as handle:
            status, payload, _ = request_with_headers(
                handle.host, handle.port, "GET", f"/jobs/{job['id']}")
            assert status == 200
            assert payload["status"] == "done"
            assert "central_epsilon" in payload["result"]
            # New job ids continue past the persisted counter.
            status, new_job, _ = request_with_headers(
                handle.host, handle.port, "POST", "/run",
                {"scenario": SCENARIO},
            )
            assert status == 202 and new_job["id"] != job["id"]

    def test_restart_without_store_starts_empty(self, tmp_path):
        with ServerHandle.start(workers=1) as handle:
            status, payload, _ = request_with_headers(
                handle.host, handle.port, "GET", "/jobs/job-1")
            assert status == 404


class TestResultsEndpoint:
    def test_aggregates_from_attached_store(self, tmp_path):
        from repro.scenario import GraphSpec, MechanismSpec, Scenario, sweep

        store = str(tmp_path / "serve.sqlite")
        base = Scenario(
            graph=GraphSpec.of("k_regular", degree=4, num_nodes=64),
            mechanism=MechanismSpec.of("rr", epsilon=1.0),
            rounds=2,
            seed=1,
        )
        sweep(base, axis={"rounds": [1, 2]}, mode="stationary_bound",
              store=store)
        with ServerHandle.start(store=store) as handle:
            status, payload, _ = request_with_headers(
                handle.host, handle.port, "GET",
                "/results?x=rounds&y=epsilon&group_by=graph_kind",
            )
            assert status == 200
            assert payload["points"] == 2
            assert [row["x"] for row in payload["rows"]] == [1, 2]
            # Unknown query parameters are a client error.
            status, payload, _ = request_with_headers(
                handle.host, handle.port, "GET", "/results?frob=1")
            assert status == 400

    def test_without_store_is_a_client_error(self):
        with ServerHandle.start() as handle:
            status, payload, _ = request_with_headers(
                handle.host, handle.port, "GET", "/results")
            assert status == 400
            assert "--store" in payload["message"]


class TestJobTimeout:
    def test_slow_job_expires_as_504_and_late_result_is_discarded(
        self, monkeypatch
    ):
        import repro.api as api_module

        def slow_run(scenario):
            time.sleep(1.0)
            raise RuntimeError("the late result, which must be discarded")

        monkeypatch.setattr(api_module, "run", slow_run)
        with ServerHandle.start(workers=1, job_timeout=0.2) as handle:
            connection = http.client.HTTPConnection(
                handle.host, handle.port, timeout=30)
            try:
                status, job = request(
                    connection, "POST", "/run", {"scenario": SCENARIO})
                assert status == 202
                expired = wait_for_job(connection, job["id"])
                assert expired["status"] == "error"
                assert expired["error"]["error"] == "ExecutionTimeoutError"
                assert expired["error"]["status"] == 504
                assert "--job-timeout" in expired["error"]["message"]
                # The worker thread finishes long after the watchdog;
                # its outcome must not overwrite the recorded 504.
                time.sleep(1.1)
                _, late = request(connection, "GET", f"/jobs/{job['id']}")
                assert late["error"]["error"] == "ExecutionTimeoutError"
            finally:
                connection.close()

    def test_fast_job_is_untouched_by_the_watchdog(self):
        with ServerHandle.start(workers=1, job_timeout=30.0) as handle:
            connection = http.client.HTTPConnection(
                handle.host, handle.port, timeout=30)
            try:
                status, job = request(
                    connection, "POST", "/run", {"scenario": SCENARIO})
                assert status == 202
                finished = wait_for_job(connection, job["id"])
                assert finished["status"] == "done"
                # Outlive the watchdog? No — it fires later and must
                # leave the finished job alone (checked implicitly: the
                # watchdog no-ops on done/error states).
            finally:
                connection.close()

    def test_nonpositive_job_timeout_refused(self):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError, match="job_timeout"):
            ReproService(workers=1, job_timeout=0)

    def test_cli_rejects_malformed_job_timeout(self):
        from repro.serve import main

        with pytest.raises(SystemExit, match="usage"):
            main(["--job-timeout", "soon"])


class TestStoreErrorAccounting:
    def test_persist_failure_is_counted_and_logged(self, tmp_path, caplog):
        import logging

        from repro.exceptions import StoreError
        from repro.serve import _Job

        service = ReproService(
            workers=1, store=str(tmp_path / "serve.sqlite"))
        try:
            def refuse(**_kwargs):
                raise StoreError("disk full")

            service._store.save_job = refuse
            job = _Job(id="job-1", kind="run", scenario=None, status="done")
            with caplog.at_level(logging.WARNING, logger="repro.serve"):
                service._persist_job(job)
                service._persist_job(job)
            assert service._stats()["store_errors"] == 2
            assert "results store write failed for job job-1" in caplog.text
        finally:
            service.close()


class TestEngineOverride:
    """``serve --engine`` pins the exchange backend for every job."""

    def test_service_pins_engine_for_all_jobs(self):
        clear_graph_cache()
        with ServerHandle.start(engine="compiled") as handle:
            connection = http.client.HTTPConnection(
                handle.host, handle.port, timeout=30
            )
            try:
                status, job = request(
                    connection, "POST", "/run", {"scenario": SCENARIO}
                )
                assert status == 202
                finished = wait_for_job(connection, job["id"])
                assert finished["status"] == "done"
                assert finished["result"]["engine"] == "compiled"
                assert finished["result"]["backend"].startswith("compiled-")
                _, stats = request(connection, "GET", "/stats")
                backend = stats["exchange_backend"]
                assert backend["engine_override"] == "compiled"
            finally:
                connection.close()
        clear_graph_cache()

    def test_unknown_engine_rejected_at_construction(self):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            ReproService(engine="quantum")
