"""Tests for graph metrics (irregularity Gamma etc.)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.generators import complete_graph, random_regular_graph, star_graph
from repro.graphs.graph import Graph
from repro.graphs.metrics import (
    degree_statistics,
    gamma_from_degrees,
    irregularity_gamma,
    stationary_collision_probability,
)


class TestIrregularityGamma:
    def test_regular_graph_is_one(self):
        graph = random_regular_graph(4, 100, rng=0)
        assert irregularity_gamma(graph) == pytest.approx(1.0)

    def test_complete_graph_is_one(self):
        assert irregularity_gamma(complete_graph(7)) == pytest.approx(1.0)

    def test_star_graph_value(self):
        """Star with k leaves: pi_hub = 1/2, pi_leaf = 1/(2k);
        Gamma = (k+1) * (1/4 + k/(4k^2)) = (k+1)^2 / (4k)."""
        k = 8
        graph = star_graph(k)
        expected = (k + 1) ** 2 / (4.0 * k)
        assert irregularity_gamma(graph) == pytest.approx(expected)

    def test_gamma_at_least_one(self):
        """Cauchy-Schwarz: Gamma >= 1 for any graph."""
        graph = Graph(5, [(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)])
        assert irregularity_gamma(graph) >= 1.0


class TestStationaryCollision:
    def test_uniform_case(self):
        graph = random_regular_graph(4, 50, rng=0)
        assert stationary_collision_probability(graph) == pytest.approx(1 / 50)

    def test_consistent_with_gamma(self):
        graph = star_graph(5)
        assert irregularity_gamma(graph) == pytest.approx(
            graph.num_nodes * stationary_collision_probability(graph)
        )


class TestGammaFromDegrees:
    def test_uniform_degrees(self):
        assert gamma_from_degrees(np.full(10, 4)) == pytest.approx(1.0)

    def test_matches_graph_computation(self):
        graph = Graph(4, [(0, 1), (0, 2), (0, 3), (1, 2)])
        assert gamma_from_degrees(graph.degrees()) == pytest.approx(
            irregularity_gamma(graph)
        )

    def test_rejects_zero_sum(self):
        with pytest.raises(ValueError):
            gamma_from_degrees(np.zeros(3))

    @given(
        st.lists(st.integers(min_value=1, max_value=100), min_size=2, max_size=50)
    )
    @settings(max_examples=50)
    def test_gamma_at_least_one_property(self, degrees):
        assert gamma_from_degrees(np.array(degrees)) >= 1.0 - 1e-12

    @given(st.integers(min_value=2, max_value=100))
    def test_scale_invariance(self, scale):
        degrees = np.array([1, 2, 3, 4, 5])
        assert gamma_from_degrees(degrees * scale) == pytest.approx(
            gamma_from_degrees(degrees)
        )


class TestDegreeStatistics:
    def test_star(self):
        stats = degree_statistics(star_graph(4))
        assert stats.minimum == 1
        assert stats.maximum == 4
        assert stats.mean == pytest.approx(8 / 5)

    def test_regular_cv_zero(self):
        stats = degree_statistics(random_regular_graph(4, 30, rng=0))
        assert stats.coefficient_of_variation == 0.0

    def test_empty_graph(self):
        stats = degree_statistics(Graph(0, []))
        assert stats.minimum == 0
        assert stats.coefficient_of_variation == 0.0
