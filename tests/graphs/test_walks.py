"""Tests for the random-walk engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ValidationError
from repro.graphs.generators import complete_graph, cycle_graph
from repro.graphs.spectral import stationary_distribution
from repro.graphs.walks import (
    empirical_position_distribution,
    evolve_distribution,
    lazy_transition_matrix,
    position_distribution,
    report_allocation,
    simulate_token_walks,
    sum_squared_positions,
    total_variation_to_stationary,
    trace_walk,
)


class TestEvolveDistribution:
    def test_zero_steps_identity(self, small_regular):
        initial = np.zeros(small_regular.num_nodes)
        initial[0] = 1.0
        np.testing.assert_array_equal(
            evolve_distribution(small_regular, initial, 0), initial
        )

    def test_preserves_probability_mass(self, small_regular):
        initial = np.full(small_regular.num_nodes, 1.0 / small_regular.num_nodes)
        result = evolve_distribution(small_regular, initial, 7)
        assert result.sum() == pytest.approx(1.0)
        assert np.all(result >= 0.0)

    def test_stationary_is_fixed_point(self, small_regular):
        pi = stationary_distribution(small_regular)
        result = evolve_distribution(small_regular, pi, 5)
        np.testing.assert_allclose(result, pi, atol=1e-12)

    def test_one_step_on_triangle(self, triangle):
        initial = np.array([1.0, 0.0, 0.0])
        result = evolve_distribution(triangle, initial, 1)
        np.testing.assert_allclose(result, [0.0, 0.5, 0.5])

    def test_converges_to_stationary(self, medium_regular):
        initial = np.zeros(medium_regular.num_nodes)
        initial[3] = 1.0
        result = evolve_distribution(medium_regular, initial, 100)
        pi = stationary_distribution(medium_regular)
        assert np.abs(result - pi).sum() < 1e-6

    def test_rejects_negative_steps(self, triangle):
        with pytest.raises(ValidationError):
            evolve_distribution(triangle, np.ones(3) / 3, -1)

    def test_rejects_bad_distribution(self, triangle):
        with pytest.raises(ValidationError):
            evolve_distribution(triangle, np.array([0.7, 0.7, -0.4]), 1)


class TestPositionDistribution:
    def test_point_mass_start(self, small_regular):
        result = position_distribution(small_regular, 0, 0)
        assert result[0] == 1.0
        assert result.sum() == 1.0

    def test_spreads_over_neighbors(self, k4):
        result = position_distribution(k4, 0, 1)
        np.testing.assert_allclose(result, [0.0, 1 / 3, 1 / 3, 1 / 3])

    def test_rejects_bad_start(self, k4):
        with pytest.raises(ValidationError):
            position_distribution(k4, 99, 1)


class TestLazyTransitionMatrix:
    def test_zero_laziness_is_plain(self, k4):
        from repro.graphs.spectral import transition_matrix

        lazy = lazy_transition_matrix(k4, 0.0)
        np.testing.assert_allclose(
            lazy.toarray(), transition_matrix(k4).toarray()
        )

    def test_full_laziness_is_identity(self, k4):
        lazy = lazy_transition_matrix(k4, 1.0)
        np.testing.assert_allclose(lazy.toarray(), np.eye(4))

    def test_makes_bipartite_ergodic(self):
        """A lazy walk on an even cycle converges (the Section 4.5 fix)."""
        graph = cycle_graph(6)
        initial = np.zeros(6)
        initial[0] = 1.0
        result = evolve_distribution(graph, initial, 400, laziness=0.3)
        np.testing.assert_allclose(result, 1.0 / 6, atol=1e-6)

    def test_without_laziness_bipartite_oscillates(self):
        graph = cycle_graph(6)
        initial = np.zeros(6)
        initial[0] = 1.0
        result = evolve_distribution(graph, initial, 400)
        # Mass stays on the even side at even times.
        assert result[1] == pytest.approx(0.0, abs=1e-12)

    def test_rejects_bad_laziness(self, k4):
        with pytest.raises(ValidationError):
            lazy_transition_matrix(k4, 1.5)


class TestTraceWalk:
    def test_records_all_steps(self, small_regular):
        initial = np.zeros(small_regular.num_nodes)
        initial[0] = 1.0
        trace = trace_walk(small_regular, initial, 10)
        assert trace.steps == list(range(11))
        assert len(trace.sum_squared) == 11

    def test_sum_squared_starts_at_one(self, small_regular):
        initial = np.zeros(small_regular.num_nodes)
        initial[0] = 1.0
        trace = trace_walk(small_regular, initial, 3)
        assert trace.sum_squared[0] == pytest.approx(1.0)

    def test_tv_decreases_overall(self, medium_regular):
        initial = np.zeros(medium_regular.num_nodes)
        initial[0] = 1.0
        trace = trace_walk(medium_regular, initial, 50)
        assert trace.tv_distance[-1] < 0.01 * trace.tv_distance[0]

    def test_as_arrays(self, triangle):
        trace = trace_walk(triangle, np.ones(3) / 3, 2)
        steps, sums, tvs = trace.as_arrays()
        assert steps.shape == sums.shape == tvs.shape == (3,)


class TestTotalVariation:
    def test_zero_at_stationary(self, small_regular):
        pi = stationary_distribution(small_regular)
        assert total_variation_to_stationary(small_regular, pi) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_point_mass_value(self, k4):
        initial = np.zeros(4)
        initial[0] = 1.0
        # ||delta_0 - uniform||_1 = (1 - 1/4) + 3*(1/4) = 1.5
        assert total_variation_to_stationary(k4, initial) == pytest.approx(1.5)


class TestSumSquaredPositions:
    def test_point_mass(self):
        assert sum_squared_positions(np.array([1.0, 0.0])) == 1.0

    def test_uniform(self):
        assert sum_squared_positions(np.full(10, 0.1)) == pytest.approx(0.1)

    @given(st.integers(min_value=1, max_value=50))
    def test_uniform_formula(self, n):
        assert sum_squared_positions(np.full(n, 1.0 / n)) == pytest.approx(
            1.0 / n
        )


class TestSimulateTokenWalks:
    def test_token_count_preserved(self, small_regular):
        starts = np.arange(small_regular.num_nodes)
        finals = simulate_token_walks(small_regular, starts, 5, rng=0)
        assert finals.shape == starts.shape
        assert finals.min() >= 0
        assert finals.max() < small_regular.num_nodes

    def test_zero_steps_stay_put(self, small_regular):
        starts = np.arange(small_regular.num_nodes)
        finals = simulate_token_walks(small_regular, starts, 0, rng=0)
        np.testing.assert_array_equal(finals, starts)

    def test_one_step_lands_on_neighbor(self, small_regular):
        starts = np.zeros(100, dtype=np.int64)
        finals = simulate_token_walks(small_regular, starts, 1, rng=0)
        neighbors = set(small_regular.neighbors(0).tolist())
        assert set(finals.tolist()).issubset(neighbors)

    def test_full_laziness_freezes(self, small_regular):
        starts = np.arange(small_regular.num_nodes)
        finals = simulate_token_walks(
            small_regular, starts, 10, laziness=1.0, rng=0
        )
        np.testing.assert_array_equal(finals, starts)

    def test_deterministic_with_seed(self, small_regular):
        starts = np.arange(small_regular.num_nodes)
        a = simulate_token_walks(small_regular, starts, 5, rng=3)
        b = simulate_token_walks(small_regular, starts, 5, rng=3)
        np.testing.assert_array_equal(a, b)

    def test_rejects_out_of_range_start(self, k4):
        with pytest.raises(ValidationError):
            simulate_token_walks(k4, np.array([9]), 1, rng=0)

    def test_empirical_matches_exact(self, small_regular):
        """Monte-Carlo distribution converges to the matrix evolution."""
        exact = position_distribution(small_regular, 0, 6)
        empirical = empirical_position_distribution(
            small_regular, 0, 6, num_samples=200_000, rng=0
        )
        assert np.abs(exact - empirical).sum() < 0.05


class TestReportAllocation:
    def test_conservation(self, small_regular):
        allocation = report_allocation(small_regular, 10, rng=0)
        assert allocation.sum() == small_regular.num_nodes

    def test_zero_rounds_one_each(self, small_regular):
        allocation = report_allocation(small_regular, 0, rng=0)
        np.testing.assert_array_equal(
            allocation, np.ones(small_regular.num_nodes)
        )

    def test_complete_graph_spread(self):
        graph = complete_graph(50)
        allocation = report_allocation(graph, 3, rng=0)
        # Nobody should hoard a large fraction after mixing on K_n.
        assert allocation.max() < 15
