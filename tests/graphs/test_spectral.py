"""Tests for spectral machinery: transition matrix, gap, mixing time."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GraphError, NotErgodicError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    random_regular_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.spectral import (
    mixing_time,
    normalized_adjacency,
    normalized_adjacency_eigenvalues,
    spectral_gap,
    spectral_summary,
    stationary_distribution,
    transition_matrix,
)


class TestTransitionMatrix:
    def test_row_stochastic(self):
        graph = random_regular_graph(4, 30, rng=0)
        matrix = transition_matrix(graph)
        np.testing.assert_allclose(
            np.asarray(matrix.sum(axis=1)).ravel(), 1.0
        )

    def test_uniform_over_neighbors(self):
        graph = Graph(3, [(0, 1), (0, 2)])
        matrix = transition_matrix(graph).toarray()
        assert matrix[0, 1] == pytest.approx(0.5)
        assert matrix[0, 2] == pytest.approx(0.5)
        assert matrix[1, 0] == pytest.approx(1.0)

    def test_rejects_isolated_node(self):
        graph = Graph(3, [(0, 1)])
        with pytest.raises(GraphError):
            transition_matrix(graph)


class TestStationaryDistribution:
    def test_proportional_to_degree(self):
        graph = Graph(3, [(0, 1), (0, 2)])
        pi = stationary_distribution(graph)
        np.testing.assert_allclose(pi, [0.5, 0.25, 0.25])

    def test_uniform_for_regular(self):
        graph = random_regular_graph(4, 20, rng=0)
        pi = stationary_distribution(graph)
        np.testing.assert_allclose(pi, 1.0 / 20)

    def test_is_fixed_point(self):
        """pi = M^T pi (Definition 4.1)."""
        graph = random_regular_graph(6, 40, rng=1)
        matrix = transition_matrix(graph)
        pi = stationary_distribution(graph)
        np.testing.assert_allclose(matrix.T @ pi, pi, atol=1e-12)

    def test_fixed_point_irregular(self):
        graph = Graph(4, [(0, 1), (0, 2), (0, 3), (1, 2)])
        matrix = transition_matrix(graph)
        pi = stationary_distribution(graph)
        np.testing.assert_allclose(matrix.T @ pi, pi, atol=1e-12)

    def test_rejects_edgeless(self):
        with pytest.raises(GraphError):
            stationary_distribution(Graph(2, []))


class TestEigenvalues:
    def test_leading_eigenvalue_is_one(self):
        graph = random_regular_graph(4, 30, rng=0)
        eigenvalues = normalized_adjacency_eigenvalues(graph)
        assert eigenvalues[0] == pytest.approx(1.0, abs=1e-9)

    def test_descending_order(self):
        graph = random_regular_graph(4, 30, rng=0)
        eigenvalues = normalized_adjacency_eigenvalues(graph)
        assert np.all(np.diff(eigenvalues) <= 1e-12)

    def test_bipartite_has_minus_one(self):
        eigenvalues = normalized_adjacency_eigenvalues(cycle_graph(6))
        assert eigenvalues[-1] == pytest.approx(-1.0, abs=1e-9)

    def test_complete_graph_spectrum(self):
        # K_n normalized adjacency: 1 with multiplicity 1, -1/(n-1) else.
        eigenvalues = normalized_adjacency_eigenvalues(complete_graph(5))
        assert eigenvalues[0] == pytest.approx(1.0)
        np.testing.assert_allclose(eigenvalues[1:], -0.25, atol=1e-9)

    def test_sparse_path_on_large_graph(self):
        graph = random_regular_graph(6, 2000, rng=0)
        eigenvalues = normalized_adjacency_eigenvalues(graph)
        assert eigenvalues[0] == pytest.approx(1.0, abs=1e-6)


class TestSpectralGap:
    def test_positive_for_ergodic(self):
        assert spectral_gap(cycle_graph(5)) > 0.0

    def test_zero_for_bipartite_without_validation(self):
        assert spectral_gap(cycle_graph(6), validate=False) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_validation_rejects_bipartite(self):
        with pytest.raises(NotErgodicError):
            spectral_gap(cycle_graph(6))

    def test_complete_graph_gap(self):
        # gap = min(1 - (-1/(n-1)), 1 - 1/(n-1)) = 1 - 1/(n-1).
        gap = spectral_gap(complete_graph(5))
        assert gap == pytest.approx(0.75, abs=1e-9)

    def test_larger_degree_larger_gap(self):
        g4 = spectral_gap(random_regular_graph(4, 200, rng=0))
        g16 = spectral_gap(random_regular_graph(16, 200, rng=0))
        assert g16 > g4


class TestMixingTime:
    def test_formula(self):
        graph = random_regular_graph(8, 100, rng=0)
        gap = spectral_gap(graph)
        expected = max(1, round(np.log(100) / gap))
        assert mixing_time(graph) == expected

    def test_gap_shortcut(self):
        graph = random_regular_graph(8, 100, rng=0)
        assert mixing_time(graph, gap=0.5, validate=False) == round(
            np.log(100) / 0.5
        )

    def test_zero_gap_raises(self):
        graph = cycle_graph(5)
        with pytest.raises(GraphError):
            mixing_time(graph, gap=0.0, validate=False)


class TestSpectralSummary:
    def test_fields(self):
        graph = random_regular_graph(4, 64, rng=0)
        summary = spectral_summary(graph)
        assert summary.num_nodes == 64
        assert summary.irregularity_gamma == pytest.approx(1.0)
        assert summary.stationary_collision == pytest.approx(1.0 / 64)
        assert 0 < summary.spectral_gap < 1

    def test_sum_squared_bound_monotone(self):
        graph = random_regular_graph(4, 64, rng=0)
        summary = spectral_summary(graph)
        values = [summary.sum_squared_bound(t) for t in range(0, 30, 3)]
        assert all(b <= a + 1e-15 for a, b in zip(values, values[1:]))

    def test_sum_squared_bound_capped_at_one(self):
        graph = random_regular_graph(4, 64, rng=0)
        summary = spectral_summary(graph)
        assert summary.sum_squared_bound(0) == 1.0

    def test_sum_squared_bound_limit(self):
        graph = random_regular_graph(4, 64, rng=0)
        summary = spectral_summary(graph)
        assert summary.sum_squared_bound(10_000) == pytest.approx(
            summary.stationary_collision
        )

    def test_negative_steps_rejected(self):
        graph = random_regular_graph(4, 64, rng=0)
        with pytest.raises(ValueError):
            spectral_summary(graph).sum_squared_bound(-1)

    def test_rejects_non_ergodic(self):
        with pytest.raises(NotErgodicError):
            spectral_summary(cycle_graph(4))


class TestNormalizedAdjacency:
    def test_symmetric(self):
        graph = Graph(4, [(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)])
        matrix = normalized_adjacency(graph).toarray()
        np.testing.assert_allclose(matrix, matrix.T)

    def test_similar_to_transition(self):
        """N = D^{1/2} M D^{-1/2}: same spectrum as M."""
        graph = Graph(4, [(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)])
        m_eigs = np.sort(np.linalg.eigvals(transition_matrix(graph).toarray()).real)
        n_eigs = np.sort(np.linalg.eigvalsh(normalized_adjacency(graph).toarray()))
        np.testing.assert_allclose(m_eigs, n_eigs, atol=1e-9)
