"""Tests for dynamic-graph walks (Section 4.5 extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graphs.dynamic import (
    DynamicGraphSchedule,
    evolve_on_schedule,
    simulate_tokens_on_schedule,
    trace_collision_on_schedule,
)
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    random_regular_graph,
)
from repro.graphs.walks import evolve_distribution


@pytest.fixture
def two_graphs():
    return [
        random_regular_graph(4, 60, rng=0),
        random_regular_graph(6, 60, rng=1),
    ]


class TestSchedule:
    def test_round_robin_default(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs)
        assert schedule.graph_at(0) is two_graphs[0]
        assert schedule.graph_at(1) is two_graphs[1]
        assert schedule.graph_at(2) is two_graphs[0]

    def test_custom_selector(self, two_graphs):
        schedule = DynamicGraphSchedule(
            two_graphs, selector=lambda r: 0 if r < 3 else 1
        )
        assert schedule.graph_at(2) is two_graphs[0]
        assert schedule.graph_at(3) is two_graphs[1]

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            DynamicGraphSchedule([])

    def test_rejects_mismatched_sizes(self):
        with pytest.raises(ValidationError):
            DynamicGraphSchedule([complete_graph(5), complete_graph(6)])

    def test_rejects_bad_selector_output(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs, selector=lambda r: 7)
        with pytest.raises(ValidationError):
            schedule.graph_at(0)

    def test_rejects_negative_round(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs)
        with pytest.raises(ValidationError):
            schedule.graph_at(-1)


class TestEvolveOnSchedule:
    def test_static_schedule_matches_plain_walk(self):
        graph = random_regular_graph(4, 40, rng=0)
        schedule = DynamicGraphSchedule([graph])
        initial = np.zeros(40)
        initial[0] = 1.0
        dynamic = evolve_on_schedule(schedule, initial, 8)
        static = evolve_distribution(graph, initial, 8)
        np.testing.assert_allclose(dynamic, static, atol=1e-12)

    def test_mass_preserved(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs)
        initial = np.full(60, 1.0 / 60)
        result = evolve_on_schedule(schedule, initial, 10)
        assert result.sum() == pytest.approx(1.0)

    def test_alternating_bipartite_never_converges(self):
        """Two complementary bipartite graphs keep the parity alive —
        the convergence caveat the module documents."""
        even_cycle = cycle_graph(6)
        schedule = DynamicGraphSchedule([even_cycle])
        initial = np.zeros(6)
        initial[0] = 1.0
        result = evolve_on_schedule(schedule, initial, 100)
        # Parity preserved: odd nodes never reached at even times.
        assert result[1] == pytest.approx(0.0, abs=1e-12)

    def test_churn_still_mixes(self, two_graphs):
        """Alternating between two ergodic graphs still spreads mass."""
        schedule = DynamicGraphSchedule(two_graphs)
        initial = np.zeros(60)
        initial[0] = 1.0
        collisions = trace_collision_on_schedule(schedule, initial, 40)
        assert collisions[0] == 1.0
        assert collisions[-1] == pytest.approx(1.0 / 60, rel=0.05)


class TestTraceCollision:
    def test_length(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs)
        initial = np.full(60, 1.0 / 60)
        collisions = trace_collision_on_schedule(schedule, initial, 5)
        assert len(collisions) == 6

    def test_uniform_start_stays_uniformish(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs)
        initial = np.full(60, 1.0 / 60)
        collisions = trace_collision_on_schedule(schedule, initial, 5)
        for value in collisions:
            assert value == pytest.approx(1.0 / 60, rel=0.05)


class TestSimulateTokens:
    def test_shape_and_range(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs)
        starts = np.arange(60)
        finals = simulate_tokens_on_schedule(schedule, starts, 12, rng=0)
        assert finals.shape == (60,)
        assert finals.min() >= 0 and finals.max() < 60

    def test_matches_exact_distribution(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs)
        starts = np.zeros(50_000, dtype=np.int64)
        finals = simulate_tokens_on_schedule(schedule, starts, 6, rng=0)
        empirical = np.bincount(finals, minlength=60) / 50_000
        initial = np.zeros(60)
        initial[0] = 1.0
        exact = evolve_on_schedule(schedule, initial, 6)
        assert np.abs(empirical - exact).sum() < 0.06
