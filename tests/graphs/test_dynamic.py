"""Tests for dynamic-graph walks (Section 4.5 extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graphs.dynamic import (
    DynamicGraphSchedule,
    EpochSelector,
    _TransitionCache,
    collision_profile_blocked,
    collision_profile_on_schedule,
    evolve_on_schedule,
    evolve_panel_on_schedule,
    evolve_profile_on_schedule,
    identity_panel,
    panel_collisions,
    position_distribution_on_schedule,
    simulate_tokens_on_schedule,
    simulate_trial_walks_on_schedule,
    trace_collision_on_schedule,
)
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    random_regular_graph,
)
from repro.graphs.walks import evolve_distribution, position_distribution


@pytest.fixture
def two_graphs():
    return [
        random_regular_graph(4, 60, rng=0),
        random_regular_graph(6, 60, rng=1),
    ]


class TestSchedule:
    def test_round_robin_default(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs)
        assert schedule.graph_at(0) is two_graphs[0]
        assert schedule.graph_at(1) is two_graphs[1]
        assert schedule.graph_at(2) is two_graphs[0]

    def test_custom_selector(self, two_graphs):
        schedule = DynamicGraphSchedule(
            two_graphs, selector=lambda r: 0 if r < 3 else 1
        )
        assert schedule.graph_at(2) is two_graphs[0]
        assert schedule.graph_at(3) is two_graphs[1]

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            DynamicGraphSchedule([])

    def test_rejects_mismatched_sizes(self):
        with pytest.raises(ValidationError):
            DynamicGraphSchedule([complete_graph(5), complete_graph(6)])

    def test_rejects_bad_selector_output(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs, selector=lambda r: 7)
        with pytest.raises(ValidationError):
            schedule.graph_at(0)

    def test_rejects_negative_round(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs)
        with pytest.raises(ValidationError):
            schedule.graph_at(-1)


class TestEvolveOnSchedule:
    def test_static_schedule_matches_plain_walk(self):
        graph = random_regular_graph(4, 40, rng=0)
        schedule = DynamicGraphSchedule([graph])
        initial = np.zeros(40)
        initial[0] = 1.0
        dynamic = evolve_on_schedule(schedule, initial, 8)
        static = evolve_distribution(graph, initial, 8)
        np.testing.assert_allclose(dynamic, static, atol=1e-12)

    def test_mass_preserved(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs)
        initial = np.full(60, 1.0 / 60)
        result = evolve_on_schedule(schedule, initial, 10)
        assert result.sum() == pytest.approx(1.0)

    def test_alternating_bipartite_never_converges(self):
        """Two complementary bipartite graphs keep the parity alive —
        the convergence caveat the module documents."""
        even_cycle = cycle_graph(6)
        schedule = DynamicGraphSchedule([even_cycle])
        initial = np.zeros(6)
        initial[0] = 1.0
        result = evolve_on_schedule(schedule, initial, 100)
        # Parity preserved: odd nodes never reached at even times.
        assert result[1] == pytest.approx(0.0, abs=1e-12)

    def test_churn_still_mixes(self, two_graphs):
        """Alternating between two ergodic graphs still spreads mass."""
        schedule = DynamicGraphSchedule(two_graphs)
        initial = np.zeros(60)
        initial[0] = 1.0
        collisions = trace_collision_on_schedule(schedule, initial, 40)
        assert collisions[0] == 1.0
        assert collisions[-1] == pytest.approx(1.0 / 60, rel=0.05)


class TestTraceCollision:
    def test_length(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs)
        initial = np.full(60, 1.0 / 60)
        collisions = trace_collision_on_schedule(schedule, initial, 5)
        assert len(collisions) == 6

    def test_uniform_start_stays_uniformish(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs)
        initial = np.full(60, 1.0 / 60)
        collisions = trace_collision_on_schedule(schedule, initial, 5)
        for value in collisions:
            assert value == pytest.approx(1.0 / 60, rel=0.05)


class TestMemoizedTransitions:
    """The per-graph CSR memo must leave results bit-identical."""

    def test_repeated_graph_matches_static_walk_exactly(self):
        graph = random_regular_graph(4, 40, rng=0)
        schedule = DynamicGraphSchedule([graph])  # every round reuses it
        initial = np.zeros(40)
        initial[0] = 1.0
        dynamic = evolve_on_schedule(schedule, initial, 12)
        static = evolve_distribution(graph, initial, 12)
        np.testing.assert_array_equal(dynamic, static)

    def test_trace_matches_manual_unmemoized_loop(self, two_graphs):
        from repro.graphs.walks import lazy_transition_matrix

        schedule = DynamicGraphSchedule(two_graphs)
        initial = np.zeros(60)
        initial[0] = 1.0
        memoized = trace_collision_on_schedule(
            schedule, initial, 9, laziness=0.2
        )
        current = initial.astype(np.float64)
        manual = [float(current @ current)]
        for round_index in range(9):
            matrix_t = lazy_transition_matrix(
                schedule.graph_at(round_index), 0.2
            ).T.tocsr()
            current = matrix_t @ current
            manual.append(float(current @ current))
        assert memoized == manual

    def test_start_round_offsets_the_schedule_clock(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs)
        initial = np.zeros(60)
        initial[17] = 1.0
        full = evolve_on_schedule(schedule, initial, 7)
        prefix = evolve_on_schedule(schedule, initial, 3)
        resumed = evolve_on_schedule(schedule, prefix, 4, start_round=3)
        np.testing.assert_array_equal(full, resumed)


class TestPositionDistributionOnSchedule:
    def test_matches_evolved_one_hot(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs)
        initial = np.zeros(60)
        initial[5] = 1.0
        np.testing.assert_array_equal(
            position_distribution_on_schedule(schedule, 5, 8),
            evolve_on_schedule(schedule, initial, 8),
        )

    def test_static_schedule_matches_plain_helper(self):
        graph = random_regular_graph(4, 30, rng=2)
        schedule = DynamicGraphSchedule([graph])
        np.testing.assert_array_equal(
            position_distribution_on_schedule(schedule, 0, 6),
            position_distribution(graph, 0, 6),
        )

    def test_rejects_out_of_range_start(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs)
        with pytest.raises(ValidationError):
            position_distribution_on_schedule(schedule, 60, 3)


class TestProfileEvolution:
    def test_profile_columns_are_per_user_walks(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs)
        profile = evolve_profile_on_schedule(schedule, np.eye(60), 6)
        for user in (0, 13, 59):
            np.testing.assert_array_equal(
                profile[:, user],
                position_distribution_on_schedule(schedule, user, 6),
            )

    def test_collision_profile_matches_per_user_traces(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs)
        collisions = collision_profile_on_schedule(schedule, 5)
        assert collisions.shape == (60,)
        for user in (0, 30):
            initial = np.zeros(60)
            initial[user] = 1.0
            trace = trace_collision_on_schedule(schedule, initial, 5)
            assert collisions[user] == pytest.approx(trace[-1], abs=1e-15)

    def test_rejects_wrong_shape(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs)
        with pytest.raises(ValidationError):
            evolve_profile_on_schedule(schedule, np.eye(10), 2)


class TestTransitionCacheIdentity:
    """The memo keys by ``id(graph)`` but must pin the graph it keyed.

    Regression: a bare ``id -> matrix`` map let a garbage-collected
    graph's reused ``id`` silently answer with the *old* topology's
    transition matrix.
    """

    def test_reused_id_never_returns_stale_matrix(self):
        class LazyPhases(DynamicGraphSchedule):
            """Generates each phase graph on demand, keeping no refs."""

            def __init__(self):
                super().__init__([cycle_graph(8)])

            def graph_at(self, round_index):
                if round_index % 2 == 0:
                    return cycle_graph(8)
                return random_regular_graph(4, 8, rng=1)

        schedule = LazyPhases()
        cache = _TransitionCache(schedule, 0.0)
        expected = []
        for round_index in range(6):
            # Hold our own reference so the comparison graph can't be
            # collected; the *cache's* correctness under collection is
            # what the loop below exercises.
            graph = schedule.graph_at(round_index)
            from repro.graphs.walks import lazy_transition_matrix

            expected.append(lazy_transition_matrix(graph, 0.0).T.tocsr())
        for round_index in range(6):
            got = cache.at(round_index)
            want = expected[round_index]
            assert (got != want).nnz == 0, f"round {round_index}"

    def test_cache_pins_keyed_graphs(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs)
        cache = _TransitionCache(schedule, 0.0)
        cache.at(0)
        cache.at(1)
        held = [entry[0] for entry in cache._matrices.values()]
        assert two_graphs[0] in held and two_graphs[1] in held


class TestEpochSelector:
    def test_holds_each_graph_for_block_rounds(self, two_graphs):
        schedule = DynamicGraphSchedule(
            two_graphs, selector=EpochSelector(3, 2)
        )
        picks = [schedule.graph_at(r) for r in range(8)]
        assert picks[:3] == [two_graphs[0]] * 3
        assert picks[3:6] == [two_graphs[1]] * 3
        assert picks[6:] == [two_graphs[0]] * 2


class TestBlockedCollisionParity:
    """Property: blocked accounting is bit-identical to dense, any B."""

    @pytest.mark.parametrize("block_size", [1, 7, 60])
    @pytest.mark.parametrize("laziness", [0.0, 0.3])
    def test_bit_identical_across_block_sizes(
        self, two_graphs, block_size, laziness
    ):
        schedule = DynamicGraphSchedule(two_graphs)
        dense = collision_profile_on_schedule(schedule, 6, laziness=laziness)
        blocked, dropped = collision_profile_blocked(
            schedule, 6, block_size=block_size, laziness=laziness
        )
        np.testing.assert_array_equal(blocked, dense)
        assert not dropped.any()

    def test_zero_steps_is_one_hot_collision(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs)
        collisions, _ = collision_profile_blocked(
            schedule, 0, block_size=13
        )
        np.testing.assert_array_equal(collisions, np.ones(60))

    def test_panel_resume_matches_cold_run(self, two_graphs):
        """Evolving 3+3 rounds through ``start_round`` equals 6 cold."""
        schedule = DynamicGraphSchedule(two_graphs)
        cold, _ = evolve_panel_on_schedule(
            schedule, identity_panel(60, 10, 20), 6
        )
        prefix, dropped = evolve_panel_on_schedule(
            schedule, identity_panel(60, 10, 20), 3
        )
        resumed, _ = evolve_panel_on_schedule(
            schedule, prefix, 3, start_round=3, dropped=dropped
        )
        np.testing.assert_array_equal(
            panel_collisions(resumed), panel_collisions(cold)
        )

    def test_rejects_bad_block_size(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs)
        with pytest.raises(ValidationError):
            collision_profile_blocked(schedule, 2, block_size=0)


class TestTruncation:
    """Truncated accounting lower-bounds exact, priced by dropped mass."""

    @pytest.mark.parametrize("tol", [1e-6, 1e-3, 1e-2])
    def test_soundness_bracket(self, two_graphs, tol):
        schedule = DynamicGraphSchedule(two_graphs)
        exact = collision_profile_on_schedule(schedule, 6)
        truncated, dropped = collision_profile_blocked(
            schedule, 6, block_size=17, truncation=tol
        )
        assert np.all(truncated <= exact + 1e-15)
        assert np.all(exact <= truncated + 2.0 * dropped + 1e-15)

    def test_tiny_tolerance_drops_nothing(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs)
        exact = collision_profile_on_schedule(schedule, 4)
        truncated, dropped = collision_profile_blocked(
            schedule, 4, block_size=60, truncation=1e-300
        )
        np.testing.assert_array_equal(truncated, exact)
        assert not dropped.any()

    def test_rejects_out_of_range_tolerance(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs)
        for tol in (0.0, 1.0, -0.5):
            with pytest.raises(ValidationError):
                evolve_panel_on_schedule(
                    schedule, identity_panel(60, 0, 4), 2, truncation=tol
                )


class TestSimulateTokens:
    def test_shape_and_range(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs)
        starts = np.arange(60)
        finals = simulate_tokens_on_schedule(schedule, starts, 12, rng=0)
        assert finals.shape == (60,)
        assert finals.min() >= 0 and finals.max() < 60

    def test_matches_exact_distribution(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs)
        starts = np.zeros(50_000, dtype=np.int64)
        finals = simulate_tokens_on_schedule(schedule, starts, 6, rng=0)
        empirical = np.bincount(finals, minlength=60) / 50_000
        initial = np.zeros(60)
        initial[0] = 1.0
        exact = evolve_on_schedule(schedule, initial, 6)
        assert np.abs(empirical - exact).sum() < 0.06


class TestScheduleWalkStranding:
    @pytest.mark.parametrize("steps", [0, 1])
    def test_isolated_start_is_validation_error(self, steps):
        from repro.graphs.graph import Graph

        isolating = Graph(3, [(0, 1)])  # node 2 isolated
        schedule = DynamicGraphSchedule([isolating])
        with pytest.raises(ValidationError, match="start on isolated"):
            simulate_tokens_on_schedule(schedule, np.array([2]), steps, rng=0)

    def test_mid_walk_stranding_is_simulation_error(self):
        """A swap that isolates a walker's node mid-schedule raises the
        engine's exception type, not a misleading start-node error."""
        from repro.exceptions import SimulationError
        from repro.graphs.graph import Graph

        path = Graph(3, [(0, 1), (1, 2)])
        isolating = Graph(3, [(0, 2)])  # node 1 isolated
        schedule = DynamicGraphSchedule([path, isolating])
        with pytest.raises(SimulationError, match="isolated in the current"):
            # Round 0 moves the token from 0 to its only neighbor 1;
            # round 1's topology strands it there.
            simulate_tokens_on_schedule(schedule, np.array([0]), 2, rng=0)

    def test_lazy_stayer_tolerates_temporary_isolation(self):
        """The exchange engine's lazy-walk semantics: a token that stays
        put this round (laziness) survives a topology that isolates its
        node — only a *moving* stranded token is an error."""
        from repro.graphs.graph import Graph

        path = Graph(3, [(0, 1), (1, 2)])
        isolating = Graph(3, [(0, 2)])  # node 1 isolated
        schedule = DynamicGraphSchedule([path, isolating])
        finals = simulate_tokens_on_schedule(
            schedule, np.array([0]), 2, laziness=1.0, rng=0
        )
        assert int(finals[0]) == 0  # never moved, never stranded

    def test_full_outage_phase_survived_by_lazy_walk(self):
        """A zero-edge phase (total outage) must not crash the gather:
        fully lazy tokens wait it out; a forced move raises the
        documented SimulationError with the round prefix."""
        from repro.exceptions import SimulationError
        from repro.graphs.generators import cycle_graph
        from repro.graphs.graph import Graph

        outage = DynamicGraphSchedule(
            [cycle_graph(4), Graph(4, [])],
        )
        finals = simulate_tokens_on_schedule(
            outage, np.arange(4), 4, laziness=1.0, rng=0
        )
        np.testing.assert_array_equal(finals, np.arange(4))
        with pytest.raises(SimulationError, match="round 1"):
            simulate_tokens_on_schedule(outage, np.arange(4), 2, rng=0)

    def test_negative_steps_rejected(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs)
        with pytest.raises(ValidationError):
            simulate_tokens_on_schedule(schedule, np.arange(60), -1)

    def test_out_of_range_starts_rejected(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs)
        with pytest.raises(ValidationError, match="out of range"):
            simulate_tokens_on_schedule(schedule, np.array([60]), 1)


class TestTrialWalksOnSchedule:
    def test_shape_and_tiling_equivalence(self, two_graphs):
        """The trial axis is the token axis tiled: one flat seeded call
        produces the identical draws."""
        schedule = DynamicGraphSchedule(two_graphs)
        starts = np.arange(60)
        trials = simulate_trial_walks_on_schedule(
            schedule, starts, 5, 7, rng=3
        )
        assert trials.shape == (7, 60)
        flat = simulate_tokens_on_schedule(
            schedule, np.tile(starts, 7), 5, rng=3
        )
        np.testing.assert_array_equal(trials, flat.reshape(7, 60))

    def test_rejects_non_positive_trials(self, two_graphs):
        schedule = DynamicGraphSchedule(two_graphs)
        with pytest.raises(ValidationError):
            simulate_trial_walks_on_schedule(schedule, np.arange(60), 3, 0)
