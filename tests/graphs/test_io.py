"""Tests for edge-list file I/O."""

from __future__ import annotations

import gzip

import pytest

from repro.exceptions import ValidationError
from repro.graphs.generators import random_regular_graph
from repro.graphs.io import read_edge_list, write_edge_list


class TestReadEdgeList:
    def test_basic(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# a comment\n0 1\n1 2\n2 0\n")
        loaded = read_edge_list(path)
        assert loaded.graph.num_nodes == 3
        assert loaded.graph.num_edges == 3

    def test_string_labels_relabeled(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("alice bob\nbob carol\n")
        loaded = read_edge_list(path)
        assert loaded.graph.num_nodes == 3
        assert loaded.labels == ("alice", "bob", "carol")
        assert loaded.node_of("carol") == 2

    def test_unknown_label_raises(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("a b\n")
        loaded = read_edge_list(path)
        with pytest.raises(ValidationError):
            loaded.node_of("zed")

    def test_extra_fields_ignored(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1 0.5 2021\n1 2 0.7 2022\n")
        loaded = read_edge_list(path)
        assert loaded.graph.num_edges == 2

    def test_self_loops_dropped(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 0\n0 1\n")
        loaded = read_edge_list(path)
        assert loaded.graph.num_edges == 1

    def test_duplicates_collapse(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1\n1 0\n0 1\n")
        loaded = read_edge_list(path)
        assert loaded.graph.num_edges == 1

    def test_gzip(self, tmp_path):
        path = tmp_path / "graph.txt.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("0 1\n1 2\n")
        loaded = read_edge_list(path)
        assert loaded.graph.num_edges == 2

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "graph.csv"
        path.write_text("0,1\n1,2\n")
        loaded = read_edge_list(path, delimiter=",")
        assert loaded.graph.num_edges == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValidationError, match="no such file"):
            read_edge_list(tmp_path / "nope.txt")

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1\njustone\n")
        with pytest.raises(ValidationError, match="at least two"):
            read_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# only comments\n")
        with pytest.raises(ValidationError, match="no edges"):
            read_edge_list(path)


class TestWriteEdgeList:
    def test_roundtrip(self, tmp_path):
        graph = random_regular_graph(4, 30, rng=0)
        path = tmp_path / "out.txt"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        # Relabeling may permute nodes, but counts are invariant.
        assert loaded.graph.num_nodes == graph.num_nodes
        assert loaded.graph.num_edges == graph.num_edges

    def test_header_written_as_comments(self, tmp_path):
        graph = random_regular_graph(4, 10, rng=0)
        path = tmp_path / "out.txt"
        write_edge_list(graph, path, header="line one\nline two")
        content = path.read_text()
        assert content.startswith("# line one\n# line two\n")
        read_edge_list(path)  # still parseable

    def test_gzip_roundtrip(self, tmp_path):
        graph = random_regular_graph(4, 20, rng=0)
        path = tmp_path / "out.txt.gz"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert loaded.graph.num_edges == graph.num_edges


class TestScheduleNpz:
    """Schedule spill archives: round-trip, refusals, dispatch."""

    def _schedule(self, selector=None):
        from repro.graphs.dynamic import DynamicGraphSchedule

        graphs = [
            random_regular_graph(4, 24, rng=0),
            random_regular_graph(6, 24, rng=1),
        ]
        return DynamicGraphSchedule(graphs, selector)

    def test_round_robin_roundtrip(self, tmp_path):
        from repro.graphs.io import load_schedule_npz, save_schedule_npz

        schedule = self._schedule()
        path = tmp_path / "sched.npz"
        save_schedule_npz(schedule, path)
        loaded = load_schedule_npz(path)
        assert loaded.num_nodes == 24
        assert loaded.num_graphs == 2
        assert loaded.selector is None
        for original, restored in zip(schedule.graphs, loaded.graphs):
            assert (original.indptr == restored.indptr).all()
            assert (original.indices == restored.indices).all()

    def test_epoch_selector_roundtrip(self, tmp_path):
        from repro.graphs.dynamic import EpochSelector
        from repro.graphs.io import load_schedule_npz, save_schedule_npz

        schedule = self._schedule(EpochSelector(3, 2))
        path = tmp_path / "sched.npz"
        save_schedule_npz(schedule, path)
        loaded = load_schedule_npz(path)
        assert loaded.selector == EpochSelector(3, 2)
        for round_index in range(7):
            assert (
                loaded.graph_at(round_index).indices
                == schedule.graph_at(round_index).indices
            ).all()

    def test_roundtrip_preserves_collision_bits(self, tmp_path):
        """The restored schedule accounts bit-identically — the property
        that lets profile blocks resume against a reloaded topology."""
        from repro.graphs.dynamic import collision_profile_on_schedule
        from repro.graphs.io import load_schedule_npz, save_schedule_npz

        schedule = self._schedule()
        path = tmp_path / "sched.npz"
        save_schedule_npz(schedule, path)
        import numpy as np

        np.testing.assert_array_equal(
            collision_profile_on_schedule(load_schedule_npz(path), 5),
            collision_profile_on_schedule(schedule, 5),
        )

    def test_custom_selector_refused(self, tmp_path):
        from repro.graphs.io import save_schedule_npz

        schedule = self._schedule(lambda r: 0)
        with pytest.raises(ValidationError, match="custom selector"):
            save_schedule_npz(schedule, tmp_path / "sched.npz")

    def test_non_schedule_refused(self, tmp_path):
        from repro.graphs.io import save_schedule_npz

        with pytest.raises(ValidationError, match="DynamicGraphSchedule"):
            save_schedule_npz(random_regular_graph(4, 10, rng=0), tmp_path / "x.npz")

    def test_missing_file(self, tmp_path):
        from repro.graphs.io import load_schedule_npz

        with pytest.raises(ValidationError, match="no such file"):
            load_schedule_npz(tmp_path / "nope.npz")

    def test_load_spill_dispatches_both_kinds(self, tmp_path):
        from repro.graphs.dynamic import DynamicGraphSchedule
        from repro.graphs.graph import Graph
        from repro.graphs.io import (
            load_spill,
            save_graph_npz,
            save_schedule_npz,
        )

        graph = random_regular_graph(4, 16, rng=0)
        save_graph_npz(graph, tmp_path / "graph.npz")
        save_schedule_npz(self._schedule(), tmp_path / "sched.npz")
        assert isinstance(load_spill(tmp_path / "graph.npz"), Graph)
        assert isinstance(
            load_spill(tmp_path / "sched.npz"), DynamicGraphSchedule
        )
