"""Tests for connectivity / bipartiteness / ergodicity (Theorem 4.3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import NotErgodicError
from repro.graphs.connectivity import (
    connected_components,
    is_bipartite,
    is_connected,
    is_ergodic,
    largest_connected_component,
    require_ergodic,
)
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    random_regular_graph,
    star_graph,
)
from repro.graphs.graph import Graph


class TestConnectedComponents:
    def test_single_component(self):
        components = connected_components(cycle_graph(5))
        assert len(components) == 1
        assert len(components[0]) == 5

    def test_two_components(self):
        graph = Graph(5, [(0, 1), (2, 3)])
        components = connected_components(graph)
        assert len(components) == 3  # {0,1}, {2,3}, {4}
        assert len(components[0]) == 2

    def test_largest_first(self):
        graph = Graph(6, [(0, 1), (2, 3), (3, 4)])
        components = connected_components(graph)
        assert len(components[0]) == 3

    def test_isolated_nodes(self):
        graph = Graph(3, [])
        assert len(connected_components(graph)) == 3


class TestIsConnected:
    def test_connected(self):
        assert is_connected(complete_graph(4))

    def test_disconnected(self):
        assert not is_connected(Graph(4, [(0, 1), (2, 3)]))

    def test_empty_graph_not_connected(self):
        assert not is_connected(Graph(0, []))

    def test_single_node_connected(self):
        assert is_connected(Graph(1, []))


class TestLargestConnectedComponent:
    def test_extracts_largest(self):
        graph = Graph(7, [(0, 1), (1, 2), (2, 0), (3, 4)])
        lcc = largest_connected_component(graph)
        assert lcc.num_nodes == 3
        assert lcc.num_edges == 3

    def test_connected_graph_unchanged_size(self):
        graph = cycle_graph(5)
        assert largest_connected_component(graph).num_nodes == 5


class TestIsBipartite:
    def test_even_cycle(self):
        assert is_bipartite(cycle_graph(8))

    def test_odd_cycle(self):
        assert not is_bipartite(cycle_graph(9))

    def test_star(self):
        assert is_bipartite(star_graph(5))

    def test_path(self):
        assert is_bipartite(path_graph(6))

    def test_triangle_plus_isolated(self):
        graph = Graph(4, [(0, 1), (1, 2), (0, 2)])
        assert not is_bipartite(graph)

    def test_edgeless_vacuously_bipartite(self):
        assert is_bipartite(Graph(3, []))

    def test_disconnected_mixed(self):
        # One bipartite component + one odd cycle => not bipartite.
        graph = Graph(7, [(0, 1), (2, 3), (3, 4), (4, 2)])
        assert not is_bipartite(graph)


class TestIsErgodic:
    """Theorem 4.3: ergodic iff connected and not bipartite."""

    def test_odd_cycle_ergodic(self):
        assert is_ergodic(cycle_graph(5))

    def test_even_cycle_not_ergodic(self):
        assert not is_ergodic(cycle_graph(6))

    def test_disconnected_not_ergodic(self):
        assert not is_ergodic(Graph(4, [(0, 1), (2, 3)]))

    def test_complete_ergodic(self):
        assert is_ergodic(complete_graph(5))

    def test_star_not_ergodic(self):
        assert not is_ergodic(star_graph(4))

    def test_edgeless_not_ergodic(self):
        assert not is_ergodic(Graph(3, []))

    def test_random_regular_ergodic(self):
        assert is_ergodic(random_regular_graph(4, 50, rng=0))


class TestRequireErgodic:
    def test_passes_for_ergodic(self):
        require_ergodic(cycle_graph(5))

    def test_disconnected_message(self):
        with pytest.raises(NotErgodicError, match="disconnected"):
            require_ergodic(Graph(4, [(0, 1), (2, 3)]))

    def test_bipartite_message(self):
        with pytest.raises(NotErgodicError, match="bipartite"):
            require_ergodic(cycle_graph(4))

    def test_edgeless_message(self):
        with pytest.raises(NotErgodicError, match="no edges"):
            require_ergodic(Graph(2, []))


class TestPropertyBased:
    @given(st.integers(min_value=3, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_cycle_parity(self, n):
        assert is_bipartite(cycle_graph(n)) == (n % 2 == 0)

    @given(st.integers(min_value=3, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_components_partition_nodes(self, n):
        graph = Graph(n, [(i, (i + 2) % n) for i in range(n)])
        components = connected_components(graph)
        all_nodes = np.concatenate(components)
        assert sorted(all_nodes.tolist()) == list(range(n))
