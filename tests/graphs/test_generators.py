"""Tests for graph generators."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.graphs.connectivity import is_bipartite, is_connected
from repro.graphs.generators import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    from_networkx,
    grid_graph,
    path_graph,
    random_regular_graph,
    star_graph,
    watts_strogatz_graph,
)


class TestCompleteGraph:
    def test_edge_count(self):
        graph = complete_graph(5)
        assert graph.num_edges == 10

    def test_regular(self):
        assert complete_graph(4).is_regular()


class TestCycleGraph:
    def test_structure(self):
        graph = cycle_graph(5)
        assert graph.num_edges == 5
        assert all(graph.degree(i) == 2 for i in range(5))

    def test_even_cycle_bipartite(self):
        assert is_bipartite(cycle_graph(6))

    def test_odd_cycle_not_bipartite(self):
        assert not is_bipartite(cycle_graph(7))

    def test_too_small(self):
        with pytest.raises(ValidationError):
            cycle_graph(2)


class TestPathGraph:
    def test_structure(self):
        graph = path_graph(4)
        assert graph.num_edges == 3
        assert graph.degree(0) == 1
        assert graph.degree(1) == 2

    def test_always_bipartite(self):
        assert is_bipartite(path_graph(9))


class TestStarGraph:
    def test_structure(self):
        graph = star_graph(6)
        assert graph.num_nodes == 7
        assert graph.degree(0) == 6
        assert all(graph.degree(i) == 1 for i in range(1, 7))

    def test_bipartite(self):
        assert is_bipartite(star_graph(3))


class TestGridGraph:
    def test_node_count(self):
        assert grid_graph(3, 4).num_nodes == 12

    def test_interior_degree(self):
        graph = grid_graph(3, 3)
        assert graph.degree(4) == 4  # center

    def test_periodic_is_regular(self):
        graph = grid_graph(4, 4, periodic=True)
        assert graph.is_regular()
        assert graph.degree(0) == 4

    def test_connected(self):
        assert is_connected(grid_graph(5, 5))


class TestRandomRegular:
    def test_regularity(self):
        graph = random_regular_graph(6, 100, rng=0)
        assert graph.is_regular()
        assert graph.degree(0) == 6

    def test_deterministic_with_seed(self):
        a = random_regular_graph(4, 30, rng=5)
        b = random_regular_graph(4, 30, rng=5)
        assert a == b

    def test_parity_validation(self):
        with pytest.raises(ValidationError):
            random_regular_graph(3, 7, rng=0)

    def test_degree_bound(self):
        with pytest.raises(ValidationError):
            random_regular_graph(10, 10, rng=0)


class TestErdosRenyi:
    def test_edge_probability_extremes(self):
        empty = erdos_renyi_graph(20, 0.0, rng=0)
        assert empty.num_edges == 0
        full = erdos_renyi_graph(10, 1.0, rng=0)
        assert full.num_edges == 45

    def test_rejects_bad_probability(self):
        with pytest.raises(ValidationError):
            erdos_renyi_graph(10, 1.5, rng=0)


class TestBarabasiAlbert:
    def test_heavy_tail(self):
        graph = barabasi_albert_graph(500, 3, rng=0)
        degrees = graph.degrees()
        assert degrees.max() > 3 * degrees.min()

    def test_connected(self):
        assert is_connected(barabasi_albert_graph(200, 2, rng=1))

    def test_rejects_attachment_too_large(self):
        with pytest.raises(ValidationError):
            barabasi_albert_graph(5, 5, rng=0)


class TestWattsStrogatz:
    def test_connected_variant(self):
        graph = watts_strogatz_graph(100, 6, 0.3, rng=0)
        assert is_connected(graph)


class TestFromNetworkx:
    def test_arbitrary_labels(self):
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_edges_from([("a", "b"), ("b", "c")])
        graph = from_networkx(nx_graph)
        assert graph.num_nodes == 3
        assert graph.num_edges == 2

    def test_drops_self_loops(self):
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_edges_from([(0, 0), (0, 1)])
        graph = from_networkx(nx_graph)
        assert graph.num_edges == 1
