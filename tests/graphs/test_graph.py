"""Tests for the CSR-backed Graph class."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import GraphError, ValidationError
from repro.graphs.graph import Graph


def edge_list_strategy(max_nodes: int = 12):
    """Random small edge lists over up to ``max_nodes`` nodes."""
    return st.integers(min_value=2, max_value=max_nodes).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(
                    st.integers(0, n - 1), st.integers(0, n - 1)
                ).filter(lambda e: e[0] != e[1]),
                max_size=3 * n,
            ),
        )
    )


class TestConstruction:
    def test_empty_graph(self):
        graph = Graph(0, [])
        assert graph.num_nodes == 0
        assert graph.num_edges == 0

    def test_single_edge(self):
        graph = Graph(2, [(0, 1)])
        assert graph.num_edges == 1
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)

    def test_duplicate_edges_collapse(self):
        graph = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert graph.num_edges == 1

    def test_rejects_self_loop(self):
        with pytest.raises(ValidationError):
            Graph(2, [(0, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            Graph(2, [(0, 2)])

    def test_rejects_negative_node(self):
        with pytest.raises(ValidationError):
            Graph(2, [(-1, 0)])

    def test_rejects_negative_num_nodes(self):
        with pytest.raises(ValidationError):
            Graph(-1, [])

    def test_rejects_malformed_edges(self):
        with pytest.raises(ValidationError):
            Graph(3, [(0, 1, 2)])  # type: ignore[list-item]

    def test_from_edge_list_infers_size(self):
        graph = Graph.from_edge_list([(0, 5)])
        assert graph.num_nodes == 6


class TestAccessors:
    def test_degrees(self):
        graph = Graph(4, [(0, 1), (0, 2), (0, 3)])
        np.testing.assert_array_equal(graph.degrees(), [3, 1, 1, 1])

    def test_degree_single(self):
        graph = Graph(3, [(0, 1)])
        assert graph.degree(0) == 1
        assert graph.degree(2) == 0

    def test_neighbors_sorted(self):
        graph = Graph(4, [(0, 3), (0, 1), (0, 2)])
        np.testing.assert_array_equal(graph.neighbors(0), [1, 2, 3])

    def test_neighbors_out_of_range(self):
        graph = Graph(2, [(0, 1)])
        with pytest.raises(GraphError):
            graph.neighbors(5)

    def test_has_edge_false(self):
        graph = Graph(3, [(0, 1)])
        assert not graph.has_edge(0, 2)

    def test_edges_iteration(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        graph = Graph(3, edges)
        assert sorted(graph.edges()) == sorted(edges)

    def test_len(self):
        assert len(Graph(5, [])) == 5

    def test_is_regular_true(self):
        graph = Graph(3, [(0, 1), (1, 2), (0, 2)])
        assert graph.is_regular()

    def test_is_regular_false(self):
        graph = Graph(3, [(0, 1), (1, 2)])
        assert not graph.is_regular()

    def test_repr(self):
        assert "num_nodes=3" in repr(Graph(3, [(0, 1)]))

    def test_readonly_views(self):
        graph = Graph(3, [(0, 1)])
        with pytest.raises(ValueError):
            graph.indices[0] = 99


class TestEqualityAndHash:
    def test_equal_graphs(self):
        a = Graph(3, [(0, 1), (1, 2)])
        b = Graph(3, [(1, 2), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_graphs(self):
        assert Graph(3, [(0, 1)]) != Graph(3, [(1, 2)])

    def test_not_implemented_for_other_types(self):
        assert Graph(1, []) != "graph"


class TestConversions:
    def test_adjacency_matrix_symmetric(self):
        graph = Graph(3, [(0, 1), (1, 2)])
        dense = graph.adjacency_matrix().toarray()
        np.testing.assert_array_equal(dense, dense.T)
        assert dense[0, 1] == 1.0
        assert dense[0, 2] == 0.0

    def test_to_networkx_roundtrip(self):

        graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph.number_of_edges() == 3

    def test_subgraph(self):
        graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
        sub = graph.subgraph([1, 2, 3])
        assert sub.num_nodes == 3
        assert sub.num_edges == 2
        assert sub.has_edge(0, 1)  # relabeled 1-2

    def test_subgraph_rejects_duplicates(self):
        graph = Graph(3, [(0, 1)])
        with pytest.raises(ValidationError):
            graph.subgraph([0, 0])


class TestFromCsr:
    def test_matches_constructor(self):
        reference = Graph(3, [(0, 1), (1, 2)])
        rebuilt = Graph.from_csr(3, reference.indptr, reference.indices)
        assert rebuilt == reference
        assert rebuilt.num_edges == reference.num_edges


class TestPropertyBased:
    @given(edge_list_strategy())
    @settings(max_examples=60, deadline=None)
    def test_degree_sum_is_twice_edges(self, data):
        n, edges = data
        graph = Graph(n, edges)
        assert int(graph.degrees().sum()) == 2 * graph.num_edges

    @given(edge_list_strategy())
    @settings(max_examples=60, deadline=None)
    def test_neighbor_symmetry(self, data):
        n, edges = data
        graph = Graph(n, edges)
        for u in range(n):
            for v in graph.neighbors(u):
                assert u in graph.neighbors(int(v))

    @given(edge_list_strategy())
    @settings(max_examples=40, deadline=None)
    def test_edges_roundtrip(self, data):
        n, edges = data
        graph = Graph(n, edges)
        rebuilt = Graph(n, list(graph.edges()))
        assert rebuilt == graph
