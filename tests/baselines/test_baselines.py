"""Tests for the Prochlo, mix-net, and central-DP baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.central import central_laplace_mean
from repro.baselines.mixnet import run_mixnet
from repro.baselines.prochlo import run_prochlo
from repro.exceptions import ValidationError
from repro.ldp.randomized_response import BinaryRandomizedResponse


class TestProchlo:
    def test_output_is_permutation(self):
        values = list(range(50))
        result = run_prochlo(values, rng=0)
        assert sorted(result.shuffled_reports) == values

    def test_permutation_recorded(self):
        values = list(range(20))
        result = run_prochlo(values, rng=0)
        reconstructed = [values[i] for i in result.permutation]
        assert reconstructed == result.shuffled_reports

    def test_shuffler_memory_is_n(self):
        result = run_prochlo(list(range(100)), rng=0)
        assert result.shuffler_peak_memory == 100

    def test_user_traffic_is_one(self):
        result = run_prochlo(list(range(100)), rng=0)
        assert result.max_user_traffic == 1

    def test_batched_mode_still_full_collection(self):
        """Even with TEE batching, Prochlo collects everything first —
        the O(n) bottleneck the paper points out."""
        result = run_prochlo(list(range(64)), batch_size=16, rng=0)
        assert result.shuffler_peak_memory == 64
        assert sorted(result.shuffled_reports) == list(range(64))

    def test_batched_shuffle_is_per_batch(self):
        values = list(range(8))
        result = run_prochlo(values, batch_size=4, rng=0)
        first_half = set(result.shuffled_reports[:4])
        assert first_half == {0, 1, 2, 3}

    def test_randomizer_applied(self):
        result = run_prochlo(
            [0] * 200, randomizer=BinaryRandomizedResponse(1.0), rng=0
        )
        assert 0 < sum(result.shuffled_reports) < 200

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            run_prochlo([], rng=0)

    def test_actually_shuffles(self):
        values = list(range(100))
        result = run_prochlo(values, rng=0)
        assert result.shuffled_reports != values


class TestMixnet:
    def test_delivery_complete(self):
        values = list(range(30))
        result = run_mixnet(values, rng=0)
        assert sorted(result.delivered_reports) == values

    def test_relay_memory_constant(self):
        small = run_mixnet(list(range(10)), rng=0)
        large = run_mixnet(list(range(500)), rng=0)
        assert small.relay_peak_memory() == large.relay_peak_memory() == 1

    def test_cover_traffic_scales_with_n(self):
        n = 50
        result = run_mixnet(list(range(n)), rng=0)
        # 1 genuine + (n-1) cover messages.
        assert result.max_user_traffic() == n

    def test_partial_cover(self):
        n = 50
        result = run_mixnet(list(range(n)), cover_fraction=0.5, rng=0)
        assert result.max_user_traffic() == pytest.approx(
            1 + 0.5 * (n - 1), abs=1
        )

    def test_zero_cover(self):
        result = run_mixnet(list(range(20)), cover_fraction=0.0, rng=0)
        assert result.max_user_traffic() == 1

    def test_rejects_bad_cover(self):
        with pytest.raises(ValidationError):
            run_mixnet([1], cover_fraction=2.0, rng=0)

    def test_rejects_zero_relays(self):
        with pytest.raises(ValidationError):
            run_mixnet([1], num_relays=0, rng=0)

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            run_mixnet([], rng=0)


class TestCentralLaplace:
    def test_unbiased(self):
        values = np.full(1000, 0.4)
        estimates = [
            central_laplace_mean(values, 1.0, rng=seed) for seed in range(200)
        ]
        assert np.mean(estimates) == pytest.approx(0.4, abs=0.01)

    def test_error_shrinks_with_n(self):
        rng_values = np.random.default_rng(0)
        small = np.abs([
            central_laplace_mean(np.full(100, 0.5), 1.0, rng=s) - 0.5
            for s in range(100)
        ]).mean()
        large = np.abs([
            central_laplace_mean(np.full(10_000, 0.5), 1.0, rng=s) - 0.5
            for s in range(100)
        ]).mean()
        assert large < small / 10

    def test_rejects_out_of_bounds(self):
        with pytest.raises(ValidationError):
            central_laplace_mean(np.array([2.0]), 1.0, rng=0)

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            central_laplace_mean(np.array([]), 1.0, rng=0)

    def test_custom_bounds(self):
        values = np.full(500, 5.0)
        estimate = central_laplace_mean(
            values, 2.0, lower=0.0, upper=10.0, rng=0
        )
        assert estimate == pytest.approx(5.0, abs=0.5)
