"""Tests for the empirical privacy auditor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.audit.auditor import (
    audit_local_randomizer,
    audit_network_shuffle,
    epsilon_lower_bound,
)
from repro.exceptions import ValidationError
from repro.graphs.generators import random_regular_graph
from repro.ldp.laplace import LaplaceMechanism
from repro.ldp.randomized_response import BinaryRandomizedResponse


class TestEpsilonLowerBound:
    def test_identical_distributions_give_zero(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=2000)
        b = rng.normal(size=2000)
        eps, _ = epsilon_lower_bound(a, b, 0.0)
        assert eps < 0.2

    def test_disjoint_distributions_capped_by_min_count(self):
        """Perfectly separable worlds: the bound is limited only by the
        min_count guard, not by log(0)."""
        a = np.zeros(1000)
        b = np.ones(1000)
        eps, _ = epsilon_lower_bound(a, b, 0.0)
        assert np.isfinite(eps)

    def test_known_ratio(self):
        """Bernoulli worlds with ratio e: eps_hat ~ 1."""
        rng = np.random.default_rng(1)
        p = np.e / (1 + np.e)
        a = (rng.random(50_000) < 1 - p).astype(float)
        b = (rng.random(50_000) < p).astype(float)
        eps, _ = epsilon_lower_bound(a, b, 0.0)
        assert eps == pytest.approx(1.0, abs=0.1)

    def test_orientation_invariance(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0.0, 1.0, 5000)
        b = rng.normal(1.0, 1.0, 5000)
        forward, _ = epsilon_lower_bound(a, b, 0.0)
        backward, _ = epsilon_lower_bound(b, a, 0.0)
        assert forward == pytest.approx(backward, rel=0.25)

    def test_rejects_too_few_trials(self):
        with pytest.raises(ValidationError):
            epsilon_lower_bound(np.zeros(3), np.ones(3), 0.0)

    def test_delta_slack_reduces_bound(self):
        rng = np.random.default_rng(3)
        p = np.e / (1 + np.e)
        a = (rng.random(20_000) < 1 - p).astype(float)
        b = (rng.random(20_000) < p).astype(float)
        strict, _ = epsilon_lower_bound(a, b, 0.0)
        slack, _ = epsilon_lower_bound(a, b, 0.2)
        assert slack < strict


class TestAuditLocalRandomizer:
    def test_rr_audit_matches_eps0(self):
        for eps0 in (0.5, 1.0, 2.0):
            result = audit_local_randomizer(
                BinaryRandomizedResponse(eps0), 0, 1, trials=30_000, rng=0
            )
            # Plug-in estimate: within 15% of the true loss.
            assert result.epsilon_lower_bound == pytest.approx(eps0, rel=0.15)

    def test_audit_never_wildly_exceeds_guarantee(self):
        """Soundness (up to estimation noise): eps_hat <~ eps0."""
        result = audit_local_randomizer(
            BinaryRandomizedResponse(1.0), 0, 1, trials=30_000, rng=1
        )
        assert result.epsilon_lower_bound <= 1.25

    def test_laplace_audit(self):
        mechanism = LaplaceMechanism(1.0, 0.0, 1.0)
        result = audit_local_randomizer(
            mechanism, 0.0, 1.0, trials=20_000, rng=0
        )
        assert 0.3 <= result.epsilon_lower_bound <= 1.25

    def test_mechanism_label(self):
        result = audit_local_randomizer(
            BinaryRandomizedResponse(1.0), 0, 1, trials=500, rng=0
        )
        assert "BinaryRandomizedResponse" in result.mechanism


class TestAuditNetworkShuffle:
    @pytest.fixture
    def graph(self):
        return random_regular_graph(6, 200, rng=0)

    def test_no_mixing_recovers_local_loss(self, graph):
        result = audit_network_shuffle(
            graph, 1.0, 0, trials=3000, rng=0
        )
        assert result.epsilon_lower_bound == pytest.approx(1.0, abs=0.35)

    def test_mixing_amplifies_empirically(self, graph):
        unmixed = audit_network_shuffle(graph, 1.0, 0, trials=3000, rng=0)
        mixed = audit_network_shuffle(graph, 1.0, 12, trials=3000, rng=0)
        assert mixed.epsilon_lower_bound < 0.7 * unmixed.epsilon_lower_bound
        assert mixed.certifies_amplification(1.0)

    def test_lower_bound_respects_theorem(self, graph):
        """eps_hat must stay below the Theorem 6.1-style accounting for
        the same run configuration (validity sandwich)."""
        from repro.amplification.network_shuffle import epsilon_all_stationary
        from repro.graphs.spectral import spectral_summary

        rounds = 12
        summary = spectral_summary(graph)
        upper = epsilon_all_stationary(
            1.0,
            graph.num_nodes,
            summary.sum_squared_bound(rounds),
            1e-6,
            1e-6,
        ).epsilon
        audit = audit_network_shuffle(graph, 1.0, rounds, trials=3000, rng=0)
        assert audit.epsilon_lower_bound < upper
