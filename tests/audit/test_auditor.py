"""Tests for the empirical privacy auditor."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.auditing.auditor import (
    _clopper_pearson,
    _KernelSampler,
    audit_local_randomizer,
    audit_network_shuffle,
    epsilon_lower_bound,
    report_sum_statistic,
    topk_evidence_statistic,
    weighted_evidence_statistic,
)
from repro.exceptions import ValidationError
from repro.graphs.generators import grid_graph, random_regular_graph
from repro.graphs.walks import position_distribution
from repro.ldp.laplace import LaplaceMechanism
from repro.ldp.randomized_response import BinaryRandomizedResponse


def _scalar_epsilon_lower_bound(statistics_d, statistics_d_prime, delta,
                                *, confidence=0.95):
    """The pre-vectorization scalar threshold sweep, kept as the
    bit-identity oracle for :func:`epsilon_lower_bound`."""
    a = np.asarray(statistics_d, dtype=np.float64)
    b = np.asarray(statistics_d_prime, dtype=np.float64)
    pooled = np.unique(np.concatenate([a, b]))
    if pooled.size > 512:
        pooled = pooled[:: pooled.size // 512]
    best_eps, best_threshold = 0.0, float(pooled[0])
    for threshold in pooled:
        counts = (int(np.sum(a > threshold)), int(np.sum(b > threshold)))
        for orientation in (">", "<="):
            if orientation == ">":
                flagged_d, flagged_dp = counts
            else:
                flagged_d, flagged_dp = a.size - counts[0], b.size - counts[1]
            for fc, ft, tc, tt in (
                (flagged_d, a.size, flagged_dp, b.size),
                (flagged_dp, b.size, flagged_d, a.size),
            ):
                fpr_upper = _clopper_pearson(
                    fc, ft, upper=True, confidence=confidence
                )
                tpr_lower = _clopper_pearson(
                    tc, tt, upper=False, confidence=confidence
                )
                numerator = tpr_lower - delta
                if numerator <= 0.0 or fpr_upper <= 0.0:
                    continue
                candidate = math.log(numerator / fpr_upper)
                if candidate > best_eps:
                    best_eps, best_threshold = candidate, float(threshold)
    return best_eps, best_threshold


class TestEpsilonLowerBound:
    def test_identical_distributions_give_zero(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=2000)
        b = rng.normal(size=2000)
        eps, _ = epsilon_lower_bound(a, b, 0.0)
        assert eps < 0.2

    def test_disjoint_distributions_capped_by_min_count(self):
        """Perfectly separable worlds: the bound is limited only by the
        min_count guard, not by log(0)."""
        a = np.zeros(1000)
        b = np.ones(1000)
        eps, _ = epsilon_lower_bound(a, b, 0.0)
        assert np.isfinite(eps)

    def test_known_ratio(self):
        """Bernoulli worlds with ratio e: eps_hat ~ 1."""
        rng = np.random.default_rng(1)
        p = np.e / (1 + np.e)
        a = (rng.random(50_000) < 1 - p).astype(float)
        b = (rng.random(50_000) < p).astype(float)
        eps, _ = epsilon_lower_bound(a, b, 0.0)
        assert eps == pytest.approx(1.0, abs=0.1)

    def test_orientation_invariance(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0.0, 1.0, 5000)
        b = rng.normal(1.0, 1.0, 5000)
        forward, _ = epsilon_lower_bound(a, b, 0.0)
        backward, _ = epsilon_lower_bound(b, a, 0.0)
        assert forward == pytest.approx(backward, rel=0.25)

    def test_rejects_too_few_trials(self):
        with pytest.raises(ValidationError):
            epsilon_lower_bound(np.zeros(3), np.ones(3), 0.0)

    def test_delta_slack_reduces_bound(self):
        rng = np.random.default_rng(3)
        p = np.e / (1 + np.e)
        a = (rng.random(20_000) < 1 - p).astype(float)
        b = (rng.random(20_000) < p).astype(float)
        strict, _ = epsilon_lower_bound(a, b, 0.0)
        slack, _ = epsilon_lower_bound(a, b, 0.2)
        assert slack < strict

    @pytest.mark.parametrize("delta", [0.0, 0.1])
    def test_bit_identical_to_scalar_sweep(self, delta):
        """The vectorized searchsorted + array-ppf sweep must return the
        exact (eps, threshold) of the per-threshold scalar sweep."""
        for seed in range(5):
            rng = np.random.default_rng(seed)
            a = rng.normal(0.0, 1.0, 900)
            b = rng.normal(0.4, 1.2, 1100)
            assert epsilon_lower_bound(a, b, delta) == \
                _scalar_epsilon_lower_bound(a, b, delta)

    def test_bit_identical_on_discrete_statistics(self):
        rng = np.random.default_rng(9)
        a = (rng.random(3000) < 0.3).astype(float)
        b = (rng.random(3000) < 0.7).astype(float)
        assert epsilon_lower_bound(a, b, 0.0) == \
            _scalar_epsilon_lower_bound(a, b, 0.0)

    def test_bit_identical_when_nothing_certifies(self):
        same = np.full(100, 2.5)
        assert epsilon_lower_bound(same, same, 0.0) == \
            _scalar_epsilon_lower_bound(same, same, 0.0) == (0.0, 2.5)


class TestAuditLocalRandomizer:
    def test_rr_audit_matches_eps0(self):
        for eps0 in (0.5, 1.0, 2.0):
            result = audit_local_randomizer(
                BinaryRandomizedResponse(eps0), 0, 1, trials=30_000, rng=0
            )
            # Plug-in estimate: within 15% of the true loss.
            assert result.epsilon_lower_bound == pytest.approx(eps0, rel=0.15)

    def test_audit_never_wildly_exceeds_guarantee(self):
        """Soundness (up to estimation noise): eps_hat <~ eps0."""
        result = audit_local_randomizer(
            BinaryRandomizedResponse(1.0), 0, 1, trials=30_000, rng=1
        )
        assert result.epsilon_lower_bound <= 1.25

    def test_laplace_audit(self):
        mechanism = LaplaceMechanism(1.0, 0.0, 1.0)
        result = audit_local_randomizer(
            mechanism, 0.0, 1.0, trials=20_000, rng=0
        )
        assert 0.3 <= result.epsilon_lower_bound <= 1.25

    def test_mechanism_label(self):
        result = audit_local_randomizer(
            BinaryRandomizedResponse(1.0), 0, 1, trials=500, rng=0
        )
        assert "BinaryRandomizedResponse" in result.mechanism


class TestAuditNetworkShuffle:
    @pytest.fixture
    def graph(self):
        return random_regular_graph(6, 200, rng=0)

    def test_no_mixing_recovers_local_loss(self, graph):
        result = audit_network_shuffle(
            graph, 1.0, 0, trials=3000, rng=0
        )
        assert result.epsilon_lower_bound == pytest.approx(1.0, abs=0.35)

    def test_mixing_amplifies_empirically(self, graph):
        unmixed = audit_network_shuffle(graph, 1.0, 0, trials=3000, rng=0)
        mixed = audit_network_shuffle(graph, 1.0, 12, trials=3000, rng=0)
        assert mixed.epsilon_lower_bound < 0.7 * unmixed.epsilon_lower_bound
        assert mixed.certifies_amplification(1.0)

    def test_lower_bound_respects_theorem(self, graph):
        """eps_hat must stay below the Theorem 6.1-style accounting for
        the same run configuration (validity sandwich)."""
        from repro.amplification.network_shuffle import epsilon_all_stationary
        from repro.graphs.spectral import spectral_summary

        rounds = 12
        summary = spectral_summary(graph)
        upper = epsilon_all_stationary(
            1.0,
            graph.num_nodes,
            summary.sum_squared_bound(rounds),
            1e-6,
            1e-6,
        ).epsilon
        audit = audit_network_shuffle(graph, 1.0, rounds, trials=3000, rng=0)
        assert audit.epsilon_lower_bound < upper


class TestEngineEquivalence:
    """The three Monte Carlo engines share one estimator.

    Same graph, same trial count, independent seeds: eps_hat from the
    kernel, tiled, and loop engines must agree to estimation noise, at
    an unmixed point (t=0, eps_hat ~ eps0) and past mixing (~0).
    """

    @pytest.fixture(scope="class")
    def graph(self):
        return random_regular_graph(6, 200, rng=0)

    def test_unmixed_point_agrees(self, graph):
        results = {
            method: audit_network_shuffle(
                graph, 1.0, 0, trials=4000, rng=7, method=method
            ).epsilon_lower_bound
            for method in ("kernel", "tiled", "loop")
        }
        for method, eps in results.items():
            assert eps == pytest.approx(1.0, abs=0.3), (method, results)

    def test_mixed_point_agrees(self, graph):
        results = {
            method: audit_network_shuffle(
                graph, 1.0, 14, trials=4000, rng=7, method=method
            ).epsilon_lower_bound
            for method in ("kernel", "tiled", "loop")
        }
        for method, eps in results.items():
            assert eps < 0.25, (method, results)

    def test_statistics_distributions_match(self, graph):
        """Kolmogorov-style check: per-engine world statistics have the
        same distribution (quantiles within Monte Carlo noise)."""
        from repro.auditing import auditor as module

        statistic = weighted_evidence_statistic(graph, 6)
        randomizer = BinaryRandomizedResponse(1.0)
        sampler = _KernelSampler(graph, 6, 0.0)
        kernel = module._kernel_world_statistics(
            sampler, randomizer, 3000, 0, 0, statistic, np.random.default_rng(1)
        )
        tiled = module._tiled_world_statistics(
            graph, randomizer, 6, 3000, 0, 0, statistic, 0.0,
            np.random.default_rng(2),
        )
        quantiles = np.linspace(0.05, 0.95, 19)
        spread = np.quantile(tiled, 0.75) - np.quantile(tiled, 0.25)
        assert np.allclose(
            np.quantile(kernel, quantiles),
            np.quantile(tiled, quantiles),
            atol=0.25 * spread,
        )

    def test_deterministic_per_method(self, graph):
        for method in ("kernel", "tiled", "loop"):
            first = audit_network_shuffle(
                graph, 1.0, 4, trials=500, rng=3, method=method
            )
            second = audit_network_shuffle(
                graph, 1.0, 4, trials=500, rng=3, method=method
            )
            assert first == second

    def test_unknown_method_rejected(self, graph):
        with pytest.raises(ValidationError, match="method"):
            audit_network_shuffle(graph, 1.0, 2, trials=100, method="warp")


class TestKernelSampler:
    """The rejection sampler draws exactly from the t-step kernel."""

    def test_marginals_match_exact_distribution(self):
        graph = random_regular_graph(6, 100, rng=0)
        sampler = _KernelSampler(graph, 5, 0.0)
        trials = 4000
        holders = sampler.sample_tiled(
            trials, np.random.default_rng(0)
        ).reshape(trials, 100)
        for start in (0, 31):
            exact = position_distribution(graph, start, 5)
            empirical = np.bincount(holders[:, start], minlength=100) / trials
            # Per-bin binomial noise: a few sigma of sqrt(p / trials).
            tolerance = 5.0 * np.sqrt(exact.max() / trials) + 1e-3
            assert np.abs(empirical - exact).max() < tolerance

    def test_identity_at_zero_rounds(self):
        graph = random_regular_graph(4, 60, rng=0)
        sampler = _KernelSampler(graph, 0, 0.0)
        holders = sampler.sample_tiled(50, np.random.default_rng(0))
        np.testing.assert_array_equal(
            holders.reshape(50, 60), np.tile(np.arange(60), (50, 1))
        )

    def test_staged_composition_on_long_chains(self):
        """Deep-mixing chains stop early and compose half-kernels; the
        sampled law is still the exact t-step distribution."""
        torus = grid_graph(5, 9, periodic=True)
        rounds = 220
        sampler = _KernelSampler(torus, rounds, 0.0)
        assert len(sampler._stages) > 1
        trials = 4000
        holders = sampler.sample_tiled(
            trials, np.random.default_rng(1)
        ).reshape(trials, 45)
        exact = position_distribution(torus, 7, rounds)
        empirical = np.bincount(holders[:, 7], minlength=45) / trials
        assert np.abs(empirical - exact).max() < 5.0 * np.sqrt(
            exact.max() / trials
        )

    def test_lazy_kernel(self):
        graph = random_regular_graph(6, 80, rng=0)
        sampler = _KernelSampler(graph, 4, 0.5)
        trials = 4000
        holders = sampler.sample_tiled(
            trials, np.random.default_rng(2)
        ).reshape(trials, 80)
        exact = position_distribution(graph, 3, 4, laziness=0.5)
        empirical = np.bincount(holders[:, 3], minlength=80) / trials
        assert np.abs(empirical - exact).max() < 5.0 * np.sqrt(
            exact.max() / trials
        ) + 1e-3


class TestAttackerStatistics:
    @pytest.fixture(scope="class")
    def graph(self):
        return random_regular_graph(6, 64, rng=0)

    def test_weighted_evidence_shape_and_value(self, graph):
        statistic = weighted_evidence_statistic(graph, 3)
        payloads = np.ones((5, 64), dtype=np.int64)
        holders = np.tile(np.arange(64), (5, 1))
        weights = position_distribution(graph, 0, 3)
        out = statistic(payloads, holders)
        assert out.shape == (5,)
        assert out == pytest.approx(np.full(5, weights.sum()))

    def test_topk_counts_only_top_nodes(self, graph):
        statistic = topk_evidence_statistic(graph, 2, top_k=4)
        payloads = np.ones((3, 64), dtype=np.int64)
        holders = np.tile(np.arange(64), (3, 1))
        out = statistic(payloads, holders)
        assert np.all(out == 4.0)

    def test_report_sum_ignores_positions(self, graph):
        statistic = report_sum_statistic(graph, 2)
        payloads = np.zeros((4, 64), dtype=np.int64)
        payloads[:, :10] = 1
        out = statistic(payloads, np.zeros((4, 64), dtype=np.int64))
        assert np.all(out == 10.0)

    def test_position_blind_adversary_measures_nothing(self, graph):
        """Even at t=0 the report-sum adversary cannot single out the
        victim among the honest-majority noise."""
        informed = audit_network_shuffle(graph, 1.0, 0, trials=3000, rng=0)
        blind = audit_network_shuffle(
            graph, 1.0, 0, trials=3000, rng=0,
            statistic=report_sum_statistic(graph, 0),
        )
        assert blind.epsilon_lower_bound < 0.5 * informed.epsilon_lower_bound

    def test_custom_label(self, graph):
        result = audit_network_shuffle(
            graph, 1.0, 2, trials=200, rng=0, label="my-audit"
        )
        assert result.mechanism == "my-audit"

    def test_summary_is_json_able(self, graph):
        import json

        result = audit_network_shuffle(graph, 1.0, 2, trials=200, rng=0)
        payload = json.loads(json.dumps(result.summary()))
        assert payload["trials"] == 200
        assert payload["epsilon_lower_bound"] == result.epsilon_lower_bound


class TestVictimParameter:
    def test_victim_wired_into_game(self):
        """The distinguishing game must flip the *statistic's* victim:
        on a vertex-transitive audit any victim measures the same loss,
        so victim=5 at t=0 must recover ~eps0, not ~0."""
        graph = random_regular_graph(6, 100, rng=0)
        default = audit_network_shuffle(graph, 1.0, 0, trials=3000, rng=0)
        shifted = audit_network_shuffle(
            graph, 1.0, 0, trials=3000, rng=0, victim=5
        )
        assert shifted.epsilon_lower_bound == pytest.approx(
            default.epsilon_lower_bound, abs=0.3
        )
        assert shifted.epsilon_lower_bound > 0.5

    def test_victim_out_of_range(self):
        graph = random_regular_graph(4, 20, rng=0)
        with pytest.raises(ValidationError, match="victim"):
            audit_network_shuffle(graph, 1.0, 2, trials=100, victim=20)

    def test_scenario_audit_victim_param(self):
        import dataclasses

        import repro

        scenario = repro.Scenario(
            graph={"kind": "k_regular", "params": {"degree": 6, "num_nodes": 100}},
            mechanism={"kind": "rr", "params": {"epsilon": 1.0}},
            rounds=0,
            seed=0,
        )
        specced = dataclasses.replace(
            scenario,
            audit={"kind": "weighted_evidence",
                   "params": {"victim": 7, "trials": 2500}},
        )
        result = repro.audit(specced)
        # t=0 with the game flipping user 7: the informed adversary
        # still recovers ~the local loss.
        assert result.epsilon_lower_bound > 0.5


class TestScheduleAuditing:
    """The step-walking engines extend to dynamic schedules; the kernel
    engine (one static dense M^t) refuses them loudly."""

    @pytest.fixture
    def schedule(self):
        from repro.graphs.dynamic import DynamicGraphSchedule

        return DynamicGraphSchedule([
            random_regular_graph(4, 60, rng=0),
            random_regular_graph(6, 60, rng=1),
        ])

    def test_auto_resolves_to_tiled(self, schedule):
        result = audit_network_shuffle(schedule, 1.0, 4, trials=150, rng=0)
        assert result.epsilon_lower_bound >= 0.0

    def test_kernel_rejected(self, schedule):
        with pytest.raises(ValidationError, match="kernel"):
            audit_network_shuffle(
                schedule, 1.0, 4, trials=150, method="kernel", rng=0
            )

    def test_tiled_and_loop_agree_statistically(self, schedule):
        tiled = audit_network_shuffle(
            schedule, 2.0, 0, trials=800, method="tiled", rng=0
        )
        looped = audit_network_shuffle(
            schedule, 2.0, 0, trials=800, method="loop", rng=0
        )
        # t=0: both should measure ~eps0 (same estimator, same trial
        # count; draws differ in granularity only).
        assert tiled.epsilon_lower_bound == pytest.approx(
            looped.epsilon_lower_bound, abs=0.6
        )
        assert tiled.epsilon_lower_bound > 0.8

    def test_mixing_on_schedule_amplifies(self, schedule):
        raw = audit_network_shuffle(schedule, 3.0, 0, trials=500, rng=1)
        mixed = audit_network_shuffle(schedule, 3.0, 12, trials=500, rng=1)
        assert mixed.epsilon_lower_bound < raw.epsilon_lower_bound

    def test_weighted_statistic_uses_scheduled_evolution(self, schedule):
        from repro.graphs.dynamic import position_distribution_on_schedule

        statistic = weighted_evidence_statistic(schedule, 5)
        weights = position_distribution_on_schedule(schedule, 0, 5)
        payloads = np.ones((1, 60))
        holders = np.tile(np.arange(60), (1, 1))
        assert statistic(payloads, holders)[0] == pytest.approx(
            weights.sum()
        )


class TestBatchedLocalAudit:
    """audit_local_randomizer draws each world through randomize_batch."""

    def test_binary_rr_bit_identical_to_per_trial_loop(self):
        """Binary RR's batch draw consumes one uniform per report in
        trial order — exactly the per-trial loop's stream — so the
        batched audit reproduces the looped audit bit for bit."""
        randomizer = BinaryRandomizedResponse(1.5)
        batched = audit_local_randomizer(
            randomizer, 0, 1, trials=400, rng=7
        )
        generator = np.random.default_rng(7)
        stats_d = np.array([
            float(randomizer.randomize(0, generator)) for _ in range(400)
        ])
        stats_d_prime = np.array([
            float(randomizer.randomize(1, generator)) for _ in range(400)
        ])
        eps, threshold = epsilon_lower_bound(stats_d, stats_d_prime, 0.0)
        assert batched.epsilon_lower_bound == eps
        assert batched.best_threshold == threshold

    def test_default_batch_falls_back_to_loop_exactly(self):
        """A mechanism without a vectorized batch uses the base-class
        per-report loop — the audit is unchanged for it."""
        from repro.ldp.base import LocalRandomizer

        class _Loopy(LocalRandomizer):
            def __init__(self):
                super().__init__(1.0)

            def _randomize(self, value, rng):
                return value if rng.random() < 0.7 else 1 - value

        batched = audit_local_randomizer(_Loopy(), 0, 1, trials=300, rng=5)
        generator = np.random.default_rng(5)
        loopy = _Loopy()
        stats_d = np.array([
            float(loopy.randomize(0, generator)) for _ in range(300)
        ])
        stats_d_prime = np.array([
            float(loopy.randomize(1, generator)) for _ in range(300)
        ])
        eps, _ = epsilon_lower_bound(stats_d, stats_d_prime, 0.0)
        assert batched.epsilon_lower_bound == eps

    def test_custom_statistic_applies_per_report(self):
        randomizer = BinaryRandomizedResponse(2.0)
        result = audit_local_randomizer(
            randomizer, 0, 1, trials=500,
            statistic=lambda report: 10.0 * float(report), rng=0,
        )
        assert result.epsilon_lower_bound > 0.5

    def test_laplace_batch_audit_still_measures_eps(self):
        """Laplace overrides randomize_batch (different draw granularity
        than the loop — statistically equivalent, and much faster)."""
        result = audit_local_randomizer(
            LaplaceMechanism(1.0, 0.0, 1.0), 0.0, 1.0, trials=4000, rng=0
        )
        assert 0.2 < result.epsilon_lower_bound <= 1.2
