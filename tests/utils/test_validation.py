"""Tests for argument validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidPrivacyParameterError, ValidationError
from repro.utils.validation import (
    check_delta,
    check_epsilon,
    check_non_negative_int,
    check_positive_int,
    check_probability,
    check_probability_vector,
)


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(5), "x") == 5

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_positive_int(-1, "x")

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            check_positive_int(1.5, "x")  # type: ignore[arg-type]

    def test_error_names_parameter(self):
        with pytest.raises(ValidationError, match="my_param"):
            check_positive_int(-2, "my_param")


class TestCheckNonNegativeInt:
    def test_accepts_zero(self):
        assert check_non_negative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_non_negative_int(-1, "x")


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, float("nan"), float("inf")])
    def test_rejects_invalid(self, value):
        with pytest.raises(ValidationError):
            check_probability(value, "p")


class TestCheckEpsilon:
    def test_accepts_positive(self):
        assert check_epsilon(0.5) == 0.5

    def test_rejects_zero_by_default(self):
        with pytest.raises(InvalidPrivacyParameterError):
            check_epsilon(0.0)

    def test_allow_zero(self):
        assert check_epsilon(0.0, allow_zero=True) == 0.0

    @pytest.mark.parametrize("value", [float("inf"), float("nan"), -1.0])
    def test_rejects_invalid(self, value):
        with pytest.raises(InvalidPrivacyParameterError):
            check_epsilon(value)


class TestCheckDelta:
    def test_accepts_small(self):
        assert check_delta(1e-6) == 1e-6

    def test_rejects_zero_by_default(self):
        with pytest.raises(InvalidPrivacyParameterError):
            check_delta(0.0)

    def test_allow_zero(self):
        assert check_delta(0.0, allow_zero=True) == 0.0

    @pytest.mark.parametrize("value", [1.0, 1.5, -0.1])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(InvalidPrivacyParameterError):
            check_delta(value)


class TestCheckProbabilityVector:
    def test_accepts_uniform(self):
        vector = np.full(4, 0.25)
        np.testing.assert_array_equal(
            check_probability_vector(vector), vector
        )

    def test_rejects_wrong_sum(self):
        with pytest.raises(ValidationError):
            check_probability_vector(np.array([0.5, 0.2]))

    def test_rejects_negative_entries(self):
        with pytest.raises(ValidationError):
            check_probability_vector(np.array([1.2, -0.2]))

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            check_probability_vector(np.ones((2, 2)) / 4)

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            check_probability_vector(np.array([]))

    def test_size_mismatch(self):
        with pytest.raises(ValidationError):
            check_probability_vector(np.array([0.5, 0.5]), size=3)

    def test_tolerates_rounding(self):
        vector = np.full(3, 1.0 / 3.0)
        check_probability_vector(vector)
