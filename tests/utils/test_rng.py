"""Tests for RNG plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).random(5)
        b = ensure_rng(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passes_through(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_numpy_integer_seed(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")  # type: ignore[arg-type]

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            ensure_rng(1.5)  # type: ignore[arg-type]


class TestSpawnRngs:
    def test_spawn_count(self):
        children = spawn_rngs(0, 5)
        assert len(children) == 5

    def test_spawn_zero(self):
        assert spawn_rngs(0, 0) == []

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(0, 2)
        a = children[0].random(10)
        b = children[1].random(10)
        assert not np.array_equal(a, b)

    def test_spawn_is_deterministic(self):
        first = [g.random(3) for g in spawn_rngs(9, 3)]
        second = [g.random(3) for g in spawn_rngs(9, 3)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)
