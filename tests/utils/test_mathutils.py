"""Tests for numerically stable math helpers."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.mathutils import (
    binary_search_monotone,
    l2_norm_squared,
    log1mexp,
    log_add_exp,
    log_sub_exp,
    softplus_inverse,
    stable_expm1,
)


class TestLog1mexp:
    def test_known_value(self):
        assert log1mexp(math.log(0.5)) == pytest.approx(math.log(0.5))

    def test_rejects_non_negative(self):
        with pytest.raises(ValueError):
            log1mexp(0.0)

    @given(st.floats(min_value=-50.0, max_value=-1e-9))
    def test_exp_roundtrip(self, x):
        # exp(log1mexp(x)) must equal 1 - e^x; compare through the
        # stable -expm1 form (the naive log1p(-exp(x)) reference loses
        # all precision near zero — that is the point of log1mexp).
        assert math.exp(log1mexp(x)) == pytest.approx(-math.expm1(x), rel=1e-9)


class TestLogAddSubExp:
    @given(
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=-100, max_value=100),
    )
    def test_add_matches_numpy(self, a, b):
        assert log_add_exp(a, b) == pytest.approx(np.logaddexp(a, b), rel=1e-12)

    def test_add_with_neg_inf(self):
        assert log_add_exp(-math.inf, 3.0) == 3.0
        assert log_add_exp(3.0, -math.inf) == 3.0

    def test_sub_roundtrip(self):
        a, b = 5.0, 2.0
        result = log_sub_exp(a, b)
        assert math.exp(result) == pytest.approx(math.exp(a) - math.exp(b))

    def test_sub_requires_a_greater(self):
        with pytest.raises(ValueError):
            log_sub_exp(1.0, 1.0)

    def test_sub_neg_inf_b(self):
        assert log_sub_exp(2.0, -math.inf) == 2.0


class TestSoftplusInverse:
    @given(st.floats(min_value=-20.0, max_value=20.0))
    def test_inverts_softplus(self, x):
        y = math.log1p(math.exp(x)) if x < 20 else x
        assert softplus_inverse(y) == pytest.approx(x, abs=1e-8)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            softplus_inverse(0.0)


class TestStableExpm1:
    def test_small_argument_precision(self):
        assert stable_expm1(1e-12) == pytest.approx(1e-12, rel=1e-6)


class TestBinarySearchMonotone:
    def test_finds_square_root(self):
        root = binary_search_monotone(lambda x: x * x, 2.0, 0.0, 2.0)
        assert root == pytest.approx(math.sqrt(2.0), abs=1e-9)

    def test_decreasing_function(self):
        root = binary_search_monotone(
            lambda x: 1.0 / x, 0.25, 1.0, 10.0, increasing=False
        )
        assert root == pytest.approx(4.0, abs=1e-6)

    def test_rejects_bad_bracket(self):
        with pytest.raises(ValueError):
            binary_search_monotone(lambda x: x, 0.0, 1.0, 1.0)


class TestL2NormSquared:
    def test_known(self):
        assert l2_norm_squared(np.array([3.0, 4.0])) == pytest.approx(25.0)

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100), min_size=1, max_size=20
        )
    )
    def test_non_negative(self, values):
        assert l2_norm_squared(np.array(values)) >= 0.0
