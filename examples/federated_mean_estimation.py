#!/usr/bin/env python
"""Federated mean estimation with PrivUnit — the Figure 9 workload.

Each client holds a high-dimensional model update (here: a normalized
bimodal sample exactly as in the paper's Section 5.6 experiment),
perturbs it with PrivUnit at eps0-LDP, and the updates are network-
shuffled on the Twitch stand-in before the server averages them.

Compares A_all (all reports delivered) against A_single (one report per
user, missing ones replaced by N(5,1)^d dummies) at several eps0.

Run:  python examples/federated_mean_estimation.py
"""

from __future__ import annotations


from repro.datasets import build_dataset
from repro.estimation import generate_bimodal_unit_vectors, run_mean_estimation
from repro.graphs.spectral import spectral_summary

DIMENSION = 200
EPS0_GRID = (1.0, 2.0, 4.0)


def main() -> None:
    dataset = build_dataset("twitch", scale=0.5, seed=0)
    graph = dataset.graph
    summary = spectral_summary(graph)
    print(f"twitch stand-in at half scale: n={graph.num_nodes}, "
          f"rounds={summary.mixing_time}")

    values = generate_bimodal_unit_vectors(
        graph.num_nodes, DIMENSION, rng=0
    )
    print(f"clients hold d={DIMENSION} unit vectors "
          f"(half N(1,1)^d, half N(10,1)^d, normalized)\n")

    header = f"{'eps0':>5} {'protocol':>9} {'sq.error':>10} {'dummies':>8}"
    print(header)
    print("-" * len(header))
    for eps0 in EPS0_GRID:
        for protocol in ("all", "single"):
            result = run_mean_estimation(
                graph, values, eps0,
                protocol=protocol, rounds=summary.mixing_time, rng=3,
            )
            print(f"{eps0:>5.1f} {protocol:>9} "
                  f"{result.squared_error:>10.4f} {result.dummy_count:>8}")
    print("\nA_all is unbiased (every report arrives); A_single pays the")
    print("dummy-substitution penalty but gives a stronger central bound")
    print("at the same eps0 (see benchmarks/test_figure9_utility.py).")


if __name__ == "__main__":
    main()
