#!/usr/bin/env python
"""Federated mean estimation with PrivUnit — the Figure 9 workload.

Each client holds a high-dimensional model update (here: a normalized
bimodal sample exactly as in the paper's Section 5.6 experiment),
perturbs it with PrivUnit at eps0-LDP, and the updates are network-
shuffled on the Twitch stand-in before the server averages them.

The whole pipeline is ONE declarative scenario — graph, mechanism,
workload values, and the custom N(5,1)^d dummy factory are all spec
data — and the eps0 x protocol grid is one `repro.sweep` call: the
stand-in materializes once (shared graph cache) and every point rides
it.  `results="full"` keeps the payloads the estimator needs.

Compares A_all (all reports delivered) against A_single (one report per
user, missing ones replaced by N(5,1)^d dummies) at several eps0.

Run:  python examples/federated_mean_estimation.py
"""

from __future__ import annotations

from repro import Scenario, sweep
from repro.estimation import mean_estimate_from_run

DIMENSION = 200
EPS0_GRID = (1.0, 2.0, 4.0)


def main() -> None:
    base = Scenario(
        graph={"kind": "dataset",
               "params": {"name": "twitch", "scale": 0.5, "seed": 0}},
        mechanism={"kind": "privunit",
                   "params": {"epsilon": EPS0_GRID[0], "dimension": DIMENSION}},
        values={"kind": "bimodal_unit_vectors",
                "params": {"dimension": DIMENSION}},
        dummies={"kind": "privunit_normal"},
        seed=3,
    )
    grid = sweep(
        base,
        axis={"mechanism.epsilon": list(EPS0_GRID),
              "protocol": ["all", "single"]},
        mode="run",
        results="full",
    )

    first = grid.points[0].outcome
    print(f"twitch stand-in at half scale: n={first.graph.num_nodes}, "
          f"rounds={first.rounds}  "
          f"(graph built {grid.cache_stats.builds}x for "
          f"{len(grid)} grid points)")
    print(f"clients hold d={DIMENSION} unit vectors "
          f"(half N(1,1)^d, half N(10,1)^d, normalized)\n")

    header = (f"{'eps0':>5} {'protocol':>9} {'central eps':>12} "
              f"{'sq.error':>10} {'dummies':>8}")
    print(header)
    print("-" * len(header))
    for point in grid:
        result = point.outcome
        estimate = mean_estimate_from_run(result)
        print(f"{point.coordinates['mechanism.epsilon']:>5.1f} "
              f"{point.coordinates['protocol']:>9} "
              f"{result.central_epsilon:>12.3f} "
              f"{estimate.squared_error:>10.4f} "
              f"{estimate.dummy_count:>8}")
    print("\nA_all is unbiased (every report arrives); A_single pays the")
    print("dummy-substitution penalty but gives a stronger central bound")
    print("at the same eps0 (see benchmarks/test_figure9_utility.py).")


if __name__ == "__main__":
    main()
