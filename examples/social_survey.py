#!/usr/bin/env python
"""Private survey over a social network — the paper's motivating use case.

Users of a messaging app answer a 5-option survey question.  Instead of
trusting the operator with raw answers (central model) or paying full
LDP noise, they relay k-ary randomized-response reports to friends on
the social graph (the Facebook page-page stand-in from Table 4) before
delivery.  The operator reconstructs the answer histogram and never
learns who relayed what.

Also shows the A_all vs A_single trade-off on real payloads, and the
secure (encrypted, Section 4.4) transport on a small subgraph.

Run:  python examples/social_survey.py
"""

from __future__ import annotations

import numpy as np

from repro.amplification import epsilon_all_stationary, epsilon_single_stationary
from repro.datasets import build_dataset
from repro.estimation import run_frequency_estimation
from repro.graphs.spectral import spectral_summary

EPSILON0 = 0.5
DELTA = 1e-6
NUM_OPTIONS = 5
TRUE_SHARES = np.array([0.35, 0.25, 0.2, 0.12, 0.08])


def main() -> None:
    # The Facebook stand-in: calibrated to the published (n, Gamma_G).
    dataset = build_dataset("facebook", seed=0)
    graph = dataset.graph
    summary = spectral_summary(graph)
    print(f"facebook stand-in: n={graph.num_nodes}, "
          f"Gamma={dataset.achieved_gamma:.2f} "
          f"(published {dataset.published_gamma}), "
          f"mixing time={summary.mixing_time}")

    rng = np.random.default_rng(7)
    answers = rng.choice(NUM_OPTIONS, size=graph.num_nodes, p=TRUE_SHARES)

    for protocol in ("all", "single"):
        result = run_frequency_estimation(
            graph, answers, EPSILON0, NUM_OPTIONS,
            protocol=protocol, rng=11,
        )
        sum_squared = summary.sum_squared_bound(summary.mixing_time)
        if protocol == "all":
            central = epsilon_all_stationary(
                EPSILON0, graph.num_nodes, sum_squared, DELTA, DELTA
            ).epsilon
        else:
            central = epsilon_single_stationary(
                EPSILON0, graph.num_nodes, sum_squared, DELTA
            ).epsilon
        print(f"\nA_{protocol}: central eps = {central:.3f} "
              f"(local eps0 = {EPSILON0}), dummies = {result.dummy_count}")
        print(f"  true shares     : {np.round(result.truth, 3)}")
        print(f"  private estimate: {np.round(result.estimate, 3)}")
        print(f"  max abs error   : {result.max_error:.4f}")


if __name__ == "__main__":
    main()
