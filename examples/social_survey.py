#!/usr/bin/env python
"""Private survey over a social network — the paper's motivating use case.

Users of a messaging app answer a 5-option survey question.  Instead of
trusting the operator with raw answers (central model) or paying full
LDP noise, they relay k-ary randomized-response reports to friends on
the social graph (the Facebook page-page stand-in from Table 4) before
delivery.  The operator reconstructs the answer histogram and never
learns who relayed what.

The deployment is one declarative scenario: its graph spec pins the
Facebook stand-in (seed as spec data, so accounting and simulation see
the same graph through the scenario cache), and `repro.bound` prices
both protocols at the mixing time.  The histogram itself runs through
the frequency-estimation helper on the scenario's materialized graph.

Run:  python examples/social_survey.py
"""

from __future__ import annotations

import numpy as np

from repro import Scenario, bound
from repro.estimation import run_frequency_estimation
from repro.scenario import build_graph, graph_summary

EPSILON0 = 0.5
DELTA = 1e-6
NUM_OPTIONS = 5
TRUE_SHARES = np.array([0.35, 0.25, 0.2, 0.12, 0.08])


def main() -> None:
    # The Facebook stand-in: calibrated to the published (n, Gamma_G).
    scenario = Scenario(
        graph={"kind": "dataset", "params": {"name": "facebook", "seed": 0}},
        epsilon0=EPSILON0,
        delta=DELTA,
        delta2=DELTA,
        seed=0,
    )
    graph = build_graph(scenario)
    summary = graph_summary(scenario)
    gamma = graph.num_nodes * summary.stationary_collision
    print(f"facebook stand-in: n={graph.num_nodes}, "
          f"Gamma={gamma:.2f}, "
          f"mixing time={summary.mixing_time}")

    rng = np.random.default_rng(7)
    answers = rng.choice(NUM_OPTIONS, size=graph.num_nodes, p=TRUE_SHARES)

    for protocol in ("all", "single"):
        result = run_frequency_estimation(
            graph, answers, EPSILON0, NUM_OPTIONS,
            protocol=protocol, rng=11,
        )
        # Theorem 5.3 / 5.5 at the mixing time, straight off the spec.
        central = bound(scenario.updated(protocol=protocol)).epsilon
        print(f"\nA_{protocol}: central eps = {central:.3f} "
              f"(local eps0 = {EPSILON0}), dummies = {result.dummy_count}")
        print(f"  true shares     : {np.round(result.truth, 3)}")
        print(f"  private estimate: {np.round(result.estimate, 3)}")
        print(f"  max abs error   : {result.max_error:.4f}")


if __name__ == "__main__":
    main()
