#!/usr/bin/env python
"""Auditing network shuffling: measure the privacy you actually get.

The theorems bound the central privacy loss from above; this example
attacks the deployment from below with the distinguishing game: run the
protocol repeatedly on two worlds that differ only in one victim's bit,
and see how well the strongest statistic the paper's threat model
allows can tell them apart.

The measured lower bound eps_hat starts near the local eps0 (no rounds:
the final-round link is fully identifying) and collapses as exchange
rounds accumulate — privacy amplification you can *see*, not just
prove.

The deployment is one declarative scenario; the eps_hat-vs-rounds curve
is `repro.sweep(mode="audit")` over a `rounds` axis, so the graph
materializes once and the kernel-engine audits extend one memoized
M^t power chain instead of rebuilding it per point.

Run:  python examples/privacy_audit.py        (~1 minute)
"""

from __future__ import annotations

from repro import Scenario, bound, sweep
from repro.auditing import audit_local_randomizer
from repro.ldp import BinaryRandomizedResponse
from repro.scenario import graph_summary

EPSILON0 = 1.0
NUM_USERS = 200
TRIALS = 2000


def main() -> None:
    # Sanity: auditing the bare randomizer recovers eps0.
    local = audit_local_randomizer(
        BinaryRandomizedResponse(EPSILON0), 0, 1, trials=20_000, rng=0
    )
    print(f"bare randomized response: eps0 = {EPSILON0}, "
          f"measured eps_hat = {local.epsilon_lower_bound:.3f}")

    scenario = Scenario(
        graph={"kind": "k_regular",
               "params": {"degree": 6, "num_nodes": NUM_USERS}},
        epsilon0=EPSILON0,
        rounds=0,
        audit={"kind": "weighted_evidence", "params": {"trials": TRIALS}},
        delta=1e-6,
        delta2=1e-6,
        seed=1,
    )
    mixing = graph_summary(scenario).mixing_time
    print(f"\ngraph: n={NUM_USERS}, 6-regular, mixing time = {mixing}\n")

    rounds_axis = [0, 2, 6, mixing]
    audits = sweep(scenario, axis={"rounds": rounds_axis}, mode="audit")

    print(f"{'rounds':>7} {'measured eps_hat':>17} {'Thm 5.3 bound':>14}")
    for point in audits:
        rounds = point.coordinates["rounds"]
        upper = bound(scenario, rounds=rounds).epsilon
        print(f"{rounds:>7} {point.outcome.epsilon_lower_bound:>17.3f} "
              f"{upper:>14.3f}")

    print("\nthe attacker's certified loss collapses with rounds — the")
    print("closed-form bound is loose at this small n, but the *measured*")
    print("privacy is excellent; see the Theorem 6.1 empirical accountant")
    print("for the tight intermediate story.")


if __name__ == "__main__":
    main()
