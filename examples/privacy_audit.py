#!/usr/bin/env python
"""Auditing network shuffling: measure the privacy you actually get.

The theorems bound the central privacy loss from above; this example
attacks the deployment from below with the distinguishing game
(``repro.auditing``): run the protocol repeatedly on two worlds that
differ only in one victim's bit, and see how well the strongest
statistic the paper's threat model allows can tell them apart.

The measured lower bound eps_hat starts near the local eps0 (no rounds:
the final-round link is fully identifying) and collapses as exchange
rounds accumulate — privacy amplification you can *see*, not just
prove.

Run:  python examples/privacy_audit.py        (~1 minute)
"""

from __future__ import annotations

from repro.amplification import epsilon_all_stationary
from repro.auditing import audit_local_randomizer, audit_network_shuffle
from repro.graphs import random_regular_graph
from repro.graphs.spectral import spectral_summary
from repro.ldp import BinaryRandomizedResponse

EPSILON0 = 1.0
NUM_USERS = 200
TRIALS = 2000


def main() -> None:
    # Sanity: auditing the bare randomizer recovers eps0.
    local = audit_local_randomizer(
        BinaryRandomizedResponse(EPSILON0), 0, 1, trials=20_000, rng=0
    )
    print(f"bare randomized response: eps0 = {EPSILON0}, "
          f"measured eps_hat = {local.epsilon_lower_bound:.3f}")

    graph = random_regular_graph(6, NUM_USERS, rng=0)
    summary = spectral_summary(graph)
    print(f"\ngraph: n={NUM_USERS}, 6-regular, "
          f"mixing time = {summary.mixing_time}\n")

    print(f"{'rounds':>7} {'measured eps_hat':>17} {'Thm 5.3 bound':>14}")
    for rounds in (0, 2, 6, summary.mixing_time):
        audit = audit_network_shuffle(
            graph, EPSILON0, rounds, trials=TRIALS, rng=1
        )
        upper = epsilon_all_stationary(
            EPSILON0,
            NUM_USERS,
            summary.sum_squared_bound(rounds),
            1e-6,
            1e-6,
        ).epsilon
        print(f"{rounds:>7} {audit.epsilon_lower_bound:>17.3f} "
              f"{upper:>14.3f}")

    print("\nthe attacker's certified loss collapses with rounds — the")
    print("closed-form bound is loose at this small n, but the *measured*")
    print("privacy is excellent; see the Theorem 6.1 empirical accountant")
    print("for the tight intermediate story.")


if __name__ == "__main__":
    main()
