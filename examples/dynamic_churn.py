#!/usr/bin/env python
"""Time-varying networks: churn and failover as schedule scenarios.

Section 4.5 models user churn and adversarial node removal as random
walks on time-varying graphs.  This example prices two such workloads
declaratively — no stationarity assumption anywhere; the bounds consume
the *exact* worst-user collision mass evolved through the per-round
topologies:

1. **Churn** — a Watts-Strogatz small world whose edges re-draw every
   phase (``base`` + ``phases``): eps vs rounds via one ``sweep``.
2. **Failover** — an 8-regular overlay that degrades to a 4-regular
   backup mid-campaign (``epoch`` selector): the price of running half
   the campaign on the thinner topology.

Run:  python examples/dynamic_churn.py
"""

from __future__ import annotations

from repro import Scenario, bound, run, sweep

NUM_USERS = 500
EPSILON0 = 1.0
ROUNDS = 16


def churn_curve() -> None:
    base = Scenario(
        graph={
            "kind": "schedule",
            "params": {
                "base": {
                    "kind": "watts_strogatz",
                    "params": {
                        "num_nodes": NUM_USERS,
                        "nearest_neighbors": 6,
                        "rewire_probability": 0.2,
                    },
                },
                "phases": 4,
            },
        },
        mechanism={"kind": "rr", "params": {"epsilon": EPSILON0}},
        rounds=ROUNDS,
        seed=0,
    )
    curve = sweep(base, axis={"rounds": [2, 4, 8, 16]}, mode="bound")
    print(f"churn: {NUM_USERS} users, 4 rewired phases, eps0={EPSILON0}")
    for point in curve:
        print(f"  t={point.coordinates['rounds']:>2}  "
              f"central eps = {point.epsilon:.4f}")


def failover() -> None:
    scenario = Scenario(
        graph={
            "kind": "schedule",
            "params": {
                "graphs": [
                    {"kind": "k_regular",
                     "params": {"degree": 8, "num_nodes": NUM_USERS}},
                    {"kind": "k_regular",
                     "params": {"degree": 4, "num_nodes": NUM_USERS}},
                ],
                "selector": "epoch",
                "block": ROUNDS // 2,  # healthy half, degraded half
            },
        },
        mechanism={"kind": "rr", "params": {"epsilon": EPSILON0}},
        values={"kind": "bernoulli", "params": {"rate": 0.3}},
        rounds=ROUNDS,
        seed=1,
    )
    healthy = bound(scenario.updated(**{
        "graph.graphs": [
            {"kind": "k_regular",
             "params": {"degree": 8, "num_nodes": NUM_USERS}},
        ],
        "graph.block": ROUNDS,
    }))
    result = run(scenario)
    print(f"\nfailover: degree 8 -> 4 at round {ROUNDS // 2}")
    print(f"  healthy-only central eps : {healthy.epsilon:.4f}")
    print(f"  with failover            : {result.central_epsilon:.4f}")
    print(f"  empirical (Theorem 6.1)  : {result.empirical_epsilon:.4f}")


def main() -> None:
    churn_curve()
    failover()


if __name__ == "__main__":
    main()
