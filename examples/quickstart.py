#!/usr/bin/env python
"""Quickstart: network shuffling as one declarative scenario.

Ten thousand users on an 8-regular communication graph each hold one
private bit.  The whole workload — graph, local randomizer, protocol,
rounds, accounting — is a single serializable :class:`repro.Scenario`;
``repro.run`` simulates it and accounts the amplified central guarantee
in one call.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import Scenario, run

EPSILON0 = 1.0
NUM_USERS = 10_000
TRUE_RATE = 0.3


def main() -> None:
    # 1. The workload as data.  `rounds=None` means the graph's mixing
    #    time (the paper's operating point); `seed` fixes everything.
    scenario = Scenario(
        graph={"kind": "k_regular", "params": {"degree": 8, "num_nodes": NUM_USERS}},
        mechanism={"kind": "rr", "params": {"epsilon": EPSILON0}},
        values={"kind": "bernoulli", "params": {"rate": TRUE_RATE}},
        protocol="all",
        seed=0,
    )
    # Scenarios round-trip through JSON — ship them, store them, sweep them.
    assert Scenario.from_json(scenario.to_json()) == scenario

    # 2. One call: build graph, randomize, exchange, deliver, account.
    result = run(scenario)
    print(f"graph: n={NUM_USERS}, 8-regular, rounds={result.rounds} (mixing time)")
    print(f"local guarantee : eps0 = {EPSILON0}")
    print(f"central (paper) : eps  = {result.central_epsilon:.3f} "
          f"(delta = {result.bound.delta:.1e}, {result.bound.theorem})")

    # 3. The server debiases the randomized-response reports.
    reports = np.array(result.payloads())
    estimate = result.mechanism.debias(reports.mean())
    true_rate = float(np.mean(result.values))
    print(f"true rate = {true_rate:.3f}, private estimate = {estimate:.3f}")

    # 4. Empirical accounting from the realized allocation (Theorem 6.1)
    #    is tighter than the closed-form worst case — already included.
    print(f"empirical eps for this run: {result.empirical_epsilon:.3f}")


if __name__ == "__main__":
    main()
