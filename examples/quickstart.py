#!/usr/bin/env python
"""Quickstart: network shuffling in ~40 lines.

A thousand users on an 8-regular communication graph each hold one
private bit.  Everyone randomizes locally (eps0 = 1 randomized
response), reports are exchanged in a random walk for the graph's
mixing time, and the untrusted server estimates the population rate.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import NetworkShuffler
from repro.graphs import random_regular_graph
from repro.ldp import BinaryRandomizedResponse

EPSILON0 = 1.0
DELTA = 1e-6
NUM_USERS = 10_000


def main() -> None:
    # 1. The communication network — e.g. a peer-discovery overlay where
    #    every client connects to 8 peers (Section 4.2 of the paper).
    graph = random_regular_graph(8, NUM_USERS, rng=0)

    # 2. Configure network shuffling.  The number of exchange rounds
    #    defaults to the mixing time alpha^{-1} log n.
    shuffler = NetworkShuffler(graph, epsilon0=EPSILON0, delta=DELTA)
    print(f"graph: n={NUM_USERS}, spectral gap={shuffler.spectral.spectral_gap:.3f}, "
          f"rounds={shuffler.rounds}")

    # 3. What the theorems promise for this deployment (Theorem 5.3).
    guarantee = shuffler.central_guarantee()
    print(f"local guarantee : eps0 = {EPSILON0}")
    print(f"central (paper) : eps  = {guarantee.epsilon:.3f} "
          f"(delta = {guarantee.delta:.1e}, {guarantee.theorem})")

    # 4. Run the protocol: 30% of users hold bit 1.
    true_rate = 0.3
    bits = (np.arange(NUM_USERS) < true_rate * NUM_USERS).astype(int)
    randomizer = BinaryRandomizedResponse(EPSILON0)
    result = shuffler.run(list(bits), randomizer, rng=1)

    # 5. The server debiases the randomized-response reports.
    reports = np.array(result.payloads())
    estimate = randomizer.debias(reports.mean())
    print(f"true rate = {true_rate:.3f}, private estimate = {estimate:.3f}")

    # 6. Empirical accounting from the realized allocation (Theorem 6.1)
    #    is tighter than the closed-form worst case.
    print(f"empirical eps for this run: "
          f"{shuffler.empirical_guarantee(result):.3f}")


if __name__ == "__main__":
    main()
