#!/usr/bin/env python
"""Backend comparison: one scenario, three engines, identical results.

The exchange engine is a per-scenario knob: ``"faithful"`` replays the
paper's per-message loop, ``"fast"``/``"vectorized"`` runs flat-array
rounds, and ``"compiled"`` fuses the whole campaign into a single
kernel call (numba-JIT when the ``[compiled]`` extra is installed,
pure-NumPy fallback otherwise).  All three share one RNG contract, so
every trajectory, meter, and payload is bit-identical — this example
runs the same seeded scenario on each backend, checks that, and prints
the wall-clock alongside which compiled kernels were resolved.

Run:  python examples/backend_comparison.py
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro import Scenario, run
from repro.netsim.kernels import backend_info

EPSILON0 = 1.0
NUM_USERS = 5_000
ROUNDS = 12

ENGINES = ("faithful", "vectorized", "compiled")


def main() -> None:
    base = Scenario(
        graph={"kind": "k_regular", "params": {"degree": 8, "num_nodes": NUM_USERS}},
        mechanism={"kind": "rr", "params": {"epsilon": EPSILON0}},
        values={"kind": "bernoulli", "params": {"rate": 0.3}},
        rounds=ROUNDS,
        seed=7,
    )

    info = backend_info()
    print(f"compiled kernels: {info['compiled_kernels']} "
          f"(numba available: {info['numba_available']})")

    results = {}
    for engine in ENGINES:
        start = time.perf_counter()
        result = run(replace(base, engine=engine))
        elapsed = time.perf_counter() - start
        results[engine] = result
        backend = result.summary()["backend"]
        print(f"{engine:>10} [{backend:>14}]: {elapsed * 1000:7.1f} ms")

    # The RNG contract makes the backends interchangeable, not merely
    # statistically similar: same seed -> same bits on every engine.
    reference = results["faithful"]
    for engine in ("vectorized", "compiled"):
        assert results[engine].payloads() == reference.payloads(), engine
        assert results[engine].central_epsilon == reference.central_epsilon
    print(f"all {len(ENGINES)} backends bit-identical "
          f"(eps = {reference.central_epsilon:.3f})")


if __name__ == "__main__":
    main()
