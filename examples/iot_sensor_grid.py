#!/usr/bin/env python
"""Wireless sensor network: shuffling on a torus grid with faults.

The paper notes network shuffling applies directly to wireless sensor
networks (Section 3.1) where nodes talk peer-to-peer to physical
neighbors.  A torus grid is 4-regular, so the *symmetric* analysis
(Theorem 5.4, exact walk tracking) applies — and because sensors run on
batteries, we model dropouts with the lazy-walk fault model of Section
4.5 and measure the cost in rounds.

Run:  python examples/iot_sensor_grid.py
"""

from __future__ import annotations

import numpy as np

from repro.amplification import epsilon_all_symmetric
from repro.graphs import grid_graph
from repro.graphs.spectral import spectral_summary
from repro.graphs.walks import evolve_distribution
from repro.ldp import LaplaceMechanism
from repro.protocols import run_all_protocol

SIDE = 25            # 25 x 25 torus = 625 sensors (odd side => non-bipartite)
EPSILON0 = 1.0
DELTA = 1e-6
DROPOUT = 0.25       # a quarter of sensors asleep each round


def epsilon_after(graph, rounds: int, laziness: float) -> float:
    """Theorem 5.4 evaluated on the exact (lazy) walk distribution."""
    initial = np.zeros(graph.num_nodes)
    initial[0] = 1.0
    distribution = evolve_distribution(
        graph, initial, rounds, laziness=laziness
    )
    return epsilon_all_symmetric(
        EPSILON0, graph.num_nodes, distribution, DELTA, DELTA
    ).epsilon


def main() -> None:
    graph = grid_graph(SIDE, SIDE, periodic=True)
    summary = spectral_summary(graph)
    print(f"torus {SIDE}x{SIDE}: n={graph.num_nodes}, 4-regular, "
          f"spectral gap={summary.spectral_gap:.4f}, "
          f"mixing time={summary.mixing_time}")

    # Privacy vs rounds, healthy vs faulty network.
    print(f"\n{'rounds':>7} {'eps (healthy)':>14} {'eps (25% asleep)':>17}")
    for rounds in (summary.mixing_time // 4, summary.mixing_time // 2,
                   summary.mixing_time, 2 * summary.mixing_time):
        healthy = epsilon_after(graph, rounds, 0.0)
        faulty = epsilon_after(graph, rounds, DROPOUT)
        print(f"{rounds:>7} {healthy:>14.3f} {faulty:>17.3f}")
    print("-> dropouts cost extra rounds, not privacy "
          "(run ~1/(1-p) times longer).")

    # Collect temperature readings privately.
    rng = np.random.default_rng(0)
    temperatures = np.clip(rng.normal(22.0, 2.0, graph.num_nodes), 15.0, 30.0)
    mechanism = LaplaceMechanism(EPSILON0, 15.0, 30.0)
    readings = mechanism.randomize_batch(temperatures, rng=1)

    result = run_all_protocol(
        graph, summary.mixing_time,
        values=list(readings), laziness=DROPOUT, rng=2,
    )
    estimate = float(np.mean(result.payloads()))
    print(f"\ntrue mean temperature    : {temperatures.mean():.2f} C")
    print(f"private estimate (eps0=1): {estimate:.2f} C")


if __name__ == "__main__":
    main()
