#!/usr/bin/env python
"""Wireless sensor network: a declarative scenario with faults.

The paper notes network shuffling applies directly to wireless sensor
networks (Section 3.1) where nodes talk peer-to-peer to physical
neighbors.  A torus grid is 4-regular, so the *symmetric* analysis
(Theorem 5.4, exact walk tracking) applies — and because sensors run on
batteries, the scenario's ``laziness`` knob models the lazy-walk fault
model of Section 4.5.  The privacy-vs-rounds table is one ``sweep`` in
``bound`` mode (no simulation); the actual collection is one ``run``.

Run:  python examples/iot_sensor_grid.py
"""

from __future__ import annotations

import numpy as np

from repro import Scenario, run, sweep
from repro.scenario import graph_summary

SIDE = 25            # 25 x 25 torus = 625 sensors (odd side => non-bipartite)
EPSILON0 = 1.0
DROPOUT = 0.25       # a quarter of sensors asleep each round


def main() -> None:
    base = Scenario(
        graph={"kind": "grid", "params": {"rows": SIDE, "cols": SIDE, "periodic": True}},
        mechanism={"kind": "laplace",
                   "params": {"epsilon": EPSILON0, "lower": 15.0, "upper": 30.0}},
        values={"kind": "normal",
                "params": {"mean": 22.0, "std": 2.0, "lower": 15.0, "upper": 30.0}},
        protocol="all",
        analysis="symmetric",     # exact tracking on the 4-regular torus
        seed=0,
    )
    summary = graph_summary(base)
    print(f"torus {SIDE}x{SIDE}: n={SIDE * SIDE}, 4-regular, "
          f"spectral gap={summary.spectral_gap:.4f}, "
          f"mixing time={summary.mixing_time}")

    # Privacy vs rounds, healthy vs faulty network — a 2-axis bound sweep.
    rounds_axis = [summary.mixing_time // 4, summary.mixing_time // 2,
                   summary.mixing_time, 2 * summary.mixing_time]
    curve = sweep(base, axis={"laziness": [0.0, DROPOUT], "rounds": rounds_axis},
                  mode="bound")
    by_laziness = {
        laziness: [p.epsilon for p in curve if p.coordinates["laziness"] == laziness]
        for laziness in (0.0, DROPOUT)
    }
    print(f"\n{'rounds':>7} {'eps (healthy)':>14} {'eps (25% asleep)':>17}")
    for i, rounds in enumerate(rounds_axis):
        print(f"{rounds:>7} {by_laziness[0.0][i]:>14.3f} {by_laziness[DROPOUT][i]:>17.3f}")
    print("-> dropouts cost extra rounds, not privacy "
          "(run ~1/(1-p) times longer).")

    # Collect temperature readings privately under the fault model.
    result = run(base.updated(laziness=DROPOUT, rounds=summary.mixing_time))
    temperatures = np.asarray(result.values)
    estimate = float(np.mean(result.payloads()))
    print(f"\ntrue mean temperature    : {temperatures.mean():.2f} C")
    print(f"private estimate (eps0=1): {estimate:.2f} C")
    print(f"central guarantee at t={result.rounds}: "
          f"eps = {result.central_epsilon:.3f} ({result.bound.theorem})")


if __name__ == "__main__":
    main()
