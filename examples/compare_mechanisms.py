#!/usr/bin/env python
"""Which trust model should you deploy?  A side-by-side comparison.

For a fixed population and local budget, prints the central guarantee of
every amplification mechanism in the paper's Table 1 plus the measured
system costs of the three architectures in Table 3 — the decision table
a practitioner would actually want.

The network-shuffling rows are priced through the declarative Scenario
API (`repro.stationary_bound` — closed form, no graph build even at
n=10,000) and the network-shuffling cost row is one `repro.run` of the
same scenario on the faithful engine.

Run:  python examples/compare_mechanisms.py
"""

from __future__ import annotations

from repro import Scenario, run, stationary_bound
from repro.amplification import (
    clones_epsilon,
    subsampling_epsilon,
    uniform_shuffle_epsilon,
)
from repro.baselines import run_mixnet, run_prochlo
from repro.experiments.reporting import format_table

N = 10_000
EPSILON0 = 1.0
DELTA = 1e-6


def _network_scenario(protocol: str, n: int, engine: str = "fast") -> Scenario:
    return Scenario(
        graph={"kind": "k_regular", "params": {"degree": 8, "num_nodes": n}},
        protocol=protocol,
        epsilon0=EPSILON0,
        engine=engine,
        delta=DELTA,
        delta2=DELTA,
        seed=0,
    )


def main() -> None:
    print(f"population n={N}, local budget eps0={EPSILON0}, delta={DELTA}\n")

    # --- privacy comparison (Table 1) ---------------------------------
    rows = [
        ("no amplification (pure LDP)", "none", EPSILON0),
        ("uniform subsampling", "trusted sampler",
         subsampling_epsilon(EPSILON0, N)),
        ("uniform shuffling (EFMRTT19)", "trusted shuffler",
         uniform_shuffle_epsilon(EPSILON0, N, DELTA)),
        ("uniform shuffling (clones, FMT21)", "trusted shuffler",
         clones_epsilon(EPSILON0, N, DELTA)),
        ("network shuffling, A_all", "none (decentralized)",
         stationary_bound(_network_scenario("all", N)).epsilon),
        ("network shuffling, A_single", "none (decentralized)",
         stationary_bound(_network_scenario("single", N)).epsilon),
    ]
    print(format_table(
        ["mechanism", "trusted entity", "central eps"],
        [(name, trust, round(eps, 4)) for name, trust, eps in rows],
    ))

    # --- measured system costs (Table 3), small scale -----------------
    n_sim = 512
    values = [0] * n_sim
    prochlo = run_prochlo(values, rng=0)
    mixnet = run_mixnet(values, rng=0)
    shuffle = run(
        _network_scenario("all", n_sim, engine="faithful").updated(rounds=8)
    )
    user_meters = [shuffle.meters.meter(u) for u in range(n_sim)]

    print("\nmeasured system costs at n=512:")
    print(format_table(
        ["architecture", "entity peak memory", "max user traffic"],
        [
            ("Prochlo (central batch)", prochlo.shuffler_peak_memory,
             prochlo.max_user_traffic),
            ("mix-net (full cover)", mixnet.relay_peak_memory(),
             mixnet.max_user_traffic()),
            ("network shuffling (8 rounds)",
             max(m.peak_items for m in user_meters),
             max(m.messages_sent for m in user_meters)),
        ],
    ))


if __name__ == "__main__":
    main()
