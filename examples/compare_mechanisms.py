#!/usr/bin/env python
"""Which trust model should you deploy?  A side-by-side comparison.

For a fixed population and local budget, prints the central guarantee of
every amplification mechanism in the paper's Table 1 plus the measured
system costs of the three architectures in Table 3 — the decision table
a practitioner would actually want.

Run:  python examples/compare_mechanisms.py
"""

from __future__ import annotations

from repro.amplification import (
    clones_epsilon,
    epsilon_all_stationary,
    epsilon_single_stationary,
    subsampling_epsilon,
    uniform_shuffle_epsilon,
)
from repro.baselines import run_mixnet, run_prochlo
from repro.experiments.reporting import format_table
from repro.graphs import random_regular_graph
from repro.protocols import run_all_protocol

N = 10_000
EPSILON0 = 1.0
DELTA = 1e-6


def main() -> None:
    print(f"population n={N}, local budget eps0={EPSILON0}, delta={DELTA}\n")

    # --- privacy comparison (Table 1) ---------------------------------
    sum_squared = 1.0 / N  # regular communication graph (Gamma = 1)
    rows = [
        ("no amplification (pure LDP)", "none", EPSILON0),
        ("uniform subsampling", "trusted sampler",
         subsampling_epsilon(EPSILON0, N)),
        ("uniform shuffling (EFMRTT19)", "trusted shuffler",
         uniform_shuffle_epsilon(EPSILON0, N, DELTA)),
        ("uniform shuffling (clones, FMT21)", "trusted shuffler",
         clones_epsilon(EPSILON0, N, DELTA)),
        ("network shuffling, A_all", "none (decentralized)",
         epsilon_all_stationary(EPSILON0, N, sum_squared, DELTA, DELTA).epsilon),
        ("network shuffling, A_single", "none (decentralized)",
         epsilon_single_stationary(EPSILON0, N, sum_squared, DELTA).epsilon),
    ]
    print(format_table(
        ["mechanism", "trusted entity", "central eps"],
        [(name, trust, round(eps, 4)) for name, trust, eps in rows],
    ))

    # --- measured system costs (Table 3), small scale -----------------
    n_sim = 512
    values = [0] * n_sim
    prochlo = run_prochlo(values, rng=0)
    mixnet = run_mixnet(values, rng=0)
    graph = random_regular_graph(8, n_sim, rng=0)
    shuffle = run_all_protocol(graph, 8, engine="faithful", rng=0)
    user_meters = [shuffle.meters.meter(u) for u in range(n_sim)]

    print("\nmeasured system costs at n=512:")
    print(format_table(
        ["architecture", "entity peak memory", "max user traffic"],
        [
            ("Prochlo (central batch)", prochlo.shuffler_peak_memory,
             prochlo.max_user_traffic),
            ("mix-net (full cover)", mixnet.relay_peak_memory(),
             mixnet.max_user_traffic()),
            ("network shuffling (8 rounds)",
             max(m.peak_items for m in user_meters),
             max(m.messages_sent for m in user_meters)),
        ],
    ))


if __name__ == "__main__":
    main()
