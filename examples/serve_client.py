#!/usr/bin/env python
"""Serving tier: price a deployment grid over HTTP.

A deployment team wants the amplified central guarantee across a grid
of graph degrees and round counts *without* importing the library —
just a JSON API.  This example boots the serving tier in-process (the
same ``ReproService`` behind ``python -m repro serve``), then acts as a
plain HTTP client: one keep-alive connection, one ``POST /bound`` per
grid point, and a ``GET /stats`` at the end showing that the whole grid
cost a handful of graph builds — repeat queries for the same topology
are cache hits plus theorem arithmetic.

Run:  python examples/serve_client.py

Against a standing server, the same client code works unchanged — start
one with ``python -m repro serve --port 8777`` and point ``base_url``
at it.
"""

from __future__ import annotations

import http.client
import json

from repro.serve import ServerHandle

NUM_USERS = 4_096
EPSILON0 = 1.0
DEGREES = (4, 8, 16)
ROUNDS = (8, 32, 128)


def scenario_for(degree: int) -> dict:
    """One grid row's workload, as the JSON a curl caller would send."""
    return {
        "graph": {
            "kind": "k_regular",
            "params": {"degree": degree, "num_nodes": NUM_USERS},
        },
        "mechanism": {"kind": "rr", "params": {"epsilon": EPSILON0}},
        "seed": 0,
    }


def post(connection: http.client.HTTPConnection, path: str, body: dict) -> dict:
    connection.request(
        "POST", path, body=json.dumps(body),
        headers={"Content-Type": "application/json"},
    )
    response = connection.getresponse()
    payload = json.loads(response.read())
    if response.status != 200:
        raise RuntimeError(f"{path} -> {response.status}: {payload['message']}")
    return payload


def main() -> None:
    with ServerHandle.start() as server:
        print(f"serving tier up at {server.base_url}\n")
        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=60
        )
        try:
            print(f"central epsilon for n={NUM_USERS:,}, "
                  f"local eps0={EPSILON0} (A_all):\n")
            header = "degree | " + " | ".join(f"t={t:>4}" for t in ROUNDS)
            print("  " + header)
            print("  " + "-" * len(header))
            for degree in DEGREES:
                body = {"scenario": scenario_for(degree)}
                cells = []
                for rounds in ROUNDS:
                    bound = post(connection, "/bound",
                                 {**body, "rounds": rounds})
                    cells.append(f"{bound['epsilon']:6.3f}")
                print(f"  {degree:>6} | " + " | ".join(cells))

            connection.request("GET", "/stats")
            stats = json.loads(connection.getresponse().read())
            cache = stats["graph_cache"]
            print(f"\n/stats after the grid: {cache['builds']} graph builds, "
                  f"{cache['memory_hits']} cache hits "
                  f"({len(DEGREES) * len(ROUNDS)} bound queries)")
            latency = stats["requests"]["POST /bound"]
            print(f"POST /bound: {latency['count']} requests, "
                  f"mean {latency['mean_ms']:.2f} ms")
        finally:
            connection.close()
    print("\nserver stopped.")


if __name__ == "__main__":
    main()
