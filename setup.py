"""Legacy setup shim (the environment lacks the `wheel` package, so the
PEP 660 editable path is unavailable; `pip install -e . --no-use-pep517`
uses this file instead)."""
from setuptools import setup

setup()
