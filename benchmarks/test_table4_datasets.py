"""Table 4 — dataset statistics: published vs achieved on stand-ins.

Shapes asserted:

* every stand-in's LCC node count is within 5% of the published ``n``
  (after Google's documented down-scaling);
* every achieved ``Gamma_G`` is within 10% of the published value;
* the category pattern holds: social graphs are "reasonably regular"
  (``Gamma <~ 10``) while Enron/Google are not, and Enron has the
  largest irregularity — exactly the paper's reading of the table.
"""

from __future__ import annotations

from repro.experiments.table4 import render_table4, run_table4


def test_table4_datasets(benchmark, config):
    rows = benchmark(lambda: run_table4(config=config))
    print("\n" + render_table4(rows))

    by_name = {row.name: row for row in rows}
    assert set(by_name) == {"facebook", "twitch", "deezer", "enron", "google"}

    for row in rows:
        expected_n = round(row.published_n * row.scale)
        assert abs(row.achieved_n - expected_n) <= 0.05 * expected_n, (
            f"{row.name}: LCC n={row.achieved_n} vs target {expected_n}"
        )
        assert row.gamma_relative_error <= 0.10, (
            f"{row.name}: Gamma {row.achieved_gamma} vs published "
            f"{row.published_gamma} ({row.gamma_relative_error:.1%})"
        )
        assert 0.0 < row.spectral_gap < 1.0
        assert row.mixing_time >= 1

    # The paper's qualitative reading of the table.
    for social in ("facebook", "twitch", "deezer"):
        assert by_name[social].achieved_gamma < 10.0
    assert by_name["enron"].achieved_gamma > by_name["google"].achieved_gamma
    assert by_name["enron"].achieved_gamma == max(
        row.achieved_gamma for row in rows
    )
