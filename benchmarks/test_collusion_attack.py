"""Threat-model benchmark — collusion degrades anonymity gracefully.

Section 3.3/4.5 of the paper: colluding users are outside the threat
model, and when the assumptions fail privacy degrades toward the LDP
guarantee.  This bench *measures* the degradation with the trajectory-
anchoring attack of :mod:`repro.netsim.collusion`.

Shapes asserted:

* linkage accuracy grows monotonically with the colluder fraction;
* honest-but-curious (0% colluders) stays near the 1/n floor;
* a large coalition (30%) achieves an order of magnitude more linkage
  than the floor, but still far from total —
  the degradation is graceful, not a cliff.
"""

from __future__ import annotations

from repro.graphs.generators import random_regular_graph
from repro.graphs.spectral import mixing_time
from repro.netsim.collusion import run_collusion_attack


def _run(config):
    graph = random_regular_graph(8, 400, rng=config.seed)
    rounds = mixing_time(graph)
    results = {}
    for fraction in (0.0, 0.05, 0.15, 0.30):
        colluders = range(int(fraction * graph.num_nodes))
        results[fraction] = run_collusion_attack(
            graph, rounds, colluders, rng=config.seed
        )
    return graph.num_nodes, results


def test_collusion_degrades_gracefully(benchmark, config):
    n, results = benchmark(lambda: _run(config))
    print()
    for fraction, result in results.items():
        print(
            f"colluders={fraction:.0%}: observed {result.observation_rate:.0%} "
            f"of reports, linkage accuracy {result.linkage_accuracy:.4f} "
            f"(baseline {result.baseline_accuracy:.4f})"
        )

    accuracies = [results[f].linkage_accuracy for f in sorted(results)]
    assert all(
        later >= earlier - 1e-12
        for earlier, later in zip(accuracies, accuracies[1:])
    ), f"linkage should grow with collusion: {accuracies}"

    # Honest-but-curious: near the 1/n floor.
    assert results[0.0].linkage_accuracy < 15.0 / n
    # Large coalition: clearly above the floor...
    assert results[0.30].linkage_accuracy > 10 * results[0.0].linkage_accuracy
    # ...but not total linkage (graceful degradation).
    assert results[0.30].linkage_accuracy < 0.9
