"""Figure 4 — privacy vs. communication rounds (Theorem 5.3 bound).

Shapes asserted:

* every dataset's eps(t) curve is monotonically non-increasing (the
  paper highlights this about the upper-bound route);
* each curve converges to within 1% of its asymptotic value by the
  mixing time ``alpha^{-1} log n`` (Equation 5's operating point);
* convergence is far from instant: the value at t=1 is well above the
  asymptote (the privacy-communication trade-off exists).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figure4 import render_figure4, run_figure4


def test_figure4_convergence(benchmark, config):
    series = benchmark(lambda: run_figure4(epsilon0=1.0, config=config))
    print("\n" + render_figure4(series))

    assert {s.dataset for s in series} == {"facebook", "deezer", "enron"}
    for s in series:
        # Monotone non-increasing bound.
        assert np.all(np.diff(s.epsilon) <= 1e-9), (
            f"{s.dataset}: bound curve is not monotone"
        )
        # Converged at the mixing time.
        at_mixing = s.epsilon[np.searchsorted(s.steps, s.mixing_time)]
        assert at_mixing <= 1.02 * s.asymptotic_epsilon, (
            f"{s.dataset}: eps at mixing time {at_mixing} vs asymptote "
            f"{s.asymptotic_epsilon}"
        )
        # But not instantly: early rounds are meaningfully worse.
        early = s.epsilon[np.searchsorted(s.steps, min(1, s.steps[-1]))]
        assert early > 2.0 * s.asymptotic_epsilon, (
            f"{s.dataset}: no privacy-communication trade-off visible"
        )
        # The converged value actually amplifies relative to large eps0
        # regimes is dataset-dependent; check it at least beats t=0.
        assert s.epsilon[-1] < s.epsilon[0]
