"""Empirical anonymity — the linkage attack collapses with rounds.

Not a numbered paper artifact, but the mechanism behind every theorem:
after mixing, the final-round linkage the central adversary observes
carries almost no information about report origins.

Shapes asserted:

* at t=0 the naive "final holder = origin" guess is 100% right;
* by the mixing time its accuracy collapses to near the random-guess
  floor;
* the Bayes-optimal posterior guess (adversary knows P^G exactly) does
  no better than ~max_i P_i(t) on a regular graph.
"""

from __future__ import annotations


from repro.graphs.generators import random_regular_graph
from repro.graphs.spectral import mixing_time
from repro.protocols.all_protocol import run_all_protocol


def _run(config):
    graph = random_regular_graph(8, 512, rng=config.seed)
    t_mix = mixing_time(graph)
    accuracies = {}
    for rounds in (0, 1, t_mix):
        result = run_all_protocol(graph, rounds, rng=config.seed)
        view = result.adversary_view()
        accuracies[rounds] = view.linkage_accuracy(view.baseline_guess())
    return t_mix, accuracies


def test_linkage_collapses(benchmark, config):
    t_mix, accuracies = benchmark(lambda: _run(config))
    print(f"\nmixing time = {t_mix}; linkage accuracy by rounds: " + ", ".join(
        f"t={t}: {acc:.3f}" for t, acc in accuracies.items()
    ))
    assert accuracies[0] == 1.0, "before shuffling the linkage is exact"
    assert accuracies[1] < 0.5, "one round should already break most links"
    # Near the 1/n floor at the mixing time (generous 10x slack for a
    # 512-node graph: floor is ~0.002).
    assert accuracies[t_mix] < 10.0 / 512
