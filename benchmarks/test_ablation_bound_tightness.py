"""Ablation — closed-form bound vs empirical Theorem 6.1 accounting.

DESIGN.md calls out the gap between the two privacy-accounting routes:

* **closed form** (Theorem 5.3): Lemma 5.1 concentration on ``||L||_2``
  plus the Equation 7 spectral bound on ``sum P^2``;
* **empirical** (Theorem 6.1): compose the per-output epsilons computed
  from the *realized* allocation vector of a simulated run.

Shapes asserted: the closed form upper-bounds the empirical accounting
(it pays for worst-case concentration), and the gap is a modest
constant factor, not orders of magnitude.
"""

from __future__ import annotations

import numpy as np

from repro.amplification.network_shuffle import (
    epsilon_all_stationary,
    epsilon_from_report_sizes,
)
from repro.graphs.generators import random_regular_graph
from repro.graphs.spectral import spectral_summary
from repro.graphs.walks import report_allocation


def _run(config):
    graph = random_regular_graph(8, 4096, rng=config.seed)
    summary = spectral_summary(graph)
    rounds = summary.mixing_time
    eps0 = 1.0

    closed = epsilon_all_stationary(
        eps0,
        graph.num_nodes,
        summary.sum_squared_bound(rounds),
        config.delta,
        config.delta2,
    ).epsilon
    empirical = [
        epsilon_from_report_sizes(
            eps0,
            report_allocation(graph, rounds, rng=config.seed + repeat),
            config.delta,
        )
        for repeat in range(5)
    ]
    return closed, empirical


def test_bound_tightness(benchmark, config):
    closed, empirical = benchmark(lambda: _run(config))
    mean_empirical = float(np.mean(empirical))
    print(
        f"\nclosed-form eps = {closed:.4f}; empirical (Thm 6.1) = "
        f"{mean_empirical:.4f} over {len(empirical)} runs "
        f"(gap factor {closed / mean_empirical:.2f}x)"
    )
    for value in empirical:
        assert value <= closed, (
            f"empirical accounting {value} exceeded the closed-form bound "
            f"{closed}"
        )
    assert closed <= 25.0 * mean_empirical, (
        "bound is catastrophically loose; something is off"
    )
    # The empirical accounting is itself stable across runs.
    assert np.std(empirical) <= 0.1 * mean_empirical
