"""Figure 5 — exact tracking on k-regular graphs.

Shapes asserted:

* larger ``k`` converges (to within 1% of its final value) in fewer
  rounds — "the larger k is, the faster eps converges";
* after convergence all degrees reach essentially the same asymptotic
  eps (the uniform stationary distribution is degree-independent);
* the exact curves are *not* globally monotone for small k (the early
  "oscillation" the paper contrasts against Figure 4's bound).
"""

from __future__ import annotations


from repro.experiments.figure5 import render_figure5, run_figure5


def test_figure5_kregular(benchmark, config):
    series = benchmark(
        lambda: run_figure5(
            epsilon0=1.0,
            degrees=(4, 8, 16, 32),
            num_nodes=2048,
            max_steps=30,
            config=config,
        )
    )
    print("\n" + render_figure5(series))

    by_degree = {s.degree: s for s in series}
    degrees = sorted(by_degree)

    # Monotone speed-up in k.
    convergence_steps = [by_degree[k].converged_step for k in degrees]
    assert all(
        later <= earlier
        for earlier, later in zip(convergence_steps, convergence_steps[1:])
    ), f"convergence not faster with larger k: {convergence_steps}"

    # Same asymptote across k (uniform stationary distribution) for the
    # degrees that have fully mixed in the horizon.
    finals = [float(by_degree[k].epsilon[-1]) for k in degrees[1:]]
    assert max(finals) <= 1.05 * min(finals), f"asymptotes differ: {finals}"

    # Early non-monotonicity somewhere in the exact curves.
    assert any(s.is_early_nonmonotone for s in series), (
        "expected the exact tracking to wiggle early for at least one k"
    )
