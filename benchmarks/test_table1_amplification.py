"""Table 1 — privacy amplification comparison across mechanisms.

Shapes asserted:

* every amplified mechanism decays like ``n^{-1/2}`` (fitted exponent
  within [-0.6, -0.4]);
* the ``e^{c eps0}`` growth ordering matches the paper:
  clones < subsampling < network (single) < uniform shuffling (EFMRTT);
* at the reference point everything amplifies below ``eps0``.
"""

from __future__ import annotations

from repro.experiments.table1 import render_table1, run_table1


def test_table1_amplification(benchmark, config):
    rows = benchmark(lambda: run_table1(config=config))
    print("\n" + render_table1(rows))

    by_name = {row.mechanism: row for row in rows}

    # 1/sqrt(n) decay for every amplified mechanism.
    for name, row in by_name.items():
        if name == "no amplification":
            continue
        assert -0.6 <= row.fitted_n_exponent <= -0.4, (
            f"{name}: n-exponent {row.fitted_n_exponent} not ~ -1/2"
        )

    # eps0-exponent ordering (the Table 1 ranking).
    clones = by_name["uniform shuffling w/ clones (FMT21)"].fitted_eps0_exponent
    subsample = by_name["uniform subsampling"].fitted_eps0_exponent
    network = by_name["network shuffling (single)"].fitted_eps0_exponent
    efmrtt = by_name["uniform shuffling (EFMRTT19)"].fitted_eps0_exponent
    assert clones < subsample < network, (
        f"ordering violated: clones={clones}, subsample={subsample}, "
        f"network={network}"
    )
    assert network < efmrtt + 1e-9, (
        f"network ({network}) should not exceed EFMRTT ({efmrtt})"
    )

    # Everything amplifies at the reference point (n=1e5, eps0=1).
    for name, row in by_name.items():
        if name in ("no amplification", "network shuffling (all)"):
            continue
        assert row.epsilon_at_reference < 1.0, (
            f"{name} fails to amplify at the reference point: "
            f"{row.epsilon_at_reference}"
        )
