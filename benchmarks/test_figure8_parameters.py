"""Figure 8 — stationary-limit parameter dependencies.

Shapes asserted, matching the paper's description of the figure:

* regular graphs (Gamma=1, continuous lines) beat irregular ones
  (Gamma=10, dashed) at equal (n, protocol);
* n = 1e6 beats n = 1e4 at equal (Gamma, protocol);
* every curve sits below the eps = eps0 line at eps0 = 0.2
  (amplification regime);
* the A_all / Gamma=10 / n=1e4 curve crosses *above* eps = eps0 by
  eps0 = 2.0 (amplification lost), while A_single / Gamma=1 / n=1e6
  stays below throughout.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figure8 import render_figure8, run_figure8


def test_figure8_parameters(benchmark, config):
    curves = benchmark(lambda: run_figure8(config=config))
    print("\n" + render_figure8(curves))

    indexed = {(c.protocol, c.gamma, c.n): c for c in curves}

    # Gamma=1 beats Gamma=10.
    for protocol in ("all", "single"):
        for n in (10_000, 1_000_000):
            regular = indexed[(protocol, 1.0, n)]
            irregular = indexed[(protocol, 10.0, n)]
            assert np.all(regular.epsilon < irregular.epsilon), (
                f"{protocol}, n={n}: Gamma=1 should beat Gamma=10"
            )

    # Larger n beats smaller n.
    for protocol in ("all", "single"):
        for gamma in (1.0, 10.0):
            small = indexed[(protocol, gamma, 10_000)]
            big = indexed[(protocol, gamma, 1_000_000)]
            assert np.all(big.epsilon < small.epsilon), (
                f"{protocol}, Gamma={gamma}: n=1e6 should beat n=1e4"
            )

    # Amplification at eps0 = 0.2 everywhere.
    for curve in curves:
        assert curve.amplifies_at(0.2), f"{curve.label} fails at eps0=0.2"

    # Crossovers at eps0 = 2.0.
    assert not indexed[("all", 10.0, 10_000)].amplifies_at(2.0), (
        "worst A_all configuration should lose amplification by eps0=2"
    )
    assert indexed[("single", 1.0, 1_000_000)].amplifies_at(2.0), (
        "best A_single configuration should keep amplifying at eps0=2"
    )
