"""Secure-protocol realization shootout: batched envelopes vs the loop.

Both modes perform the identical cryptographic work (modular
exponentiation dominates), so the batched driver's win is bounded by
the per-message Python overhead it removes — dict-of-inboxes traffic,
per-envelope PKI lookups, and per-message meter calls.  The bench
asserts the batched mode reproduces the loop's outputs exactly and is
not slower; the measured ratio is printed for the trajectory store.
"""

from __future__ import annotations

import time

import numpy as np

from repro.graphs.generators import random_regular_graph
from repro.protocols.secure import run_secure_protocol

_NUM_USERS = 128
_DEGREE = 6
_ROUNDS = 6


def _timed_secure(batched: bool):
    graph = random_regular_graph(_DEGREE, _NUM_USERS, rng=0)
    values = list(range(_NUM_USERS))
    start = time.perf_counter()
    result = run_secure_protocol(graph, _ROUNDS, values, rng=0, batched=batched)
    return time.perf_counter() - start, result


def test_batched_secure_not_slower_and_identical():
    loop_time, loop = _timed_secure(batched=False)
    batched_time, batched = _timed_secure(batched=True)
    ratio = loop_time / batched_time
    print(
        f"\nper-message: {loop_time:.3f}s  batched: {batched_time:.3f}s  "
        f"ratio: {ratio:.2f}x ({_NUM_USERS} users, {_ROUNDS} rounds)"
    )
    assert batched.decrypted_payloads == loop.decrypted_payloads
    np.testing.assert_array_equal(batched.delivered_by, loop.delivered_by)
    # Modpow dominates both modes; demand parity, not a fixed speedup.
    assert batched_time <= loop_time * 1.25, (
        f"batched secure protocol {1 / ratio:.2f}x slower than the loop"
    )


def test_bench_secure_batched(benchmark):
    """pytest-benchmark timing of the batched secure run (JSON artifact)."""
    graph = random_regular_graph(_DEGREE, _NUM_USERS, rng=0)
    values = list(range(_NUM_USERS))

    def secure():
        return run_secure_protocol(graph, _ROUNDS, values, rng=0)

    result = benchmark.pedantic(secure, rounds=3, iterations=1)
    assert result.num_reports == _NUM_USERS
