"""Exchange-backend shootout: faithful vs vectorized vs compiled.

The acceptance target for the vectorized engine is a >=10x speedup over
the faithful backend on a 10,000-node, 16-round exchange, while
producing the *identical* seeded held-count vector (the shared RNG
contract makes the comparison exact, not statistical).  The compiled
backend must reproduce the same vector too; with numba installed it
must beat the vectorized engine by >=3x on the fused multi-round path,
and the pure-NumPy fallback must not be slower.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.graphs.generators import random_regular_graph
from repro.netsim.kernels import NUMBA_AVAILABLE, resolve_implementation
from repro.netsim.network import RoundBasedNetwork

_NUM_NODES = 10_000
_DEGREE = 8
_ROUNDS = 16


@pytest.fixture(scope="module")
def shootout_graph():
    return random_regular_graph(_DEGREE, _NUM_NODES, rng=0)


def _timed_exchange(graph, backend: str):
    network = RoundBasedNetwork(graph, rng=0, backend=backend)
    network.seed_items({i: [i] for i in range(graph.num_nodes)})
    start = time.perf_counter()
    network.run_exchange(_ROUNDS)
    elapsed = time.perf_counter() - start
    return elapsed, network.held_counts()

def test_vectorized_speedup_over_faithful(shootout_graph):
    faithful_time, faithful_counts = _timed_exchange(shootout_graph, "faithful")
    vectorized_time, vectorized_counts = _timed_exchange(
        shootout_graph, "vectorized"
    )
    speedup = faithful_time / vectorized_time
    print(
        f"\nfaithful: {faithful_time:.3f}s  vectorized: {vectorized_time:.3f}s"
        f"  speedup: {speedup:.1f}x ({_NUM_NODES} nodes, {_ROUNDS} rounds)"
    )
    # Same seed => bit-identical allocation on both backends.
    np.testing.assert_array_equal(faithful_counts, vectorized_counts)
    assert speedup >= 10.0, (
        f"vectorized backend only {speedup:.1f}x faster than faithful"
    )


def test_compiled_matches_vectorized_and_is_not_slower(shootout_graph):
    vectorized_time, vectorized_counts = _timed_exchange(
        shootout_graph, "vectorized"
    )
    compiled_time, compiled_counts = _timed_exchange(
        shootout_graph, "compiled"
    )
    speedup = vectorized_time / compiled_time
    implementation = resolve_implementation()
    print(
        f"\nvectorized: {vectorized_time:.3f}s  "
        f"compiled[{implementation}]: {compiled_time:.3f}s  "
        f"speedup: {speedup:.1f}x ({_NUM_NODES} nodes, {_ROUNDS} rounds)"
    )
    # Same seed => bit-identical allocation on every backend.
    np.testing.assert_array_equal(vectorized_counts, compiled_counts)
    if NUMBA_AVAILABLE:
        assert speedup >= 3.0, (
            f"JIT-compiled backend only {speedup:.1f}x faster than vectorized"
        )
    else:
        # The NumPy fallback must not regress (x1.5 timing-noise slack).
        assert compiled_time <= vectorized_time * 1.5, (
            f"compiled fallback {1 / speedup:.2f}x slower than vectorized"
        )


def _bench_backend(benchmark, graph, backend):
    def exchange():
        network = RoundBasedNetwork(graph, rng=0, backend=backend)
        network.seed_items({i: [i] for i in range(graph.num_nodes)})
        network.run_exchange(_ROUNDS)
        return network.held_counts()

    counts = benchmark(exchange)
    assert counts.sum() == _NUM_NODES


def test_bench_vectorized_exchange(benchmark, shootout_graph):
    """pytest-benchmark timing of the vectorized exchange (JSON artifact)."""
    _bench_backend(benchmark, shootout_graph, "vectorized")


def test_bench_compiled_exchange(benchmark, shootout_graph):
    """pytest-benchmark timing of the compiled exchange (JSON artifact)."""
    _bench_backend(benchmark, shootout_graph, "compiled")
