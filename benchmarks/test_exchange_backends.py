"""Exchange-backend shootout: vectorized vs per-message on 10k nodes.

The acceptance target for the vectorized engine is a >=10x speedup over
the faithful backend on a 10,000-node, 16-round exchange, while
producing the *identical* seeded held-count vector (the shared RNG
contract makes the comparison exact, not statistical).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.graphs.generators import random_regular_graph
from repro.netsim.network import RoundBasedNetwork

_NUM_NODES = 10_000
_DEGREE = 8
_ROUNDS = 16


@pytest.fixture(scope="module")
def shootout_graph():
    return random_regular_graph(_DEGREE, _NUM_NODES, rng=0)


def _timed_exchange(graph, backend: str):
    network = RoundBasedNetwork(graph, rng=0, backend=backend)
    network.seed_items({i: [i] for i in range(graph.num_nodes)})
    start = time.perf_counter()
    network.run_exchange(_ROUNDS)
    elapsed = time.perf_counter() - start
    return elapsed, network.held_counts()

def test_vectorized_speedup_over_faithful(shootout_graph):
    faithful_time, faithful_counts = _timed_exchange(shootout_graph, "faithful")
    vectorized_time, vectorized_counts = _timed_exchange(
        shootout_graph, "vectorized"
    )
    speedup = faithful_time / vectorized_time
    print(
        f"\nfaithful: {faithful_time:.3f}s  vectorized: {vectorized_time:.3f}s"
        f"  speedup: {speedup:.1f}x ({_NUM_NODES} nodes, {_ROUNDS} rounds)"
    )
    # Same seed => bit-identical allocation on both backends.
    np.testing.assert_array_equal(faithful_counts, vectorized_counts)
    assert speedup >= 10.0, (
        f"vectorized backend only {speedup:.1f}x faster than faithful"
    )


def test_bench_vectorized_exchange(benchmark, shootout_graph):
    """pytest-benchmark timing of the vectorized exchange (JSON artifact)."""

    def exchange():
        network = RoundBasedNetwork(shootout_graph, rng=0, backend="vectorized")
        network.seed_items({i: [i] for i in range(shootout_graph.num_nodes)})
        network.run_exchange(_ROUNDS)
        return network.held_counts()

    counts = benchmark(exchange)
    assert counts.sum() == _NUM_NODES
