"""Figure 9 — privacy-utility trade-off (PrivUnit mean estimation).

Shapes asserted:

* at every sampled eps0, A_all's expected squared error is below
  A_single's — the dummy-report penalty the paper's counter-example is
  about;
* both error curves decrease as eps0 grows;
* A_single's central eps is always below A_all's (its amplification
  advantage — the *reason* the utility comparison is interesting);
* A_single injects a large dummy fraction (the utility-loss mechanism).

EXPERIMENTS.md discusses the matched-central-eps reading, where the
substitution's milder degree tail makes the dummy penalty smaller than
on the real Twitch graph.
"""

from __future__ import annotations


from repro.experiments.figure9 import render_figure9, run_figure9


def test_figure9_utility(benchmark, config):
    points = benchmark(
        lambda: run_figure9(
            eps0_values=(1.0, 2.0, 3.0, 4.0),
            scale=0.5,
            dimension=200,
            repeats=3,
            config=config,
        )
    )
    print("\n" + render_figure9(points))

    eps0_values = sorted({p.epsilon0 for p in points})
    all_points = {p.epsilon0: p for p in points if p.protocol == "all"}
    single_points = {p.epsilon0: p for p in points if p.protocol == "single"}

    for eps0 in eps0_values:
        assert all_points[eps0].squared_error < single_points[eps0].squared_error, (
            f"A_all should have lower error at eps0={eps0}: "
            f"{all_points[eps0].squared_error} vs "
            f"{single_points[eps0].squared_error}"
        )
        assert single_points[eps0].central_epsilon < all_points[eps0].central_epsilon
        assert all_points[eps0].dummy_count == 0
        assert single_points[eps0].dummy_count > 0.2 * 4749  # >20% of users

    # Error decreases with eps0 for both protocols.
    for series in (all_points, single_points):
        errors = [series[eps0].squared_error for eps0 in eps0_values]
        assert errors[-1] < errors[0], f"error not decreasing: {errors}"
