"""Serving-tier throughput: closed-form bound queries per second.

The tentpole claim of the serving tier is that accounting queries are
cheap enough to answer synchronously at high rate from one hot process:
a ``POST /stationary_bound`` on a regular-graph scenario is pure theorem
arithmetic (the closed-form ``sum_squared`` needs no graph build), and a
warm ``POST /bound`` costs a graph-cache hit plus the same arithmetic.
The bench drives a real server over localhost HTTP/1.1 keep-alive — the
same wire path a curl caller takes — and asserts four-digit
queries/sec plus cache reuse visible in ``/stats``.
"""

from __future__ import annotations

import http.client
import json
import time

import pytest

from repro.scenario import clear_graph_cache
from repro.serve import ServerHandle

#: The ISSUE 6 acceptance floor for closed-form bound queries, with the
#: usual slack for loaded CI hosts (locally the measured rate is far
#: higher).
_MIN_QPS = 1000.0

_WARM_REQUESTS = 50
_MEASURED_REQUESTS = 500

SCENARIO = {
    "graph": {"kind": "k_regular", "params": {"degree": 8, "num_nodes": 4096}},
    "mechanism": {"kind": "rr", "params": {"epsilon": 1.0}},
    "rounds": 16,
    "seed": 0,
}

AUDIT_SCENARIO = {
    "graph": {"kind": "k_regular", "params": {"degree": 4, "num_nodes": 64}},
    "mechanism": {"kind": "rr", "params": {"epsilon": 1.0}},
    "rounds": 8,
    "seed": 0,
}


@pytest.fixture(scope="module")
def server():
    clear_graph_cache()
    with ServerHandle.start(workers=2) as handle:
        yield handle
    clear_graph_cache()


@pytest.fixture
def client(server):
    connection = http.client.HTTPConnection(server.host, server.port,
                                            timeout=60)
    yield connection
    connection.close()


def _request(client, method, path, body=None):
    payload = None if body is None else json.dumps(body)
    client.request(method, path, body=payload,
                   headers={"Content-Type": "application/json"})
    response = client.getresponse()
    return response.status, json.loads(response.read())


def _drive(client, path, body, count):
    for _ in range(count):
        status, _ = _request(client, "POST", path, body)
        assert status == 200


def test_serve_bound_throughput(client):
    """Thousands of closed-form bound queries per second, over HTTP."""
    body = {"scenario": SCENARIO}
    _drive(client, "/stationary_bound", body, _WARM_REQUESTS)

    started = time.perf_counter()
    _drive(client, "/stationary_bound", body, _MEASURED_REQUESTS)
    elapsed = time.perf_counter() - started

    qps = _MEASURED_REQUESTS / elapsed
    print(f"\nserve throughput: {qps:,.0f} stationary-bound queries/sec "
          f"({_MEASURED_REQUESTS} requests in {elapsed:.3f}s, keep-alive)")
    assert qps >= _MIN_QPS, (
        f"closed-form bound throughput {qps:,.0f}/s below the "
        f"{_MIN_QPS:,.0f}/s acceptance floor"
    )


def test_warm_bound_queries_reuse_the_graph_cache(client):
    """After the warm phase, /stats shows hits > builds."""
    body = {"scenario": SCENARIO}
    _drive(client, "/bound", body, 10)
    _, stats = _request(client, "GET", "/stats")
    cache = stats["graph_cache"]
    assert cache["builds"] >= 1
    assert cache["memory_hits"] > cache["builds"], (
        f"warm /bound traffic should be cache hits, got {cache}"
    )


def test_audit_jobs_reuse_the_kernel_sampler(client):
    """Repeated audit jobs memoize the dense M^t sampler."""
    for _ in range(3):
        status, job = _request(client, "POST", "/audit",
                               {"scenario": AUDIT_SCENARIO, "trials": 100})
        assert status == 202
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            _, payload = _request(client, "GET", f"/jobs/{job['id']}")
            if payload["status"] in ("done", "error"):
                break
            time.sleep(0.02)
        assert payload["status"] == "done", payload
    _, stats = _request(client, "GET", "/stats")
    sampler = stats["kernel_sampler"]
    assert sampler["builds"] == 1
    assert sampler["hits"] > sampler["builds"], (
        f"repeated audits should reuse one sampler, got {sampler}"
    )


def test_bench_serve_stationary_bound(benchmark, server):
    """Tracked bench: one warm stationary-bound query over keep-alive."""
    connection = http.client.HTTPConnection(server.host, server.port,
                                            timeout=60)
    try:
        body = {"scenario": SCENARIO}
        _drive(connection, "/stationary_bound", body, 5)
        benchmark(lambda: _drive(connection, "/stationary_bound", body, 1))
    finally:
        connection.close()
