"""Ablation — Equation 6 (KOV) vs Renyi-DP accounting.

The paper's conclusion suggests privacy accounting "may be further
tightened with more advanced techniques".  This bench tests the obvious
candidate — Renyi-DP composition of the Theorem 6.1 per-output
epsilons — against the Equation 6 route on realized allocations.

Shapes asserted (the module's documented finding):

* RDP matches Equation 6 within ~5% across eps0 — KOV is already
  near-optimal for pure-DP composition, so this axis yields no
  meaningful tightening;
* both empirical accountants stay below the closed-form Theorem 5.3
  bound (the tightening that *does* exist comes from skipping the
  Lemma 5.1 concentration slack, not from a better composition).
"""

from __future__ import annotations


from repro.amplification.network_shuffle import (
    epsilon_all_stationary,
    epsilon_from_report_sizes,
)
from repro.amplification.rdp import epsilon_from_report_sizes_rdp
from repro.graphs.generators import random_regular_graph
from repro.graphs.spectral import spectral_summary
from repro.graphs.walks import report_allocation


def _run(config):
    graph = random_regular_graph(8, 4096, rng=config.seed)
    summary = spectral_summary(graph)
    rounds = summary.mixing_time
    allocation = report_allocation(graph, rounds, rng=config.seed)

    rows = []
    for eps0 in (0.25, 0.5, 1.0):
        kov = epsilon_from_report_sizes(eps0, allocation, config.delta)
        rdp = epsilon_from_report_sizes_rdp(eps0, allocation, config.delta)
        closed = epsilon_all_stationary(
            eps0,
            graph.num_nodes,
            summary.sum_squared_bound(rounds),
            config.delta,
            config.delta2,
        ).epsilon
        rows.append((eps0, kov, rdp, closed))
    return rows


def test_accounting_comparison(benchmark, config):
    rows = benchmark(lambda: _run(config))
    print("\neps0 | Eq.6 (KOV) | RDP | closed-form Thm 5.3")
    for eps0, kov, rdp, closed in rows:
        print(f"{eps0:4} | {kov:10.4f} | {rdp:7.4f} | {closed:10.4f}")

    for eps0, kov, rdp, closed in rows:
        # RDP ~= KOV: no meaningful tightening on this axis.
        assert 0.9 * kov <= rdp <= 1.05 * kov, (
            f"eps0={eps0}: RDP {rdp} vs KOV {kov}"
        )
        # Both empirical routes beat the closed form.
        assert kov < closed
        assert rdp < closed
