"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper table/figure, prints it (run with
``-s`` to see the ASCII artifact), and asserts the paper's qualitative
*shapes* — who wins, trend directions, crossovers — not absolute
numbers (DESIGN.md explains the substitutions).
"""

from __future__ import annotations

import tracemalloc
from contextlib import contextmanager

import pytest

from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    """One shared experiment configuration for all benchmarks."""
    return ExperimentConfig(delta=1e-6, delta2=1e-6, seed=0)


class MemoryWatch:
    """Allocation high-water (bytes) observed inside one watched block."""

    def __init__(self) -> None:
        self.peak_bytes = 0

    @property
    def peak_mib(self) -> float:
        return self.peak_bytes / (1024 * 1024)


@pytest.fixture
def memory_watch():
    """Tracemalloc-based peak-allocation recorder for memory benches.

    Usage::

        with memory_watch() as watch:
            expensive_computation()
        assert watch.peak_bytes < BUDGET

    NumPy registers its buffer allocator with tracemalloc, so panels,
    sparse products, and transition CSRs are all counted.  The peak is
    measured relative to the start of the block (``reset_peak``), so
    interpreter baseline and fixtures built beforehand are excluded.
    """

    @contextmanager
    def watch():
        record = MemoryWatch()
        started_here = not tracemalloc.is_tracing()
        if started_here:
            tracemalloc.start()
        tracemalloc.reset_peak()
        try:
            yield record
        finally:
            _, record.peak_bytes = tracemalloc.get_traced_memory()
            if started_here:
                tracemalloc.stop()

    return watch
