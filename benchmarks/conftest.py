"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper table/figure, prints it (run with
``-s`` to see the ASCII artifact), and asserts the paper's qualitative
*shapes* — who wins, trend directions, crossovers — not absolute
numbers (DESIGN.md explains the substitutions).
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    """One shared experiment configuration for all benchmarks."""
    return ExperimentConfig(delta=1e-6, delta2=1e-6, seed=0)
