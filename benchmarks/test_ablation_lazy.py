"""Ablation — lazy-walk fault tolerance (Section 4.5).

A lazy random walk (stay probability = per-round dropout probability)
models temporarily offline users.  Laziness slows mixing — the spectral
gap of ``(1-beta) M + beta I`` shrinks by ``(1-beta)`` on the upper
side — so the same privacy level needs more rounds.

Shapes asserted:

* ``sum P^2`` after a fixed number of rounds grows with laziness
  (slower spreading);
* the induced central eps (Theorem 5.4 route on the exact lazy
  distribution) grows with laziness at fixed t;
* with proportionally more rounds (t / (1-beta)) the lazy walk
  recovers the lazy-free privacy level — dropouts cost rounds, not
  privacy.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.generators import random_regular_graph
from repro.graphs.walks import evolve_distribution, sum_squared_positions


def _run(config):
    graph = random_regular_graph(8, 1024, rng=config.seed)
    base_rounds = 12
    initial = np.zeros(graph.num_nodes)
    initial[0] = 1.0

    collision_at_fixed_t = {}
    collision_at_scaled_t = {}
    for laziness in (0.0, 0.2, 0.4, 0.6):
        fixed = evolve_distribution(
            graph, initial, base_rounds, laziness=laziness
        )
        collision_at_fixed_t[laziness] = sum_squared_positions(fixed)
        scaled_rounds = int(round(base_rounds / max(1e-9, 1.0 - laziness)))
        scaled = evolve_distribution(
            graph, initial, scaled_rounds, laziness=laziness
        )
        collision_at_scaled_t[laziness] = sum_squared_positions(scaled)
    return collision_at_fixed_t, collision_at_scaled_t


def test_lazy_walk_tradeoff(benchmark, config):
    fixed, scaled = benchmark(lambda: _run(config))
    print("\nsum P^2 at fixed t=12 by laziness:", {
        k: round(v, 6) for k, v in fixed.items()
    })
    print("sum P^2 at t=12/(1-beta) by laziness:", {
        k: round(v, 6) for k, v in scaled.items()
    })

    laziness_values = sorted(fixed)
    collisions = [fixed[beta] for beta in laziness_values]
    # More laziness => slower spreading at fixed t.
    assert all(
        later >= earlier - 1e-12
        for earlier, later in zip(collisions, collisions[1:])
    ), f"collision mass should grow with laziness: {collisions}"
    assert fixed[0.6] > 1.5 * fixed[0.0]

    # Proportional extra rounds recover the privacy level (within 25%).
    baseline = scaled[0.0]
    for beta in laziness_values[1:]:
        assert scaled[beta] <= 1.25 * baseline, (
            f"laziness {beta}: scaled-rounds collision {scaled[beta]} vs "
            f"baseline {baseline}"
        )
