"""Table 3 — space/traffic complexity, measured from instrumented runs.

Shapes asserted (fitted growth exponents over n in a geometric range):

* Prochlo: entity memory ~ n (exp ~ 1), user traffic flat (exp ~ 0);
* mix-net: relay memory flat, user traffic ~ n;
* network shuffling: user memory ~flat, per-round user traffic ~flat.
"""

from __future__ import annotations

from repro.experiments.table3 import render_table3, run_table3

_LINEAR = (0.85, 1.15)
_FLAT = (-0.15, 0.25)


def test_table3_complexity(benchmark, config):
    points, fits = benchmark(
        lambda: run_table3(n_values=(256, 512, 1024, 2048), config=config)
    )
    print("\n" + render_table3(points, fits))

    by_name = {fit.mechanism: fit for fit in fits}

    prochlo = by_name["prochlo"]
    assert _LINEAR[0] <= prochlo.memory_exponent <= _LINEAR[1], (
        f"Prochlo memory should grow ~linearly, got {prochlo.memory_exponent}"
    )
    assert _FLAT[0] <= prochlo.traffic_exponent <= _FLAT[1], (
        f"Prochlo user traffic should be flat, got {prochlo.traffic_exponent}"
    )

    mixnet = by_name["mixnet"]
    assert _FLAT[0] <= mixnet.memory_exponent <= _FLAT[1], (
        f"mix-net relay memory should be flat, got {mixnet.memory_exponent}"
    )
    assert _LINEAR[0] <= mixnet.traffic_exponent <= _LINEAR[1], (
        f"mix-net user traffic should grow ~linearly, got {mixnet.traffic_exponent}"
    )

    shuffle = by_name["network shuffling"]
    assert shuffle.memory_exponent <= 0.35, (
        f"network shuffling user memory should be ~flat, got "
        f"{shuffle.memory_exponent}"
    )
    assert shuffle.traffic_exponent <= 0.35, (
        f"network shuffling per-round traffic should be ~flat, got "
        f"{shuffle.traffic_exponent}"
    )

    # Cross-mechanism: at the largest n, the decentralized design holds
    # every entity to a tiny fraction of Prochlo's central memory.
    largest = max(p.n for p in points)
    central = next(
        p for p in points if p.mechanism == "prochlo" and p.n == largest
    )
    decentralized = next(
        p for p in points if p.mechanism == "network shuffling" and p.n == largest
    )
    assert decentralized.entity_peak_memory * 10 < central.entity_peak_memory
