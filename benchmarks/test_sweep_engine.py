"""Sweep-engine benchmark: shared graph cache vs per-point rebuild.

The tentpole claim of the campaign-grade sweep engine is that a
graph-heavy grid materializes each distinct graph (and its spectral
summary) once, not once per grid point.  A rounds-axis ``bound`` sweep
on a mid-size regular graph is the canonical shape: the per-point
theorem arithmetic is microseconds, so the pre-engine cost was entirely
the per-point graph build + eigensolve the cache now amortizes.
"""

from __future__ import annotations

import time

import pytest

from repro.scenario import GraphSpec, Scenario, clear_graph_cache, sweep
from repro.scenario.sweep import _execute

_NUM_NODES = 2_000
_DEGREE = 6
_ROUNDS_AXIS = list(range(2, 18, 2))  # 8 grid points

#: Required advantage of the shared-cache sweep over rebuilding the
#: graph bundle at every grid point (the ISSUE 5 acceptance bound; the
#: measured local ratio is far higher).
_MIN_SPEEDUP = 3.0


def _base() -> Scenario:
    return Scenario(
        graph=GraphSpec.of("k_regular", degree=_DEGREE, num_nodes=_NUM_NODES),
        epsilon0=1.0,
        seed=0,
    )


def _per_point_rebuild() -> list:
    """The pre-engine behavior: every point pays graph + spectrum."""
    epsilons = []
    for rounds in _ROUNDS_AXIS:
        clear_graph_cache()
        outcome = _execute(_base().updated(rounds=rounds), "bound", "digest")
        epsilons.append(outcome.epsilon)
    clear_graph_cache()
    return epsilons


def test_shared_cache_speedup_over_per_point_rebuild():
    base = _base()
    axis = {"rounds": _ROUNDS_AXIS}

    started = time.perf_counter()
    cold_epsilons = _per_point_rebuild()
    cold = time.perf_counter() - started

    clear_graph_cache()
    started = time.perf_counter()
    result = sweep(base, axis=axis, mode="bound")
    shared = time.perf_counter() - started

    assert result.cache_stats.builds == 1
    assert result.epsilons() == pytest.approx(cold_epsilons, rel=1e-9)
    ratio = cold / shared
    print(
        f"\nper-point rebuild: {cold:.3f}s  shared cache: {shared:.3f}s  "
        f"speedup: {ratio:.1f}x ({_NUM_NODES} nodes, "
        f"{len(_ROUNDS_AXIS)} grid points)"
    )
    assert ratio >= _MIN_SPEEDUP, (
        f"shared-cache sweep is only {ratio:.1f}x the per-point rebuild "
        f"(required >= {_MIN_SPEEDUP}x)"
    )


def test_bench_sweep_shared_cache(benchmark):
    """pytest-benchmark timing of the shared-cache sweep (JSON artifact).

    The first iteration builds the bundle; later iterations measure the
    steady-state engine (cache hits + theorem arithmetic only), which
    is the figure the bench job tracks against baseline.json.
    """
    base = _base()
    benchmark(lambda: sweep(base, axis={"rounds": _ROUNDS_AXIS}, mode="bound"))
    clear_graph_cache()
