"""Out-of-core schedule accounting at scale (the PR 9 tentpole claim).

The old dense profile needed ``16 * n^2`` bytes — 160 GB at ``n = 10^5``
— and simply refused schedules past 4096 nodes.  The blocked engine must
price a 100k-node churn schedule *exactly* inside a fixed laptop-class
budget: the memory high-water is one ``(n, B)`` panel plus the
per-topology transition CSRs, regardless of ``n``.

The bench asserts the two halves of the claim separately: bounded peak
allocation (tracemalloc, via the ``memory_watch`` fixture) and a sound,
finite guarantee out the other end.  The pytest-benchmark figure tracks
the store-backed warm path — resuming every block from its spilled
``.npz`` instead of re-evolving it — which is what ascending-``rounds``
sweeps pay per point.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.api import (
    bound,
    clear_graph_cache,
    parse_scenario,
    profile_policy,
    profile_stats,
    reset_profile_stats,
)
from repro.graphs.dynamic import DynamicGraphSchedule
from repro.graphs.generators import random_regular_graph
from repro.scenario.profile import ProfileStore

_NUM_NODES = 100_000
_DEGREE = 8
_ROUNDS = 2
#: The accounting budget under test: half the laptop-class default.
_PROFILE_BUDGET = 256 * 1024 * 1024
#: Ceiling for the *observed* allocation high-water.  The budget governs
#: the panel; graph construction and the two 800k-edge transition CSRs
#: ride on top, so the assertion leaves headroom while still sitting
#: orders of magnitude under the 160 GB a dense profile would need.
_PEAK_CEILING = 768 * 1024 * 1024
#: Generous wall-clock ceiling for slow CI runners; ~40 s locally.
_TIME_BUDGET_SECONDS = 300.0


def _churn_scenario():
    return parse_scenario({
        "graph": {"kind": "schedule", "params": {
            "base": {
                "kind": "k_regular",
                "params": {"degree": _DEGREE, "num_nodes": _NUM_NODES},
            },
            "phases": 2,
        }},
        "mechanism": {"kind": "rr", "params": {"epsilon": 1.0}},
        "rounds": _ROUNDS,
        "seed": 0,
    })


@pytest.fixture(autouse=True)
def _fresh():
    clear_graph_cache()
    reset_profile_stats()
    yield
    clear_graph_cache()


def test_100k_node_churn_bound_within_memory_budget(memory_watch):
    scenario = _churn_scenario()
    started = time.perf_counter()
    with memory_watch() as watch:
        with profile_policy(memory_budget=_PROFILE_BUDGET):
            result = bound(scenario)
    elapsed = time.perf_counter() - started
    accounting = result.accounting
    print(
        f"\n{_NUM_NODES:,}-node churn x {_ROUNDS} rounds: {elapsed:.1f}s, "
        f"peak {watch.peak_mib:.0f} MiB, strategy {accounting['strategy']} "
        f"(B={accounting['block_size']}, {accounting['blocks']} blocks), "
        f"eps={result.epsilon:.3f}"
    )

    assert elapsed < _TIME_BUDGET_SECONDS
    assert watch.peak_bytes < _PEAK_CEILING
    # The budget forced the escalation — dense would need ~160 GB.
    assert accounting["strategy"] == "blocked"
    assert accounting["blocks"] > 1
    # And the result is still the exact accounting, not an approximation.
    assert accounting["exact"] is True
    assert accounting["truncation_bound"] == 0.0
    assert np.isfinite(result.epsilon) and result.epsilon > 0
    stats = profile_stats()
    assert stats["blocked_profiles"] == 1
    assert stats["blocks_evolved"] == accounting["blocks"]


_RESUME_NODES = 5_000
_RESUME_BLOCK = 256
_RESUME_STEPS = 4


@pytest.fixture(scope="module")
def spilled_store_directory(tmp_path_factory):
    """A fully-spilled block store for a 5k-node churn schedule."""
    directory = tmp_path_factory.mktemp("profile-blocks")
    schedule = DynamicGraphSchedule([
        random_regular_graph(_DEGREE, _RESUME_NODES, rng=0),
        random_regular_graph(_DEGREE, _RESUME_NODES, rng=1),
    ])
    store = ProfileStore(
        schedule,
        identity="bench-resume",
        block_size=_RESUME_BLOCK,
        directory=directory,
    )
    cold, _ = store.collisions(_RESUME_STEPS)
    return schedule, directory, cold


def test_warm_resume_reuses_every_block(spilled_store_directory):
    schedule, directory, cold = spilled_store_directory
    reset_profile_stats()
    store = ProfileStore(
        schedule,
        identity="bench-resume",
        block_size=_RESUME_BLOCK,
        directory=directory,
    )
    warm, _ = store.collisions(_RESUME_STEPS)
    stats = profile_stats()
    assert stats["blocks_resumed"] == store.num_blocks
    assert stats["blocks_evolved"] == 0
    np.testing.assert_array_equal(warm, cold)


def test_bench_profile_store_warm_resume(benchmark, spilled_store_directory):
    """pytest-benchmark figure: full-store resume from spilled blocks.

    Each iteration builds a fresh store (no in-memory memo) so the
    measurement is the disk path — read every block's ``.npz``, reduce
    to collision mass — the steady-state cost an ascending-rounds sweep
    pays per point.
    """
    schedule, directory, _ = spilled_store_directory

    def warm_resume():
        store = ProfileStore(
            schedule,
            identity="bench-resume",
            block_size=_RESUME_BLOCK,
            directory=directory,
        )
        return store.collisions(_RESUME_STEPS)

    collisions, _ = benchmark(warm_resume)
    assert collisions.shape == (_RESUME_NODES,)
