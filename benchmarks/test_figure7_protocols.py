"""Figure 7 — A_all vs A_single central eps (Twitch & Google).

Shapes asserted:

* A_single achieves larger amplification at large eps0 on both
  datasets (the paper's headline observation), and the advantage *grows*
  with eps0;
* Google's curves sit below Twitch's protocol-for-protocol (n wins);
* both protocols amplify at small eps0.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figure7 import render_figure7, run_figure7


def test_figure7_protocols(benchmark, config):
    comparisons = benchmark(lambda: run_figure7(config=config))
    print("\n" + render_figure7(comparisons))

    by_name = {c.dataset: c for c in comparisons}
    assert set(by_name) == {"twitch", "google"}

    for c in comparisons:
        large = c.eps0_values >= 2.0
        assert np.all(c.epsilon_single[large] < c.epsilon_all[large]), (
            f"{c.dataset}: A_single should win at large eps0"
        )
        # The advantage grows with eps0.
        ratio = c.epsilon_all / c.epsilon_single
        assert ratio[-1] > ratio[0], (
            f"{c.dataset}: A_single advantage should grow with eps0"
        )
        # Both protocols amplify at the smallest grid point.
        smallest = float(c.eps0_values[0])
        assert c.epsilon_all[0] < smallest
        assert c.epsilon_single[0] < smallest

    twitch, google = by_name["twitch"], by_name["google"]
    assert np.all(google.epsilon_all < twitch.epsilon_all)
    assert np.all(google.epsilon_single < twitch.epsilon_single)
