"""Ablation — community structure vs mixing speed (Table 4 substitution).

The plain configuration-model stand-ins are expanders (spectral gap
~0.2), but the paper reports gap ~1e-2 for its real social graphs.
Degree-preserving planted partitions recover the slow mixing: this
bench sweeps the ``inter_fraction`` knob and measures the gap and the
induced mixing time.

Shapes asserted:

* the gap shrinks monotonically (within noise) as communities close up;
* at ``inter_fraction ~= 0.03`` the gap lands within the paper's
  order of magnitude (< 0.05, vs ~0.28 for the plain stand-in);
* the degree sequence (hence Gamma) stays in the same regime.
"""

from __future__ import annotations

from repro.datasets.community import build_community_dataset
from repro.datasets.synthetic import build_dataset
from repro.graphs.spectral import mixing_time, spectral_gap


def _run(config):
    plain = build_dataset("twitch", scale=0.3, seed=config.seed)
    plain_gap = spectral_gap(plain.graph, validate=False)
    sweep = {}
    for inter_fraction in (0.03, 0.1, 0.3):
        dataset = build_community_dataset(
            "twitch",
            scale=0.3,
            inter_fraction=inter_fraction,
            seed=config.seed,
        )
        gap = spectral_gap(dataset.graph, validate=False)
        sweep[inter_fraction] = (
            gap,
            mixing_time(dataset.graph, gap=gap, validate=False),
            dataset.achieved_gamma,
        )
    return plain_gap, sweep


def test_community_structure_slows_mixing(benchmark, config):
    plain_gap, sweep = benchmark(lambda: _run(config))
    print(f"\nplain config-model gap: {plain_gap:.4f}")
    for inter, (gap, t_mix, gamma) in sweep.items():
        print(
            f"inter_fraction={inter}: gap={gap:.4f}, mixing={t_mix}, "
            f"Gamma={gamma:.2f}"
        )

    gaps = [sweep[i][0] for i in sorted(sweep)]
    # Monotone: more isolation (smaller inter) => smaller gap.
    assert gaps[0] < gaps[1] < gaps[2], f"gap not monotone: {gaps}"
    # The strong-community point reaches the paper's regime.
    assert sweep[0.03][0] < 0.05
    assert sweep[0.03][0] < plain_gap / 4
    # Mixing time stretches accordingly.
    plain_mixing = mixing_time(
        build_dataset("twitch", scale=0.3, seed=config.seed).graph
    )
    assert sweep[0.03][1] > 3 * plain_mixing
