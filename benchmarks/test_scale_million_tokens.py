"""Million-token scale demonstration (the ROADMAP north star).

One exchange of 10^6 report tokens over a 10^5-node communication graph
must complete in seconds on commodity hardware — the flat-array engine
makes a round a handful of NumPy gathers, so the wall clock is memory
bandwidth, not interpreter overhead.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.graphs.generators import random_regular_graph
from repro.netsim.engine import VectorizedExchange

_NUM_NODES = 100_000
_TOKENS_PER_NODE = 10
_DEGREE = 16
_ROUNDS = 16
#: Generous ceiling for slow CI runners; locally this runs in ~3 s.
_TIME_BUDGET_SECONDS = 60.0


@pytest.fixture(scope="module")
def big_graph():
    return random_regular_graph(_DEGREE, _NUM_NODES, rng=0)


def test_million_token_exchange_runs_in_seconds(big_graph):
    origins = np.repeat(
        np.arange(_NUM_NODES, dtype=np.int64), _TOKENS_PER_NODE
    )
    engine = VectorizedExchange(big_graph, rng=0)
    engine.seed_tokens(origins)

    start = time.perf_counter()
    engine.run(_ROUNDS)
    elapsed = time.perf_counter() - start
    print(
        f"\n{origins.size:,} tokens x {_ROUNDS} rounds on "
        f"{_NUM_NODES:,} nodes: {elapsed:.2f}s"
    )

    assert elapsed < _TIME_BUDGET_SECONDS
    counts = engine.held_counts()
    assert counts.sum() == origins.size
    # Mixing sanity: allocation concentrates around the stationary mean
    # of 10 tokens/node rather than staying at the seeded point mass.
    assert counts.max() < 10 * _TOKENS_PER_NODE
    # Meters aggregated vectorially: every round moved every token.
    assert engine.meters.total_messages_sent() == origins.size * _ROUNDS


def test_bench_million_token_round(benchmark, big_graph):
    """pytest-benchmark timing of single million-token rounds."""
    origins = np.repeat(
        np.arange(_NUM_NODES, dtype=np.int64), _TOKENS_PER_NODE
    )
    engine = VectorizedExchange(big_graph, rng=0)
    engine.seed_tokens(origins)
    benchmark.pedantic(engine.run_round, rounds=5, iterations=1)
    assert engine.held_counts().sum() == origins.size
