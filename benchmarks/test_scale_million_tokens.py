"""Million-token scale demonstration (the ROADMAP north star).

One exchange of 10^6 report tokens over a 10^5-node communication graph
must complete in seconds on commodity hardware — the flat-array engine
makes a round a handful of NumPy gathers, so the wall clock is memory
bandwidth, not interpreter overhead.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.graphs.generators import random_regular_graph
from repro.netsim.engine import VectorizedExchange
from repro.netsim.kernels import (
    NUMBA_AVAILABLE,
    CompiledExchange,
    resolve_implementation,
)

_NUM_NODES = 100_000
_TOKENS_PER_NODE = 10
_DEGREE = 16
_ROUNDS = 16
#: Generous ceiling for slow CI runners; locally this runs in ~3 s.
_TIME_BUDGET_SECONDS = 60.0


@pytest.fixture(scope="module")
def big_graph():
    return random_regular_graph(_DEGREE, _NUM_NODES, rng=0)


def test_million_token_exchange_runs_in_seconds(big_graph):
    origins = np.repeat(
        np.arange(_NUM_NODES, dtype=np.int64), _TOKENS_PER_NODE
    )
    engine = VectorizedExchange(big_graph, rng=0)
    engine.seed_tokens(origins)

    start = time.perf_counter()
    engine.run(_ROUNDS)
    elapsed = time.perf_counter() - start
    print(
        f"\n{origins.size:,} tokens x {_ROUNDS} rounds on "
        f"{_NUM_NODES:,} nodes: {elapsed:.2f}s"
    )

    assert elapsed < _TIME_BUDGET_SECONDS
    counts = engine.held_counts()
    assert counts.sum() == origins.size
    # Mixing sanity: allocation concentrates around the stationary mean
    # of 10 tokens/node rather than staying at the seeded point mass.
    assert counts.max() < 10 * _TOKENS_PER_NODE
    # Meters aggregated vectorially: every round moved every token.
    assert engine.meters.total_messages_sent() == origins.size * _ROUNDS


def test_million_token_compiled_speedup(big_graph):
    """The compiled backend's acceptance floor at the north-star scale.

    Identical seeded allocation to the vectorized engine, and: with
    numba, >=3x faster on the fused multi-round path; without it, the
    pure-NumPy fallback must not be slower (modest timing slack).
    """
    origins = np.repeat(
        np.arange(_NUM_NODES, dtype=np.int64), _TOKENS_PER_NODE
    )
    timings = {}
    counts = {}
    for engine_cls in (VectorizedExchange, CompiledExchange):
        engine = engine_cls(big_graph, rng=0)
        engine.seed_tokens(origins)
        start = time.perf_counter()
        engine.run(_ROUNDS)
        timings[engine_cls.__name__] = time.perf_counter() - start
        counts[engine_cls.__name__] = engine.held_counts()
    vectorized = timings["VectorizedExchange"]
    compiled = timings["CompiledExchange"]
    speedup = vectorized / compiled
    print(
        f"\n{origins.size:,} tokens x {_ROUNDS} rounds: vectorized "
        f"{vectorized:.2f}s, compiled[{resolve_implementation()}] "
        f"{compiled:.2f}s -> {speedup:.1f}x"
    )
    np.testing.assert_array_equal(
        counts["VectorizedExchange"], counts["CompiledExchange"]
    )
    assert compiled < _TIME_BUDGET_SECONDS
    if NUMBA_AVAILABLE:
        assert speedup >= 3.0, (
            f"JIT-compiled backend only {speedup:.1f}x faster than vectorized"
        )
    else:
        assert compiled <= vectorized * 1.5, (
            f"compiled fallback {1 / speedup:.2f}x slower than vectorized"
        )


def test_bench_million_token_round(benchmark, big_graph):
    """pytest-benchmark timing of single million-token rounds."""
    origins = np.repeat(
        np.arange(_NUM_NODES, dtype=np.int64), _TOKENS_PER_NODE
    )
    engine = VectorizedExchange(big_graph, rng=0)
    engine.seed_tokens(origins)
    benchmark.pedantic(engine.run_round, rounds=5, iterations=1)
    assert engine.held_counts().sum() == origins.size


def test_bench_million_token_compiled_run(benchmark, big_graph):
    """pytest-benchmark timing of the fused compiled multi-round driver."""
    origins = np.repeat(
        np.arange(_NUM_NODES, dtype=np.int64), _TOKENS_PER_NODE
    )
    engine = CompiledExchange(big_graph, rng=0)
    engine.seed_tokens(origins)
    benchmark.pedantic(lambda: engine.run(5), rounds=3, iterations=1)
    assert engine.held_counts().sum() == origins.size
