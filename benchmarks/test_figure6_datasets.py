"""Figure 6 — amplified eps vs eps0 per dataset (A_all at mixing time).

Shapes asserted:

* every curve increases in eps0;
* Google (largest n) is the lowest curve everywhere — "population size
  matters the most";
* at small eps0 every dataset amplifies (central eps < eps0);
* among the similar-size social graphs, lower Gamma gives lower eps
  (deezer < facebook) — the irregularity effect.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figure6 import render_figure6, run_figure6


def test_figure6_datasets(benchmark, config):
    curves = benchmark(lambda: run_figure6(config=config))
    print("\n" + render_figure6(curves))

    by_name = {c.dataset: c for c in curves}
    assert set(by_name) == {"facebook", "twitch", "deezer", "enron", "google"}

    for c in curves:
        assert np.all(np.diff(c.epsilon) > 0), f"{c.dataset}: not increasing"

    google = by_name["google"]
    for name, curve in by_name.items():
        if name == "google":
            continue
        assert np.all(google.epsilon < curve.epsilon), (
            f"google should amplify more than {name} everywhere"
        )

    # Amplification regime at eps0 = 0.1 for every dataset.
    for name, curve in by_name.items():
        assert curve.epsilon_at(0.1) < 0.1, (
            f"{name} fails to amplify at eps0=0.1: {curve.epsilon_at(0.1)}"
        )

    # Deezer (Gamma=3.56, n=28k) below Facebook (Gamma=5.01, n=22k):
    # smaller irregularity and larger n both help.
    assert np.all(
        by_name["deezer"].epsilon < by_name["facebook"].epsilon
    )
