"""Dynamic-schedule overhead: per-round CSR swapping vs the static path.

The tentpole claim of the time-varying-network support is that swapping
the engine's cached ``_degrees``/``_indptr``/``_indices`` per round is
an O(1)-rebind + O(n)-degree-diff operation — the scheduled exchange
must stay within a small constant factor of the static fast path, not
degrade toward the per-message simulator.  A two-phase round-robin
schedule swaps the topology *every* round, the worst case.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.graphs.dynamic import DynamicGraphSchedule
from repro.graphs.generators import random_regular_graph
from repro.netsim.network import RoundBasedNetwork

_NUM_NODES = 10_000
_ROUNDS = 16

#: Worst-case per-round swapping must cost no more than this multiple
#: of the static vectorized exchange (generous for CI timer noise; the
#: measured local ratio is ~1.1-1.3x).
_MAX_SLOWDOWN = 3.0


@pytest.fixture(scope="module")
def phases():
    return [
        random_regular_graph(8, _NUM_NODES, rng=0),
        random_regular_graph(8, _NUM_NODES, rng=1),
    ]


def _timed_exchange(topology) -> tuple[float, np.ndarray]:
    network = RoundBasedNetwork(topology, rng=0, backend="vectorized")
    network.seed_items({i: [i] for i in range(_NUM_NODES)})
    start = time.perf_counter()
    network.run_exchange(_ROUNDS)
    return time.perf_counter() - start, network.held_counts()


def test_schedule_swap_overhead_small_constant_factor(phases):
    static_time, _ = _timed_exchange(phases[0])
    schedule_time, _ = _timed_exchange(DynamicGraphSchedule(phases))
    ratio = schedule_time / static_time
    print(
        f"\nstatic: {static_time:.3f}s  scheduled: {schedule_time:.3f}s  "
        f"ratio: {ratio:.2f}x ({_NUM_NODES} nodes, {_ROUNDS} rounds, "
        "swap every round)"
    )
    assert ratio <= _MAX_SLOWDOWN, (
        f"per-round graph swapping is {ratio:.2f}x the static fast path "
        f"(budget {_MAX_SLOWDOWN}x)"
    )


def test_schedule_of_one_is_bit_identical_to_static(phases):
    """The swap machinery must be free when nothing actually changes."""
    _, static_counts = _timed_exchange(phases[0])
    _, scheduled_counts = _timed_exchange(DynamicGraphSchedule([phases[0]]))
    np.testing.assert_array_equal(static_counts, scheduled_counts)


def test_bench_scheduled_exchange(benchmark, phases):
    """pytest-benchmark timing of the scheduled exchange (JSON artifact)."""
    schedule = DynamicGraphSchedule(phases)

    def exchange():
        network = RoundBasedNetwork(schedule, rng=0, backend="vectorized")
        network.seed_items({i: [i] for i in range(_NUM_NODES)})
        network.run_exchange(_ROUNDS)

    benchmark(exchange)
