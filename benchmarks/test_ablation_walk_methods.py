"""Ablation — exact matrix evolution vs Monte-Carlo token walks.

The library has two engines for the position distribution; this bench
validates they agree and measures their cost trade-off:

* exact ``P(t)`` via sparse mat-vec (deterministic, O(m) per step);
* empirical ``P(t)`` from many simulated tokens.

Shapes asserted: total-variation agreement shrinks as the sample count
grows (Monte-Carlo consistency), and both produce the same
``sum_i P_i^2`` within sampling error.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.generators import random_regular_graph
from repro.graphs.walks import (
    empirical_position_distribution,
    position_distribution,
    sum_squared_positions,
)


def _run(config):
    graph = random_regular_graph(8, 512, rng=config.seed)
    steps = 10
    exact = position_distribution(graph, 0, steps)
    results = {}
    for num_samples in (1_000, 10_000, 100_000):
        empirical = empirical_position_distribution(
            graph, 0, steps, num_samples=num_samples, rng=config.seed
        )
        results[num_samples] = float(np.abs(exact - empirical).sum())
    return exact, results


def test_walk_methods_agree(benchmark, config):
    exact, tv_by_samples = benchmark(lambda: _run(config))
    print("\nTV(exact, empirical) by sample count:")
    for samples, tv in tv_by_samples.items():
        print(f"  {samples:>7d} samples: {tv:.4f}")

    sample_counts = sorted(tv_by_samples)
    # Monte-Carlo error shrinks with more samples.
    assert tv_by_samples[sample_counts[-1]] < tv_by_samples[sample_counts[0]]
    # At 100k samples the distributions are close.
    assert tv_by_samples[100_000] < 0.2
    # Exact distribution is a proper probability vector.
    assert abs(exact.sum() - 1.0) < 1e-9
    assert sum_squared_positions(exact) <= 1.0
