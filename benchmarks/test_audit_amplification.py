"""Empirical audit benchmark — amplification made measurable.

Sandwiches network shuffling between the attacker's measured lower
bound and the theorems' upper bound across exchange rounds:

    eps_hat(t)  <=  true central eps(t)  <=  Theorem 5.3 bound(t).

Shapes asserted:

* at t=0 the audit recovers ~the local loss (no anonymity yet);
* eps_hat collapses by the mixing time (amplification observed);
* the audit never crosses the closed-form upper bound (soundness of
  the whole stack, caught from the attacking side).
"""

from __future__ import annotations

import time

from repro.amplification.network_shuffle import epsilon_all_stationary
from repro.auditing.auditor import audit_network_shuffle
from repro.graphs.generators import grid_graph, random_regular_graph
from repro.graphs.spectral import mixing_time, spectral_summary

_EPS0 = 1.0
_TRIALS = 2000


def _run(config):
    graph = random_regular_graph(6, 200, rng=config.seed)
    summary = spectral_summary(graph)
    rows = []
    for rounds in (0, 2, 6, summary.mixing_time):
        audit = audit_network_shuffle(
            graph, _EPS0, rounds, trials=_TRIALS, rng=config.seed
        )
        upper = epsilon_all_stationary(
            _EPS0,
            graph.num_nodes,
            summary.sum_squared_bound(rounds),
            config.delta,
            config.delta2,
        ).epsilon
        rows.append((rounds, audit.epsilon_lower_bound, upper))
    return summary.mixing_time, rows


def test_audit_sandwich(benchmark, config):
    mixing, rows = benchmark(lambda: _run(config))
    print(f"\nlocal eps0 = {_EPS0}; mixing time = {mixing}")
    print("rounds | measured eps_hat | Theorem 5.3 upper bound")
    for rounds, lower, upper in rows:
        print(f"{rounds:6} | {lower:16.3f} | {upper:10.3f}")

    by_rounds = {rounds: (lower, upper) for rounds, lower, upper in rows}
    # t=0: attacker sees essentially raw RR (generous estimation slack).
    assert by_rounds[0][0] > 0.5 * _EPS0
    # Mixing collapses the measured loss.
    assert by_rounds[mixing][0] < 0.6 * by_rounds[0][0]
    # Sandwich validity at every point.
    for rounds, (lower, upper) in by_rounds.items():
        assert lower < max(upper, 1.3 * _EPS0), (
            f"t={rounds}: measured {lower} above bound {upper}"
        )


def test_audit_engine_speedup(benchmark, config):
    """Trial-batched kernel engine vs the pre-PR per-trial loop.

    Configuration pinned by the PR-3 acceptance criterion: 2000 trials
    on a 1000-node k-regular graph — here the 25x40 torus (the paper's
    IoT sensor topology, 4-regular) at its own mixing time, the
    operating point every experiment in this repo audits at.  The
    retained ``method="loop"`` reproduces the pre-PR engine trial for
    trial; its cost is measured on a 100-trial probe and scaled
    linearly (the loop is a per-trial Python loop, so scaling is exact
    and, if anything, *understates* the loop by amortizing its fixed
    setup).  The scalar-ppf threshold sweep the pre-PR auditor also
    paid (~0.5 s) is excluded — conservative in the same direction.
    """
    torus = grid_graph(25, 40, periodic=True)
    rounds = mixing_time(torus)

    result = benchmark.pedantic(
        lambda: audit_network_shuffle(
            torus, _EPS0, rounds, trials=_TRIALS, rng=config.seed
        ),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )
    fast_seconds = benchmark.stats.stats.min

    probe_trials = 100
    started = time.perf_counter()
    audit_network_shuffle(
        torus, _EPS0, rounds, trials=probe_trials, rng=config.seed,
        method="loop",
    )
    loop_seconds = (time.perf_counter() - started) * (_TRIALS / probe_trials)

    speedup = loop_seconds / fast_seconds
    print(
        f"\n25x40 torus, t={rounds} (mixing time), {_TRIALS} trials/world: "
        f"kernel engine {fast_seconds:.2f}s vs pre-PR loop ~{loop_seconds:.1f}s "
        f"-> {speedup:.1f}x"
    )
    assert result.epsilon_lower_bound < 0.5 * _EPS0  # mixing measured
    assert speedup >= 15.0, f"expected >= 15x, measured {speedup:.1f}x"
