"""Empirical audit benchmark — amplification made measurable.

Sandwiches network shuffling between the attacker's measured lower
bound and the theorems' upper bound across exchange rounds:

    eps_hat(t)  <=  true central eps(t)  <=  Theorem 5.3 bound(t).

Shapes asserted:

* at t=0 the audit recovers ~the local loss (no anonymity yet);
* eps_hat collapses by the mixing time (amplification observed);
* the audit never crosses the closed-form upper bound (soundness of
  the whole stack, caught from the attacking side).
"""

from __future__ import annotations

from repro.amplification.network_shuffle import epsilon_all_stationary
from repro.audit.auditor import audit_network_shuffle
from repro.graphs.generators import random_regular_graph
from repro.graphs.spectral import spectral_summary

_EPS0 = 1.0
_TRIALS = 2000


def _run(config):
    graph = random_regular_graph(6, 200, rng=config.seed)
    summary = spectral_summary(graph)
    rows = []
    for rounds in (0, 2, 6, summary.mixing_time):
        audit = audit_network_shuffle(
            graph, _EPS0, rounds, trials=_TRIALS, rng=config.seed
        )
        upper = epsilon_all_stationary(
            _EPS0,
            graph.num_nodes,
            summary.sum_squared_bound(rounds),
            config.delta,
            config.delta2,
        ).epsilon
        rows.append((rounds, audit.epsilon_lower_bound, upper))
    return summary.mixing_time, rows


def test_audit_sandwich(benchmark, config):
    mixing, rows = benchmark(lambda: _run(config))
    print(f"\nlocal eps0 = {_EPS0}; mixing time = {mixing}")
    print("rounds | measured eps_hat | Theorem 5.3 upper bound")
    for rounds, lower, upper in rows:
        print(f"{rounds:6} | {lower:16.3f} | {upper:10.3f}")

    by_rounds = {rounds: (lower, upper) for rounds, lower, upper in rows}
    # t=0: attacker sees essentially raw RR (generous estimation slack).
    assert by_rounds[0][0] > 0.5 * _EPS0
    # Mixing collapses the measured loss.
    assert by_rounds[mixing][0] < 0.6 * by_rounds[0][0]
    # Sandwich validity at every point.
    for rounds, (lower, upper) in by_rounds.items():
        assert lower < max(upper, 1.3 * _EPS0), (
            f"t={rounds}: measured {lower} above bound {upper}"
        )
