"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so that callers can
catch a single base class.  Subclasses are grouped by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, shape, or type)."""


class GraphError(ReproError):
    """Base class for graph-substrate errors."""


class DisconnectedGraphError(GraphError):
    """The operation requires a connected graph, but the graph is not.

    The paper analyzes connected graphs only; disconnected graphs are a
    parallel composition of their components (Section 4.2).
    """


class BipartiteGraphError(GraphError):
    """The operation requires a non-bipartite graph (ergodicity,
    Theorem 4.3), but the graph is bipartite."""


class NotErgodicError(GraphError):
    """A random walk on the graph does not converge to a stationary
    distribution (the graph is disconnected or bipartite)."""


class CalibrationError(ReproError):
    """A synthetic dataset could not be calibrated to its target
    irregularity within tolerance."""


class PrivacyError(ReproError):
    """Base class for privacy-accounting errors."""


class InvalidPrivacyParameterError(PrivacyError, ValidationError):
    """An ``epsilon`` or ``delta`` value is outside its valid range."""


class BudgetExceededError(PrivacyError):
    """A privacy accountant's budget has been exhausted."""


class ProtocolError(ReproError):
    """A distributed-protocol simulation reached an invalid state."""


class CryptoError(ReproError):
    """A (simulated) cryptographic operation failed, e.g. decrypting a
    ciphertext with the wrong private key."""


class SimulationError(ReproError):
    """The network simulator reached an inconsistent state."""
