"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so that callers can
catch a single base class.  Subclasses are grouped by subsystem.

The taxonomy is also the error contract of the public surfaces: every
exception type maps to one HTTP status (:func:`http_status_for`) and one
wire payload (:func:`error_payload`), and both the CLI and the serving
tier render that same payload — the error text a curl caller sees is
the error text the CLI prints.
"""

from __future__ import annotations

from typing import Any, Dict


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, shape, or type)."""


class InvalidScenarioError(ValidationError):
    """A scenario payload could not be parsed or validated.

    Raised for malformed scenario JSON/dicts arriving through any
    surface (CLI file, HTTP body, library call) — the "your request is
    wrong" half of the taxonomy, mapped to HTTP 400.
    """


class ScheduleRefusedError(ValidationError):
    """A well-formed request asked for analysis that is unsound (or
    unsupported) on a dynamic graph schedule.

    Time-varying topologies have no stationary distribution, no mixing
    time, and no single ``M^t`` kernel; the operations that assume one
    refuse loudly instead of reporting a wrong epsilon.  The request
    itself parses fine — it is the combination the library rejects —
    so the serving tier maps this to HTTP 422, not 400.
    """


class JobNotFoundError(ReproError):
    """A job id does not name a known (or still retained) job.

    Raised by the serving tier's job store; mapped to HTTP 404.
    """


class ServiceBusyError(ReproError):
    """The serving tier's job queue is full; retry later.

    Raised by the serving tier when an enqueue would exceed the
    configured queue-depth cap; mapped to HTTP 429 with a
    ``Retry-After`` header (the ``retry_after`` attribute, seconds).
    """

    def __init__(self, message: str, *, retry_after: int = 1):
        super().__init__(message)
        self.retry_after = int(retry_after)


class WorkerCrashError(ReproError):
    """A pool worker process died (OOM kill, segfault, ``os._exit``).

    The sweep engine rebuilds the pool and retries the in-flight points;
    this error surfaces only when a point keeps killing the pool past
    its retry budget (a *poison point*, quarantined rather than retried
    forever) or when the pool dies repeatedly without executing
    anything.  Mapped to HTTP 500 — the request was fine, the execution
    substrate was not.
    """


class ExecutionTimeoutError(ReproError):
    """A unit of work exceeded its configured wall-clock budget.

    Raised for sweep points past ``point_timeout`` (the hung worker is
    killed and the point retried or quarantined) and for serving-tier
    jobs past ``--job-timeout`` (the job is marked failed and its
    eventual result discarded).  Mapped to HTTP 504.
    """


class StoreError(ReproError):
    """Base class for campaign-store (results database) errors."""


class StoreVersionError(StoreError):
    """A results store's on-disk schema version cannot be used.

    Raised when a store file was written by a newer schema (refuse —
    downgrading silently would corrupt it) or by an older schema with
    no registered migration path.  Migratable versions are upgraded in
    place instead of raising.
    """


class GraphError(ReproError):
    """Base class for graph-substrate errors."""


class DisconnectedGraphError(GraphError):
    """The operation requires a connected graph, but the graph is not.

    The paper analyzes connected graphs only; disconnected graphs are a
    parallel composition of their components (Section 4.2).
    """


class BipartiteGraphError(GraphError):
    """The operation requires a non-bipartite graph (ergodicity,
    Theorem 4.3), but the graph is bipartite."""


class NotErgodicError(GraphError):
    """A random walk on the graph does not converge to a stationary
    distribution (the graph is disconnected or bipartite)."""


class CalibrationError(ReproError):
    """A synthetic dataset could not be calibrated to its target
    irregularity within tolerance."""


class PrivacyError(ReproError):
    """Base class for privacy-accounting errors."""


class InvalidPrivacyParameterError(PrivacyError, ValidationError):
    """An ``epsilon`` or ``delta`` value is outside its valid range."""


class BudgetExceededError(PrivacyError):
    """A privacy accountant's budget has been exhausted."""


class ProtocolError(ReproError):
    """A distributed-protocol simulation reached an invalid state."""


class CryptoError(ReproError):
    """A (simulated) cryptographic operation failed, e.g. decrypting a
    ciphertext with the wrong private key."""


class SimulationError(ReproError):
    """The network simulator reached an inconsistent state."""


class BackendUnavailableError(SimulationError):
    """A requested exchange backend cannot run in this environment.

    Raised when the ``compiled`` backend is asked to JIT but numba
    cannot (the ``repro[compiled]`` extra is missing while a caller
    required JIT, or numba is installed but fails to compile the
    kernels).  Without a JIT requirement the compiled backend falls
    back to its pure-NumPy kernels silently — this error is the *loud*
    path for deployments that asked for compiled speed and would
    otherwise get a silent 10x regression.  Mapped to HTTP 501: the
    request is well-formed, this deployment just cannot serve it.
    """


# ----------------------------------------------------------------------
# Exception -> HTTP mapping (shared by the CLI and the serving tier)
# ----------------------------------------------------------------------
#: Ordered (exception type, HTTP status) pairs; the first isinstance
#: match wins, so subclasses must precede their bases.
HTTP_STATUS_MAP = (
    (JobNotFoundError, 404),
    (ServiceBusyError, 429),
    (ScheduleRefusedError, 422),
    (InvalidScenarioError, 400),
    (ValidationError, 400),
    (BudgetExceededError, 409),
    (BackendUnavailableError, 501),
    (ExecutionTimeoutError, 504),
    (WorkerCrashError, 500),
    (ReproError, 500),
)


def http_status_for(error: BaseException) -> int:
    """The HTTP status code an error maps to (500 for unknown types)."""
    for exception_type, status in HTTP_STATUS_MAP:
        if isinstance(error, exception_type):
            return status
    return 500


def error_payload(error: BaseException) -> Dict[str, Any]:
    """The canonical wire/console rendering of an error.

    Both the CLI and the HTTP service emit exactly this payload (the
    CLI prints ``message``, the service returns the JSON), so the error
    text is identical across surfaces by construction.
    """
    return {
        "error": type(error).__name__,
        "status": http_status_for(error),
        "message": str(error),
    }
