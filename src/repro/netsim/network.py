"""The synchronous round-based network.

One round = every online node forwards each held item to a uniformly
random neighbor; deliveries land in inboxes and become visible at the
start of the next round.  This is a *faithful* (per-message, metered)
realization of the random walk; the vectorized fast path lives in
:mod:`repro.graphs.walks` and the two are cross-validated in tests.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.exceptions import SimulationError
from repro.graphs.graph import Graph
from repro.netsim.faults import DropoutModel, NoFaults
from repro.netsim.message import SERVER_ID
from repro.netsim.metrics import MeterBoard
from repro.netsim.node import Node
from repro.netsim.server import Server
from repro.utils.rng import RngLike, ensure_rng


class RoundBasedNetwork:
    """Simulated network of ``graph.num_nodes`` users plus one server."""

    def __init__(
        self,
        graph: Graph,
        *,
        faults: Optional[DropoutModel] = None,
        rng: RngLike = None,
    ):
        self.graph = graph
        self.meters = MeterBoard()
        self.faults = faults if faults is not None else NoFaults()
        self.rng = ensure_rng(rng)
        self.nodes: Dict[int, Node] = {
            node_id: Node(node_id, graph.neighbors(node_id), self.meters.meter(node_id))
            for node_id in range(graph.num_nodes)
        }
        self.server = Server(self.meters.meter(SERVER_ID))
        self.round_index = 0

    @property
    def num_users(self) -> int:
        """Number of user nodes."""
        return self.graph.num_nodes

    def seed_items(self, items_per_node: Dict[int, List[Any]]) -> None:
        """Place initial items (randomized reports) into nodes."""
        for node_id, items in items_per_node.items():
            node = self.nodes[node_id]
            node.held.extend(items)
            node.meter.record_store(len(items))

    def run_exchange_round(self) -> None:
        """One synchronous exchange round (lines 4-8 of Algorithms 1/2).

        Every online node sends each held item to a uniformly random
        neighbor; offline nodes keep their items (lazy-walk fault model).
        """
        offline = self.faults.offline_mask(
            self.num_users, self.round_index, self.rng
        )
        sends: List[tuple[int, Any]] = []
        for node_id, node in self.nodes.items():
            node.online = not bool(offline[node_id])
            if not node.online:
                continue
            for item in node.take_all():
                recipient = node.sample_neighbor(self.rng)
                # An offline recipient still receives: the message waits
                # in her inbox (she is unavailable to *forward*, matching
                # the lazy-walk model).
                node.meter.record_send()
                sends.append((recipient, item))
        for recipient, item in sends:
            self.nodes[recipient].receive(item)
        for node in self.nodes.values():
            node.collect_inbox()
        self.round_index += 1

    def run_exchange(self, rounds: int) -> None:
        """Run ``rounds`` exchange rounds."""
        if rounds < 0:
            raise SimulationError(f"rounds must be non-negative, got {rounds}")
        for _ in range(rounds):
            self.run_exchange_round()

    def deliver_to_server(
        self,
        select: Optional[Callable[[int, List[Any], np.random.Generator], List[Any]]] = None,
    ) -> None:
        """Final round: each user sends her (selected) items to the server.

        ``select(node_id, held_items, rng)`` chooses what to deliver;
        the default delivers everything (the "all" protocol).  The
        selection sees the full held list so the "single" protocol can
        sample or substitute a dummy.
        """
        for node_id in range(self.num_users):
            node = self.nodes[node_id]
            held = node.take_all()
            chosen = held if select is None else select(node_id, held, self.rng)
            for item in chosen:
                node.meter.record_send()
                self.server.deliver(node_id, item)

    def held_counts(self) -> np.ndarray:
        """Current items held per user — the allocation vector ``L``."""
        counts = np.zeros(self.num_users, dtype=np.int64)
        for node_id, node in self.nodes.items():
            counts[node_id] = len(node.held)
        return counts
