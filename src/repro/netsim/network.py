"""The synchronous round-based network.

One round = every online node forwards each held item to a uniformly
random neighbor; deliveries land in inboxes and become visible at the
start of the next round.  Two interchangeable backends realize this:

* ``backend="faithful"`` — per-message over Python ``Node`` objects with
  full per-entity metering.  Keeps message *identity* through the
  simulation, which adversary/audit scenarios need, but costs
  O(n · items) interpreter work per round.
* ``backend="vectorized"`` — the flat-array engine of
  :mod:`repro.netsim.engine`: all tokens hop in a few NumPy kernels per
  round, meters aggregated with ``np.bincount``.
* ``backend="compiled"`` — the fused-kernel engine of
  :mod:`repro.netsim.kernels`: one single-pass kernel per round (numba
  JIT when installed, pre-allocated pure-NumPy kernels otherwise) and a
  multi-round driver that stays out of the interpreter between rounds.

All backends share an exact RNG contract — a seeded run produces
identical per-round held counts, meters, and server deliveries on
either — so the faithful path doubles as a cross-validation oracle for
the fast one (see ``tests/netsim/test_engine.py``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Union

import numpy as np

from repro.exceptions import SimulationError, ValidationError
from repro.graphs.dynamic import DynamicGraphSchedule
from repro.graphs.graph import Graph
from repro.netsim.engine import VectorizedExchange
from repro.netsim.faults import DropoutModel, NoFaults
from repro.netsim.kernels import CompiledExchange
from repro.netsim.message import SERVER_ID
from repro.netsim.metrics import MeterBoard, VectorMeterBoard
from repro.netsim.node import Node
from repro.netsim.server import Server
from repro.utils.rng import RngLike, ensure_rng

#: Valid values for ``RoundBasedNetwork(backend=...)``.
BACKENDS = ("faithful", "vectorized", "compiled")


class RoundBasedNetwork:
    """Simulated network of ``graph.num_nodes`` users plus one server.

    Parameters
    ----------
    graph:
        The communication graph, or a
        :class:`~repro.graphs.dynamic.DynamicGraphSchedule` for a
        time-varying topology.  On a schedule, both backends bind the
        scheduled graph for each round before any randomness is drawn —
        the vectorized engine swaps its CSR caches, the faithful path
        rebinds every ``Node``'s neighbor list — so the exact RNG
        contract (and the equivalence oracle) extends to schedules.
    faults:
        Dropout model; offline holders keep their items for the round.
    rng:
        Seed or generator.
    backend:
        ``"faithful"`` (per-message ``Node`` objects, default for direct
        construction), ``"vectorized"`` (flat-array engine — what the
        protocol simulators pick by default), or ``"compiled"``
        (fused kernels, numba-JIT when available).
    """

    def __init__(
        self,
        graph: Union[Graph, DynamicGraphSchedule],
        *,
        faults: Optional[DropoutModel] = None,
        rng: RngLike = None,
        backend: str = "faithful",
    ):
        if backend not in BACKENDS:
            raise ValidationError(
                f"unknown backend {backend!r}; use one of {BACKENDS}"
            )
        if isinstance(graph, DynamicGraphSchedule):
            self.schedule: Optional[DynamicGraphSchedule] = graph
            self._graph = graph.graph_at(0)
        else:
            self.schedule = None
            self._graph = graph
        self.backend = backend
        self.faults = faults if faults is not None else NoFaults()
        self.rng = ensure_rng(rng)
        self.nodes: Dict[int, Node] = {}
        self._engine: Optional[VectorizedExchange] = None
        self._payloads: List[Any] = []
        self._round_index = 0
        self._campaign_start_round = 0
        if backend == "faithful":
            self.meters: MeterBoard | VectorMeterBoard = MeterBoard()
            self.nodes = {
                node_id: Node(
                    node_id,
                    self._graph.neighbors(node_id),
                    self.meters.meter(node_id),
                )
                for node_id in range(self._graph.num_nodes)
            }
            self.server = Server(self.meters.meter(SERVER_ID))
        else:
            engine_cls = (
                CompiledExchange if backend == "compiled"
                else VectorizedExchange
            )
            self._engine = engine_cls(
                graph if self.schedule is None else self.schedule,
                faults=self.faults,
                rng=self.rng,
            )
            self.meters = self._engine.meters
            self.server = Server(self.meters.server_meter)

    @property
    def graph(self) -> Graph:
        """The topology currently in force (tracks the schedule)."""
        if self._engine is not None:
            return self._engine.graph
        return self._graph

    @property
    def num_users(self) -> int:
        """Number of user nodes."""
        return self.graph.num_nodes

    @property
    def round_index(self) -> int:
        """Number of exchange rounds executed so far."""
        if self._engine is not None:
            return self._engine.round_index
        return self._round_index

    # ------------------------------------------------------------------
    # Seeding
    # ------------------------------------------------------------------
    def seed_items(self, items_per_node: Dict[int, List[Any]]) -> None:
        """Place initial items (randomized reports) into nodes.

        Seeding is only allowed before the campaign's first exchange
        round (repeated calls are fine) or after the final delivery —
        interleaving seeds with rounds would scramble the inbox-arrival
        order the backends' exact RNG contract depends on.  Both
        backends enforce this identically.
        """
        if self._engine is not None:
            drained = self._engine.drained
            origins: List[int] = []
            payloads: List[Any] = []
            for node_id, items in items_per_node.items():
                origins.extend([node_id] * len(items))
                payloads.extend(items)
            # Let the engine validate (and raise) before touching
            # _payloads, or a rejected seed would shift the token-id ->
            # payload mapping for every later campaign.
            self._engine.seed_tokens(np.asarray(origins, dtype=np.int64))
            if drained:
                # The engine restarts token ids from 0 after a final
                # delivery; drop the delivered campaign's payloads so
                # the mapping stays aligned.
                self._payloads = []
            self._payloads.extend(payloads)
            return
        if any(node.held or node.inbox for node in self.nodes.values()):
            if self._round_index != self._campaign_start_round:
                raise SimulationError(
                    "cannot seed items mid-exchange; deliver to the server first"
                )
        else:
            self._campaign_start_round = self._round_index
        for node_id, items in items_per_node.items():
            node = self.nodes[node_id]
            node.held.extend(items)
            node.meter.record_store(len(items))

    # ------------------------------------------------------------------
    # Exchange rounds
    # ------------------------------------------------------------------
    def set_graph(self, graph: Graph) -> None:
        """Swap the communication graph in place (same node count).

        On the vectorized backend this delegates to the engine's CSR
        swap; on the faithful backend every ``Node``'s neighbor list is
        rebound.  Neither path consumes randomness, so seeded runs stay
        bit-identical across backends through a swap.

        On a schedule-constructed network the schedule owns the
        topology — it rebinds ``graph_at(round_index)`` through this
        very method before each round, so a manual swap lasts only
        until the next round's sync.  Encode persistent interventions
        in the schedule's selector instead.
        """
        if self._engine is not None:
            self._engine.set_graph(graph)
            return
        if graph.num_nodes != self._graph.num_nodes:
            raise ValidationError(
                f"replacement graph has {graph.num_nodes} nodes, "
                f"network has {self._graph.num_nodes}"
            )
        self._graph = graph
        for node_id, node in self.nodes.items():
            node.neighbors = graph.neighbors(node_id)

    def run_exchange_round(self) -> None:
        """One synchronous exchange round (lines 4-8 of Algorithms 1/2).

        Every online node sends each held item to a uniformly random
        neighbor; offline nodes keep their items (lazy-walk fault model).
        """
        if self._engine is not None:
            self._engine.run_round()
            return
        if self.schedule is not None:
            graph = self.schedule.graph_at(self._round_index)
            if graph is not self._graph:
                self.set_graph(graph)
        offline = self.faults.offline_mask(
            self.num_users, self._round_index, self.rng
        )
        sends: List[tuple[int, Any]] = []
        for node_id, node in self.nodes.items():
            node.online = not bool(offline[node_id])
            if not node.online:
                continue
            for item in node.take_all():
                recipient = node.sample_neighbor(self.rng)
                # An offline recipient still receives: the message waits
                # in her inbox (she is unavailable to *forward*, matching
                # the lazy-walk model).
                node.meter.record_send()
                sends.append((recipient, item))
        for recipient, item in sends:
            self.nodes[recipient].receive(item)
        for node in self.nodes.values():
            node.collect_inbox()
        self._round_index += 1

    def run_exchange(self, rounds: int) -> None:
        """Run ``rounds`` exchange rounds.

        Engine-backed networks delegate the whole span to the engine so
        the compiled backend can fuse multi-round execution into single
        kernel calls; results are identical to looping
        :meth:`run_exchange_round`.
        """
        if rounds < 0:
            raise SimulationError(f"rounds must be non-negative, got {rounds}")
        if self._engine is not None:
            self._engine.run(rounds)
            return
        for _ in range(rounds):
            self.run_exchange_round()

    # ------------------------------------------------------------------
    # Final delivery & queries
    # ------------------------------------------------------------------
    def deliver_to_server(
        self,
        select: Optional[Callable[[int, List[Any], np.random.Generator], List[Any]]] = None,
    ) -> None:
        """Final round: each user sends her (selected) items to the server.

        ``select(node_id, held_items, rng)`` chooses what to deliver;
        the default delivers everything (the "all" protocol).  The
        selection sees the full held list so the "single" protocol can
        sample or substitute a dummy.
        """
        if self._engine is not None and select is None:
            self.meters.messages_sent += self._engine.held_counts()
            order = self._engine.drain()
            senders = self._engine.token_position[order]
            payloads = [self._payloads[token] for token in order]
            self.server.deliver_many(senders.tolist(), payloads)
            return
        if self._engine is not None:
            held_lists = self.drain_held()
            for node_id, held in enumerate(held_lists):
                chosen = select(node_id, held, self.rng)
                for item in chosen:
                    self.meters.messages_sent[node_id] += 1
                    self.server.deliver(node_id, item)
            return
        for node_id in range(self.num_users):
            node = self.nodes[node_id]
            held = node.take_all()
            chosen = held if select is None else select(node_id, held, self.rng)
            for item in chosen:
                node.meter.record_send()
                self.server.deliver(node_id, item)

    def drain_held(self) -> List[List[Any]]:
        """Remove and return every node's held items, indexed by node.

        Item order within a node matches the per-message inboxes on both
        backends, so seeded runs drain identically.
        """
        if self._engine is not None:
            order = self._engine.drain()
            positions = self._engine.token_position
            held_lists: List[List[Any]] = [[] for _ in range(self.num_users)]
            for token in order:
                held_lists[positions[token]].append(self._payloads[token])
            return held_lists
        return [self.nodes[user].take_all() for user in range(self.num_users)]

    def held_counts(self) -> np.ndarray:
        """Current items held per user — the allocation vector ``L``."""
        if self._engine is not None:
            return self._engine.held_counts()
        counts = np.zeros(self.num_users, dtype=np.int64)
        for node_id, node in self.nodes.items():
            counts[node_id] = len(node.held)
        return counts
