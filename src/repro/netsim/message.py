"""Messages exchanged on the simulated network."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: Sentinel entity id for the curator/server.
SERVER_ID = -1


@dataclass(frozen=True)
class Message:
    """One message in flight.

    Attributes
    ----------
    sender:
        Entity id of the sender (``SERVER_ID`` for the server).
    recipient:
        Entity id of the recipient.
    payload:
        Arbitrary payload — protocol simulators carry report objects or
        ciphertext envelopes here.
    round_index:
        The round in which the message was sent.
    """

    sender: int
    recipient: int
    payload: Any
    round_index: int = 0
