"""The curator/server entity.

The server is *untrusted* in the shuffle threat model: it sees every
final-round report together with the identity of the user who sent it
(Section 3.3 — "the final-round reports are not anonymous").  The
simulator therefore records that linkage in an
:class:`~repro.netsim.adversary.AdversaryView` rather than hiding it.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.netsim.metrics import EntityMeter


class Server:
    """Collects final reports, remembering which user delivered each."""

    def __init__(self, meter: EntityMeter):
        self.meter = meter
        self._reports: List[Any] = []
        self._delivered_by: List[int] = []

    def deliver(self, sender: int, payload: Any) -> None:
        """Record one report delivered by ``sender``."""
        self._reports.append(payload)
        self._delivered_by.append(int(sender))
        self.meter.record_receive()
        self.meter.record_store()

    def deliver_many(self, senders: List[int], payloads: List[Any]) -> None:
        """Record a batch of reports (the vectorized final round)."""
        if len(senders) != len(payloads):
            raise ValueError("senders and payloads must have equal length")
        self._reports.extend(payloads)
        self._delivered_by.extend(int(sender) for sender in senders)
        self.meter.record_receive(len(payloads))
        self.meter.record_store(len(payloads))

    @property
    def reports(self) -> List[Any]:
        """All collected reports, in delivery order."""
        return list(self._reports)

    @property
    def delivered_by(self) -> List[int]:
        """For each report, the user who delivered it (final-round link)."""
        return list(self._delivered_by)

    def reports_by_sender(self) -> Dict[int, List[Any]]:
        """Reports grouped by the delivering user."""
        grouped: Dict[int, List[Any]] = {}
        for sender, payload in zip(self._delivered_by, self._reports):
            grouped.setdefault(sender, []).append(payload)
        return grouped

    def __len__(self) -> int:
        return len(self._reports)
