"""The central adversary's view of a protocol run.

Per the paper's threat model (Section 3.3) the central adversary:

* sees every report delivered to the server, linked to the user who
  sent it in the *final* round;
* knows the graph and the position-probability distribution ``P^G``;
* can NOT trace intermediate hops (no traffic analysis) and users do
  not collude.

:class:`AdversaryView` captures exactly that interface, so empirical
privacy attacks (used in tests and the linkage benchmark) cannot
accidentally peek at more than the model allows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class AdversaryView:
    """What the central analyzer observes after a protocol run.

    Attributes
    ----------
    num_users:
        Number of participating users ``n``.
    final_holder:
        ``final_holder[j]`` is the user who delivered report ``j`` to
        the server (the non-anonymous final-round link).
    report_payloads:
        The randomized payload of each report, in the same order.
    origin:
        Ground-truth originator of each report — available to the
        *simulator* for measuring linkage, never to a real adversary.
    """

    num_users: int
    final_holder: np.ndarray
    report_payloads: Sequence[object]
    origin: np.ndarray

    def linkage_accuracy(self, guess: np.ndarray) -> float:
        """Fraction of reports whose originator ``guess`` got right."""
        guess = np.asarray(guess, dtype=np.int64)
        if guess.shape != self.origin.shape:
            raise ValueError("guess must assign one originator per report")
        return float(np.mean(guess == self.origin))

    def baseline_guess(self) -> np.ndarray:
        """The naive attack: guess that the final holder is the origin.

        Before any shuffling rounds this is exactly right; after mixing
        its accuracy should collapse toward ``max_i P_i(t)``.
        """
        return np.asarray(self.final_holder, dtype=np.int64).copy()

    def posterior_guess(self, position_distributions: np.ndarray) -> np.ndarray:
        """Bayes-optimal origin guess given per-origin position
        distributions.

        ``position_distributions[i]`` is ``P^G_i(t)`` — the distribution
        of where user ``i``'s report sits at the final round.  For each
        report the adversary picks the origin maximizing
        ``P_origin(final_holder)`` (uniform prior over origins).
        """
        matrix = np.asarray(position_distributions, dtype=np.float64)
        if matrix.shape != (self.num_users, self.num_users):
            raise ValueError(
                f"need an (n, n) matrix of position distributions, "
                f"got {matrix.shape}"
            )
        # For report j delivered by user h, the posterior over origins i
        # is proportional to matrix[i, h].
        holders = np.asarray(self.final_holder, dtype=np.int64)
        return np.argmax(matrix[:, holders], axis=0)
