"""Fault models: which users are offline in a given round.

Section 4.5 of the paper models temporary user unavailability (battery
depletion, network outage) as a *lazy random walk*: an offline holder
keeps her reports for the round.  :class:`IndependentDropout` realizes
exactly that — each user is independently offline with probability
``dropout_probability`` per round, matching a lazy walk with laziness
equal to that probability.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.utils.validation import check_probability


class DropoutModel(abc.ABC):
    """Strategy interface: which users are offline each round."""

    @abc.abstractmethod
    def offline_mask(self, num_users: int, round_index: int,
                     rng: np.random.Generator) -> np.ndarray:
        """Boolean mask of shape ``(num_users,)`` — True = offline."""


class NoFaults(DropoutModel):
    """Every user is online every round (the paper's base assumption)."""

    def offline_mask(self, num_users: int, round_index: int,
                     rng: np.random.Generator) -> np.ndarray:
        return np.zeros(num_users, dtype=bool)


class IndependentDropout(DropoutModel):
    """Each user offline independently with a fixed per-round probability."""

    def __init__(self, dropout_probability: float):
        self.dropout_probability = check_probability(
            dropout_probability, "dropout_probability"
        )

    def offline_mask(self, num_users: int, round_index: int,
                     rng: np.random.Generator) -> np.ndarray:
        return rng.random(num_users) < self.dropout_probability


class AdversarialDropout(DropoutModel):
    """A fixed set of users is *always* offline.

    Models targeted outages; with enough always-offline users the graph
    effectively fragments, which the integration tests use to show
    privacy degrading toward the LDP baseline.
    """

    def __init__(self, offline_users: np.ndarray):
        self.offline_users = np.asarray(offline_users, dtype=np.int64)

    def offline_mask(self, num_users: int, round_index: int,
                     rng: np.random.Generator) -> np.ndarray:
        mask = np.zeros(num_users, dtype=bool)
        valid = self.offline_users[
            (self.offline_users >= 0) & (self.offline_users < num_users)
        ]
        mask[valid] = True
        return mask
