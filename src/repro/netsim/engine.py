"""Vectorized exchange engine: every in-flight report as one array slot.

The faithful simulator (:class:`repro.netsim.network.RoundBasedNetwork`
with ``backend="faithful"``) walks Python ``Node`` objects and draws one
random number per message per round — O(n · items) interpreter overhead
that caps simulations at ~10^4 users.  This engine represents the same
process as two flat arrays,

* ``token_origin[i]``  — the user who created token ``i``;
* ``token_position[i]`` — the user currently holding token ``i``;

and advances a round with a handful of NumPy kernels: one dropout mask,
one uniform draw per moving token turned into a neighbor via the CSR
``indptr``/``indices`` offsets of :class:`repro.graphs.graph.Graph`, and
``np.bincount`` for held counts and meter totals.

RNG contract (exact, not statistical)
-------------------------------------
Both backends consume the *same* random stream in the *same* order, so a
seeded vectorized run reproduces the faithful run bit for bit:

1. each round first draws the fault model's offline mask;
2. then one uniform double per message held by an online node, in the
   faithful iteration order — ascending holder id, and within a holder
   the inbox arrival order; the neighbor index is
   ``floor(u * degree)``.

NumPy's ``Generator.random(k)`` produces the identical stream to ``k``
scalar ``Generator.random()`` calls, so the faithful engine's per-item
scalar draw and this engine's single array draw coincide.  The engine
maintains the iteration order explicitly in :attr:`_order` — kept items
precede arrivals, arrivals land in send order — which is exactly the
order the per-message simulator's inboxes realize.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.exceptions import SimulationError, ValidationError
from repro.graphs.dynamic import DynamicGraphSchedule
from repro.graphs.graph import Graph
from repro.netsim.faults import DropoutModel, NoFaults
from repro.netsim.message import SERVER_ID
from repro.netsim.metrics import VectorMeterBoard
from repro.utils.rng import RngLike, ensure_rng

#: Ceiling on memoized degree vectors for schedule-driven engines.  A
#: round-robin schedule cycles a handful of graphs (all hit); a churn
#: schedule that generates a fresh topology per phase would otherwise
#: pin one O(n) degree vector — and the graph it belongs to — per phase,
#: growing without limit over a 10^5-phase run.  Beyond the cap the
#: least-recently-used entry is evicted (a miss just recomputes
#: ``graph.degrees()``, an O(n) ``np.diff``).
_DEGREE_CACHE_LIMIT = 64


class VectorizedExchange:
    """Array-driven realization of the synchronous exchange rounds.

    Parameters
    ----------
    graph:
        Communication graph; tokens hop along its edges.  Passing a
        :class:`~repro.graphs.dynamic.DynamicGraphSchedule` makes the
        topology time-varying: before each round the engine swaps in the
        schedule's graph for that round index (a pure cache rebind —
        ``_degrees``/``_indptr``/``_indices`` — consuming no randomness,
        so the exact RNG contract with the faithful backend is
        untouched).
    faults:
        Dropout model — offline holders keep their tokens for the round
        (the paper's lazy-walk fault model, Section 4.5).
    rng:
        Seed or generator.
    record_trajectories:
        When True, keep every token's full path (``trajectories()``) —
        needed by the collusion attack, costs O(tokens) memory per round.
    """

    def __init__(
        self,
        graph: Union[Graph, DynamicGraphSchedule],
        *,
        faults: Optional[DropoutModel] = None,
        rng: RngLike = None,
        record_trajectories: bool = False,
    ):
        if isinstance(graph, DynamicGraphSchedule):
            self.schedule: Optional[DynamicGraphSchedule] = graph
            self._degree_cache_limit = max(
                1, min(graph.num_graphs, _DEGREE_CACHE_LIMIT)
            )
            graph = graph.graph_at(0)
        else:
            self.schedule = None
            self._degree_cache_limit = 1
        # Schedule swaps cycle a handful of graph objects; memoize their
        # degree vectors so each swap is a pure rebind, not an O(n)
        # np.diff per round.  (graph, degrees) pairs: holding the graph
        # pins its id, so a recycled id can never alias a stale entry.
        # Bounded LRU: capped by the schedule's distinct-graph count and
        # ``_DEGREE_CACHE_LIMIT``, so lazily generated phase graphs
        # can't grow the cache (or pin graphs) without limit.
        self._degree_cache: OrderedDict[int, Tuple[Graph, np.ndarray]] = (
            OrderedDict()
        )
        self.graph = graph
        self.faults = faults if faults is not None else NoFaults()
        self.rng = ensure_rng(rng)
        self.round_index = 0
        self._degrees = graph.degrees()
        self._indptr = graph.indptr
        self._indices = graph.indices
        self.token_origin = np.empty(0, dtype=np.int64)
        self.token_position = np.empty(0, dtype=np.int64)
        #: Tokens in faithful iteration order: ascending holder, then
        #: inbox arrival order within a holder (see module docstring).
        self._order = np.empty(0, dtype=np.int64)
        self.meters = VectorMeterBoard(graph.num_nodes, SERVER_ID)
        self._drained = False
        self._campaign_start_round = 0
        self._paths: Optional[List[np.ndarray]] = [] if record_trajectories else None

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    @property
    def num_users(self) -> int:
        """Number of user nodes."""
        return self.graph.num_nodes

    @property
    def num_tokens(self) -> int:
        """Number of in-flight tokens."""
        return self.token_position.size

    @property
    def drained(self) -> bool:
        """Whether a final delivery (:meth:`drain`) has emptied the network."""
        return self._drained

    def set_graph(self, graph: Graph) -> None:
        """Swap the communication graph in place (same node count).

        Rebinds the cached degree/CSR arrays; token positions, meters,
        iteration order, and the RNG stream are untouched — a swap
        consumes no randomness, which is what lets a schedule-driven run
        keep the exact RNG contract with the faithful backend.

        On a schedule-constructed engine the schedule owns the topology:
        this method is exactly how it rebinds ``graph_at(round_index)``
        before each round, so a manual swap lasts only until the next
        round's sync overrides it.  To intervene on topology over time,
        encode the intervention in the schedule (its selector) instead.
        """
        if graph.num_nodes != self.graph.num_nodes:
            raise ValidationError(
                f"replacement graph has {graph.num_nodes} nodes, "
                f"engine has {self.graph.num_nodes}"
            )
        self.graph = graph
        cached = (
            self._degree_cache.get(id(graph))
            if self.schedule is not None else None
        )
        if cached is not None and cached[0] is graph:
            self._degree_cache.move_to_end(id(graph))
        else:
            cached = (graph, graph.degrees())
            if self.schedule is not None:
                self._degree_cache[id(graph)] = cached
                while len(self._degree_cache) > self._degree_cache_limit:
                    self._degree_cache.popitem(last=False)
        self._degrees = cached[1]
        self._indptr = graph.indptr
        self._indices = graph.indices

    def _sync_schedule(self) -> None:
        """Bind the scheduled topology for the current round (if any)."""
        if self.schedule is not None:
            graph = self.schedule.graph_at(self.round_index)
            if graph is not self.graph:
                self.set_graph(graph)

    def seed_tokens(self, origins: np.ndarray) -> None:
        """Place one token per entry of ``origins`` at that node.

        Token ids continue from the current count; ``token_origin`` for
        the new tokens equals ``origins``.  Seeding is only allowed
        before the campaign's first exchange round (repeated calls are
        fine) or after a :meth:`drain` — interleaving seeds with rounds
        would scramble the inbox-arrival order the exact RNG contract
        depends on.
        """
        origins = np.ascontiguousarray(origins, dtype=np.int64)
        if origins.ndim != 1:
            raise ValidationError("origins must be a 1-D integer array")
        if origins.size and (
            origins.min() < 0 or origins.max() >= self.num_users
        ):
            raise ValidationError("token origins out of range")
        # Validate isolation against the topology in force at the next
        # round — on a schedule the seeding round's graph, not graph 0.
        self._sync_schedule()
        if origins.size and np.any(self._degrees[np.unique(origins)] == 0):
            raise ValidationError("some tokens start on isolated nodes")
        if self._drained:
            # Drained tokens left the network (final delivery); seeding
            # afresh must not resurrect them — match the per-message
            # backend, whose nodes are empty after ``take_all``.
            self.token_origin = np.empty(0, dtype=np.int64)
            self.token_position = np.empty(0, dtype=np.int64)
        if self.token_position.size == 0:
            self._campaign_start_round = self.round_index
        elif self.round_index != self._campaign_start_round:
            raise SimulationError(
                "cannot seed tokens mid-exchange; drain the network first"
            )
        self.token_origin = np.concatenate([self.token_origin, origins])
        self.token_position = np.concatenate([self.token_position, origins])
        self._order = np.argsort(self.token_position, kind="stable")
        self._drained = False
        counts = np.bincount(origins, minlength=self.num_users)
        self.meters.current_items += counts
        np.maximum(self.meters.peak_items, self.meters.current_items,
                   out=self.meters.peak_items)
        if self._paths is not None:
            self._paths = [self.token_position.copy()]

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------
    def run_round(self) -> None:
        """One synchronous exchange round (lines 4-8 of Algorithms 1/2)."""
        n = self.num_users
        # Topology swap first: it consumes no randomness, so the fault
        # and hop draws below stay in lockstep with the faithful backend.
        self._sync_schedule()
        offline = self.faults.offline_mask(n, self.round_index, self.rng)
        if self._drained:
            # Delivered tokens left the network: the round is a no-op
            # over an empty token set — but it still consumes the fault
            # model's draw and advances the clock, exactly like the
            # faithful backend iterating empty nodes.
            self.round_index += 1
            return
        order = self._order
        moving_mask = ~offline[self.token_position[order]]
        movers = order[moving_mask]
        stayers = order[~moving_mask]

        sources = self.token_position[movers]
        source_degrees = self._degrees[sources]
        if movers.size and source_degrees.min() == 0:
            raise SimulationError(
                f"round {self.round_index}: a held token's node is "
                "isolated in the current topology"
            )
        draws = self.rng.random(movers.size)
        offsets = (draws * source_degrees).astype(np.int64)
        # floor(u * degree) lands in [0, degree) for every conforming
        # float64 draw, but a contract-violating u (a stubbed/custom
        # generator yielding 1.0, or float32 upstream) would index one
        # past the neighbor slice; clamping is bit-identical for all
        # non-boundary draws.
        np.minimum(offsets, source_degrees - 1, out=offsets)
        destinations = self._indices[self._indptr[sources] + offsets]
        self.token_position[movers] = destinations

        # Meter totals, one bincount per direction.
        sends = np.bincount(sources, minlength=n)
        receipts = np.bincount(destinations, minlength=n)
        meters = self.meters
        meters.messages_sent += sends
        meters.messages_received += receipts
        # Online holders empty their queue before deliveries land;
        # offline holders accumulate on top of what they kept.
        meters.current_items = np.where(
            offline, meters.current_items + receipts, receipts
        )
        np.maximum(meters.peak_items, meters.current_items,
                   out=meters.peak_items)

        # Next round's iteration order: kept items first (in their old
        # order), then arrivals in send order — a stable sort by the new
        # positions realizes exactly the per-message inbox order.
        sequence = np.concatenate([stayers, movers])
        self._order = sequence[
            np.argsort(self.token_position[sequence], kind="stable")
        ]
        self.round_index += 1
        if self._paths is not None:
            self._paths.append(self.token_position.copy())

    def run(self, rounds: int) -> None:
        """Run ``rounds`` exchange rounds."""
        if rounds < 0:
            raise SimulationError(f"rounds must be non-negative, got {rounds}")
        for _ in range(rounds):
            self.run_round()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def held_counts(self) -> np.ndarray:
        """Items held per user — the allocation vector ``L``.

        Zero after :meth:`drain` (final delivery releases everything,
        like the per-message ``take_all``).
        """
        if self._drained:
            return np.zeros(self.num_users, dtype=np.int64)
        return np.bincount(self.token_position, minlength=self.num_users)

    def delivery_order(self) -> np.ndarray:
        """Token ids in server-delivery order.

        The faithful simulator delivers node by node in ascending id,
        each node's items in held order — which is exactly
        :attr:`_order`.
        """
        return self._order.copy()

    def drain(self) -> np.ndarray:
        """Release every token (the per-message ``take_all``); returns
        the delivery order.  Releases memory only — callers meter any
        resulting sends themselves.  Idempotent: a second drain returns
        an empty order, matching the faithful backend whose nodes are
        empty after ``take_all``."""
        if self._drained:
            return np.empty(0, dtype=np.int64)
        order = self.delivery_order()
        self.meters.current_items[:] = 0
        self._drained = True
        return order

    def trajectories(self) -> np.ndarray:
        """Token paths, shape ``(num_tokens, rounds_since_seed + 1)``.

        Column 0 is the (latest) seeding; recording restarts if the
        network is drained and reseeded.  Only available when
        constructed with ``record_trajectories``.
        """
        if self._paths is None:
            raise SimulationError(
                "engine was not constructed with record_trajectories=True"
            )
        return np.stack(self._paths, axis=1)
