"""Client node in the simulated network."""

from __future__ import annotations

from typing import Any, List

import numpy as np

from repro.exceptions import SimulationError
from repro.netsim.metrics import EntityMeter


class Node:
    """A user/client: an id, a neighbor list, an inbox, and held items.

    The node itself is policy-free — protocol logic lives in
    :mod:`repro.protocols`; the node only tracks state and meters.
    """

    def __init__(self, node_id: int, neighbors: np.ndarray, meter: EntityMeter):
        self.node_id = int(node_id)
        self.neighbors = np.asarray(neighbors, dtype=np.int64)
        self.meter = meter
        self.inbox: List[Any] = []
        self.held: List[Any] = []
        self.online = True

    def receive(self, payload: Any) -> None:
        """Accept a payload into the inbox (delivered next round)."""
        self.inbox.append(payload)
        self.meter.record_receive()
        self.meter.record_store()

    def collect_inbox(self) -> None:
        """Move inbox contents into held items (start-of-round step)."""
        self.held.extend(self.inbox)
        self.inbox.clear()

    def take_all(self) -> List[Any]:
        """Remove and return all held items."""
        items, self.held = self.held, []
        self.meter.record_release(len(items))
        return items

    def sample_neighbor(self, rng: np.random.Generator) -> int:
        """A uniformly random neighbor (the walk's next hop).

        Drawn as ``floor(u * degree)`` from one uniform double — the
        shared RNG contract with the vectorized engine, whose one array
        draw per round consumes the identical stream (see
        :mod:`repro.netsim.engine`).
        """
        if self.neighbors.size == 0:
            # Same exception type as the vectorized engine's isolated-
            # holder guard, so the backends fail identically when a
            # schedule swap strands an item on an isolated node.
            raise SimulationError(f"node {self.node_id} has no neighbors")
        # Clamp the boundary: floor(u * degree) stays below degree for
        # every conforming float64 draw, but a contract-violating u
        # (e.g. a stubbed generator yielding 1.0) would index one past
        # the slice.  Identical to the vectorized engine's clamp.
        offset = min(int(rng.random() * self.neighbors.size), self.neighbors.size - 1)
        return int(self.neighbors[offset])

    def __repr__(self) -> str:
        return (
            f"Node(id={self.node_id}, degree={self.neighbors.size}, "
            f"held={len(self.held)}, online={self.online})"
        )
