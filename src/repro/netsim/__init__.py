"""Round-based message-passing network simulator.

The substrate the protocol simulators run on: users exchange reports in
synchronous rounds, a :class:`~repro.netsim.server.Server` collects
final reports, and every entity is metered (messages sent/received,
peak queue memory) so the Table 3 complexity comparison can be
*measured* rather than asserted.

Two interchangeable backends realize the exchange under an exact shared
RNG contract (seeded runs agree bit for bit):

* ``backend="vectorized"`` — :class:`~repro.netsim.engine.VectorizedExchange`
  keeps every in-flight report in flat NumPy arrays and advances a round
  with a few gathers plus ``np.bincount`` metering; this is what the
  protocol simulators pick by default and it scales to millions of
  tokens.
* ``backend="faithful"`` — per-message over
  :class:`~repro.netsim.node.Node` objects; keeps message identity for
  adversary/audit scenarios and cross-validates the fast path.

An :class:`~repro.netsim.adversary.AdversaryView` records exactly what
the paper's threat model grants the central adversary: the linkage of
each final-round report to the user who sent it (but not to the report's
originator).
"""

from repro.netsim.engine import VectorizedExchange
from repro.netsim.message import Message
from repro.netsim.metrics import EntityMeter, MeterBoard, VectorMeterBoard
from repro.netsim.network import BACKENDS, RoundBasedNetwork
from repro.netsim.node import Node
from repro.netsim.server import Server
from repro.netsim.adversary import AdversaryView
from repro.netsim.faults import AdversarialDropout, DropoutModel, NoFaults, IndependentDropout
from repro.netsim.collusion import (
    CollusionAttackResult,
    run_collusion_attack,
    simulate_walk_trajectories,
)

__all__ = [
    "Message",
    "EntityMeter",
    "MeterBoard",
    "VectorMeterBoard",
    "VectorizedExchange",
    "BACKENDS",
    "RoundBasedNetwork",
    "Node",
    "Server",
    "AdversaryView",
    "DropoutModel",
    "NoFaults",
    "IndependentDropout",
    "AdversarialDropout",
    "CollusionAttackResult",
    "run_collusion_attack",
    "simulate_walk_trajectories",
]
