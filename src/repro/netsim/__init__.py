"""Round-based message-passing network simulator.

The substrate the protocol simulators run on: nodes exchange
:class:`~repro.netsim.message.Message` objects in synchronous rounds, a
:class:`~repro.netsim.server.Server` collects final reports, and every
entity is metered (messages sent/received, peak queue memory) so the
Table 3 complexity comparison can be *measured* rather than asserted.

An :class:`~repro.netsim.adversary.AdversaryView` records exactly what
the paper's threat model grants the central adversary: the linkage of
each final-round report to the user who sent it (but not to the report's
originator).
"""

from repro.netsim.message import Message
from repro.netsim.metrics import EntityMeter, MeterBoard
from repro.netsim.network import RoundBasedNetwork
from repro.netsim.node import Node
from repro.netsim.server import Server
from repro.netsim.adversary import AdversaryView
from repro.netsim.faults import AdversarialDropout, DropoutModel, NoFaults, IndependentDropout
from repro.netsim.collusion import (
    CollusionAttackResult,
    run_collusion_attack,
    simulate_walk_trajectories,
)

__all__ = [
    "Message",
    "EntityMeter",
    "MeterBoard",
    "RoundBasedNetwork",
    "Node",
    "Server",
    "AdversaryView",
    "DropoutModel",
    "NoFaults",
    "IndependentDropout",
    "AdversarialDropout",
    "CollusionAttackResult",
    "run_collusion_attack",
    "simulate_walk_trajectories",
]
