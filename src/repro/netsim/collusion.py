"""Empirical collusion-threat analysis (paper Section 4.5).

Colluding users threaten anonymity: a colluder who relays a report
learns *who handed it to her and when*, which anchors the report's
trajectory and sharpens the adversary's origin posterior.  The paper
defers collusion defenses to systems work (Tarzan/MorphMix); this
module quantifies the threat *empirically* — no new theory, just a
measurable attack:

1. simulate the token walks retaining full trajectories;
2. give the adversary the server's final-round links **plus** every
   (token, round, sender) observation made by a colluding relay;
3. attack: anchor each observed token at its *earliest* colluder
   observation — the sender seen at round ``r`` pins the walk after
   ``r - 1`` free rounds, so the origin posterior is the ``r - 1``-step
   reverse walk from that sender.  Unobserved tokens fall back to the
   final-holder posterior.

The measured linkage accuracy interpolates between the honest-but-
curious setting (no colluders, near-``1/n``) and full linkage (all
users collude: privacy collapses to the LDP guarantee), exactly the
degradation Section 3.3 describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.graphs.graph import Graph
from repro.graphs.spectral import stationary_distribution, transition_matrix
from repro.netsim.engine import VectorizedExchange
from repro.netsim.faults import DropoutModel
from repro.utils.rng import RngLike


def simulate_walk_trajectories(
    graph: Graph,
    steps: int,
    *,
    faults: Optional[DropoutModel] = None,
    rng: RngLike = None,
) -> np.ndarray:
    """Token trajectories: shape ``(n_tokens, steps + 1)``.

    Token ``i`` starts at node ``i``; column ``t`` is its holder after
    ``t`` rounds.  Runs on the shared vectorized exchange engine with
    trajectory recording, so the adversary sees exactly the process the
    protocol simulators execute (same RNG contract, optional faults).
    """
    if steps < 0:
        raise ValidationError(f"steps must be non-negative, got {steps}")
    engine = VectorizedExchange(
        graph, faults=faults, rng=rng, record_trajectories=True
    )
    engine.seed_tokens(np.arange(graph.num_nodes, dtype=np.int64))
    engine.run(steps)
    return engine.trajectories()


@dataclass(frozen=True)
class CollusionObservation:
    """One colluder sighting of a token."""

    token: int
    round_index: int
    sender: int


@dataclass
class CollusionAttackResult:
    """Outcome of the collusion linkage attack."""

    num_tokens: int
    num_colluders: int
    observed_tokens: int
    linkage_accuracy: float
    baseline_accuracy: float
    """Accuracy of the same posterior attack *without* colluders."""

    @property
    def observation_rate(self) -> float:
        """Fraction of tokens sighted by at least one colluder."""
        return self.observed_tokens / self.num_tokens


def _first_observations(
    trajectories: np.ndarray, colluders: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Earliest colluder sighting per token, as flat arrays.

    Returns ``(tokens, round_indices, senders)`` for every token sighted
    at least once.  Pure NumPy over the trajectory matrix: one boolean
    lookup gather, one ``any``/``argmax`` pair along the round axis.
    """
    colluders = np.asarray(colluders, dtype=np.int64).ravel()
    horizon = trajectories.shape[1]
    if colluders.size == 0 or horizon <= 1:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    bound = int(max(trajectories.max(), colluders.max())) + 1
    is_colluder = np.zeros(bound, dtype=bool)
    is_colluder[colluders] = True
    sightings = is_colluder[trajectories[:, 1:]]
    tokens = np.flatnonzero(sightings.any(axis=1))
    round_indices = sightings[tokens].argmax(axis=1) + 1
    senders = trajectories[tokens, round_indices - 1]
    return tokens, round_indices, senders


def collect_observations(
    trajectories: np.ndarray, colluders: np.ndarray
) -> List[CollusionObservation]:
    """Every earliest (token, round, sender) sighting by a colluder."""
    tokens, round_indices, senders = _first_observations(
        np.asarray(trajectories), colluders
    )
    return [
        CollusionObservation(
            token=int(token), round_index=int(round_index), sender=int(sender)
        )
        for token, round_index, sender in zip(tokens, round_indices, senders)
    ]


def _reverse_posterior_argmax(
    graph: Graph, anchor: int, free_rounds: int
) -> int:
    """MAP origin for a walk anchored at ``anchor`` after ``free_rounds``.

    By reversibility of the degree-biased walk, ``P(origin = i | at
    anchor after r rounds)`` is proportional to ``pi_i M^r[i, anchor]``
    under a uniform origin prior; we evolve the reverse walk from the
    anchor and reweight by degrees.

    Scalar reference kept for the batched-parity oracle; the attack
    itself runs :func:`_batched_reverse_posterior_argmax`.
    """
    if free_rounds == 0:
        return anchor
    matrix_t = transition_matrix(graph).T.tocsr()
    distribution = np.zeros(graph.num_nodes)
    distribution[anchor] = 1.0
    # Reverse chain: P(X_0 = i | X_r = a) ∝ pi_i P_i->a^{(r)}; for the
    # degree-biased chain the time reversal equals the forward chain, so
    # evolving from the anchor gives the posterior up to the pi reweight.
    for _ in range(free_rounds):
        distribution = matrix_t @ distribution
    pi = stationary_distribution(graph)
    posterior = distribution * pi
    return int(np.argmax(posterior))


#: Cap on dense-block cells (num_nodes x anchor columns) evolved at
#: once; larger anchor sets are processed in column chunks so memory
#: stays bounded on big graphs (the per-token loop this replaces was
#: O(n) memory).
_MAX_BLOCK_CELLS = 8_000_000


def _batched_reverse_posterior_argmax(
    graph: Graph, anchors: np.ndarray, free_rounds: np.ndarray
) -> np.ndarray:
    """MAP origins for many ``(anchor, free_rounds)`` queries at once.

    One dense ``(n, k)`` block of the ``k`` unique anchors' one-hot
    columns is pushed through the sparse reverse chain; every query
    reads its answer off the block at its own horizon.  Each column
    applies exactly the matrix-vector sequence of the scalar reference,
    so the guesses match it bit for bit — with one chain evolution per
    column chunk and one stationary-distribution solve total, instead
    of one per token.
    """
    anchors = np.asarray(anchors, dtype=np.int64)
    free_rounds = np.asarray(free_rounds, dtype=np.int64)
    guesses = np.empty(anchors.size, dtype=np.int64)
    if anchors.size == 0:
        return guesses
    zero_rounds = free_rounds == 0
    guesses[zero_rounds] = anchors[zero_rounds]
    pending = np.flatnonzero(~zero_rounds)
    if not pending.size:
        return guesses
    unique_anchors, anchor_columns = np.unique(
        anchors[pending], return_inverse=True
    )
    matrix_t = transition_matrix(graph).T.tocsr()
    pi = stationary_distribution(graph)
    pi_column = pi[:, np.newaxis]
    chunk = max(1, _MAX_BLOCK_CELLS // graph.num_nodes)
    for start in range(0, unique_anchors.size, chunk):
        columns = unique_anchors[start:start + chunk]
        in_chunk = (anchor_columns >= start) & (
            anchor_columns < start + columns.size
        )
        queries = pending[in_chunk]
        offsets = anchor_columns[in_chunk] - start
        horizons = free_rounds[queries]
        block = np.zeros((graph.num_nodes, columns.size))
        block[columns, np.arange(columns.size)] = 1.0
        max_rounds = int(horizons.max())
        for rounds in range(1, max_rounds + 1):
            block = matrix_t @ block
            due = horizons == rounds
            if due.any():
                posterior = block[:, offsets[due]] * pi_column
                guesses[queries[due]] = posterior.argmax(axis=0)
    return guesses


def run_collusion_attack(
    graph: Graph,
    rounds: int,
    colluders: Sequence[int],
    *,
    rng: RngLike = None,
) -> CollusionAttackResult:
    """Measure linkage accuracy with and without the colluder set."""
    colluder_array = np.asarray(list(colluders), dtype=np.int64)
    if colluder_array.size and (
        colluder_array.min() < 0 or colluder_array.max() >= graph.num_nodes
    ):
        raise ValidationError("colluder ids out of range")
    trajectories = simulate_walk_trajectories(graph, rounds, rng=rng)
    n = graph.num_nodes
    final_holders = trajectories[:, -1]

    # Colluder-aided anchors: the earliest sighting per observed token.
    tokens, round_indices, senders = _first_observations(
        trajectories, colluder_array
    )

    # One batched posterior pass answers both attacks: the baseline
    # anchors every token at its final holder with the full horizon,
    # the aided attack re-anchors observed tokens at their sighting.
    all_guesses = _batched_reverse_posterior_argmax(
        graph,
        np.concatenate([final_holders, senders]),
        np.concatenate([np.full(n, rounds, dtype=np.int64), round_indices - 1]),
    )
    baseline_guesses = all_guesses[:n]
    baseline_accuracy = float(np.mean(baseline_guesses == np.arange(n)))

    guesses = baseline_guesses.copy()
    guesses[tokens] = all_guesses[n:]
    accuracy = float(np.mean(guesses == np.arange(n)))
    return CollusionAttackResult(
        num_tokens=n,
        num_colluders=int(colluder_array.size),
        observed_tokens=int(tokens.size),
        linkage_accuracy=accuracy,
        baseline_accuracy=baseline_accuracy,
    )
