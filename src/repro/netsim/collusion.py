"""Empirical collusion-threat analysis (paper Section 4.5).

Colluding users threaten anonymity: a colluder who relays a report
learns *who handed it to her and when*, which anchors the report's
trajectory and sharpens the adversary's origin posterior.  The paper
defers collusion defenses to systems work (Tarzan/MorphMix); this
module quantifies the threat *empirically* — no new theory, just a
measurable attack:

1. simulate the token walks retaining full trajectories;
2. give the adversary the server's final-round links **plus** every
   (token, round, sender) observation made by a colluding relay;
3. attack: anchor each observed token at its *earliest* colluder
   observation — the sender seen at round ``r`` pins the walk after
   ``r - 1`` free rounds, so the origin posterior is the ``r - 1``-step
   reverse walk from that sender.  Unobserved tokens fall back to the
   final-holder posterior.

The measured linkage accuracy interpolates between the honest-but-
curious setting (no colluders, near-``1/n``) and full linkage (all
users collude: privacy collapses to the LDP guarantee), exactly the
degradation Section 3.3 describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.graphs.graph import Graph
from repro.graphs.spectral import stationary_distribution, transition_matrix
from repro.netsim.engine import VectorizedExchange
from repro.netsim.faults import DropoutModel
from repro.utils.rng import RngLike


def simulate_walk_trajectories(
    graph: Graph,
    steps: int,
    *,
    faults: Optional[DropoutModel] = None,
    rng: RngLike = None,
) -> np.ndarray:
    """Token trajectories: shape ``(n_tokens, steps + 1)``.

    Token ``i`` starts at node ``i``; column ``t`` is its holder after
    ``t`` rounds.  Runs on the shared vectorized exchange engine with
    trajectory recording, so the adversary sees exactly the process the
    protocol simulators execute (same RNG contract, optional faults).
    """
    if steps < 0:
        raise ValidationError(f"steps must be non-negative, got {steps}")
    engine = VectorizedExchange(
        graph, faults=faults, rng=rng, record_trajectories=True
    )
    engine.seed_tokens(np.arange(graph.num_nodes, dtype=np.int64))
    engine.run(steps)
    return engine.trajectories()


@dataclass(frozen=True)
class CollusionObservation:
    """One colluder sighting of a token."""

    token: int
    round_index: int
    sender: int


@dataclass
class CollusionAttackResult:
    """Outcome of the collusion linkage attack."""

    num_tokens: int
    num_colluders: int
    observed_tokens: int
    linkage_accuracy: float
    baseline_accuracy: float
    """Accuracy of the same posterior attack *without* colluders."""

    @property
    def observation_rate(self) -> float:
        """Fraction of tokens sighted by at least one colluder."""
        return self.observed_tokens / self.num_tokens


def collect_observations(
    trajectories: np.ndarray, colluders: np.ndarray
) -> List[CollusionObservation]:
    """Every earliest (token, round, sender) sighting by a colluder."""
    colluder_set = set(int(c) for c in np.asarray(colluders).ravel())
    observations: List[CollusionObservation] = []
    num_tokens, horizon = trajectories.shape
    for token in range(num_tokens):
        path = trajectories[token]
        for round_index in range(1, horizon):
            if int(path[round_index]) in colluder_set:
                observations.append(
                    CollusionObservation(
                        token=token,
                        round_index=round_index,
                        sender=int(path[round_index - 1]),
                    )
                )
                break
    return observations


def _reverse_posterior_argmax(
    graph: Graph, anchor: int, free_rounds: int
) -> int:
    """MAP origin for a walk anchored at ``anchor`` after ``free_rounds``.

    By reversibility of the degree-biased walk, ``P(origin = i | at
    anchor after r rounds)`` is proportional to ``pi_i M^r[i, anchor]``
    under a uniform origin prior; we evolve the reverse walk from the
    anchor and reweight by degrees.
    """
    if free_rounds == 0:
        return anchor
    matrix_t = transition_matrix(graph).T.tocsr()
    distribution = np.zeros(graph.num_nodes)
    distribution[anchor] = 1.0
    # Reverse chain: P(X_0 = i | X_r = a) ∝ pi_i P_i->a^{(r)}; for the
    # degree-biased chain the time reversal equals the forward chain, so
    # evolving from the anchor gives the posterior up to the pi reweight.
    for _ in range(free_rounds):
        distribution = matrix_t @ distribution
    pi = stationary_distribution(graph)
    posterior = distribution * pi
    return int(np.argmax(posterior))


def run_collusion_attack(
    graph: Graph,
    rounds: int,
    colluders: Sequence[int],
    *,
    rng: RngLike = None,
) -> CollusionAttackResult:
    """Measure linkage accuracy with and without the colluder set."""
    colluder_array = np.asarray(list(colluders), dtype=np.int64)
    if colluder_array.size and (
        colluder_array.min() < 0 or colluder_array.max() >= graph.num_nodes
    ):
        raise ValidationError("colluder ids out of range")
    trajectories = simulate_walk_trajectories(graph, rounds, rng=rng)
    n = graph.num_nodes
    final_holders = trajectories[:, -1]

    # Baseline: posterior attack from the final-round link only.
    baseline_guesses = np.array(
        [_reverse_posterior_argmax(graph, int(h), rounds) for h in final_holders]
    )
    baseline_accuracy = float(np.mean(baseline_guesses == np.arange(n)))

    # Colluder-aided attack: anchor at the earliest sighting.
    observations = {
        obs.token: obs
        for obs in collect_observations(trajectories, colluder_array)
    }
    guesses = baseline_guesses.copy()
    for token, obs in observations.items():
        guesses[token] = _reverse_posterior_argmax(
            graph, obs.sender, obs.round_index - 1
        )
    accuracy = float(np.mean(guesses == np.arange(n)))
    return CollusionAttackResult(
        num_tokens=n,
        num_colluders=int(colluder_array.size),
        observed_tokens=len(observations),
        linkage_accuracy=accuracy,
        baseline_accuracy=baseline_accuracy,
    )
