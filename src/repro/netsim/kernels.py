"""Compiled exchange backend: fused single-pass round kernels.

:class:`~repro.netsim.engine.VectorizedExchange` advances a round as a
chain of separate NumPy passes — fault mask, mover split, degree gather,
hop draw, destination gather, two bincounts, three meter updates, and a
stable argsort — each streaming the full token array through memory,
with a Python-level trip between every round.  This module collapses the
per-round work into **one pass** over the token array: mover selection,
clamped hop offset, CSR destination gather, and all five meter
accumulations (sends / receipts / current / peak / held) happen in a
single fused loop, and the stable argsort that maintains the faithful
inbox-iteration order is replaced by an O(tokens + nodes) counting sort
that realizes the identical permutation.

Two interchangeable implementations back the kernels:

* **numba** — the fused loops JIT-compiled to machine code (install the
  ``repro[compiled]`` extra).  A multi-round driver stays out of the
  Python interpreter between rounds entirely.
* **numpy** — a pure-NumPy fallback using the same pre-allocated
  buffers, so ``backend="compiled"`` exists (and stays bit-identical)
  on every install.  Without numba it performs like the vectorized
  engine, not worse.

RNG contract (exact, not statistical)
-------------------------------------
The compiled backend consumes the *same* random stream in the *same*
order as both existing backends: the fault model's draw first, then one
uniform double per moving token in faithful iteration order.  Uniforms
are pre-drawn per round (``Generator.random(k)`` produces the identical
stream to ``k`` scalar calls) and, on the fused multi-round fast path,
for several rounds at once (``random(a)`` then ``random(b)`` is the
identical stream to ``random(a + b)``) — so seeded runs reproduce the
faithful and vectorized backends bit for bit, including schedule swaps,
fault masks, and drain→reseed (see ``tests/netsim/test_engine.py``).

Failure semantics
-----------------
With numba missing the backend silently uses the NumPy kernels; callers
that *require* JIT speed (``require_jit=True`` or
:func:`set_require_jit`) get a loud
:class:`~repro.exceptions.BackendUnavailableError` instead of a silent
10x regression.  numba installed-but-broken always raises: a deployment
that shipped the extra asked for compiled speed.
"""

from __future__ import annotations

from importlib import util as _importlib_util
from typing import Callable, Dict, Optional, Union

import numpy as np

from repro.exceptions import BackendUnavailableError, SimulationError
from repro.graphs.dynamic import DynamicGraphSchedule
from repro.graphs.graph import Graph
from repro.netsim.engine import VectorizedExchange
from repro.netsim.faults import DropoutModel, NoFaults
from repro.utils.rng import RngLike

#: Whether the optional numba dependency is importable at all.
NUMBA_AVAILABLE = _importlib_util.find_spec("numba") is not None

#: Cap on a single pre-drawn uniform block for the fused multi-round
#: driver: ~16M doubles (128 MB).  Drawing per block instead of per
#: campaign bounds memory while leaving the RNG stream unchanged.
_UNIFORM_BLOCK = 1 << 24


# ----------------------------------------------------------------------
# Fused loop kernels (numba-compilable; also runnable as plain Python,
# which is how the test suite exercises the JIT code path without numba)
# ----------------------------------------------------------------------
def _round_loop(order, positions, offline, uniforms, degrees, indptr,
                indices, sends, receipts, kept, messages_sent,
                messages_received, current_items, peak_items, stay_buf,
                move_buf, new_order, cursors):
    """One exchange round, fused into a single pass over the tokens.

    Returns the mover count, or ``-1`` if a mover sits on an isolated
    node (callers pre-check, so ``-1`` marks an internal inconsistency).
    ``new_order`` receives the next round's iteration order via a stable
    counting sort: kept items first (old order), then arrivals in send
    order, per ascending holder — the exact permutation
    ``sequence[argsort(positions[sequence], kind="stable")]`` realizes.
    """
    num_nodes = degrees.shape[0]
    total = order.shape[0]
    for node in range(num_nodes):
        sends[node] = 0
        receipts[node] = 0
        kept[node] = 0
    stays = 0
    moves = 0
    for slot in range(total):
        token = order[slot]
        source = positions[token]
        if offline[source]:
            stay_buf[stays] = token
            stays += 1
            kept[source] += 1
        else:
            degree = degrees[source]
            if degree == 0:
                return -1
            hop = np.int64(uniforms[moves] * degree)
            if hop >= degree:  # clamp contract-violating draws (u == 1.0)
                hop = degree - 1
            destination = indices[indptr[source] + hop]
            positions[token] = destination
            move_buf[moves] = token
            moves += 1
            sends[source] += 1
            receipts[destination] += 1
    base = np.int64(0)
    for node in range(num_nodes):
        messages_sent[node] += sends[node]
        messages_received[node] += receipts[node]
        if offline[node]:
            held = current_items[node] + receipts[node]
        else:
            held = receipts[node]
        current_items[node] = held
        if held > peak_items[node]:
            peak_items[node] = held
        cursors[node] = base
        base += kept[node] + receipts[node]
    for slot in range(stays):
        token = stay_buf[slot]
        node = positions[token]
        new_order[cursors[node]] = token
        cursors[node] += 1
    for slot in range(moves):
        token = move_buf[slot]
        node = positions[token]
        new_order[cursors[node]] = token
        cursors[node] += 1
    return moves


def _rounds_loop(order, positions, uniforms, degrees, indptr, indices,
                 sends, receipts, messages_sent, messages_received,
                 current_items, peak_items, alt_order, cursors, rounds):
    """``rounds`` fault-free static-graph rounds without leaving the loop.

    Specialized for :class:`~repro.netsim.faults.NoFaults` on a static
    graph: every token moves every round, so the pre-drawn ``uniforms``
    hold ``rounds * total`` doubles and the iteration order ping-pongs
    between ``order`` and ``alt_order`` (after an odd number of rounds
    the final order lives in ``alt_order`` — the driver swaps).  Returns
    ``0``, or ``-1`` on an isolated holder (callers pre-check).
    """
    num_nodes = degrees.shape[0]
    total = order.shape[0]
    draw = 0
    source_order = order
    target_order = alt_order
    for _ in range(rounds):
        for node in range(num_nodes):
            sends[node] = 0
            receipts[node] = 0
        for slot in range(total):
            token = source_order[slot]
            source = positions[token]
            degree = degrees[source]
            if degree == 0:
                return -1
            hop = np.int64(uniforms[draw] * degree)
            draw += 1
            if hop >= degree:
                hop = degree - 1
            destination = indices[indptr[source] + hop]
            positions[token] = destination
            sends[source] += 1
            receipts[destination] += 1
        base = np.int64(0)
        for node in range(num_nodes):
            messages_sent[node] += sends[node]
            messages_received[node] += receipts[node]
            current_items[node] = receipts[node]
            if receipts[node] > peak_items[node]:
                peak_items[node] = receipts[node]
            cursors[node] = base
            base += receipts[node]
        for slot in range(total):
            token = source_order[slot]
            node = positions[token]
            target_order[cursors[node]] = token
            cursors[node] += 1
        swap = source_order
        source_order = target_order
        target_order = swap
    return 0


# ----------------------------------------------------------------------
# Pure-NumPy fallback kernels (same signatures, same buffers)
# ----------------------------------------------------------------------
def _round_numpy(order, positions, offline, uniforms, degrees, indptr,
                 indices, sends, receipts, kept, messages_sent,
                 messages_received, current_items, peak_items, stay_buf,
                 move_buf, new_order, cursors):
    """NumPy realization of :func:`_round_loop` (same buffers, fewer
    allocations than the vectorized engine's ``run_round``)."""
    num_nodes = degrees.shape[0]
    holders = positions[order]
    moving = ~offline[holders]
    movers = order[moving]
    stayers = order[~moving]
    sources = holders[moving]
    source_degrees = degrees[sources]
    if movers.size and source_degrees.min() == 0:
        return -1
    hops = (uniforms[: movers.size] * source_degrees).astype(np.int64)
    np.minimum(hops, source_degrees - 1, out=hops)
    destinations = indices[indptr[sources] + hops]
    positions[movers] = destinations
    sends[:] = np.bincount(sources, minlength=num_nodes)
    receipts[:] = np.bincount(destinations, minlength=num_nodes)
    kept[:] = np.bincount(
        positions[stayers], minlength=num_nodes
    ) if stayers.size else 0
    messages_sent += sends
    messages_received += receipts
    np.add(current_items, receipts, out=current_items, where=offline)
    np.copyto(current_items, receipts, where=~offline)
    np.maximum(peak_items, current_items, out=peak_items)
    split = stayers.size
    new_order[:split] = stayers
    new_order[split:] = movers
    # Stable sort on int64 keys uses radix internally — O(total) passes,
    # realizing the identical permutation to the counting sort.
    new_order[:] = new_order[np.argsort(positions[new_order], kind="stable")]
    return int(movers.size)


def _rounds_numpy(order, positions, uniforms, degrees, indptr, indices,
                  sends, receipts, messages_sent, messages_received,
                  current_items, peak_items, alt_order, cursors, rounds):
    """NumPy realization of :func:`_rounds_loop` (NoFaults, static)."""
    num_nodes = degrees.shape[0]
    total = order.shape[0]
    source_order = order
    target_order = alt_order
    offset = 0
    for _ in range(rounds):
        holders = positions[source_order]
        block = uniforms[offset: offset + total]
        offset += total
        source_degrees = degrees[holders]
        hops = (block * source_degrees).astype(np.int64)
        np.minimum(hops, source_degrees - 1, out=hops)
        destinations = indices[indptr[holders] + hops]
        positions[source_order] = destinations
        sends[:] = np.bincount(holders, minlength=num_nodes)
        receipts[:] = np.bincount(destinations, minlength=num_nodes)
        messages_sent += sends
        messages_received += receipts
        current_items[:] = receipts
        np.maximum(peak_items, current_items, out=peak_items)
        # All tokens move: arrivals in send order == source_order, so a
        # stable sort by destination is the full order maintenance.
        target_order[:] = source_order[
            np.argsort(destinations, kind="stable")
        ]
        source_order, target_order = target_order, source_order
    return 0


# ----------------------------------------------------------------------
# Implementation resolution (numba JIT with warm-up, else NumPy)
# ----------------------------------------------------------------------
_KERNELS: Dict[str, Dict[str, Callable]] = {
    "numpy": {"round": _round_numpy, "rounds": _rounds_numpy},
}
_RESOLVED: Dict[str, object] = {"implementation": None, "error": None}
_REQUIRE_JIT = False


def set_require_jit(flag: bool) -> bool:
    """Set the process-wide JIT requirement; returns the previous value.

    With the requirement on, constructing a compiled engine without a
    working numba JIT raises :class:`BackendUnavailableError` instead of
    silently using the NumPy fallback (the CLI's ``--require-jit``).
    """
    global _REQUIRE_JIT
    previous = _REQUIRE_JIT
    _REQUIRE_JIT = bool(flag)
    return previous


def require_jit_enabled() -> bool:
    """Whether the process-wide JIT requirement is on."""
    return _REQUIRE_JIT


def _warm_up(round_kernel: Callable, rounds_kernel: Callable) -> None:
    """Force JIT specialization on a 2-node toy so compile errors
    surface at resolution time, not mid-simulation."""
    degrees = np.array([1, 1], dtype=np.int64)
    indptr = np.array([0, 1, 2], dtype=np.int64)
    indices = np.array([1, 0], dtype=np.int64)
    order = np.array([0], dtype=np.int64)
    positions = np.array([0], dtype=np.int64)
    offline = np.zeros(2, dtype=bool)
    uniforms = np.array([0.25], dtype=np.float64)
    node_buffers = [np.zeros(2, dtype=np.int64) for _ in range(7)]
    token_buffers = [np.zeros(1, dtype=np.int64) for _ in range(3)]
    sends, receipts, kept, sent, received, current, peak = node_buffers
    stay, move, new_order = token_buffers
    cursors = np.zeros(2, dtype=np.int64)
    status = round_kernel(order, positions, offline, uniforms, degrees,
                          indptr, indices, sends, receipts, kept, sent,
                          received, current, peak, stay, move, new_order,
                          cursors)
    if status != 1:
        raise RuntimeError(f"round kernel warm-up returned {status}")
    status = rounds_kernel(new_order, positions, uniforms, degrees,
                           indptr, indices, sends, receipts, sent,
                           received, current, peak, move, cursors, 1)
    if status != 0:
        raise RuntimeError(f"multi-round kernel warm-up returned {status}")


def _load_numba_kernels() -> Dict[str, Callable]:
    import numba

    round_kernel = numba.njit(cache=True, nogil=True)(_round_loop)
    rounds_kernel = numba.njit(cache=True, nogil=True)(_rounds_loop)
    _warm_up(round_kernel, rounds_kernel)
    return {"round": round_kernel, "rounds": rounds_kernel}


def resolve_implementation(require_jit: Optional[bool] = None) -> str:
    """Resolve (once per process) which kernels back ``compiled``.

    Returns ``"numba"`` or ``"numpy"``.  Raises
    :class:`BackendUnavailableError` when numba is installed but cannot
    JIT the kernels, or when JIT is required (argument, else the
    process-wide :func:`set_require_jit` flag) and unavailable.
    """
    required = _REQUIRE_JIT if require_jit is None else bool(require_jit)
    implementation = _RESOLVED["implementation"]
    if implementation is None:
        if NUMBA_AVAILABLE:
            try:
                _KERNELS["numba"] = _load_numba_kernels()
                implementation = "numba"
            except Exception as error:
                _RESOLVED["implementation"] = "broken"
                _RESOLVED["error"] = error
                implementation = "broken"
        else:
            implementation = "numpy"
        _RESOLVED["implementation"] = implementation
    if implementation == "broken":
        raise BackendUnavailableError(
            "numba is installed but failed to JIT the exchange kernels: "
            f"{_RESOLVED['error']}"
        )
    if required and implementation != "numba":
        raise BackendUnavailableError(
            "the compiled backend was asked to JIT but numba is not "
            "installed; install the repro[compiled] extra or drop the "
            "JIT requirement to use the pure-NumPy fallback kernels"
        )
    return implementation


def backend_info() -> Dict[str, object]:
    """Introspection payload for ``/stats`` and the CLI: which kernels
    the ``compiled`` backend would use in this process."""
    try:
        implementation = resolve_implementation(require_jit=False)
    except BackendUnavailableError:
        implementation = "broken"
    return {
        "numba_available": NUMBA_AVAILABLE,
        "compiled_kernels": implementation,
        "require_jit": _REQUIRE_JIT,
    }


def backend_label(engine: str) -> str:
    """The resolved backend name a run summary records for ``engine``.

    ``compiled`` runs report which kernels actually executed
    (``compiled-numba`` vs ``compiled-numpy``) so archived results stay
    interpretable when the same scenario ran on different installs.
    """
    if engine in ("fast", "vectorized"):
        return "vectorized"
    if engine == "faithful":
        return "faithful"
    if engine == "compiled":
        try:
            return f"compiled-{resolve_implementation(require_jit=False)}"
        except BackendUnavailableError:
            return "compiled-broken"
    return str(engine)


# ----------------------------------------------------------------------
# The compiled engine
# ----------------------------------------------------------------------
class _RoundBuffers:
    """Pre-allocated per-round scratch, reused across rounds.

    The vectorized engine allocates ~8 fresh arrays per round; these
    live for the campaign and are rebuilt only when the token count
    changes (seed, drain→reseed)."""

    __slots__ = ("num_tokens", "sends", "receipts", "kept", "cursors",
                 "stay", "move", "alt_order")

    def __init__(self, num_nodes: int, num_tokens: int):
        self.num_tokens = num_tokens
        self.sends = np.zeros(num_nodes, dtype=np.int64)
        self.receipts = np.zeros(num_nodes, dtype=np.int64)
        self.kept = np.zeros(num_nodes, dtype=np.int64)
        self.cursors = np.zeros(num_nodes, dtype=np.int64)
        self.stay = np.empty(num_tokens, dtype=np.int64)
        self.move = np.empty(num_tokens, dtype=np.int64)
        self.alt_order = np.empty(num_tokens, dtype=np.int64)


class CompiledExchange(VectorizedExchange):
    """Fused-kernel realization of the synchronous exchange rounds.

    Drop-in subclass of :class:`VectorizedExchange` with identical
    semantics and RNG stream; only the per-round execution strategy
    differs (see the module docstring).  ``require_jit`` overrides the
    process-wide :func:`set_require_jit` flag for this engine.
    """

    def __init__(
        self,
        graph: Union[Graph, DynamicGraphSchedule],
        *,
        faults: Optional[DropoutModel] = None,
        rng: RngLike = None,
        record_trajectories: bool = False,
        require_jit: Optional[bool] = None,
    ):
        super().__init__(graph, faults=faults, rng=rng,
                         record_trajectories=record_trajectories)
        self.implementation = resolve_implementation(require_jit)
        kernels = _KERNELS[self.implementation]
        self._round_kernel = kernels["round"]
        self._rounds_kernel = kernels["rounds"]
        self._buffers: Optional[_RoundBuffers] = None

    def _ensure_buffers(self) -> _RoundBuffers:
        buffers = self._buffers
        if buffers is None or buffers.num_tokens != self.num_tokens:
            buffers = _RoundBuffers(self.num_users, self.num_tokens)
            self._buffers = buffers
        return buffers

    def run_round(self) -> None:
        """One synchronous exchange round, fused into one kernel call."""
        self._sync_schedule()
        offline = self.faults.offline_mask(
            self.num_users, self.round_index, self.rng
        )
        if self._drained:
            # Matches the base engine: the no-op round still consumes
            # the fault draw and advances the clock.
            self.round_index += 1
            return
        meters = self.meters
        held = meters.current_items  # == bincount(token_position)
        if bool(np.any((self._degrees == 0) & (held > 0) & ~offline)):
            raise SimulationError(
                f"round {self.round_index}: a held token's node is "
                "isolated in the current topology"
            )
        mover_count = self.num_tokens - int(held[offline].sum())
        uniforms = self.rng.random(mover_count)
        buffers = self._ensure_buffers()
        status = self._round_kernel(
            self._order, self.token_position, offline, uniforms,
            self._degrees, self._indptr, self._indices,
            buffers.sends, buffers.receipts, buffers.kept,
            meters.messages_sent, meters.messages_received,
            meters.current_items, meters.peak_items,
            buffers.stay, buffers.move, buffers.alt_order, buffers.cursors,
        )
        if status < 0:
            raise SimulationError(
                f"round {self.round_index}: a held token's node is "
                "isolated in the current topology"
            )
        self._order, buffers.alt_order = buffers.alt_order, self._order
        self.round_index += 1
        if self._paths is not None:
            self._paths.append(self.token_position.copy())

    def run(self, rounds: int) -> None:
        """Run ``rounds`` rounds; fuses them into single kernel calls on
        the fault-free static-graph fast path."""
        if rounds < 0:
            raise SimulationError(f"rounds must be non-negative, got {rounds}")
        remaining = int(rounds)
        if remaining == 0:
            return
        fusable = (
            self.schedule is None
            and type(self.faults) is NoFaults
            and self._paths is None
        )
        if not fusable:
            for _ in range(remaining):
                self.run_round()
            return
        if self._drained or self.num_tokens == 0:
            # NoFaults draws nothing and no token moves: the rounds only
            # advance the clock (bit-identical to looping run_round).
            self.round_index += remaining
            return
        if bool(np.any(self._degrees == 0)):
            # Rare: isolated nodes present — defer to the per-round path
            # so the faithful error timing (and stream position at the
            # raise) is reproduced exactly.
            for _ in range(remaining):
                self.run_round()
            return
        meters = self.meters
        buffers = self._ensure_buffers()
        total = self.num_tokens
        block_rounds = max(1, _UNIFORM_BLOCK // total)
        done = 0
        while done < remaining:
            chunk = min(block_rounds, remaining - done)
            uniforms = self.rng.random(total * chunk)
            status = self._rounds_kernel(
                self._order, self.token_position, uniforms,
                self._degrees, self._indptr, self._indices,
                buffers.sends, buffers.receipts,
                meters.messages_sent, meters.messages_received,
                meters.current_items, meters.peak_items,
                buffers.alt_order, buffers.cursors, chunk,
            )
            if status < 0:
                raise SimulationError(
                    f"round {self.round_index + done}: a held token's "
                    "node is isolated in the current topology"
                )
            if chunk % 2:
                self._order, buffers.alt_order = (
                    buffers.alt_order, self._order
                )
            done += chunk
        self.round_index += remaining

    def run_compiled(self, rounds: int) -> None:
        """Alias of :meth:`run` — the fused multi-round driver."""
        self.run(rounds)
