"""Traffic and memory meters for simulated entities.

Table 3 of the paper compares *entity space complexity* (memory needed
by the shuffling entity) and *user traffic complexity* (reports sent per
user) across Prochlo, mix-nets, and network shuffling.  The meters here
measure exactly those quantities during simulation, so the benchmark can
fit the growth class empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np


@dataclass
class EntityMeter:
    """Counters for a single entity (user, relay, shuffler, or server)."""

    messages_sent: int = 0
    messages_received: int = 0
    current_items: int = 0
    peak_items: int = 0

    def record_send(self, count: int = 1) -> None:
        """Count ``count`` outgoing messages."""
        self.messages_sent += count

    def record_receive(self, count: int = 1) -> None:
        """Count ``count`` incoming messages."""
        self.messages_received += count

    def record_store(self, count: int = 1) -> None:
        """Track items entering this entity's memory."""
        self.current_items += count
        if self.current_items > self.peak_items:
            self.peak_items = self.current_items

    def record_release(self, count: int = 1) -> None:
        """Track items leaving this entity's memory."""
        self.current_items = max(0, self.current_items - count)

    @property
    def total_traffic(self) -> int:
        """Messages sent plus received."""
        return self.messages_sent + self.messages_received


class MeterBoard:
    """A board of per-entity meters with aggregate queries."""

    def __init__(self) -> None:
        self._meters: Dict[int, EntityMeter] = {}

    def meter(self, entity_id: int) -> EntityMeter:
        """The meter for ``entity_id``, created on first access."""
        if entity_id not in self._meters:
            self._meters[entity_id] = EntityMeter()
        return self._meters[entity_id]

    def __contains__(self, entity_id: int) -> bool:
        return entity_id in self._meters

    def __len__(self) -> int:
        return len(self._meters)

    def max_peak_items(self) -> int:
        """Largest peak memory across all metered entities."""
        if not self._meters:
            return 0
        return max(meter.peak_items for meter in self._meters.values())

    def max_messages_sent(self) -> int:
        """Largest send count across all metered entities."""
        if not self._meters:
            return 0
        return max(meter.messages_sent for meter in self._meters.values())

    def mean_messages_sent(self) -> float:
        """Mean send count across all metered entities."""
        if not self._meters:
            return 0.0
        return sum(m.messages_sent for m in self._meters.values()) / len(self._meters)

    def total_messages_sent(self) -> int:
        """Total messages sent by all metered entities."""
        return sum(m.messages_sent for m in self._meters.values())


class VectorMeterBoard:
    """Array-backed meter board maintained by the vectorized engine.

    Per-user counters live in flat NumPy arrays that the engine updates
    with one ``np.bincount`` per round, so metering a million tokens
    costs a few vector adds instead of millions of attribute increments.
    The query API mirrors :class:`MeterBoard`; ``meter(entity_id)``
    materializes an :class:`EntityMeter` *snapshot* (mutating it does
    not write back — the engine owns the counters).
    """

    def __init__(self, num_users: int, server_id: int):
        self._num_users = int(num_users)
        self._server_id = int(server_id)
        self.messages_sent = np.zeros(num_users, dtype=np.int64)
        self.messages_received = np.zeros(num_users, dtype=np.int64)
        self.current_items = np.zeros(num_users, dtype=np.int64)
        self.peak_items = np.zeros(num_users, dtype=np.int64)
        self._server = EntityMeter()

    @property
    def server_meter(self) -> EntityMeter:
        """The (live) server meter."""
        return self._server

    def meter(self, entity_id: int) -> EntityMeter:
        """Snapshot meter for ``entity_id`` (server meter is live)."""
        if entity_id == self._server_id:
            return self._server
        if not 0 <= entity_id < self._num_users:
            raise KeyError(f"no meter for entity {entity_id}")
        return EntityMeter(
            messages_sent=int(self.messages_sent[entity_id]),
            messages_received=int(self.messages_received[entity_id]),
            current_items=int(self.current_items[entity_id]),
            peak_items=int(self.peak_items[entity_id]),
        )

    def __contains__(self, entity_id: int) -> bool:
        return entity_id == self._server_id or 0 <= entity_id < self._num_users

    def __len__(self) -> int:
        return self._num_users + 1

    def max_peak_items(self) -> int:
        """Largest peak memory across all metered entities."""
        user_peak = int(self.peak_items.max()) if self._num_users else 0
        return max(user_peak, self._server.peak_items)

    def max_messages_sent(self) -> int:
        """Largest send count across all metered entities."""
        user_max = int(self.messages_sent.max()) if self._num_users else 0
        return max(user_max, self._server.messages_sent)

    def mean_messages_sent(self) -> float:
        """Mean send count across all metered entities (server included)."""
        total = int(self.messages_sent.sum()) + self._server.messages_sent
        return total / (self._num_users + 1)

    def total_messages_sent(self) -> int:
        """Total messages sent by all metered entities."""
        return int(self.messages_sent.sum()) + self._server.messages_sent
