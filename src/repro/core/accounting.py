"""A small privacy accountant for repeated data collections.

Network shuffling, like any DP mechanism, composes across repeated runs
(e.g. a daily telemetry collection).  The accountant tracks spent
``(eps, delta)`` pairs and answers "what do I have left" under either
basic or heterogeneous advanced composition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.amplification.composition import (
    basic_composition,
    heterogeneous_advanced_composition,
)
from repro.exceptions import BudgetExceededError
from repro.utils.validation import check_delta, check_epsilon


@dataclass
class PrivacyAccountant:
    """Tracks cumulative privacy loss against a total budget.

    Parameters
    ----------
    epsilon_budget, delta_budget:
        The total central-DP budget.
    composition:
        ``"basic"`` (parameters add) or ``"advanced"`` (Kairouz-Oh-
        Viswanath across the recorded epsilons; spends an extra
        ``advanced_delta`` slack).
    advanced_delta:
        The composition-slack delta consumed by advanced composition.
    """

    epsilon_budget: float
    delta_budget: float
    composition: str = "basic"
    advanced_delta: float = 1e-9
    _spent: List[Tuple[float, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon_budget, "epsilon_budget")
        check_delta(self.delta_budget, "delta_budget", allow_zero=True)
        if self.composition not in ("basic", "advanced"):
            raise ValueError(
                f"composition must be 'basic' or 'advanced', "
                f"got {self.composition!r}"
            )

    @property
    def num_recorded(self) -> int:
        """Number of recorded mechanism invocations."""
        return len(self._spent)

    def spent(self) -> Tuple[float, float]:
        """Cumulative ``(eps, delta)`` under the configured composition."""
        if not self._spent:
            return (0.0, 0.0)
        epsilons = [eps for eps, _ in self._spent]
        deltas = [delta for _, delta in self._spent]
        if self.composition == "basic":
            return basic_composition(epsilons, deltas)
        eps = heterogeneous_advanced_composition(epsilons, self.advanced_delta)
        return (eps, sum(deltas) + self.advanced_delta)

    def remaining(self) -> Tuple[float, float]:
        """Budget minus spend (floored at zero)."""
        eps, delta = self.spent()
        return (
            max(0.0, self.epsilon_budget - eps),
            max(0.0, self.delta_budget - delta),
        )

    def can_afford(self, epsilon: float, delta: float) -> bool:
        """Whether recording ``(epsilon, delta)`` would stay in budget."""
        trial = PrivacyAccountant(
            epsilon_budget=self.epsilon_budget,
            delta_budget=self.delta_budget,
            composition=self.composition,
            advanced_delta=self.advanced_delta,
        )
        trial._spent = list(self._spent) + [(epsilon, delta)]
        eps, total_delta = trial.spent()
        return eps <= self.epsilon_budget and total_delta <= self.delta_budget

    def record(self, epsilon: float, delta: float) -> None:
        """Record one mechanism invocation, enforcing the budget."""
        check_epsilon(epsilon, allow_zero=True)
        check_delta(delta, allow_zero=True)
        if not self.can_afford(epsilon, delta):
            eps_spent, delta_spent = self.spent()
            raise BudgetExceededError(
                f"recording (eps={epsilon}, delta={delta}) exceeds budget: "
                f"spent ({eps_spent:.4f}, {delta_spent:.2e}) of "
                f"({self.epsilon_budget}, {self.delta_budget})"
            )
        self._spent.append((float(epsilon), float(delta)))
