"""High-level public API.

:class:`~repro.core.shuffler.NetworkShuffler` bundles the whole stack —
graph analysis, protocol choice, round selection, privacy accounting —
behind a few calls:

    >>> from repro.core import NetworkShuffler
    >>> from repro.graphs import random_regular_graph
    >>> shuffler = NetworkShuffler(random_regular_graph(8, 1000, rng=0),
    ...                            epsilon0=1.0, delta=1e-6)
    >>> guarantee = shuffler.central_guarantee()       # Theorem 5.3 bound
    >>> result = shuffler.run(values, randomizer)      # simulate A_all
"""

from repro.core.accounting import PrivacyAccountant
from repro.core.campaign import Campaign, CampaignSummary, CollectionRecord
from repro.core.config import DEFAULT_CONFIG, ExperimentConfig
from repro.core.shuffler import NetworkShuffler

__all__ = [
    "PrivacyAccountant",
    "Campaign",
    "CampaignSummary",
    "CollectionRecord",
    "DEFAULT_CONFIG",
    "ExperimentConfig",
    "NetworkShuffler",
]
