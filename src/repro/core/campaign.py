"""Multi-collection campaigns: repeated network shuffling under a budget.

A deployment rarely collects once: telemetry repeats daily, federated
training for many epochs.  :class:`Campaign` runs a
:class:`~repro.core.shuffler.NetworkShuffler` repeatedly, records each
collection's central guarantee into a
:class:`~repro.core.accounting.PrivacyAccountant`, and stops before the
budget would be breached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from repro.core.accounting import PrivacyAccountant
from repro.core.shuffler import NetworkShuffler
from repro.ldp.base import LocalRandomizer
from repro.protocols.reports import ProtocolResult
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class CollectionRecord:
    """One completed collection round."""

    index: int
    epsilon: float
    delta: float
    result: ProtocolResult


@dataclass
class CampaignSummary:
    """Outcome of a campaign run."""

    collections: List[CollectionRecord] = field(default_factory=list)
    stopped_reason: str = ""

    @property
    def num_collections(self) -> int:
        """Completed collection count."""
        return len(self.collections)


class Campaign:
    """Run repeated collections until done or out of budget.

    Parameters
    ----------
    shuffler:
        The configured deployment (graph, protocol, rounds, eps0).
    accountant:
        The budget tracker; ``composition="advanced"`` is the natural
        choice for many repeats.
    """

    def __init__(self, shuffler: NetworkShuffler, accountant: PrivacyAccountant):
        self.shuffler = shuffler
        self.accountant = accountant
        self._guarantee = shuffler.central_guarantee()

    @property
    def per_collection_guarantee(self) -> tuple[float, float]:
        """``(eps, delta)`` charged per collection."""
        return (self._guarantee.epsilon, self._guarantee.delta)

    def affordable_collections(self, limit: int = 10_000) -> int:
        """How many more collections fit in the remaining budget."""
        trial = PrivacyAccountant(
            epsilon_budget=self.accountant.epsilon_budget,
            delta_budget=self.accountant.delta_budget,
            composition=self.accountant.composition,
            advanced_delta=self.accountant.advanced_delta,
        )
        trial._spent = list(self.accountant._spent)
        count = 0
        eps, delta = self.per_collection_guarantee
        while count < limit and trial.can_afford(eps, delta):
            trial.record(eps, delta)
            count += 1
        return count

    def run(
        self,
        value_source: Callable[[int, Any], Sequence[Any]],
        randomizer: Optional[LocalRandomizer] = None,
        *,
        max_collections: int = 100,
        rng: RngLike = None,
    ) -> CampaignSummary:
        """Collect repeatedly until ``max_collections`` or budget end.

        ``value_source(index, rng)`` supplies the population's values
        for collection ``index`` (data can drift between rounds).
        """
        generator = ensure_rng(rng)
        summary = CampaignSummary()
        eps, delta = self.per_collection_guarantee
        for index in range(max_collections):
            if not self.accountant.can_afford(eps, delta):
                summary.stopped_reason = "budget exhausted"
                return summary
            values = value_source(index, generator)
            result = self.shuffler.run(values, randomizer, rng=generator)
            self.accountant.record(eps, delta)
            summary.collections.append(
                CollectionRecord(
                    index=index, epsilon=eps, delta=delta, result=result
                )
            )
        summary.stopped_reason = "max collections reached"
        return summary
