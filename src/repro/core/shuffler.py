"""The :class:`NetworkShuffler` facade — the library's main entry point.

Wires together graph analysis, round selection, the protocol
simulators, and the privacy theorems, so a downstream user can go from
"here is my communication graph and local budget" to "here is my
central guarantee and my collected reports" without touching the
internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence


from repro.amplification.network_shuffle import (
    NetworkShuffleBound,
    epsilon_all_stationary,
    epsilon_all_symmetric,
    epsilon_from_report_sizes,
    epsilon_single_stationary,
    epsilon_single_symmetric,
)
from repro.exceptions import ValidationError
from repro.graphs.graph import Graph
from repro.graphs.spectral import SpectralSummary, spectral_summary
from repro.graphs.walks import position_distribution
from repro.ldp.base import LocalRandomizer
from repro.protocols.all_protocol import run_all_protocol
from repro.protocols.reports import ProtocolResult
from repro.protocols.single_protocol import run_single_protocol
from repro.utils.rng import RngLike
from repro.utils.validation import check_delta, check_epsilon


@dataclass(frozen=True)
class ShufflerConfig:
    """Resolved configuration of a :class:`NetworkShuffler`."""

    epsilon0: float
    delta: float
    protocol: str
    rounds: int
    analysis: str


class NetworkShuffler:
    """Network shuffling on a fixed communication graph.

    Parameters
    ----------
    graph:
        The communication network (must be ergodic: connected and
        non-bipartite, Theorem 4.3).
    epsilon0:
        Local randomizer budget the deployment will use.
    delta:
        Central failure probability for the amplification bounds (also
        used for the Lemma 5.1 ``delta2`` unless overridden).
    protocol:
        ``"all"`` (Algorithm 1) or ``"single"`` (Algorithm 2).
    rounds:
        Exchange rounds; ``None`` selects the mixing time
        ``alpha^{-1} log n`` (the paper's operating point).
    analysis:
        ``"stationary"`` (ergodic-graph bound, Theorems 5.3/5.5) or
        ``"symmetric"`` (exact k-regular tracking, Theorems 5.4/5.6 —
        requires a regular graph).
    """

    def __init__(
        self,
        graph: Graph,
        epsilon0: float,
        delta: float,
        *,
        protocol: str = "all",
        rounds: Optional[int] = None,
        analysis: str = "stationary",
    ):
        if protocol not in ("all", "single"):
            raise ValidationError(
                f"protocol must be 'all' or 'single', got {protocol!r}"
            )
        if analysis not in ("stationary", "symmetric"):
            raise ValidationError(
                f"analysis must be 'stationary' or 'symmetric', got {analysis!r}"
            )
        if analysis == "symmetric" and not graph.is_regular():
            raise ValidationError(
                "symmetric analysis (Theorems 5.4/5.6) requires a k-regular graph"
            )
        self.graph = graph
        self.epsilon0 = check_epsilon(epsilon0, "epsilon0")
        self.delta = check_delta(delta, "delta")
        self.protocol = protocol
        self.analysis = analysis
        self._summary: SpectralSummary = spectral_summary(graph)
        self.rounds = self._summary.mixing_time if rounds is None else int(rounds)
        if self.rounds < 1:
            raise ValidationError(f"rounds must be >= 1, got {self.rounds}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def spectral(self) -> SpectralSummary:
        """Spectral facts of the graph (gap, mixing time, Gamma_G)."""
        return self._summary

    @property
    def config(self) -> ShufflerConfig:
        """The resolved configuration."""
        return ShufflerConfig(
            epsilon0=self.epsilon0,
            delta=self.delta,
            protocol=self.protocol,
            rounds=self.rounds,
            analysis=self.analysis,
        )

    # ------------------------------------------------------------------
    # Privacy
    # ------------------------------------------------------------------
    def central_guarantee(
        self, *, rounds: Optional[int] = None
    ) -> NetworkShuffleBound:
        """The central-DP guarantee of this deployment (paper theorems).

        Selects the theorem matching ``(protocol, analysis)`` and
        evaluates it at ``rounds`` (default: the configured rounds).
        """
        steps = self.rounds if rounds is None else int(rounds)
        n = self.graph.num_nodes
        if self.analysis == "stationary":
            sum_squared = self._summary.sum_squared_bound(steps)
            if self.protocol == "all":
                return epsilon_all_stationary(
                    self.epsilon0, n, sum_squared, self.delta
                )
            return epsilon_single_stationary(
                self.epsilon0, n, sum_squared, self.delta
            )
        # Symmetric: exact per-user position distribution from node 0
        # (vertex-transitivity makes the choice of start irrelevant for
        # random regular graphs in expectation).
        distribution = position_distribution(self.graph, 0, steps)
        if self.protocol == "all":
            return epsilon_all_symmetric(
                self.epsilon0, n, distribution, self.delta
            )
        return epsilon_single_symmetric(
            self.epsilon0, n, distribution, self.delta
        )

    def empirical_guarantee(
        self, result: ProtocolResult
    ) -> float:
        """Theorem 6.1 accounting from a *realized* run's allocation.

        Tighter than :meth:`central_guarantee` because it skips the
        Lemma 5.1 concentration slack; valid for the observed run.
        """
        return epsilon_from_report_sizes(
            self.epsilon0, result.allocation, self.delta
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        values: Sequence[Any],
        randomizer: Optional[LocalRandomizer] = None,
        *,
        engine: str = "fast",
        rng: RngLike = None,
    ) -> ProtocolResult:
        """Simulate the configured protocol on this graph.

        ``randomizer.epsilon`` must match the configured ``epsilon0`` —
        a mismatch would make :meth:`central_guarantee` meaningless.
        """
        if randomizer is not None and abs(randomizer.epsilon - self.epsilon0) > 1e-12:
            raise ValidationError(
                f"randomizer epsilon ({randomizer.epsilon}) != configured "
                f"epsilon0 ({self.epsilon0})"
            )
        if self.protocol == "all":
            return run_all_protocol(
                self.graph,
                self.rounds,
                values=values,
                randomizer=randomizer,
                engine=engine,
                rng=rng,
            )
        return run_single_protocol(
            self.graph,
            self.rounds,
            values=values,
            randomizer=randomizer,
            engine=engine,
            rng=rng,
        )
