"""Shared accounting configuration.

The paper does not print its ``delta`` choices in the figures; we fix
``delta = delta2 = 1e-6`` throughout (comfortably below ``1/n`` for all
evaluated graphs, the paper's stated requirement) and record that choice
here so every layer — scenarios, experiments, auditing, the CLI —
agrees.  ``repro.experiments.config`` re-exports these names for the
experiment drivers.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments."""

    delta: float = 1e-6
    """Central composition failure probability."""
    delta2: float = 1e-6
    """Lemma 5.1 (report-load concentration) failure probability."""
    seed: int = 0
    """Base seed; experiments derive child streams from it."""
    dataset_scale: float = 1.0
    """Scale factor applied to materialized datasets (Google uses its
    own smaller default regardless)."""


DEFAULT_CONFIG = ExperimentConfig()
