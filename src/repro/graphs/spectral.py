"""Spectral machinery: transition matrices, spectral gap, mixing time.

Section 4.1 of the paper works with the row-stochastic transition matrix

    M_ij = A_ij / deg(i)        (i.e. M = D^{-1} A),

whose report-position dynamics are ``P(t+1) = M^T P(t)``, and with the
*normalized adjacency* ``N = D^{-1/2} A D^{-1/2}``, which is symmetric
and similar to ``M`` (so they share eigenvalues).  With eigenvalues
``1 = a_1 >= a_2 >= ... >= a_n > -1`` the *spectral gap* is

    alpha = min(1 - a_2, 1 - |a_n|),

and the mixing time is ``t ~= alpha^{-1} log n`` (Equation 5):
after that many steps ``TV(P(t), pi) <= sqrt(n) (1-alpha)^t <~ 1/sqrt(n)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.exceptions import GraphError
from repro.graphs.connectivity import require_ergodic
from repro.graphs.graph import Graph

#: Below this node count we use dense eigendecomposition (exact, simple);
#: above it, sparse Lanczos for the extreme eigenvalues only.
_DENSE_EIGEN_LIMIT = 1500


def transition_matrix(graph: Graph) -> sp.csr_matrix:
    """Row-stochastic random-walk matrix ``M = D^{-1} A``.

    Row ``i`` holds the probability of a report at node ``i`` moving to
    each neighbor: uniform over ``deg(i)`` neighbors.

    Raises
    ------
    GraphError
        If any node is isolated (division by zero degree).
    """
    degrees = graph.degrees().astype(np.float64)
    if np.any(degrees == 0):
        raise GraphError(
            "graph has isolated nodes; the transition matrix is undefined"
        )
    adjacency = graph.adjacency_matrix()
    inverse_degree = sp.diags(1.0 / degrees)
    return (inverse_degree @ adjacency).tocsr()


def normalized_adjacency(graph: Graph) -> sp.csr_matrix:
    """Symmetric normalized adjacency ``N = D^{-1/2} A D^{-1/2}``."""
    degrees = graph.degrees().astype(np.float64)
    if np.any(degrees == 0):
        raise GraphError(
            "graph has isolated nodes; the normalized adjacency is undefined"
        )
    adjacency = graph.adjacency_matrix()
    half = sp.diags(1.0 / np.sqrt(degrees))
    return (half @ adjacency @ half).tocsr()


def stationary_distribution(graph: Graph) -> np.ndarray:
    """Stationary distribution ``pi = k / 2m`` (Section 4.1).

    For an ergodic graph the walk converges to ``pi`` regardless of the
    initial distribution; for a k-regular graph ``pi`` is uniform.
    """
    degrees = graph.degrees().astype(np.float64)
    total = degrees.sum()
    if total == 0:
        raise GraphError("graph has no edges; stationary distribution undefined")
    return degrees / total


def normalized_adjacency_eigenvalues(
    graph: Graph, *, num_extreme: int = 2
) -> np.ndarray:
    """Extreme eigenvalues of the normalized adjacency, descending.

    For small graphs the full spectrum is returned (dense path).  For
    large graphs only the ``num_extreme`` largest-magnitude eigenvalues
    from each end are computed with Lanczos iteration — enough to derive
    the spectral gap.
    """
    n = graph.num_nodes
    matrix = normalized_adjacency(graph)
    if n <= _DENSE_EIGEN_LIMIT:
        eigenvalues = np.linalg.eigvalsh(matrix.toarray())
        return eigenvalues[::-1]
    k = min(max(num_extreme, 2), n - 2)
    largest = spla.eigsh(matrix, k=k, which="LA", return_eigenvectors=False)
    smallest = spla.eigsh(matrix, k=k, which="SA", return_eigenvectors=False)
    combined = np.unique(np.concatenate([largest, smallest]))
    return combined[::-1]


def spectral_gap(graph: Graph, *, validate: bool = True) -> float:
    """Spectral gap ``alpha = min(1 - a_2, 1 - |a_n|)``.

    ``alpha in (0, 1]`` for ergodic graphs; 0 for disconnected or
    bipartite graphs (which is why ``validate`` rejects them upfront with
    a clearer error).
    """
    if validate:
        require_ergodic(graph)
    eigenvalues = normalized_adjacency_eigenvalues(graph)
    if eigenvalues.size < 2:
        return 1.0
    second_largest = float(eigenvalues[1])
    smallest = float(eigenvalues[-1])
    gap = min(1.0 - second_largest, 1.0 - abs(smallest))
    # Clip tiny negative values caused by floating-point noise on
    # graphs that are exactly bipartite up to rounding.
    return max(gap, 0.0)


def mixing_time(
    graph: Graph,
    *,
    gap: Optional[float] = None,
    validate: bool = True,
) -> int:
    """Mixing time ``t = round(alpha^{-1} log n)`` (Equation 5).

    The paper runs every protocol for exactly this many rounds in the
    numerical analyses (Section 5.6).  ``gap`` short-circuits the
    eigen-computation when the caller already knows ``alpha``.
    """
    alpha = spectral_gap(graph, validate=validate) if gap is None else float(gap)
    if alpha <= 0.0:
        raise GraphError("spectral gap is zero; the walk never mixes")
    n = max(graph.num_nodes, 2)
    return max(1, int(round(np.log(n) / alpha)))


@dataclass(frozen=True)
class SpectralSummary:
    """Bundle of the spectral quantities the privacy bounds consume."""

    num_nodes: int
    num_edges: int
    spectral_gap: float
    mixing_time: int
    stationary_collision: float
    """``sum_i pi_i^2`` — the stationary limit of ``sum_i P_i(t)^2``."""
    irregularity_gamma: float
    """``Gamma_G = n * sum_i pi_i^2`` (Table 2); 1 for regular graphs."""

    def sum_squared_bound(self, steps: int) -> float:
        """Equation 7 upper bound: ``sum P_i(t)^2 <= sum pi_i^2 + (1-alpha)^{2t}``."""
        if steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        # A sum of squared probabilities never exceeds 1 (it is 1 exactly
        # when the distribution is a point mass at t=0).
        return min(
            1.0,
            self.stationary_collision + (1.0 - self.spectral_gap) ** (2 * steps),
        )


def spectral_summary(graph: Graph) -> SpectralSummary:
    """Compute every spectral quantity the amplification theorems need."""
    require_ergodic(graph)
    pi = stationary_distribution(graph)
    collision = float(np.dot(pi, pi))
    alpha = spectral_gap(graph, validate=False)
    return SpectralSummary(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        spectral_gap=alpha,
        mixing_time=mixing_time(graph, gap=alpha, validate=False),
        stationary_collision=collision,
        irregularity_gamma=graph.num_nodes * collision,
    )
