"""Random-walk engine: exact distribution evolution and token simulation.

Two complementary views of the same process:

* **Exact** — evolve the position probability vector with
  ``P(t+1) = M^T P(t)`` (Section 4.1).  Deterministic, O(m) per step.
  This is what Figure 5 uses to trace the walk on k-regular graphs
  exactly, exposing the early-time oscillation the paper remarks on.
* **Monte Carlo** — simulate ``num_tokens`` independent report tokens
  hopping to uniformly random neighbors.  This is what the protocol
  simulators (:mod:`repro.protocols`) build on, and lets us validate
  the exact dynamics empirically.

Both support *lazy* walks (stay put with probability ``laziness``),
the paper's fault-tolerance model (Section 4.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np
import scipy.sparse as sp

from repro.exceptions import SimulationError, ValidationError
from repro.graphs.graph import Graph
from repro.graphs.spectral import stationary_distribution, transition_matrix
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_probability, check_probability_vector


def lazy_transition_matrix(graph: Graph, laziness: float) -> sp.csr_matrix:
    """Lazy walk matrix ``M_lazy = laziness * I + (1 - laziness) * M``.

    ``laziness`` models the probability a user is temporarily offline
    (battery depletion, network outage — Section 4.5) and keeps her
    reports for the round.  Any ``laziness > 0`` makes a bipartite
    connected graph ergodic.
    """
    check_probability(laziness, "laziness")
    matrix = transition_matrix(graph)
    if laziness == 0.0:
        return matrix
    identity = sp.identity(graph.num_nodes, format="csr")
    return (laziness * identity + (1.0 - laziness) * matrix).tocsr()


def evolve_distribution(
    graph: Graph,
    initial: np.ndarray,
    steps: int,
    *,
    laziness: float = 0.0,
) -> np.ndarray:
    """Evolve ``P(0) = initial`` for ``steps`` rounds; return ``P(steps)``.

    Computes ``P(t+1) = M^T P(t)`` with sparse mat-vec products — never
    materializes a matrix power.
    """
    if steps < 0:
        raise ValidationError(f"steps must be non-negative, got {steps}")
    distribution = check_probability_vector(initial, "initial", size=graph.num_nodes)
    matrix_t = lazy_transition_matrix(graph, laziness).T.tocsr()
    current = distribution.astype(np.float64)
    for _ in range(steps):
        current = matrix_t @ current
    return current


def position_distribution(
    graph: Graph,
    start_node: int,
    steps: int,
    *,
    laziness: float = 0.0,
) -> np.ndarray:
    """``P(t)`` for a walk started deterministically at ``start_node``.

    This is the per-user position distribution ``P^G`` of the symmetric
    scenario: on a k-regular (vertex-transitive) graph every user's
    distribution is a relabeling of this one.
    """
    initial = np.zeros(graph.num_nodes)
    if not 0 <= start_node < graph.num_nodes:
        raise ValidationError(
            f"start_node {start_node} out of range for {graph.num_nodes} nodes"
        )
    initial[start_node] = 1.0
    return evolve_distribution(graph, initial, steps, laziness=laziness)


@dataclass
class WalkTrace:
    """Time series of walk statistics collected by :func:`trace_walk`."""

    steps: List[int] = field(default_factory=list)
    sum_squared: List[float] = field(default_factory=list)
    """``sum_i P_i(t)^2`` at each step — the quantity every theorem uses."""
    tv_distance: List[float] = field(default_factory=list)
    """``||P(t) - pi||_1`` graph total variation (Definition 4.4)."""

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (steps, sum_squared, tv_distance) as NumPy arrays."""
        return (
            np.asarray(self.steps, dtype=np.int64),
            np.asarray(self.sum_squared, dtype=np.float64),
            np.asarray(self.tv_distance, dtype=np.float64),
        )


def trace_walk(
    graph: Graph,
    initial: np.ndarray,
    steps: int,
    *,
    laziness: float = 0.0,
) -> WalkTrace:
    """Evolve a distribution and record per-step statistics.

    Returns a :class:`WalkTrace` with entries for ``t = 0 .. steps``.
    """
    if steps < 0:
        raise ValidationError(f"steps must be non-negative, got {steps}")
    distribution = check_probability_vector(initial, "initial", size=graph.num_nodes)
    pi = stationary_distribution(graph)
    matrix_t = lazy_transition_matrix(graph, laziness).T.tocsr()
    trace = WalkTrace()
    current = distribution.astype(np.float64)
    for t in range(steps + 1):
        trace.steps.append(t)
        trace.sum_squared.append(float(np.dot(current, current)))
        trace.tv_distance.append(float(np.abs(current - pi).sum()))
        if t < steps:
            current = matrix_t @ current
    return trace


def total_variation_to_stationary(graph: Graph, distribution: np.ndarray) -> float:
    """Graph total variation ``||P - pi||_1`` (Definition 4.4).

    Note the paper's definition is the plain L1 distance, i.e. twice the
    usual statistical TV distance.
    """
    distribution = check_probability_vector(
        distribution, "distribution", size=graph.num_nodes
    )
    pi = stationary_distribution(graph)
    return float(np.abs(distribution - pi).sum())


def sum_squared_positions(distribution: np.ndarray) -> float:
    """``sum_i P_i^2`` of a position distribution."""
    distribution = np.asarray(distribution, dtype=np.float64)
    return float(np.dot(distribution, distribution))


def simulate_token_walks(
    graph: Graph,
    start_nodes: np.ndarray,
    steps: int,
    *,
    laziness: float = 0.0,
    rng: RngLike = None,
) -> np.ndarray:
    """Monte-Carlo simulate independent token walks; return final holders.

    Parameters
    ----------
    graph:
        The communication graph.
    start_nodes:
        Integer array of shape ``(num_tokens,)`` — where each token
        (report) starts.  Network shuffling starts token ``i`` at user
        ``i`` (``arange(n)``).
    steps:
        Number of exchange rounds ``t``.
    laziness:
        Per-round probability a token stays put (offline holder).
    rng:
        Seed or generator.

    Returns
    -------
    numpy.ndarray
        Shape ``(num_tokens,)`` — holder of each token after ``steps``.

    Notes
    -----
    Fully vectorized: each round draws one uniform neighbor index per
    token using the CSR offsets, so a million token-steps cost a few
    NumPy gathers.
    """
    if steps < 0:
        raise ValidationError(f"steps must be non-negative, got {steps}")
    check_probability(laziness, "laziness")
    holders = np.asarray(start_nodes, dtype=np.int64).copy()
    if holders.size and (holders.min() < 0 or holders.max() >= graph.num_nodes):
        raise ValidationError("start_nodes out of range")
    context = _HopContext(graph)
    if context.has_isolated and np.any(context.degrees[holders] == 0):
        raise ValidationError("some tokens start on isolated nodes")
    generator = ensure_rng(rng)
    for _ in range(steps):
        holders = _hop_tokens(holders, context, laziness, generator)
    return holders


class _HopContext:
    """Per-graph arrays the vectorized hop needs, computed once.

    This is the single home of the hop's graph-side setup — the static
    walk builds one per call, the schedule walk memoizes one per
    distinct topology — so the degree/CSR contract lives in one place.
    ``uniform_degree`` is the scalar degree of a regular graph (the
    paper's main scenario: same uniform draws, one fewer million-element
    gather per round, bit-identical to the general path) or ``None``.
    """

    __slots__ = ("degrees", "uniform_degree", "has_isolated", "indptr", "indices")

    def __init__(self, graph: Graph):
        self.degrees = graph.degrees()
        self.uniform_degree = (
            int(self.degrees[0])
            if self.degrees.size and self.degrees.min() == self.degrees.max()
            else None
        )
        self.has_isolated = bool(self.degrees.size) and self.degrees.min() == 0
        self.indptr = graph.indptr
        self.indices = graph.indices


def _hop_tokens(
    holders: np.ndarray,
    context: _HopContext,
    laziness: float,
    generator: np.random.Generator,
) -> np.ndarray:
    """One walk hop on a prebuilt :class:`_HopContext`.

    A *moving* token on an isolated node raises ``SimulationError`` —
    the lazy-walk fault-model semantics of the exchange engine: a token
    that stays put this round (laziness) tolerates temporary isolation.
    The draw order (hop uniforms, then the laziness mask) is the
    established stream contract; the guard consumes no randomness.
    """
    degrees = context.degrees
    node_degrees = (
        context.uniform_degree if context.uniform_degree else degrees[holders]
    )
    offsets = (generator.random(holders.size) * node_degrees).astype(np.int64)
    # Same boundary clamp as the exchange engine: floor(u * degree)
    # can only reach degree on a contract-violating draw (u == 1.0
    # from a stubbed/custom generator); bit-identical otherwise.
    np.minimum(offsets, node_degrees - 1, out=offsets)
    if context.has_isolated:
        # Gather only where a neighbor exists (the draws above are
        # still one per token, keeping the stream contract); whether a
        # stranded token is an *error* depends on whether it moves.
        stranded = degrees[holders] == 0
        destinations = holders.copy()
        valid = ~stranded
        destinations[valid] = context.indices[
            context.indptr[holders[valid]] + offsets[valid]
        ]
    else:
        stranded = None
        destinations = context.indices[context.indptr[holders] + offsets]
    if laziness > 0.0:
        moving = generator.random(holders.size) >= laziness
        if stranded is not None and np.any(moving & stranded):
            raise SimulationError(
                "a moving token's node is isolated in the current topology"
            )
        return np.where(moving, destinations, holders)
    if stranded is not None and np.any(stranded):
        raise SimulationError(
            "a moving token's node is isolated in the current topology"
        )
    return destinations


def simulate_trial_walks(
    graph: Graph,
    start_nodes: np.ndarray,
    steps: int,
    trials: int,
    *,
    laziness: float = 0.0,
    rng: RngLike = None,
) -> np.ndarray:
    """Simulate ``trials`` independent repetitions of a token-walk batch.

    All ``trials x num_tokens`` walks run as one flat
    :func:`simulate_token_walks` call — the trial axis is tiled into the
    token axis, so a 2000-trial audit on a 1000-node graph costs the
    same NumPy gathers as a single 2-million-token simulation.

    Returns
    -------
    numpy.ndarray
        Shape ``(trials, num_tokens)`` — row ``r`` holds the final
        holders of trial ``r``'s tokens.
    """
    if trials < 1:
        raise ValidationError(f"trials must be positive, got {trials}")
    starts = np.asarray(start_nodes, dtype=np.int64)
    tiled = np.tile(starts, trials)
    finals = simulate_token_walks(graph, tiled, steps, laziness=laziness, rng=rng)
    return finals.reshape(trials, starts.size)


def empirical_position_distribution(
    graph: Graph,
    start_node: int,
    steps: int,
    *,
    num_samples: int = 10_000,
    laziness: float = 0.0,
    rng: RngLike = None,
) -> np.ndarray:
    """Estimate ``P(t)`` by Monte Carlo from repeated walks.

    Used in tests to validate :func:`position_distribution` and in the
    walk-method ablation bench.
    """
    starts = np.full(num_samples, start_node, dtype=np.int64)
    finals = simulate_token_walks(
        graph, starts, steps, laziness=laziness, rng=rng
    )
    counts = np.bincount(finals, minlength=graph.num_nodes)
    return counts / float(num_samples)


def report_allocation(
    graph: Graph,
    steps: int,
    *,
    laziness: float = 0.0,
    rng: RngLike = None,
) -> np.ndarray:
    """Simulate network shuffling's report allocation vector ``L``.

    Every user starts with exactly one report; after ``steps`` rounds
    ``L_i`` counts the reports held by user ``i`` (Lemma 5.1's random
    variable).  ``sum_i L_i == n`` always.
    """
    starts = np.arange(graph.num_nodes, dtype=np.int64)
    finals = simulate_token_walks(graph, starts, steps, laziness=laziness, rng=rng)
    return np.bincount(finals, minlength=graph.num_nodes)
