"""Random walks on *dynamic* graphs (paper Section 4.5 / future work).

The paper suggests modeling user churn and adversarial node removal
with walks on time-varying graphs (citing Zhong-Shen-Seiferas).  A
:class:`DynamicGraphSchedule` supplies one graph per round; the walk
engine below evolves position distributions and token walks across the
sequence, and the privacy bounds consume the resulting exact
``sum_i P_i(t)^2`` — no stationarity assumption needed.

Convergence caveat: a dynamic walk need not converge at all (e.g.
alternating between two bipartite graphs); the exact evolution is the
honest tool here, which is why these helpers return full distributions
rather than spectral shortcuts.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.graphs.graph import Graph
from repro.graphs.walks import lazy_transition_matrix, simulate_token_walks
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_probability_vector


class DynamicGraphSchedule:
    """A time-indexed sequence of communication graphs.

    Parameters
    ----------
    graphs:
        The distinct topologies.
    selector:
        Maps a round index to an index into ``graphs``; defaults to
        round-robin.  All graphs must share the same node count.
    """

    def __init__(
        self,
        graphs: Sequence[Graph],
        selector: Optional[Callable[[int], int]] = None,
    ):
        if not graphs:
            raise ValidationError("need at least one graph")
        sizes = {graph.num_nodes for graph in graphs}
        if len(sizes) != 1:
            raise ValidationError(
                f"all graphs must share a node count, got sizes {sorted(sizes)}"
            )
        self._graphs = list(graphs)
        self._selector = selector

    @property
    def num_nodes(self) -> int:
        """Shared node count of all scheduled graphs."""
        return self._graphs[0].num_nodes

    @property
    def num_graphs(self) -> int:
        """Number of distinct topologies."""
        return len(self._graphs)

    def graph_at(self, round_index: int) -> Graph:
        """The topology in force at ``round_index``."""
        if round_index < 0:
            raise ValidationError(f"round must be non-negative, got {round_index}")
        if self._selector is None:
            return self._graphs[round_index % len(self._graphs)]
        index = self._selector(round_index)
        if not 0 <= index < len(self._graphs):
            raise ValidationError(
                f"selector returned {index}, valid range is "
                f"[0, {len(self._graphs)})"
            )
        return self._graphs[index]


def evolve_on_schedule(
    schedule: DynamicGraphSchedule,
    initial: np.ndarray,
    steps: int,
    *,
    laziness: float = 0.0,
) -> np.ndarray:
    """Exact ``P(t)`` across a dynamic schedule.

    Each round applies the transition matrix of that round's graph:
    ``P(t+1) = M_t^T P(t)``.
    """
    if steps < 0:
        raise ValidationError(f"steps must be non-negative, got {steps}")
    current = check_probability_vector(
        initial, "initial", size=schedule.num_nodes
    ).astype(np.float64)
    for round_index in range(steps):
        matrix_t = lazy_transition_matrix(
            schedule.graph_at(round_index), laziness
        ).T.tocsr()
        current = matrix_t @ current
    return current


def trace_collision_on_schedule(
    schedule: DynamicGraphSchedule,
    initial: np.ndarray,
    steps: int,
    *,
    laziness: float = 0.0,
) -> List[float]:
    """``sum_i P_i(t)^2`` for ``t = 0 .. steps`` on a dynamic schedule.

    Feed any entry straight into the Theorem 5.3/5.5 bounds as the
    exact collision mass for a protocol stopping at that round.
    """
    if steps < 0:
        raise ValidationError(f"steps must be non-negative, got {steps}")
    current = check_probability_vector(
        initial, "initial", size=schedule.num_nodes
    ).astype(np.float64)
    collisions = [float(current @ current)]
    for round_index in range(steps):
        matrix_t = lazy_transition_matrix(
            schedule.graph_at(round_index), laziness
        ).T.tocsr()
        current = matrix_t @ current
        collisions.append(float(current @ current))
    return collisions


def simulate_tokens_on_schedule(
    schedule: DynamicGraphSchedule,
    start_nodes: np.ndarray,
    steps: int,
    *,
    laziness: float = 0.0,
    rng: RngLike = None,
) -> np.ndarray:
    """Monte-Carlo token walks across a dynamic schedule."""
    holders = np.asarray(start_nodes, dtype=np.int64).copy()
    generator = ensure_rng(rng)
    for round_index in range(steps):
        holders = simulate_token_walks(
            schedule.graph_at(round_index),
            holders,
            1,
            laziness=laziness,
            rng=generator,
        )
    return holders
