"""Random walks on *dynamic* graphs (paper Section 4.5 / future work).

The paper suggests modeling user churn and adversarial node removal
with walks on time-varying graphs (citing Zhong-Shen-Seiferas).  A
:class:`DynamicGraphSchedule` supplies one graph per round; the walk
engine below evolves position distributions and token walks across the
sequence, and the privacy bounds consume the resulting exact
``sum_i P_i(t)^2`` — no stationarity assumption needed.

Convergence caveat: a dynamic walk need not converge at all (e.g.
alternating between two bipartite graphs); the exact evolution is the
honest tool here, which is why these helpers return full distributions
rather than spectral shortcuts.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import SimulationError, ValidationError
from repro.graphs.graph import Graph
from repro.graphs.walks import _HopContext, _hop_tokens, lazy_transition_matrix
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_probability, check_probability_vector


class DynamicGraphSchedule:
    """A time-indexed sequence of communication graphs.

    Parameters
    ----------
    graphs:
        The distinct topologies.
    selector:
        Maps a round index to an index into ``graphs``; defaults to
        round-robin.  All graphs must share the same node count.
    """

    def __init__(
        self,
        graphs: Sequence[Graph],
        selector: Optional[Callable[[int], int]] = None,
    ):
        if not graphs:
            raise ValidationError("need at least one graph")
        sizes = {graph.num_nodes for graph in graphs}
        if len(sizes) != 1:
            raise ValidationError(
                f"all graphs must share a node count, got sizes {sorted(sizes)}"
            )
        self._graphs = list(graphs)
        self._selector = selector

    @property
    def num_nodes(self) -> int:
        """Shared node count of all scheduled graphs."""
        return self._graphs[0].num_nodes

    @property
    def num_graphs(self) -> int:
        """Number of distinct topologies."""
        return len(self._graphs)

    def graph_at(self, round_index: int) -> Graph:
        """The topology in force at ``round_index``."""
        if round_index < 0:
            raise ValidationError(f"round must be non-negative, got {round_index}")
        if self._selector is None:
            return self._graphs[round_index % len(self._graphs)]
        index = self._selector(round_index)
        if not 0 <= index < len(self._graphs):
            raise ValidationError(
                f"selector returned {index}, valid range is "
                f"[0, {len(self._graphs)})"
            )
        return self._graphs[index]


class _TransitionCache:
    """Memoized per-graph transposed transition CSRs for one traversal.

    Schedules typically cycle a handful of distinct topologies; building
    (and transposing) ``lazy_transition_matrix`` once per *distinct
    graph object* instead of once per round turns an O(rounds) rebuild
    cost into O(num_graphs).  The cached matrix is exactly the one the
    unmemoized loop would rebuild, so results stay bit-identical.
    """

    def __init__(self, schedule: DynamicGraphSchedule, laziness: float):
        self._schedule = schedule
        self._laziness = laziness
        self._matrices: Dict[int, sp.csr_matrix] = {}

    def at(self, round_index: int) -> sp.csr_matrix:
        """``M_t^T`` (CSR) for the graph in force at ``round_index``."""
        graph = self._schedule.graph_at(round_index)
        matrix = self._matrices.get(id(graph))
        if matrix is None:
            matrix = lazy_transition_matrix(graph, self._laziness).T.tocsr()
            self._matrices[id(graph)] = matrix
        return matrix


def evolve_on_schedule(
    schedule: DynamicGraphSchedule,
    initial: np.ndarray,
    steps: int,
    *,
    laziness: float = 0.0,
    start_round: int = 0,
) -> np.ndarray:
    """Exact ``P(t)`` across a dynamic schedule.

    Each round applies the transition matrix of that round's graph:
    ``P(t+1) = M_t^T P(t)``.  ``start_round`` offsets the schedule clock
    so evolutions can resume mid-schedule (incremental sweeps).
    """
    if steps < 0:
        raise ValidationError(f"steps must be non-negative, got {steps}")
    current = check_probability_vector(
        initial, "initial", size=schedule.num_nodes
    ).astype(np.float64)
    cache = _TransitionCache(schedule, laziness)
    for round_index in range(start_round, start_round + steps):
        current = cache.at(round_index) @ current
    return current


def position_distribution_on_schedule(
    schedule: DynamicGraphSchedule,
    start_node: int,
    steps: int,
    *,
    laziness: float = 0.0,
) -> np.ndarray:
    """``P(t)`` for a walk started deterministically at ``start_node``.

    The schedule counterpart of
    :func:`repro.graphs.walks.position_distribution` — what the
    informed-adversary audit statistics weigh payloads by.
    """
    if not 0 <= start_node < schedule.num_nodes:
        raise ValidationError(
            f"start_node {start_node} out of range for "
            f"{schedule.num_nodes} nodes"
        )
    initial = np.zeros(schedule.num_nodes)
    initial[start_node] = 1.0
    return evolve_on_schedule(schedule, initial, steps, laziness=laziness)


def trace_collision_on_schedule(
    schedule: DynamicGraphSchedule,
    initial: np.ndarray,
    steps: int,
    *,
    laziness: float = 0.0,
) -> List[float]:
    """``sum_i P_i(t)^2`` for ``t = 0 .. steps`` on a dynamic schedule.

    Feed any entry straight into the Theorem 5.3/5.5 bounds as the
    exact collision mass for a protocol stopping at that round.
    """
    if steps < 0:
        raise ValidationError(f"steps must be non-negative, got {steps}")
    current = check_probability_vector(
        initial, "initial", size=schedule.num_nodes
    ).astype(np.float64)
    cache = _TransitionCache(schedule, laziness)
    collisions = [float(current @ current)]
    for round_index in range(steps):
        current = cache.at(round_index) @ current
        collisions.append(float(current @ current))
    return collisions


def evolve_profile_on_schedule(
    schedule: DynamicGraphSchedule,
    distributions: np.ndarray,
    steps: int,
    *,
    laziness: float = 0.0,
    start_round: int = 0,
) -> np.ndarray:
    """Evolve a column-stacked batch of distributions across the schedule.

    ``distributions`` has shape ``(n, k)`` — column ``j`` is one
    probability vector; every column advances through the same per-round
    transition matrices (one sparse-dense product per round).  This is
    how the accounting layer tracks *every user's* position distribution
    at once: start from the identity and column ``i`` is ``P^i(t)``.
    """
    if steps < 0:
        raise ValidationError(f"steps must be non-negative, got {steps}")
    current = np.asarray(distributions, dtype=np.float64)
    if current.ndim != 2 or current.shape[0] != schedule.num_nodes:
        raise ValidationError(
            f"distributions must have shape ({schedule.num_nodes}, k), "
            f"got {current.shape}"
        )
    cache = _TransitionCache(schedule, laziness)
    for round_index in range(start_round, start_round + steps):
        current = cache.at(round_index) @ current
    return current


def collision_profile_on_schedule(
    schedule: DynamicGraphSchedule,
    steps: int,
    *,
    laziness: float = 0.0,
) -> np.ndarray:
    """Exact per-user collision mass ``sum_j P^i_j(t)^2``, shape ``(n,)``.

    Column ``i`` of the evolved identity is user ``i``'s exact position
    distribution after ``steps`` scheduled rounds; its squared L2 norm
    is the collision mass the Theorem 5.3/5.5 bounds consume.  The max
    over users is the sound (worst-user) value — no stationarity
    assumption, which a dynamic schedule could not honor anyway.
    """
    profile = evolve_profile_on_schedule(
        schedule, np.eye(schedule.num_nodes), steps, laziness=laziness
    )
    return np.einsum("ij,ij->j", profile, profile)


def simulate_tokens_on_schedule(
    schedule: DynamicGraphSchedule,
    start_nodes: np.ndarray,
    steps: int,
    *,
    laziness: float = 0.0,
    rng: RngLike = None,
) -> np.ndarray:
    """Monte-Carlo token walks across a dynamic schedule.

    Per-graph degree/CSR lookups (:class:`~repro.graphs.walks._HopContext`)
    are memoized per *distinct topology* so a cycling schedule pays one
    degree scan per graph, not per round, and the hop itself is the same
    kernel as the static walk — identical draws to a static run on a
    schedule-of-one.  A *moving* token stranded on a node the current
    topology isolates raises
    :class:`~repro.exceptions.SimulationError` — the exchange engine's
    lazy-walk semantics: a token that stays put this round tolerates
    temporary isolation.  Isolated *start* nodes stay a
    :class:`~repro.exceptions.ValidationError`, like the static walk.
    """
    if steps < 0:
        raise ValidationError(f"steps must be non-negative, got {steps}")
    check_probability(laziness, "laziness")
    holders = np.asarray(start_nodes, dtype=np.int64).copy()
    if holders.size and (
        holders.min() < 0 or holders.max() >= schedule.num_nodes
    ):
        raise ValidationError("start_nodes out of range")
    generator = ensure_rng(rng)
    contexts: Dict[int, _HopContext] = {}

    def context_for(round_index: int) -> _HopContext:
        graph = schedule.graph_at(round_index)
        context = contexts.get(id(graph))
        if context is None:
            context = _HopContext(graph)
            contexts[id(graph)] = context
        return context

    start_context = context_for(0)
    if holders.size and start_context.has_isolated and np.any(
        start_context.degrees[holders] == 0
    ):
        raise ValidationError("some tokens start on isolated nodes")
    for round_index in range(steps):
        try:
            holders = _hop_tokens(
                holders, context_for(round_index), laziness, generator
            )
        except SimulationError as error:
            raise SimulationError(f"round {round_index}: {error}") from None
    return holders


def simulate_trial_walks_on_schedule(
    schedule: DynamicGraphSchedule,
    start_nodes: np.ndarray,
    steps: int,
    trials: int,
    *,
    laziness: float = 0.0,
    rng: RngLike = None,
) -> np.ndarray:
    """``trials`` independent repetitions of a scheduled token-walk batch.

    The schedule counterpart of
    :func:`repro.graphs.walks.simulate_trial_walks`: the trial axis is
    tiled into the token axis so all ``trials x num_tokens`` walks
    advance together, one NumPy hop per scheduled round.  Returns shape
    ``(trials, num_tokens)``.
    """
    if trials < 1:
        raise ValidationError(f"trials must be positive, got {trials}")
    starts = np.asarray(start_nodes, dtype=np.int64)
    tiled = np.tile(starts, trials)
    finals = simulate_tokens_on_schedule(
        schedule, tiled, steps, laziness=laziness, rng=rng
    )
    return finals.reshape(trials, starts.size)
