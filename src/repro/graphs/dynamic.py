"""Random walks on *dynamic* graphs (paper Section 4.5 / future work).

The paper suggests modeling user churn and adversarial node removal
with walks on time-varying graphs (citing Zhong-Shen-Seiferas).  A
:class:`DynamicGraphSchedule` supplies one graph per round; the walk
engine below evolves position distributions and token walks across the
sequence, and the privacy bounds consume the resulting exact
``sum_i P_i(t)^2`` — no stationarity assumption needed.

Convergence caveat: a dynamic walk need not converge at all (e.g.
alternating between two bipartite graphs); the exact evolution is the
honest tool here, which is why these helpers return full distributions
rather than spectral shortcuts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.exceptions import SimulationError, ValidationError
from repro.graphs.graph import Graph
from repro.graphs.walks import _HopContext, _hop_tokens, lazy_transition_matrix
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_probability, check_probability_vector

#: A column panel of user distributions: dense ``(n, B)`` array, or a
#: scipy sparse matrix of the same shape while the columns are still
#: mostly one-hot (early rounds / truncated evolution).
Panel = Union[np.ndarray, sp.spmatrix]

#: Densify a sparse panel once its fill fraction crosses this: past it
#: the sparse indices cost more than the dense array they index into,
#: and the mat-products stop winning.
_DENSIFY_FRACTION = 0.25


class DynamicGraphSchedule:
    """A time-indexed sequence of communication graphs.

    Parameters
    ----------
    graphs:
        The distinct topologies.
    selector:
        Maps a round index to an index into ``graphs``; defaults to
        round-robin.  All graphs must share the same node count.
    """

    def __init__(
        self,
        graphs: Sequence[Graph],
        selector: Optional[Callable[[int], int]] = None,
    ):
        if not graphs:
            raise ValidationError("need at least one graph")
        sizes = {graph.num_nodes for graph in graphs}
        if len(sizes) != 1:
            raise ValidationError(
                f"all graphs must share a node count, got sizes {sorted(sizes)}"
            )
        self._graphs = list(graphs)
        self._selector = selector

    @property
    def num_nodes(self) -> int:
        """Shared node count of all scheduled graphs."""
        return self._graphs[0].num_nodes

    @property
    def num_graphs(self) -> int:
        """Number of distinct topologies."""
        return len(self._graphs)

    @property
    def graphs(self) -> Tuple[Graph, ...]:
        """The distinct topologies, in schedule order."""
        return tuple(self._graphs)

    @property
    def selector(self) -> Optional[Callable[[int], int]]:
        """The round→graph selector (``None`` means round-robin)."""
        return self._selector

    def graph_at(self, round_index: int) -> Graph:
        """The topology in force at ``round_index``."""
        if round_index < 0:
            raise ValidationError(f"round must be non-negative, got {round_index}")
        if self._selector is None:
            return self._graphs[round_index % len(self._graphs)]
        index = self._selector(round_index)
        if not 0 <= index < len(self._graphs):
            raise ValidationError(
                f"selector returned {index}, valid range is "
                f"[0, {len(self._graphs)})"
            )
        return self._graphs[index]


@dataclass(frozen=True)
class EpochSelector:
    """Hold each scheduled graph for ``block`` consecutive rounds.

    A module-level callable (not a lambda) so built schedules — and the
    RunResults that carry them — stay picklable for pooled sweeps, and
    so :func:`repro.graphs.io.save_schedule_npz` can serialize the
    selector by its two integers.
    """

    block: int
    count: int

    def __call__(self, round_index: int) -> int:
        return (round_index // self.block) % self.count


class _TransitionCache:
    """Memoized per-graph transposed transition CSRs for one traversal.

    Schedules typically cycle a handful of distinct topologies; building
    (and transposing) ``lazy_transition_matrix`` once per *distinct
    graph object* instead of once per round turns an O(rounds) rebuild
    cost into O(num_graphs).  The cached matrix is exactly the one the
    unmemoized loop would rebuild, so results stay bit-identical.

    Entries key by ``id(graph)`` but *hold the graph object too*: a
    schedule subclass may generate phase graphs lazily, and once such a
    graph is garbage-collected its ``id`` is free for reuse — a bare
    ``id -> matrix`` map could then silently hand a different topology
    the wrong transition matrix.  Keeping the reference pins every
    keyed graph alive for the cache's lifetime, so ids stay unique.
    """

    def __init__(self, schedule: DynamicGraphSchedule, laziness: float):
        self._schedule = schedule
        self._laziness = laziness
        self._matrices: Dict[int, Tuple[Graph, sp.csr_matrix]] = {}

    def at(self, round_index: int) -> sp.csr_matrix:
        """``M_t^T`` (CSR) for the graph in force at ``round_index``."""
        graph = self._schedule.graph_at(round_index)
        entry = self._matrices.get(id(graph))
        if entry is None or entry[0] is not graph:
            matrix = lazy_transition_matrix(graph, self._laziness).T.tocsr()
            self._matrices[id(graph)] = (graph, matrix)
            return matrix
        return entry[1]


def evolve_on_schedule(
    schedule: DynamicGraphSchedule,
    initial: np.ndarray,
    steps: int,
    *,
    laziness: float = 0.0,
    start_round: int = 0,
) -> np.ndarray:
    """Exact ``P(t)`` across a dynamic schedule.

    Each round applies the transition matrix of that round's graph:
    ``P(t+1) = M_t^T P(t)``.  ``start_round`` offsets the schedule clock
    so evolutions can resume mid-schedule (incremental sweeps).
    """
    if steps < 0:
        raise ValidationError(f"steps must be non-negative, got {steps}")
    current = check_probability_vector(
        initial, "initial", size=schedule.num_nodes
    ).astype(np.float64)
    cache = _TransitionCache(schedule, laziness)
    for round_index in range(start_round, start_round + steps):
        current = cache.at(round_index) @ current
    return current


def position_distribution_on_schedule(
    schedule: DynamicGraphSchedule,
    start_node: int,
    steps: int,
    *,
    laziness: float = 0.0,
) -> np.ndarray:
    """``P(t)`` for a walk started deterministically at ``start_node``.

    The schedule counterpart of
    :func:`repro.graphs.walks.position_distribution` — what the
    informed-adversary audit statistics weigh payloads by.
    """
    if not 0 <= start_node < schedule.num_nodes:
        raise ValidationError(
            f"start_node {start_node} out of range for "
            f"{schedule.num_nodes} nodes"
        )
    initial = np.zeros(schedule.num_nodes)
    initial[start_node] = 1.0
    return evolve_on_schedule(schedule, initial, steps, laziness=laziness)


def trace_collision_on_schedule(
    schedule: DynamicGraphSchedule,
    initial: np.ndarray,
    steps: int,
    *,
    laziness: float = 0.0,
) -> List[float]:
    """``sum_i P_i(t)^2`` for ``t = 0 .. steps`` on a dynamic schedule.

    Feed any entry straight into the Theorem 5.3/5.5 bounds as the
    exact collision mass for a protocol stopping at that round.
    """
    if steps < 0:
        raise ValidationError(f"steps must be non-negative, got {steps}")
    current = check_probability_vector(
        initial, "initial", size=schedule.num_nodes
    ).astype(np.float64)
    cache = _TransitionCache(schedule, laziness)
    collisions = [float(current @ current)]
    for round_index in range(steps):
        current = cache.at(round_index) @ current
        collisions.append(float(current @ current))
    return collisions


def evolve_profile_on_schedule(
    schedule: DynamicGraphSchedule,
    distributions: np.ndarray,
    steps: int,
    *,
    laziness: float = 0.0,
    start_round: int = 0,
) -> np.ndarray:
    """Evolve a column-stacked batch of distributions across the schedule.

    ``distributions`` has shape ``(n, k)`` — column ``j`` is one
    probability vector; every column advances through the same per-round
    transition matrices (one sparse-dense product per round).  This is
    how the accounting layer tracks *every user's* position distribution
    at once: start from the identity and column ``i`` is ``P^i(t)``.
    """
    if steps < 0:
        raise ValidationError(f"steps must be non-negative, got {steps}")
    current = np.asarray(distributions, dtype=np.float64)
    if current.ndim != 2 or current.shape[0] != schedule.num_nodes:
        raise ValidationError(
            f"distributions must have shape ({schedule.num_nodes}, k), "
            f"got {current.shape}"
        )
    cache = _TransitionCache(schedule, laziness)
    for round_index in range(start_round, start_round + steps):
        current = cache.at(round_index) @ current
    return current


def collision_profile_on_schedule(
    schedule: DynamicGraphSchedule,
    steps: int,
    *,
    laziness: float = 0.0,
) -> np.ndarray:
    """Exact per-user collision mass ``sum_j P^i_j(t)^2``, shape ``(n,)``.

    Column ``i`` of the evolved identity is user ``i``'s exact position
    distribution after ``steps`` scheduled rounds; its squared L2 norm
    is the collision mass the Theorem 5.3/5.5 bounds consume.  The max
    over users is the sound (worst-user) value — no stationarity
    assumption, which a dynamic schedule could not honor anyway.
    """
    profile = evolve_profile_on_schedule(
        schedule, np.eye(schedule.num_nodes), steps, laziness=laziness
    )
    return panel_collisions(profile)


# ----------------------------------------------------------------------
# Blocked / sparsity-aware profile evolution (out-of-core accounting)
# ----------------------------------------------------------------------
def identity_panel(num_nodes: int, start: int, stop: int) -> sp.csc_matrix:
    """Columns ``start .. stop`` of the ``(n, n)`` identity, as sparse CSC.

    The starting state of one user block: column ``j`` is user
    ``start + j``'s one-hot position distribution.  Rows are sorted and
    the matrix is canonical, so the very first product sees the same
    operand values the dense ``np.eye`` path sees.
    """
    if not 0 <= start < stop <= num_nodes:
        raise ValidationError(
            f"invalid column block [{start}, {stop}) for {num_nodes} nodes"
        )
    width = stop - start
    return sp.csc_matrix(
        (
            np.ones(width, dtype=np.float64),
            np.arange(start, stop, dtype=np.int64),
            np.arange(width + 1, dtype=np.int64),
        ),
        shape=(num_nodes, width),
    )


def _sequential_sum(values: np.ndarray) -> float:
    """Strictly left-to-right IEEE sum (no pairwise trees, no SIMD lanes).

    ``np.add.accumulate`` is sequential *by definition* — every prefix
    is the running partial — which makes the result a pure function of
    the value sequence, independent of array width, stride, or SIMD
    remainder handling.  That is the property the blocked accounting
    leans on: a dense column (zeros included — adding ``0.0`` to a
    non-negative partial is exact) reduces to the same bits as the
    sparse column holding only its non-zeros.
    """
    if values.size == 0:
        return 0.0
    return float(np.add.accumulate(values)[-1])


def panel_collisions(panel: Panel) -> np.ndarray:
    """Per-column collision mass ``sum_i panel[i, j]^2``, shape ``(B,)``.

    Bit-stable across representations and block widths: each column
    reduces with :func:`_sequential_sum` in ascending row order,
    whether its values live in a sparse CSC segment or a dense slice.
    """
    if sp.issparse(panel):
        matrix = panel.tocsc()
        matrix.sort_indices()
        squares = matrix.data * matrix.data
        return np.array([
            _sequential_sum(squares[matrix.indptr[j]:matrix.indptr[j + 1]])
            for j in range(matrix.shape[1])
        ])
    dense = np.asarray(panel, dtype=np.float64)
    return np.array([
        _sequential_sum(dense[:, j] * dense[:, j])
        for j in range(dense.shape[1])
    ])


def _truncate_panel(
    panel: Panel, tol: float, dropped: np.ndarray
) -> Panel:
    """Zero entries in ``(0, tol)``, accumulating the mass per column.

    The truncated evolution stays an elementwise *lower* bound of the
    exact one (the transition matrices are non-negative), so the mass
    recorded in ``dropped`` prices the error: the exact collision of
    column ``j`` lies within ``2 * dropped[j]`` above the truncated one.
    Dropped mass accumulates with the same sequential reduction as
    :func:`panel_collisions`, so it too is representation-independent.
    """
    if sp.issparse(panel):
        matrix = panel.tocsc()
        matrix.sort_indices()
        mask = matrix.data < tol
        if mask.any():
            masked = np.where(mask, matrix.data, 0.0)
            for j in range(matrix.shape[1]):
                segment = masked[matrix.indptr[j]:matrix.indptr[j + 1]]
                if segment.size:
                    dropped[j] += _sequential_sum(segment)
            matrix.data[mask] = 0.0
            matrix.eliminate_zeros()
        return matrix
    mask = (panel > 0.0) & (panel < tol)
    if mask.any():
        masked = np.where(mask, panel, 0.0)
        for j in range(panel.shape[1]):
            dropped[j] += _sequential_sum(masked[:, j])
        panel = np.where(mask, 0.0, panel)
    return panel


def evolve_panel_on_schedule(
    schedule: DynamicGraphSchedule,
    panel: Panel,
    steps: int,
    *,
    laziness: float = 0.0,
    start_round: int = 0,
    transitions: Optional[_TransitionCache] = None,
    truncation: Optional[float] = None,
    dropped: Optional[np.ndarray] = None,
) -> Tuple[Panel, np.ndarray]:
    """Evolve one column block of user distributions across the schedule.

    The blocked counterpart of :func:`evolve_profile_on_schedule`: the
    panel holds ``B`` users' distributions and advances through the
    same per-round transposed transition CSRs, so each column's value
    sequence is **bit-identical** to the corresponding column of the
    dense ``(n, n)`` evolution (sparse products accumulate each output
    element over the same operands in the same order; the dense path
    merely adds exact zeros).  One-hot columns stay sparse until the
    fill fraction crosses ``_DENSIFY_FRACTION``, so early rounds (and
    truncated evolutions, which never densify on bounded-degree churn)
    cost ``O(nnz)`` instead of ``O(n * B)``.

    ``truncation`` zeroes entries below the tolerance after every
    round; the cumulative mass removed from each column is returned in
    the second element (resuming evolutions pass the previous
    ``dropped`` back in).  Without truncation that array is all zeros.
    """
    if steps < 0:
        raise ValidationError(f"steps must be non-negative, got {steps}")
    if truncation is not None and not 0.0 < truncation < 1.0:
        raise ValidationError(
            f"truncation must be in (0, 1), got {truncation}"
        )
    n = schedule.num_nodes
    if panel.ndim != 2 or panel.shape[0] != n:
        raise ValidationError(
            f"panel must have shape ({n}, B), got {panel.shape}"
        )
    width = panel.shape[1]
    dropped = (
        np.zeros(width, dtype=np.float64)
        if dropped is None
        else np.asarray(dropped, dtype=np.float64).copy()
    )
    cache = transitions or _TransitionCache(schedule, laziness)
    if not sp.issparse(panel):
        panel = np.asarray(panel, dtype=np.float64)
    for round_index in range(start_round, start_round + steps):
        panel = cache.at(round_index) @ panel
        if sp.issparse(panel):
            panel = panel.tocsc()
            panel.sort_indices()
            panel.eliminate_zeros()
            if panel.nnz > _DENSIFY_FRACTION * n * width:
                panel = panel.toarray()
        if truncation is not None:
            panel = _truncate_panel(panel, truncation, dropped)
    return panel, dropped


def collision_profile_blocked(
    schedule: DynamicGraphSchedule,
    steps: int,
    *,
    block_size: int,
    laziness: float = 0.0,
    truncation: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-user collision mass evolved in column blocks of ``block_size``.

    Returns ``(collisions, dropped)``, both shape ``(n,)``: the
    (possibly truncated) collision mass per user, and the cumulative
    probability mass truncation removed from each user's distribution
    (all zeros when ``truncation`` is ``None``, in which case
    ``collisions`` is bit-identical to
    :func:`collision_profile_on_schedule` for every ``block_size``).
    Memory high-water is one ``(n, block_size)`` panel plus the per-
    distinct-topology transition CSRs — ``O(n * B)``, not ``O(n^2)``.
    """
    if block_size < 1:
        raise ValidationError(
            f"block_size must be positive, got {block_size}"
        )
    n = schedule.num_nodes
    collisions = np.empty(n, dtype=np.float64)
    dropped = np.zeros(n, dtype=np.float64)
    cache = _TransitionCache(schedule, laziness)
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        panel, block_dropped = evolve_panel_on_schedule(
            schedule,
            identity_panel(n, start, stop),
            steps,
            laziness=laziness,
            transitions=cache,
            truncation=truncation,
        )
        collisions[start:stop] = panel_collisions(panel)
        dropped[start:stop] = block_dropped
    return collisions, dropped


def simulate_tokens_on_schedule(
    schedule: DynamicGraphSchedule,
    start_nodes: np.ndarray,
    steps: int,
    *,
    laziness: float = 0.0,
    rng: RngLike = None,
) -> np.ndarray:
    """Monte-Carlo token walks across a dynamic schedule.

    Per-graph degree/CSR lookups (:class:`~repro.graphs.walks._HopContext`)
    are memoized per *distinct topology* so a cycling schedule pays one
    degree scan per graph, not per round, and the hop itself is the same
    kernel as the static walk — identical draws to a static run on a
    schedule-of-one.  A *moving* token stranded on a node the current
    topology isolates raises
    :class:`~repro.exceptions.SimulationError` — the exchange engine's
    lazy-walk semantics: a token that stays put this round tolerates
    temporary isolation.  Isolated *start* nodes stay a
    :class:`~repro.exceptions.ValidationError`, like the static walk.
    """
    if steps < 0:
        raise ValidationError(f"steps must be non-negative, got {steps}")
    check_probability(laziness, "laziness")
    holders = np.asarray(start_nodes, dtype=np.int64).copy()
    if holders.size and (
        holders.min() < 0 or holders.max() >= schedule.num_nodes
    ):
        raise ValidationError("start_nodes out of range")
    generator = ensure_rng(rng)
    # Like _TransitionCache, hold the graph alongside its context so a
    # lazily generated phase graph's id cannot be recycled mid-walk.
    contexts: Dict[int, Tuple[Graph, _HopContext]] = {}

    def context_for(round_index: int) -> _HopContext:
        graph = schedule.graph_at(round_index)
        entry = contexts.get(id(graph))
        if entry is None or entry[0] is not graph:
            context = _HopContext(graph)
            contexts[id(graph)] = (graph, context)
            return context
        return entry[1]

    start_context = context_for(0)
    if holders.size and start_context.has_isolated and np.any(
        start_context.degrees[holders] == 0
    ):
        raise ValidationError("some tokens start on isolated nodes")
    for round_index in range(steps):
        try:
            holders = _hop_tokens(
                holders, context_for(round_index), laziness, generator
            )
        except SimulationError as error:
            raise SimulationError(f"round {round_index}: {error}") from None
    return holders


def simulate_trial_walks_on_schedule(
    schedule: DynamicGraphSchedule,
    start_nodes: np.ndarray,
    steps: int,
    trials: int,
    *,
    laziness: float = 0.0,
    rng: RngLike = None,
) -> np.ndarray:
    """``trials`` independent repetitions of a scheduled token-walk batch.

    The schedule counterpart of
    :func:`repro.graphs.walks.simulate_trial_walks`: the trial axis is
    tiled into the token axis so all ``trials x num_tokens`` walks
    advance together, one NumPy hop per scheduled round.  Returns shape
    ``(trials, num_tokens)``.
    """
    if trials < 1:
        raise ValidationError(f"trials must be positive, got {trials}")
    starts = np.asarray(start_nodes, dtype=np.int64)
    tiled = np.tile(starts, trials)
    finals = simulate_tokens_on_schedule(
        schedule, tiled, steps, laziness=laziness, rng=rng
    )
    return finals.reshape(trials, starts.size)
