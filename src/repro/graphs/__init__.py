"""Graph substrate: representation, generators, spectra, and random walks.

The paper models network shuffling as a random walk on an undirected
communication graph (Section 4.1).  This package provides:

* :class:`~repro.graphs.graph.Graph` — an immutable CSR-backed undirected
  graph with degree/neighbor accessors;
* generators for the standard topologies used in the evaluation
  (:mod:`repro.graphs.generators`);
* connectivity / bipartiteness / ergodicity predicates
  (:mod:`repro.graphs.connectivity`);
* spectral machinery — transition matrix, spectral gap, mixing time
  (:mod:`repro.graphs.spectral`);
* the random-walk engine — exact distribution evolution and Monte-Carlo
  token walks (:mod:`repro.graphs.walks`);
* graph metrics such as the irregularity measure ``Gamma_G``
  (:mod:`repro.graphs.metrics`).
"""

from repro.graphs.graph import Graph
from repro.graphs.connectivity import (
    connected_components,
    is_bipartite,
    is_connected,
    is_ergodic,
    largest_connected_component,
    require_ergodic,
)
from repro.graphs.generators import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    from_networkx,
    grid_graph,
    path_graph,
    random_regular_graph,
    star_graph,
    watts_strogatz_graph,
)
from repro.graphs.spectral import (
    SpectralSummary,
    mixing_time,
    normalized_adjacency_eigenvalues,
    spectral_gap,
    spectral_summary,
    stationary_distribution,
    transition_matrix,
)
from repro.graphs.walks import (
    WalkTrace,
    evolve_distribution,
    lazy_transition_matrix,
    position_distribution,
    simulate_token_walks,
    sum_squared_positions,
    total_variation_to_stationary,
)
from repro.graphs.dynamic import (
    DynamicGraphSchedule,
    collision_profile_on_schedule,
    evolve_on_schedule,
    evolve_profile_on_schedule,
    position_distribution_on_schedule,
    simulate_tokens_on_schedule,
    simulate_trial_walks_on_schedule,
    trace_collision_on_schedule,
)
from repro.graphs.metrics import (
    degree_statistics,
    irregularity_gamma,
    stationary_collision_probability,
)

__all__ = [
    "Graph",
    "connected_components",
    "is_bipartite",
    "is_connected",
    "is_ergodic",
    "largest_connected_component",
    "require_ergodic",
    "barabasi_albert_graph",
    "complete_graph",
    "cycle_graph",
    "erdos_renyi_graph",
    "from_networkx",
    "grid_graph",
    "path_graph",
    "random_regular_graph",
    "star_graph",
    "watts_strogatz_graph",
    "SpectralSummary",
    "mixing_time",
    "normalized_adjacency_eigenvalues",
    "spectral_gap",
    "spectral_summary",
    "stationary_distribution",
    "transition_matrix",
    "WalkTrace",
    "evolve_distribution",
    "lazy_transition_matrix",
    "position_distribution",
    "simulate_token_walks",
    "sum_squared_positions",
    "total_variation_to_stationary",
    "DynamicGraphSchedule",
    "collision_profile_on_schedule",
    "evolve_on_schedule",
    "evolve_profile_on_schedule",
    "position_distribution_on_schedule",
    "simulate_tokens_on_schedule",
    "simulate_trial_walks_on_schedule",
    "trace_collision_on_schedule",
    "degree_statistics",
    "irregularity_gamma",
    "stationary_collision_probability",
]
