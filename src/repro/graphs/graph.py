"""Immutable undirected graph backed by a CSR adjacency structure.

The representation is a flat ``indptr``/``indices`` pair (the classic
compressed-sparse-row layout) which makes the hot operations of this
library cheap:

* ``neighbors(i)`` is a zero-copy slice;
* vectorized "sample one random neighbor for every token" used by the
  walk engine is a couple of NumPy gathers;
* conversion to :class:`scipy.sparse.csr_matrix` for spectral analysis
  is free.

Self-loops are rejected (a user does not relay a report to herself in the
basic protocol; laziness is modeled explicitly by
:func:`repro.graphs.walks.lazy_transition_matrix`).  Parallel edges are
collapsed.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphError, ValidationError


class Graph:
    """An undirected, unweighted graph on nodes ``0 .. n-1``.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n``; nodes are the integers ``0 .. n-1``.
    edges:
        Iterable of ``(u, v)`` pairs with ``u != v``.  Order and
        duplicates are ignored.

    Notes
    -----
    Instances are immutable: all mutating operations return new graphs.
    """

    __slots__ = ("_num_nodes", "_indptr", "_indices", "_num_edges")

    def __init__(self, num_nodes: int, edges: Iterable[Tuple[int, int]]):
        if num_nodes < 0:
            raise ValidationError(f"num_nodes must be non-negative, got {num_nodes}")
        self._num_nodes = int(num_nodes)

        edge_array = np.asarray(list(edges), dtype=np.int64)
        if edge_array.size == 0:
            edge_array = edge_array.reshape(0, 2)
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise ValidationError("edges must be an iterable of (u, v) pairs")
        if edge_array.size:
            if edge_array.min() < 0 or edge_array.max() >= self._num_nodes:
                raise ValidationError(
                    "edge endpoints must lie in [0, num_nodes); "
                    f"got range [{edge_array.min()}, {edge_array.max()}] "
                    f"with num_nodes={self._num_nodes}"
                )
            if np.any(edge_array[:, 0] == edge_array[:, 1]):
                raise ValidationError("self-loops are not allowed")

        # Canonicalize: undirected edge {u, v} stored once as (min, max).
        lo = np.minimum(edge_array[:, 0], edge_array[:, 1])
        hi = np.maximum(edge_array[:, 0], edge_array[:, 1])
        unique = np.unique(np.stack([lo, hi], axis=1), axis=0) if lo.size else edge_array
        self._num_edges = int(unique.shape[0])

        # Build CSR by symmetrizing and sorting.
        heads = np.concatenate([unique[:, 0], unique[:, 1]])
        tails = np.concatenate([unique[:, 1], unique[:, 0]])
        order = np.lexsort((tails, heads))
        heads, tails = heads[order], tails[order]
        self._indptr = np.zeros(self._num_nodes + 1, dtype=np.int64)
        np.add.at(self._indptr, heads + 1, 1)
        np.cumsum(self._indptr, out=self._indptr)
        self._indices = tails.astype(np.int64)

    # ------------------------------------------------------------------
    # Alternate constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, num_nodes: int, indptr: np.ndarray, indices: np.ndarray) -> "Graph":
        """Build a graph directly from a symmetric CSR structure.

        This is the fast path used by generators; the caller guarantees the
        structure is symmetric, deduplicated, and loop-free.
        """
        graph = cls.__new__(cls)
        graph._num_nodes = int(num_nodes)
        graph._indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        graph._indices = np.ascontiguousarray(indices, dtype=np.int64)
        graph._num_edges = int(indices.size // 2)
        return graph

    @classmethod
    def from_edge_list(cls, edges: Sequence[Tuple[int, int]]) -> "Graph":
        """Build a graph whose node count is ``max endpoint + 1``."""
        edge_list = list(edges)
        num_nodes = 1 + max((max(u, v) for u, v in edge_list), default=-1)
        return cls(num_nodes, edge_list)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return self._num_edges

    @property
    def indptr(self) -> np.ndarray:
        """CSR row-pointer array (read-only view)."""
        view = self._indptr.view()
        view.flags.writeable = False
        return view

    @property
    def indices(self) -> np.ndarray:
        """CSR column-index array (read-only view)."""
        view = self._indices.view()
        view.flags.writeable = False
        return view

    def degrees(self) -> np.ndarray:
        """Degree vector ``k`` of all nodes."""
        return np.diff(self._indptr)

    def degree(self, node: int) -> int:
        """Degree of a single node."""
        self._check_node(node)
        return int(self._indptr[node + 1] - self._indptr[node])

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted neighbor array of ``node`` (zero-copy slice)."""
        self._check_node(node)
        return self._indices[self._indptr[node]: self._indptr[node + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        self._check_node(u)
        self._check_node(v)
        row = self.neighbors(u)
        position = np.searchsorted(row, v)
        return bool(position < row.size and row[position] == v)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate undirected edges as ``(u, v)`` with ``u < v``."""
        for u in range(self._num_nodes):
            for v in self.neighbors(u):
                if u < v:
                    yield (u, int(v))

    def is_regular(self) -> bool:
        """Whether every node has the same degree (``k``-regular graph)."""
        if self._num_nodes == 0:
            return True
        degrees = self.degrees()
        return bool(np.all(degrees == degrees[0]))

    # ------------------------------------------------------------------
    # Conversions & derived graphs
    # ------------------------------------------------------------------
    def adjacency_matrix(self) -> sp.csr_matrix:
        """The ``n x n`` sparse 0/1 adjacency matrix ``A``."""
        data = np.ones(self._indices.size, dtype=np.float64)
        return sp.csr_matrix(
            (data, self._indices, self._indptr),
            shape=(self._num_nodes, self._num_nodes),
        )

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (for interop/debugging)."""
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(self._num_nodes))
        nx_graph.add_edges_from(self.edges())
        return nx_graph

    def subgraph(self, nodes: Sequence[int]) -> "Graph":
        """Induced subgraph on ``nodes``, relabeled to ``0 .. len(nodes)-1``.

        The relabeling follows the order of ``nodes``.
        """
        node_array = np.asarray(nodes, dtype=np.int64)
        if node_array.size != np.unique(node_array).size:
            raise ValidationError("subgraph nodes must be distinct")
        mapping = -np.ones(self._num_nodes, dtype=np.int64)
        mapping[node_array] = np.arange(node_array.size)
        new_edges = [
            (int(mapping[u]), int(mapping[v]))
            for u, v in self.edges()
            if mapping[u] >= 0 and mapping[v] >= 0
        ]
        return Graph(node_array.size, new_edges)

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._num_nodes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._num_nodes == other._num_nodes
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:
        return hash((self._num_nodes, self._indices.tobytes()))

    def __repr__(self) -> str:
        return f"Graph(num_nodes={self._num_nodes}, num_edges={self._num_edges})"

    # ------------------------------------------------------------------
    # Internal
    # ------------------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._num_nodes:
            raise GraphError(
                f"node {node} out of range for graph with {self._num_nodes} nodes"
            )
