"""Reading and writing graphs as edge-list files.

The paper's datasets ship as SNAP-style edge lists (one ``u v`` pair
per line, ``#`` comments); this module reads that format — including
gzip-compressed files — so users can run the library on the *real*
graphs when they have them, instead of the synthetic stand-ins.

Node labels in the file may be arbitrary integers or strings; they are
relabeled densely to ``0 .. n-1`` (first-appearance order) and the
mapping is returned alongside the graph.
"""

from __future__ import annotations

import gzip
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple, Union

import numpy as np

from repro.exceptions import ValidationError
from repro.graphs.graph import Graph

PathLike = Union[str, Path]


@dataclass(frozen=True)
class LoadedGraph:
    """A graph read from disk plus its label mapping."""

    graph: Graph
    labels: Tuple[str, ...]
    """``labels[i]`` is the original label of node ``i``."""

    def node_of(self, label: str) -> int:
        """Dense node id of an original label."""
        try:
            return self.labels.index(label)
        except ValueError as error:
            raise ValidationError(f"unknown node label {label!r}") from error


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def read_edge_list(
    path: PathLike,
    *,
    comment: str = "#",
    delimiter: Union[str, None] = None,
) -> LoadedGraph:
    """Read an undirected graph from a (possibly gzipped) edge list.

    Lines starting with ``comment`` are skipped; each remaining line
    must contain at least two fields (extra fields, e.g. weights or
    timestamps, are ignored).  Self-loops are dropped and duplicate
    edges collapse, matching the :class:`Graph` semantics.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise ValidationError(f"no such file: {file_path}")
    index: Dict[str, int] = {}
    labels: List[str] = []
    edges: List[Tuple[int, int]] = []

    def node_id(label: str) -> int:
        if label not in index:
            index[label] = len(labels)
            labels.append(label)
        return index[label]

    with _open_text(file_path, "r") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(comment):
                continue
            fields = stripped.split(delimiter)
            if len(fields) < 2:
                raise ValidationError(
                    f"{file_path}:{line_number}: expected at least two "
                    f"fields, got {stripped!r}"
                )
            u, v = node_id(fields[0]), node_id(fields[1])
            if u != v:
                edges.append((u, v))
    if not labels:
        raise ValidationError(f"{file_path}: no edges found")
    return LoadedGraph(
        graph=Graph(len(labels), edges), labels=tuple(labels)
    )


def save_graph_npz(graph: Graph, path: PathLike) -> None:
    """Persist a graph's CSR arrays as a compressed ``.npz`` file.

    This is the binary interchange format of the sweep engine's on-disk
    graph cache: a materialized graph round-trips exactly (same CSR
    layout, hence the same hop draws under the exchange engine's RNG
    contract) without re-running the generator.

    The write is atomic (temp file + ``os.replace``): the cache treats
    an existing file as a complete graph, and concurrent sweep
    processes sharing a persistent spill directory must never observe a
    torn archive.
    """
    file_path = Path(path)
    # The temp name must keep the .npz suffix or np.savez appends one.
    temp_path = file_path.with_name(
        f".{file_path.stem}.tmp{os.getpid()}.npz"
    )
    try:
        np.savez_compressed(
            temp_path,
            num_nodes=np.int64(graph.num_nodes),
            indptr=graph.indptr,
            indices=graph.indices,
        )
        os.replace(temp_path, file_path)
    finally:
        if temp_path.exists():
            temp_path.unlink()


def load_graph_npz(path: PathLike) -> Graph:
    """Inverse of :func:`save_graph_npz`."""
    file_path = Path(path)
    if not file_path.exists():
        raise ValidationError(f"no such file: {file_path}")
    with np.load(file_path) as payload:
        try:
            num_nodes = int(payload["num_nodes"])
            indptr = np.asarray(payload["indptr"], dtype=np.int64)
            indices = np.asarray(payload["indices"], dtype=np.int64)
        except KeyError as error:
            raise ValidationError(
                f"{file_path} is not a graph cache file (missing {error})"
            ) from None
    return Graph.from_csr(num_nodes, indptr, indices)


#: Format marker distinguishing a schedule archive from a plain graph
#: archive in the shared spill directory (bumped on layout changes).
_SCHEDULE_VERSION = 1


def save_schedule_npz(schedule, path: PathLike) -> None:
    """Persist a :class:`DynamicGraphSchedule` as one ``.npz`` archive.

    Phase CSRs are stored side by side plus the selector spec — either
    round-robin (the ``selector=None`` default) or an
    :class:`~repro.graphs.dynamic.EpochSelector` (two integers).  An
    arbitrary callable selector has no declarative form and is refused:
    spill it by switching to ``EpochSelector`` or keep the sweep on
    fork workers (which inherit the object).

    Same atomicity discipline as :func:`save_graph_npz` — spawn-started
    sweep workers sharing a spill directory must never observe a torn
    archive.
    """
    from repro.graphs.dynamic import DynamicGraphSchedule, EpochSelector

    if not isinstance(schedule, DynamicGraphSchedule):
        raise ValidationError(
            f"expected a DynamicGraphSchedule, got {type(schedule).__name__}"
        )
    selector = schedule.selector
    payload: Dict[str, np.ndarray] = {
        "schedule_version": np.int64(_SCHEDULE_VERSION),
        "num_nodes": np.int64(schedule.num_nodes),
        "num_graphs": np.int64(schedule.num_graphs),
    }
    if selector is None:
        payload["selector_kind"] = np.array("round_robin")
    elif isinstance(selector, EpochSelector):
        payload["selector_kind"] = np.array("epoch")
        payload["selector_block"] = np.int64(selector.block)
        payload["selector_count"] = np.int64(selector.count)
    else:
        raise ValidationError(
            "cannot serialize a schedule with a custom selector "
            f"callable ({type(selector).__name__}); use the default "
            "round-robin or an EpochSelector"
        )
    for index, graph in enumerate(schedule.graphs):
        payload[f"graph{index}_indptr"] = graph.indptr
        payload[f"graph{index}_indices"] = graph.indices
    file_path = Path(path)
    temp_path = file_path.with_name(
        f".{file_path.stem}.tmp{os.getpid()}.npz"
    )
    try:
        np.savez_compressed(temp_path, **payload)
        os.replace(temp_path, file_path)
    finally:
        if temp_path.exists():
            temp_path.unlink()


def load_schedule_npz(path: PathLike):
    """Inverse of :func:`save_schedule_npz`."""
    from repro.graphs.dynamic import DynamicGraphSchedule, EpochSelector

    file_path = Path(path)
    if not file_path.exists():
        raise ValidationError(f"no such file: {file_path}")
    with np.load(file_path) as payload:
        try:
            version = int(payload["schedule_version"])
            num_nodes = int(payload["num_nodes"])
            num_graphs = int(payload["num_graphs"])
            selector_kind = str(payload["selector_kind"])
            graphs = [
                Graph.from_csr(
                    num_nodes,
                    np.asarray(payload[f"graph{i}_indptr"], dtype=np.int64),
                    np.asarray(payload[f"graph{i}_indices"], dtype=np.int64),
                )
                for i in range(num_graphs)
            ]
            if selector_kind == "epoch":
                selector = EpochSelector(
                    block=int(payload["selector_block"]),
                    count=int(payload["selector_count"]),
                )
            elif selector_kind == "round_robin":
                selector = None
            else:
                raise ValidationError(
                    f"{file_path}: unknown selector kind {selector_kind!r}"
                )
        except KeyError as error:
            raise ValidationError(
                f"{file_path} is not a schedule cache file (missing {error})"
            ) from None
    if version != _SCHEDULE_VERSION:
        raise ValidationError(
            f"{file_path}: schedule format v{version}, expected "
            f"v{_SCHEDULE_VERSION}"
        )
    return DynamicGraphSchedule(graphs, selector)


def load_spill(path: PathLike):
    """Load a spill-directory archive: a graph or a schedule.

    The graph cache's disk tier holds both kinds under one naming
    scheme; the ``schedule_version`` marker tells them apart.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise ValidationError(f"no such file: {file_path}")
    with np.load(file_path) as payload:
        is_schedule = "schedule_version" in payload
    if is_schedule:
        return load_schedule_npz(file_path)
    return load_graph_npz(file_path)


def write_edge_list(
    graph: Graph,
    path: PathLike,
    *,
    header: str = "",
) -> None:
    """Write a graph as a plain ``u v`` edge list (gzip if ``.gz``).

    Each undirected edge appears once as ``u v`` with ``u < v``.
    """
    file_path = Path(path)
    with _open_text(file_path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")
