"""Reading and writing graphs as edge-list files.

The paper's datasets ship as SNAP-style edge lists (one ``u v`` pair
per line, ``#`` comments); this module reads that format — including
gzip-compressed files — so users can run the library on the *real*
graphs when they have them, instead of the synthetic stand-ins.

Node labels in the file may be arbitrary integers or strings; they are
relabeled densely to ``0 .. n-1`` (first-appearance order) and the
mapping is returned alongside the graph.
"""

from __future__ import annotations

import gzip
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple, Union

import numpy as np

from repro.exceptions import ValidationError
from repro.graphs.graph import Graph

PathLike = Union[str, Path]


@dataclass(frozen=True)
class LoadedGraph:
    """A graph read from disk plus its label mapping."""

    graph: Graph
    labels: Tuple[str, ...]
    """``labels[i]`` is the original label of node ``i``."""

    def node_of(self, label: str) -> int:
        """Dense node id of an original label."""
        try:
            return self.labels.index(label)
        except ValueError as error:
            raise ValidationError(f"unknown node label {label!r}") from error


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def read_edge_list(
    path: PathLike,
    *,
    comment: str = "#",
    delimiter: Union[str, None] = None,
) -> LoadedGraph:
    """Read an undirected graph from a (possibly gzipped) edge list.

    Lines starting with ``comment`` are skipped; each remaining line
    must contain at least two fields (extra fields, e.g. weights or
    timestamps, are ignored).  Self-loops are dropped and duplicate
    edges collapse, matching the :class:`Graph` semantics.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise ValidationError(f"no such file: {file_path}")
    index: Dict[str, int] = {}
    labels: List[str] = []
    edges: List[Tuple[int, int]] = []

    def node_id(label: str) -> int:
        if label not in index:
            index[label] = len(labels)
            labels.append(label)
        return index[label]

    with _open_text(file_path, "r") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(comment):
                continue
            fields = stripped.split(delimiter)
            if len(fields) < 2:
                raise ValidationError(
                    f"{file_path}:{line_number}: expected at least two "
                    f"fields, got {stripped!r}"
                )
            u, v = node_id(fields[0]), node_id(fields[1])
            if u != v:
                edges.append((u, v))
    if not labels:
        raise ValidationError(f"{file_path}: no edges found")
    return LoadedGraph(
        graph=Graph(len(labels), edges), labels=tuple(labels)
    )


def save_graph_npz(graph: Graph, path: PathLike) -> None:
    """Persist a graph's CSR arrays as a compressed ``.npz`` file.

    This is the binary interchange format of the sweep engine's on-disk
    graph cache: a materialized graph round-trips exactly (same CSR
    layout, hence the same hop draws under the exchange engine's RNG
    contract) without re-running the generator.

    The write is atomic (temp file + ``os.replace``): the cache treats
    an existing file as a complete graph, and concurrent sweep
    processes sharing a persistent spill directory must never observe a
    torn archive.
    """
    file_path = Path(path)
    # The temp name must keep the .npz suffix or np.savez appends one.
    temp_path = file_path.with_name(
        f".{file_path.stem}.tmp{os.getpid()}.npz"
    )
    try:
        np.savez_compressed(
            temp_path,
            num_nodes=np.int64(graph.num_nodes),
            indptr=graph.indptr,
            indices=graph.indices,
        )
        os.replace(temp_path, file_path)
    finally:
        if temp_path.exists():
            temp_path.unlink()


def load_graph_npz(path: PathLike) -> Graph:
    """Inverse of :func:`save_graph_npz`."""
    file_path = Path(path)
    if not file_path.exists():
        raise ValidationError(f"no such file: {file_path}")
    with np.load(file_path) as payload:
        try:
            num_nodes = int(payload["num_nodes"])
            indptr = np.asarray(payload["indptr"], dtype=np.int64)
            indices = np.asarray(payload["indices"], dtype=np.int64)
        except KeyError as error:
            raise ValidationError(
                f"{file_path} is not a graph cache file (missing {error})"
            ) from None
    return Graph.from_csr(num_nodes, indptr, indices)


def write_edge_list(
    graph: Graph,
    path: PathLike,
    *,
    header: str = "",
) -> None:
    """Write a graph as a plain ``u v`` edge list (gzip if ``.gz``).

    Each undirected edge appears once as ``u v`` with ``u < v``.
    """
    file_path = Path(path)
    with _open_text(file_path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")
