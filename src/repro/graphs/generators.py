"""Graph generators for the topologies used in the paper's evaluation.

Key topologies:

* ``random_regular_graph`` — the k-regular graphs of the *symmetric
  distribution* scenario (Theorems 5.4/5.6, Figure 5);
* power-law style graphs (Barabasi-Albert, and the configuration-model
  based generators in :mod:`repro.datasets.synthetic`) as stand-ins for
  the social networks of Table 4;
* classical pedagogical graphs (cycle, complete, star, grid, path) used
  in tests — e.g. a cycle of even length is bipartite and therefore *not*
  ergodic (Theorem 4.3), which the ergodicity predicate must detect.

All generators take ``rng`` (seed / Generator / None) and never mutate
global RNG state.
"""

from __future__ import annotations


import networkx as nx

from repro.exceptions import ValidationError
from repro.graphs.graph import Graph
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int, check_probability


def from_networkx(nx_graph) -> Graph:
    """Convert a :class:`networkx.Graph` to a :class:`Graph`.

    Node labels may be arbitrary hashables; they are relabeled to
    ``0 .. n-1`` in sorted-by-insertion order.
    """
    nodes = list(nx_graph.nodes())
    index = {node: position for position, node in enumerate(nodes)}
    edges = [
        (index[u], index[v]) for u, v in nx_graph.edges() if index[u] != index[v]
    ]
    return Graph(len(nodes), edges)


def complete_graph(num_nodes: int) -> Graph:
    """Complete graph ``K_n``: shuffling on it mixes in one step."""
    check_positive_int(num_nodes, "num_nodes")
    edges = [(u, v) for u in range(num_nodes) for v in range(u + 1, num_nodes)]
    return Graph(num_nodes, edges)


def cycle_graph(num_nodes: int) -> Graph:
    """Cycle ``C_n``.  Even cycles are bipartite (hence non-ergodic)."""
    check_positive_int(num_nodes, "num_nodes")
    if num_nodes < 3:
        raise ValidationError(f"cycle requires >= 3 nodes, got {num_nodes}")
    edges = [(i, (i + 1) % num_nodes) for i in range(num_nodes)]
    return Graph(num_nodes, edges)


def path_graph(num_nodes: int) -> Graph:
    """Path ``P_n`` — bipartite, so non-ergodic; used in negative tests."""
    check_positive_int(num_nodes, "num_nodes")
    edges = [(i, i + 1) for i in range(num_nodes - 1)]
    return Graph(num_nodes, edges)


def star_graph(num_leaves: int) -> Graph:
    """Star with one hub and ``num_leaves`` leaves.

    The most irregular connected graph for its size: its stationary
    distribution puts probability 1/2 on the hub, making ``Gamma_G``
    large — a useful extreme case for the irregularity-dependent bounds.
    """
    check_positive_int(num_leaves, "num_leaves")
    edges = [(0, leaf) for leaf in range(1, num_leaves + 1)]
    return Graph(num_leaves + 1, edges)


def grid_graph(rows: int, cols: int, *, periodic: bool = False) -> Graph:
    """2-D grid (optionally a torus) — the wireless-sensor-network use case."""
    check_positive_int(rows, "rows")
    check_positive_int(cols, "cols")
    edges = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append((node, node + 1))
            elif periodic and cols > 2:
                edges.append((node, r * cols))
            if r + 1 < rows:
                edges.append((node, node + cols))
            elif periodic and rows > 2:
                edges.append((node, c))
    return Graph(rows * cols, edges)


def random_regular_graph(degree: int, num_nodes: int, rng: RngLike = None) -> Graph:
    """Random ``k``-regular graph (the symmetric-distribution scenario).

    Delegates to networkx's pairing-model implementation, retrying with
    fresh randomness until a simple graph is produced.
    """
    check_positive_int(degree, "degree")
    check_positive_int(num_nodes, "num_nodes")
    if degree >= num_nodes:
        raise ValidationError(
            f"degree ({degree}) must be < num_nodes ({num_nodes})"
        )
    if (degree * num_nodes) % 2 != 0:
        raise ValidationError("degree * num_nodes must be even")
    generator = ensure_rng(rng)
    seed = int(generator.integers(0, 2**31 - 1))
    nx_graph = nx.random_regular_graph(degree, num_nodes, seed=seed)
    return from_networkx(nx_graph)


def erdos_renyi_graph(num_nodes: int, edge_probability: float, rng: RngLike = None) -> Graph:
    """Erdos-Renyi ``G(n, p)`` via fast sparse sampling."""
    check_positive_int(num_nodes, "num_nodes")
    check_probability(edge_probability, "edge_probability")
    generator = ensure_rng(rng)
    seed = int(generator.integers(0, 2**31 - 1))
    nx_graph = nx.fast_gnp_random_graph(num_nodes, edge_probability, seed=seed)
    return from_networkx(nx_graph)


def barabasi_albert_graph(num_nodes: int, attachment: int, rng: RngLike = None) -> Graph:
    """Barabasi-Albert preferential-attachment graph.

    Produces a heavy-tailed degree distribution similar to social
    networks; the Table 4 stand-ins use the finer-grained calibrated
    generator in :mod:`repro.datasets.synthetic`.
    """
    check_positive_int(num_nodes, "num_nodes")
    check_positive_int(attachment, "attachment")
    if attachment >= num_nodes:
        raise ValidationError(
            f"attachment ({attachment}) must be < num_nodes ({num_nodes})"
        )
    generator = ensure_rng(rng)
    seed = int(generator.integers(0, 2**31 - 1))
    nx_graph = nx.barabasi_albert_graph(num_nodes, attachment, seed=seed)
    return from_networkx(nx_graph)


def watts_strogatz_graph(
    num_nodes: int,
    nearest_neighbors: int,
    rewire_probability: float,
    rng: RngLike = None,
) -> Graph:
    """Watts-Strogatz small-world graph (connected variant)."""
    check_positive_int(num_nodes, "num_nodes")
    check_positive_int(nearest_neighbors, "nearest_neighbors")
    check_probability(rewire_probability, "rewire_probability")
    generator = ensure_rng(rng)
    seed = int(generator.integers(0, 2**31 - 1))
    nx_graph = nx.connected_watts_strogatz_graph(
        num_nodes, nearest_neighbors, rewire_probability, seed=seed
    )
    return from_networkx(nx_graph)
