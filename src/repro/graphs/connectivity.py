"""Connectivity, bipartiteness, and ergodicity predicates.

Theorem 4.3 of the paper: a random walk on a graph ``G`` is ergodic if
and only if ``G`` is connected and not bipartite.  The privacy theorems
assume ergodic graphs (Section 4.2); disconnected graphs are a parallel
composition of their components, so the library analyzes the largest
connected component, exactly as the paper does for Table 4.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.exceptions import NotErgodicError
from repro.graphs.graph import Graph


def connected_components(graph: Graph) -> List[np.ndarray]:
    """Connected components as arrays of node ids, largest first.

    Implemented as an iterative BFS over the CSR structure (no recursion
    limits, no networkx overhead on large graphs).
    """
    n = graph.num_nodes
    labels = -np.ones(n, dtype=np.int64)
    indptr, indices = graph.indptr, graph.indices
    current_label = 0
    stack: List[int] = []
    for source in range(n):
        if labels[source] >= 0:
            continue
        labels[source] = current_label
        stack.append(source)
        while stack:
            node = stack.pop()
            for neighbor in indices[indptr[node]: indptr[node + 1]]:
                if labels[neighbor] < 0:
                    labels[neighbor] = current_label
                    stack.append(int(neighbor))
        current_label += 1
    components = [np.flatnonzero(labels == label) for label in range(current_label)]
    components.sort(key=len, reverse=True)
    return components


def is_connected(graph: Graph) -> bool:
    """Whether the graph has exactly one connected component."""
    if graph.num_nodes == 0:
        return False
    return len(connected_components(graph)) == 1


def largest_connected_component(graph: Graph) -> Graph:
    """Induced subgraph on the largest connected component.

    Matches the paper's Table 4 convention: "the largest connected
    graphs are chosen when calculating the values of n and Gamma_G".
    """
    components = connected_components(graph)
    if not components:
        return graph
    return graph.subgraph(components[0])


def is_bipartite(graph: Graph) -> bool:
    """2-colorability via BFS; vacuously true for edgeless graphs."""
    n = graph.num_nodes
    color = -np.ones(n, dtype=np.int8)
    indptr, indices = graph.indptr, graph.indices
    stack: List[int] = []
    for source in range(n):
        if color[source] >= 0:
            continue
        color[source] = 0
        stack.append(source)
        while stack:
            node = stack.pop()
            node_color = color[node]
            for neighbor in indices[indptr[node]: indptr[node + 1]]:
                if color[neighbor] < 0:
                    color[neighbor] = 1 - node_color
                    stack.append(int(neighbor))
                elif color[neighbor] == node_color:
                    return False
    return True


def is_ergodic(graph: Graph) -> bool:
    """Theorem 4.3: ergodic iff connected and not bipartite.

    An isolated node or an edgeless graph is not ergodic.
    """
    if graph.num_nodes == 0 or graph.num_edges == 0:
        return False
    return is_connected(graph) and not is_bipartite(graph)


def require_ergodic(graph: Graph) -> None:
    """Raise :class:`NotErgodicError` with a diagnostic if not ergodic."""
    if graph.num_nodes == 0 or graph.num_edges == 0:
        raise NotErgodicError("graph has no edges; the walk cannot mix")
    if not is_connected(graph):
        raise NotErgodicError(
            "graph is disconnected; analyze each connected component "
            "separately (parallel composition, Section 4.2)"
        )
    if is_bipartite(graph):
        raise NotErgodicError(
            "graph is bipartite; the walk oscillates between the two sides "
            "and never converges (Theorem 4.3) — consider a lazy walk"
        )
