"""Graph metrics used by the privacy analysis.

The central quantity is the *irregularity measure*

    Gamma_G = n * sum_i (P_i^G)^2        (Table 2),

evaluated at the stationary distribution ``pi = k/2m``.  For a k-regular
graph ``Gamma_G = 1`` (its stationary distribution is uniform), and the
amplification degrades as ``sqrt(Gamma_G)`` grows — social networks have
``Gamma_G <~ 10`` while the Google web graph reaches ``~20`` (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.spectral import stationary_distribution


def stationary_collision_probability(graph: Graph) -> float:
    """``sum_i pi_i^2`` — the probability two independent stationary
    walkers collide; the stationary limit of ``sum_i P_i(t)^2``."""
    pi = stationary_distribution(graph)
    return float(np.dot(pi, pi))


def irregularity_gamma(graph: Graph) -> float:
    """``Gamma_G = n * sum_i pi_i^2`` (Table 2 / Table 4).

    Equals ``n * (sum_i k_i^2) / (2m)^2``; 1.0 exactly for regular
    graphs and grows with degree heterogeneity.
    """
    return graph.num_nodes * stationary_collision_probability(graph)


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary of a graph's degree sequence."""

    minimum: int
    maximum: int
    mean: float
    variance: float

    @property
    def coefficient_of_variation(self) -> float:
        """Std/mean of the degree sequence; 0 for regular graphs."""
        if self.mean == 0:
            return 0.0
        return float(np.sqrt(self.variance) / self.mean)


def degree_statistics(graph: Graph) -> DegreeStatistics:
    """Min/max/mean/variance of the degree sequence."""
    degrees = graph.degrees()
    if degrees.size == 0:
        return DegreeStatistics(0, 0, 0.0, 0.0)
    return DegreeStatistics(
        minimum=int(degrees.min()),
        maximum=int(degrees.max()),
        mean=float(degrees.mean()),
        variance=float(degrees.var()),
    )


def gamma_from_degrees(degrees: np.ndarray) -> float:
    """``Gamma`` computed directly from a degree sequence.

    Used by the dataset calibration loop, which searches over degree
    sequences before materializing any graph.
    """
    degrees = np.asarray(degrees, dtype=np.float64)
    total = degrees.sum()
    if total == 0:
        raise ValueError("degree sequence sums to zero")
    pi = degrees / total
    return float(degrees.size * np.dot(pi, pi))
