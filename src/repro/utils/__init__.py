"""Shared utilities: RNG plumbing, validation, and numerically stable math."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_delta,
    check_epsilon,
    check_positive_int,
    check_probability,
    check_probability_vector,
)
from repro.utils.mathutils import (
    log1mexp,
    log_add_exp,
    log_sub_exp,
    stable_expm1,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "check_delta",
    "check_epsilon",
    "check_positive_int",
    "check_probability",
    "check_probability_vector",
    "log1mexp",
    "log_add_exp",
    "log_sub_exp",
    "stable_expm1",
]
