"""Random-number-generator plumbing.

Every stochastic API in the library accepts either a
:class:`numpy.random.Generator`, an integer seed, or ``None`` and funnels
it through :func:`ensure_rng`.  Nothing in the library touches NumPy's
global RNG state, which keeps experiments reproducible and parallelizable.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` (fresh unpredictable generator), an ``int`` seed, or an
        existing generator (returned unchanged).

    Returns
    -------
    numpy.random.Generator
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"rng must be None, an int seed, or a numpy Generator; got {type(rng)!r}"
    )


def spawn_rngs(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Children are produced with the SeedSequence spawning protocol, so
    streams do not overlap even for adjacent seeds.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(rng)
    return [
        np.random.default_rng(seq)
        for seq in parent.bit_generator.seed_seq.spawn(count)  # type: ignore[union-attr]
    ]
