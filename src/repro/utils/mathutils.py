"""Numerically stable math helpers used by the privacy bounds.

The amplification theorems involve expressions like ``e^{32 eps0}`` that
overflow ordinary floats for large ``eps0``; these helpers keep such
computations in log space where possible.
"""

from __future__ import annotations

import math

import numpy as np

_LOG_HALF = math.log(0.5)


def stable_expm1(x: float) -> float:
    """``e^x - 1`` computed without cancellation for small ``x``."""
    return math.expm1(x)


def log1mexp(x: float) -> float:
    """Compute ``log(1 - e^{x})`` for ``x < 0`` stably.

    Uses the standard two-branch trick (Maechler 2012): for
    ``x > -log 2`` use ``log(-expm1(x))``, otherwise ``log1p(-exp(x))``.
    """
    if x >= 0.0:
        raise ValueError(f"log1mexp requires x < 0, got {x}")
    if x > _LOG_HALF:
        return math.log(-math.expm1(x))
    return math.log1p(-math.exp(x))


def log_add_exp(a: float, b: float) -> float:
    """``log(e^a + e^b)`` without overflow."""
    if a == -math.inf:
        return b
    if b == -math.inf:
        return a
    hi, lo = (a, b) if a >= b else (b, a)
    return hi + math.log1p(math.exp(lo - hi))


def log_sub_exp(a: float, b: float) -> float:
    """``log(e^a - e^b)`` for ``a > b`` without overflow."""
    if b == -math.inf:
        return a
    if a <= b:
        raise ValueError(f"log_sub_exp requires a > b, got a={a}, b={b}")
    return a + log1mexp(b - a)


def softplus_inverse(y: float) -> float:
    """Inverse of ``softplus(x) = log(1 + e^x)``; helper for bound inversion."""
    if y <= 0.0:
        raise ValueError(f"softplus_inverse requires y > 0, got {y}")
    return y + math.log(-math.expm1(-y))


def binary_search_monotone(
    function,
    target: float,
    lower: float,
    upper: float,
    *,
    increasing: bool = True,
    tolerance: float = 1e-12,
    max_iterations: int = 200,
) -> float:
    """Solve ``function(x) = target`` for a monotone ``function`` on
    ``[lower, upper]`` by bisection.

    Returns the midpoint of the final bracket.  Used e.g. to invert
    amplification bounds (find the ``eps0`` achieving a desired central
    ``eps``) and to calibrate synthetic datasets.
    """
    if lower >= upper:
        raise ValueError(f"need lower < upper, got [{lower}, {upper}]")
    lo, hi = float(lower), float(upper)
    for _ in range(max_iterations):
        mid = 0.5 * (lo + hi)
        value = function(mid)
        if abs(value - target) <= tolerance:
            return mid
        too_small = value < target if increasing else value > target
        if too_small:
            lo = mid
        else:
            hi = mid
        if hi - lo <= tolerance * max(1.0, abs(hi)):
            break
    return 0.5 * (lo + hi)


def l2_norm_squared(vector: np.ndarray) -> float:
    """Squared Euclidean norm as a plain float."""
    vector = np.asarray(vector, dtype=float)
    return float(np.dot(vector, vector))
