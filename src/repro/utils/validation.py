"""Argument-validation helpers.

These raise :class:`repro.exceptions.ValidationError` (a ``ValueError``
subclass) with messages that name the offending parameter, so call sites
stay one-liners.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import InvalidPrivacyParameterError, ValidationError


def check_positive_int(value: int, name: str) -> int:
    """Return ``value`` if it is a positive integer, else raise."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return int(value)


def check_non_negative_int(value: int, name: str) -> int:
    """Return ``value`` if it is a non-negative integer, else raise."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValidationError(f"{name} must be non-negative, got {value}")
    return int(value)


def check_probability(value: float, name: str) -> float:
    """Return ``value`` if it lies in ``[0, 1]``, else raise."""
    value = float(value)
    if not np.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must be a probability in [0, 1], got {value}")
    return value


def check_epsilon(epsilon: float, name: str = "epsilon", *, allow_zero: bool = False) -> float:
    """Validate a differential-privacy ``epsilon`` parameter.

    ``epsilon`` must be finite and strictly positive (or non-negative when
    ``allow_zero`` is set, e.g. for degenerate comparisons).
    """
    epsilon = float(epsilon)
    if not np.isfinite(epsilon):
        raise InvalidPrivacyParameterError(f"{name} must be finite, got {epsilon}")
    lower_ok = epsilon >= 0.0 if allow_zero else epsilon > 0.0
    if not lower_ok:
        bound = "non-negative" if allow_zero else "positive"
        raise InvalidPrivacyParameterError(f"{name} must be {bound}, got {epsilon}")
    return epsilon


def check_delta(delta: float, name: str = "delta", *, allow_zero: bool = False) -> float:
    """Validate a differential-privacy ``delta`` parameter in ``(0, 1)``.

    ``allow_zero`` permits pure-DP statements (``delta == 0``).
    """
    delta = float(delta)
    lower_ok = delta >= 0.0 if allow_zero else delta > 0.0
    if not np.isfinite(delta) or not lower_ok or delta >= 1.0:
        interval = "[0, 1)" if allow_zero else "(0, 1)"
        raise InvalidPrivacyParameterError(f"{name} must lie in {interval}, got {delta}")
    return delta


def check_probability_vector(
    vector: np.ndarray,
    name: str = "probability vector",
    *,
    atol: float = 1e-8,
    size: Optional[int] = None,
) -> np.ndarray:
    """Validate a 1-D non-negative vector summing to 1 (within ``atol``)."""
    vector = np.asarray(vector, dtype=float)
    if vector.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got shape {vector.shape}")
    if size is not None and vector.size != size:
        raise ValidationError(f"{name} must have length {size}, got {vector.size}")
    if vector.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if np.any(vector < -atol):
        raise ValidationError(f"{name} has negative entries")
    total = float(vector.sum())
    if abs(total - 1.0) > max(atol, atol * vector.size):
        raise ValidationError(f"{name} must sum to 1, got {total}")
    return vector
