"""Empirical privacy auditing: measured lower bounds on epsilon.

The theorems give *upper* bounds on the central privacy loss; auditing
gives *lower* bounds from the attacker's side, via the standard
distinguishing game (Kairouz-Oh-Viswanath hypothesis-testing view of
DP): run the mechanism many times on adjacent inputs ``D`` / ``D'``,
threshold a test statistic, and convert the achieved false-positive /
false-negative rates into

    eps_hat = max( log((1 - delta - FNR) / FPR),
                   log((1 - delta - FPR) / FNR) ),

which every ``(eps, delta)``-DP mechanism must exceed.  Sandwiching the
mechanism between ``eps_hat`` and the theorem bound is the strongest
correctness evidence a reproduction can offer.
"""

from repro.auditing.auditor import (
    KERNEL_MAX_NODES,
    AuditResult,
    audit_local_randomizer,
    audit_network_shuffle,
    epsilon_lower_bound,
    report_sum_statistic,
    resolve_method,
    should_memoize,
    topk_evidence_statistic,
    weighted_evidence_statistic,
)

__all__ = [
    "AuditResult",
    "KERNEL_MAX_NODES",
    "audit_local_randomizer",
    "audit_network_shuffle",
    "epsilon_lower_bound",
    "report_sum_statistic",
    "resolve_method",
    "should_memoize",
    "topk_evidence_statistic",
    "weighted_evidence_statistic",
]
