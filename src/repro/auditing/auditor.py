"""The distinguishing-game auditor.

Workflow:

1. fix adjacent datasets ``D`` and ``D'`` differing in user 1's value;
2. run the mechanism ``trials`` times on each, collecting a scalar
   *test statistic* per run (the attacker's evidence);
3. sweep thresholds; each threshold is a hypothesis test whose
   ``(FPR, FNR)`` must satisfy the DP region inequalities
   ``FPR + e^eps FNR >= 1 - delta`` and ``FNR + e^eps FPR >= 1 - delta``;
4. report the largest ``eps`` certified by any threshold.

The resulting ``eps_hat`` is a statistically *estimated* lower bound:
the false-positive rate enters through its one-sided Clopper-Pearson
*upper* bound and the true-positive rate through its *lower* bound, so
a spurious tail threshold cannot certify a loss the mechanism does not
have.  ``min_count`` guards the total per-world trial count (too few
samples make even the confidence bounds meaningless); audits need at
least that many trials in each world.

For network shuffling the attacker statistic implemented here is the
paper's central adversary at its most informed: it knows the position
distribution ``P^G_1(t)`` of the victim's report and weighs every
delivered payload by the probability the victim's report sits with its
deliverer.  At ``t = 0`` this recovers the raw randomized response
(``eps_hat ~ eps0``); as ``t`` grows the weights flatten and the
measured privacy loss collapses — amplification made visible.

Monte Carlo engine
------------------
Everything is trial-batched.  Two fast engines share the same
estimator (tokens and trials are jointly independent, so any sampler
with the exact per-token ``t``-step law produces the same statistic
distribution):

* ``method="tiled"`` simulates all ``trials x n`` token walks in a
  single flat :func:`~repro.graphs.walks.simulate_trial_walks` call
  (tiled start nodes), draws the randomizer flips for every trial at
  once, and reduces to per-trial statistics with one segmented
  (axis-1) reduction.  Cost scales with ``rounds``.
* ``method="kernel"`` computes the ``t``-step transition kernel
  ``M^t`` once (``t`` sparse-dense products, shared by both worlds)
  and samples every token's final holder directly from its kernel row
  by vectorized rejection against a scaled-uniform proposal — after
  mixing the rows are nearly flat, so a couple of passes settle all
  ``trials x n`` tokens and the sampling cost is *independent of*
  ``rounds``.  Non-victim payloads are drawn as fair coins directly
  (binary RR applied to a uniform bit is a uniform bit — exactly the
  same law, one fewer pass over the batch).

``method="auto"`` (default) picks ``kernel`` for mixed walks on graphs
small enough to hold the dense kernel and ``tiled`` otherwise.  The
threshold sweep is shared: sorted-array ``searchsorted`` counts plus
*vectorized* Clopper-Pearson bounds (``beta.ppf`` on arrays) —
identical ``(eps, threshold)`` on the same statistics arrays as the
scalar sweep, orders of magnitude fewer scipy calls.

Seed-stream contract: ``audit_network_shuffle`` derives one child
generator per world (``D`` first, then ``D'``) with the SeedSequence
spawning protocol.  The retained reference implementation
(``method="loop"``) uses the same per-world children but draws trial
by trial, so all methods agree statistically (same estimator, same
trial count) without being bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Union

import numpy as np

from repro.core.config import DEFAULT_CONFIG
from repro.exceptions import ScheduleRefusedError, ValidationError
from repro.graphs.dynamic import (
    DynamicGraphSchedule,
    position_distribution_on_schedule,
    simulate_tokens_on_schedule,
    simulate_trial_walks_on_schedule,
)
from repro.graphs.graph import Graph
from repro.graphs.walks import (
    lazy_transition_matrix,
    position_distribution,
    simulate_token_walks,
    simulate_trial_walks,
)
from repro.ldp.base import LocalRandomizer
from repro.ldp.randomized_response import BinaryRandomizedResponse
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs
from repro.utils.validation import check_delta, check_positive_int

#: Anywhere the auditor takes a topology it accepts a static graph or a
#: dynamic schedule; the step-walking engines handle both, the kernel
#: engine (one dense ``M^t``) is static-only and rejects schedules.
GraphLike = Union[Graph, DynamicGraphSchedule]

#: A trial-batched attacker statistic: maps ``(payloads, holders)``
#: arrays of shape ``(trials, n)`` to one scalar of evidence per trial.
AuditStatistic = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _position_distribution(
    graph: GraphLike, victim: int, rounds: int, laziness: float
) -> np.ndarray:
    """The victim's exact ``P(t)`` on a static or time-varying topology."""
    if isinstance(graph, DynamicGraphSchedule):
        return position_distribution_on_schedule(
            graph, victim, rounds, laziness=laziness
        )
    return position_distribution(graph, victim, rounds, laziness=laziness)

#: Cap on ``trials * n`` tokens simulated per flat batch; audits larger
#: than this chunk the trial axis so memory stays bounded.
_MAX_BATCH_TOKENS = 8_000_000


@dataclass(frozen=True)
class AuditResult:
    """Outcome of one distinguishing-game audit."""

    epsilon_lower_bound: float
    delta: float
    trials: int
    best_threshold: float
    mechanism: str

    def certifies_amplification(self, epsilon0: float) -> bool:
        """Whether the measured loss sits strictly below the local budget."""
        return self.epsilon_lower_bound < epsilon0

    def summary(self) -> Dict[str, Any]:
        """JSON-able digest for reporting/CLI output."""
        return {
            "mechanism": self.mechanism,
            "trials": self.trials,
            "delta": self.delta,
            "epsilon_lower_bound": self.epsilon_lower_bound,
            "best_threshold": self.best_threshold,
        }


def _clopper_pearson(successes: int, trials: int, *, upper: bool,
                     confidence: float = 0.95) -> float:
    """One-sided Clopper-Pearson bound on a binomial proportion."""
    from scipy import stats

    alpha = 1.0 - confidence
    if upper:
        if successes >= trials:
            return 1.0
        return float(stats.beta.ppf(1.0 - alpha, successes + 1, trials - successes))
    if successes <= 0:
        return 0.0
    return float(stats.beta.ppf(alpha, successes, trials - successes + 1))


def _clopper_pearson_upper(
    successes: np.ndarray, trials: int, confidence: float
) -> np.ndarray:
    """Vectorized one-sided upper bound; matches the scalar helper exactly."""
    from scipy import stats

    successes = np.asarray(successes, dtype=np.float64)
    result = np.ones_like(successes)
    interior = successes < trials
    result[interior] = stats.beta.ppf(
        confidence, successes[interior] + 1.0, trials - successes[interior]
    )
    return result


def _clopper_pearson_lower(
    successes: np.ndarray, trials: int, confidence: float
) -> np.ndarray:
    """Vectorized one-sided lower bound; matches the scalar helper exactly."""
    from scipy import stats

    successes = np.asarray(successes, dtype=np.float64)
    result = np.zeros_like(successes)
    interior = successes > 0
    result[interior] = stats.beta.ppf(
        1.0 - confidence, successes[interior], trials - successes[interior] + 1.0
    )
    return result


def epsilon_lower_bound(
    statistics_d: np.ndarray,
    statistics_d_prime: np.ndarray,
    delta: float,
    *,
    min_count: int = 10,
    confidence: float = 0.95,
) -> tuple[float, float]:
    """Best certified ``eps`` over all thresholds; returns ``(eps, threshold)``.

    Statistically sound version: the false-positive rate enters through
    its Clopper-Pearson *upper* bound and the true-positive rate through
    its *lower* bound, so a spurious tail threshold cannot certify a
    loss the mechanism does not have (the classic auditing pitfall).
    Both test orientations (claim on large / small statistics) and both
    world orderings are evaluated, so orientation does not matter.

    The sweep is fully vectorized: flagged counts for every threshold
    come from two ``searchsorted`` calls on the sorted statistics, and
    all Clopper-Pearson bounds are batched ``beta.ppf`` array calls —
    eight array evaluations total instead of eight scalar ones per
    threshold.  Results are bit-identical to the scalar per-threshold
    sweep (same counts, same ``beta.ppf`` values, same first-maximum
    tie-breaking).
    """
    check_delta(delta, allow_zero=True)
    a = np.asarray(statistics_d, dtype=np.float64)
    b = np.asarray(statistics_d_prime, dtype=np.float64)
    if a.size < min_count or b.size < min_count:
        raise ValidationError(
            f"need at least {min_count} trials per world, got {a.size}/{b.size}"
        )
    # Subsample the threshold grid for speed on large audits.
    pooled = np.unique(np.concatenate([a, b]))
    if pooled.size > 512:
        pooled = pooled[:: pooled.size // 512]

    # Flagged-by-">" counts for every threshold at once: the number of
    # statistics strictly above each pooled value.
    a_sorted = np.sort(a)
    b_sorted = np.sort(b)
    flagged_a = a.size - np.searchsorted(a_sorted, pooled, side="right")
    flagged_b = b.size - np.searchsorted(b_sorted, pooled, side="right")

    # The four (count, trials) pairs the orientation x ordering grid
    # touches, each bounded once as FPR-upper and once as TPR-lower.
    upper_a = _clopper_pearson_upper(flagged_a, a.size, confidence)
    upper_b = _clopper_pearson_upper(flagged_b, b.size, confidence)
    upper_ac = _clopper_pearson_upper(a.size - flagged_a, a.size, confidence)
    upper_bc = _clopper_pearson_upper(b.size - flagged_b, b.size, confidence)
    lower_a = _clopper_pearson_lower(flagged_a, a.size, confidence)
    lower_b = _clopper_pearson_lower(flagged_b, b.size, confidence)
    lower_ac = _clopper_pearson_lower(a.size - flagged_a, a.size, confidence)
    lower_bc = _clopper_pearson_lower(b.size - flagged_b, b.size, confidence)

    # Rows: (orientation ">", null=D), (">", null=D'), ("<=", null=D),
    # ("<=", null=D') — candidate eps = log((TPR_lower - delta) / FPR_upper).
    numerators = np.stack([lower_b, lower_a, lower_bc, lower_ac]) - delta
    denominators = np.stack([upper_a, upper_b, upper_ac, upper_bc])
    valid = (numerators > 0.0) & (denominators > 0.0)
    candidates = np.full(numerators.shape, -np.inf)
    np.log(
        np.divide(numerators, denominators, where=valid, out=np.ones_like(numerators)),
        where=valid,
        out=candidates,
    )

    per_threshold = candidates.max(axis=0)
    best_eps = float(per_threshold.max(initial=-np.inf))
    if best_eps <= 0.0:
        return 0.0, float(pooled[0])
    # The scalar sweep only replaces the incumbent on a strict
    # improvement, so ties resolve to the earliest threshold.
    return best_eps, float(pooled[int(np.argmax(per_threshold))])


# ----------------------------------------------------------------------
# Attacker statistics (trial-batched)
# ----------------------------------------------------------------------
def weighted_evidence_statistic(
    graph: GraphLike,
    rounds: int,
    *,
    laziness: float = 0.0,
    victim: int = 0,
) -> AuditStatistic:
    """The paper's informed central adversary.

    Weighs each delivered payload by ``P^G_victim(t)`` at its deliverer:
    the probability the victim's report is the one that deliverer holds.
    On a dynamic schedule the weights come from the exact scheduled
    evolution — the adversary knows the topology sequence.
    """
    weights = _position_distribution(graph, victim, rounds, laziness)

    def statistic(payloads: np.ndarray, holders: np.ndarray) -> np.ndarray:
        return (payloads * weights[holders]).sum(axis=1)

    return statistic


def topk_evidence_statistic(
    graph: GraphLike,
    rounds: int,
    *,
    laziness: float = 0.0,
    victim: int = 0,
    top_k: int = 8,
) -> AuditStatistic:
    """A cruder adversary: payload mass at the ``top_k`` likeliest nodes.

    Hard thresholding of the position distribution — between the fully
    weighted attacker and the position-blind one, useful for measuring
    how much the attack degrades with coarser side information.
    """
    check_positive_int(top_k, "top_k")
    weights = _position_distribution(graph, victim, rounds, laziness)
    top_k = min(top_k, graph.num_nodes)
    in_top = np.zeros(graph.num_nodes, dtype=bool)
    in_top[np.argpartition(weights, -top_k)[-top_k:]] = True

    def statistic(payloads: np.ndarray, holders: np.ndarray) -> np.ndarray:
        return (payloads * in_top[holders]).sum(axis=1)

    return statistic


def report_sum_statistic(graph: GraphLike, rounds: int, **_: Any) -> AuditStatistic:
    """The position-blind adversary: sum of all delivered payloads.

    Ignores where reports land, so shuffling grants it nothing beyond
    the honest-majority noise floor — the ablation baseline a sound
    audit should measure near zero against.
    """

    def statistic(payloads: np.ndarray, holders: np.ndarray) -> np.ndarray:
        return payloads.sum(axis=1, dtype=np.float64)

    return statistic


# ----------------------------------------------------------------------
# Audits
# ----------------------------------------------------------------------
def _world_reports(
    randomizer: LocalRandomizer,
    value,
    trials: int,
    generator: np.random.Generator,
) -> list:
    """``trials`` reports of one value, batched when the mechanism can.

    A mechanism that overrides :meth:`LocalRandomizer.randomize_batch`
    draws all of a world's reports in one vectorized call instead of
    ``trials`` Python round-trips.  For mechanisms whose batch draw
    consumes the stream per-value in trial order (binary RR: one
    uniform per report), the batched world is bit-identical to the
    per-trial loop; others are statistically equivalent (same law,
    different draw granularity).  The base-class default is itself the
    per-report loop, so falling through it changes nothing.
    """
    return list(randomizer.randomize_batch([value] * trials, generator))


def audit_local_randomizer(
    randomizer: LocalRandomizer,
    value_d,
    value_d_prime,
    *,
    trials: int = 5000,
    delta: float = 0.0,
    statistic: Optional[Callable[[object], float]] = None,
    rng: RngLike = None,
) -> AuditResult:
    """Audit a local randomizer on a pair of inputs.

    The default statistic is the (float-coerced) report itself.  Each
    world's ``trials`` reports are drawn through the mechanism's
    ``randomize_batch`` (one vectorized call for mechanisms that
    implement it, the per-report loop otherwise).
    """
    check_positive_int(trials, "trials")
    generator = ensure_rng(rng)
    extract = statistic if statistic is not None else float
    stats_d = np.array([
        extract(report)
        for report in _world_reports(randomizer, value_d, trials, generator)
    ])
    stats_d_prime = np.array([
        extract(report)
        for report in _world_reports(randomizer, value_d_prime, trials, generator)
    ])
    eps, threshold = epsilon_lower_bound(stats_d, stats_d_prime, delta)
    return AuditResult(
        epsilon_lower_bound=eps,
        delta=delta,
        trials=trials,
        best_threshold=threshold,
        mechanism=f"local:{type(randomizer).__name__}",
    )


def _trial_chunks(trials: int, num_nodes: int):
    """Split the trial axis so no batch exceeds ``_MAX_BATCH_TOKENS``."""
    batch = max(1, min(trials, _MAX_BATCH_TOKENS // max(1, num_nodes)))
    done = 0
    while done < trials:
        chunk = min(batch, trials - done)
        yield done, chunk
        done += chunk


def _tiled_world_statistics(
    graph: GraphLike,
    randomizer: BinaryRandomizedResponse,
    rounds: int,
    trials: int,
    victim: int,
    victim_bit: int,
    statistic: AuditStatistic,
    laziness: float,
    generator: np.random.Generator,
) -> np.ndarray:
    """All of one world's trial statistics via flat tiled walk batches.

    A dynamic schedule walks the same tiled batch through
    :func:`simulate_trial_walks_on_schedule` — one NumPy hop per
    scheduled round, same estimator.
    """
    n = graph.num_nodes
    starts = np.arange(n, dtype=np.int64)
    dynamic = isinstance(graph, DynamicGraphSchedule)
    out = np.empty(trials, dtype=np.float64)
    for done, chunk in _trial_chunks(trials, n):
        bits = generator.integers(0, 2, size=(chunk, n))
        bits[:, victim] = victim_bit
        payloads = randomizer.randomize_batch(bits, generator)
        if dynamic:
            holders = simulate_trial_walks_on_schedule(
                graph, starts, rounds, chunk, laziness=laziness, rng=generator
            )
        else:
            holders = simulate_trial_walks(
                graph, starts, rounds, chunk, laziness=laziness, rng=generator
            )
        out[done:done + chunk] = statistic(payloads, holders)
    return out


class _KernelTable:
    """One dense walk kernel ``K = M^q`` with its rejection tables."""

    def __init__(self, kernel_t: np.ndarray):
        self.rows = np.ascontiguousarray(kernel_t.T)
        self.accept_flat = (self.rows / self.rows.max(axis=1)[:, None]).ravel()
        self._cdf_flat: Optional[np.ndarray] = None

    def inverse_cdf(
        self, token_rows: np.ndarray, generator: np.random.Generator
    ) -> np.ndarray:
        """Exact per-row inverse-CDF draws for rejection stragglers."""
        n = self.rows.shape[0]
        if self._cdf_flat is None:
            cdf = np.cumsum(self.rows, axis=1)
            cdf[:, -1] = 1.0
            # Row-offset flattening turns n per-row searches into one.
            self._cdf_flat = (cdf + np.arange(n)[:, np.newaxis]).ravel()
        queries = generator.random(token_rows.size) + token_rows
        flat = np.searchsorted(self._cdf_flat, queries, side="right")
        return np.minimum(flat - token_rows * n, n - 1)


class _KernelSampler:
    """Endpoint sampler from the dense ``t``-step walk kernel.

    Builds ``K = M^t`` (row ``i`` = the exact law of a walk from ``i``
    after ``t`` rounds) with sparse-dense products, then samples final
    holders by rejection: propose a uniform node ``j``, accept with
    probability ``K[i, j] / max_j K[i, j]``.  The acceptance table is
    exact, so the sampled law is exactly ``K[i, :]`` — the estimator is
    unchanged; only the draw order differs from step simulation.  After
    mixing, rows are nearly flat (per-row rejection constant
    ``c_i = n max_j K[i, j] -> 1``), so a handful of vectorized passes
    settle every token regardless of ``rounds``.  Unmixed rows are
    guarded: after ``_MAX_REJECTION_PASSES`` the stragglers fall back
    to exact inverse-CDF sampling.

    Deeply mixed chains exploit Chapman-Kolmogorov composition:
    ``M^t = M^(q_1) ... M^(q_s)`` with ``sum q_i = t``, so the walk is
    sampled as ``s`` short-kernel draws from powers the chain passes
    through anyway — the build does ``~t/s`` products instead of ``t``
    for the same exact law.  The chain probes its mean rejection
    constant at doubling exponents and stops as soon as composition is
    viable (every stage kernel must itself be mixed, or its rejection
    passes would dominate what the shorter build saves).

    ``power_cache`` (scenario sweeps pass the graph bundle's) maps
    ``step -> (M^step)^T`` across sampler builds for the same
    ``(graph, laziness)``: a build seeds its chain from the largest
    cached power below its target and records its own largest power
    back, so an ascending rounds-axis audit sweep pays ``O(t_max)``
    sparse-dense products in total instead of rebuilding each ``M^t``
    from scratch.  Every cached power was produced by the identical
    sequential product chain a cold build would execute, so warm and
    cold builds are bit-identical.
    """

    _MAX_REJECTION_PASSES = 48
    #: Mean rejection constant below which a kernel power counts as
    #: mixed enough to serve as a composition stage.
    _MIXED_REJECTION_MEAN = 1.35
    #: Composition cap: stages trade one kernel draw per token each, so
    #: past a few of them the sampling cost eats the build saving.
    _MAX_STAGES = 4

    def __init__(
        self,
        graph: Graph,
        rounds: int,
        laziness: float,
        *,
        power_cache: Optional[Dict[int, np.ndarray]] = None,
    ):
        n = graph.num_nodes
        matrix_t = lazy_transition_matrix(graph, laziness).T.tocsr()
        kernel_t = np.eye(n)
        step = 0

        def advance(target: int) -> None:
            nonlocal kernel_t, step
            if power_cache:
                # Fast-forward through the largest cached power in
                # (step, target]; cached powers come from the identical
                # sequential chain, so the result is bit-identical.
                best = max(
                    (s for s in power_cache if step < s <= target),
                    default=None,
                )
                if best is not None:
                    kernel_t, step = power_cache[best], best
            while step < target:
                kernel_t = matrix_t @ kernel_t
                step += 1

        # Probe mixedness at the useful split exponents (t/4, t/3, t/2,
        # all on the chain's way anyway) and stop at the first power
        # that supports composition — the more stages, the shorter the
        # dominant build.
        num_stages = 1
        for candidate in range(self._MAX_STAGES, 1, -1):
            base_exponent = rounds // candidate
            if base_exponent < 8:
                continue
            advance(base_exponent)
            # kernel_t holds (M^step)^T, so K's per-row maxima are the
            # per-column maxima here.
            if n * kernel_t.max(axis=0).mean() <= self._MIXED_REJECTION_MEAN:
                num_stages = candidate
                break
        base, extra = divmod(rounds, num_stages)
        exponents = [base + 1] * extra + [base] * (num_stages - extra)
        tables: Dict[int, _KernelTable] = {}
        for exponent in sorted(set(exponents)):
            advance(exponent)
            tables[exponent] = _KernelTable(kernel_t)
        if power_cache is not None and step >= max(power_cache, default=0):
            # Keep only the longest power: ascending sweeps (the common
            # shape) extend it incrementally, and one dense (n, n)
            # matrix bounds the cache's memory.
            power_cache.clear()
            power_cache[step] = kernel_t
        self.num_nodes = n
        self._stages = [tables[exponent] for exponent in exponents]
        self._tiled_base: Optional[np.ndarray] = None

    def _tiled_row_base(self, size: int) -> np.ndarray:
        """Flat-table row offsets for the tiled (trial-major) token layout."""
        n = self.num_nodes
        if self._tiled_base is None or self._tiled_base.size < size:
            self._tiled_base = np.tile(
                np.arange(n, dtype=np.int64) * n, size // n
            )
        return self._tiled_base[:size]

    def _stage(
        self,
        table: _KernelTable,
        row_base: np.ndarray,
        generator: np.random.Generator,
    ) -> np.ndarray:
        """One kernel draw per token; ``row_base = n * start_row``.

        The first rejection pass runs without index indirection (after
        mixing it settles ~all tokens); later passes compress to the
        surviving stragglers.
        """
        n = self.num_nodes
        size = row_base.size
        holders = generator.integers(0, n, size=size)
        rejected = (
            generator.random(size) >= table.accept_flat[row_base + holders]
        )
        pending = np.flatnonzero(rejected)
        for _ in range(self._MAX_REJECTION_PASSES - 1):
            if not pending.size:
                break
            proposals = generator.integers(0, n, size=pending.size)
            accept = (
                generator.random(pending.size)
                < table.accept_flat[row_base[pending] + proposals]
            )
            holders[pending[accept]] = proposals[accept]
            pending = pending[~accept]
        if pending.size:
            holders[pending] = table.inverse_cdf(
                row_base[pending] // n, generator
            )
        return holders

    def sample_tiled(
        self, trials: int, generator: np.random.Generator
    ) -> np.ndarray:
        """Final holders of ``trials`` tiled token batches, flat.

        Token ``k`` starts at node ``k % n``; each stage advances every
        token by one half-kernel draw.
        """
        holders: Optional[np.ndarray] = None
        for table in self._stages:
            if holders is None:
                row_base = self._tiled_row_base(trials * self.num_nodes)
            else:
                row_base = holders * self.num_nodes
            holders = self._stage(table, row_base, generator)
        return holders


def _kernel_world_statistics(
    sampler: _KernelSampler,
    randomizer: BinaryRandomizedResponse,
    trials: int,
    victim: int,
    victim_bit: int,
    statistic: AuditStatistic,
    generator: np.random.Generator,
) -> np.ndarray:
    """One world's trial statistics via direct kernel endpoint sampling."""
    n = sampler.num_nodes
    out = np.empty(trials, dtype=np.float64)
    for done, chunk in _trial_chunks(trials, n):
        # Binary RR of an i.i.d. fair coin is an i.i.d. fair coin, so
        # non-victim payloads are drawn directly; only the victim's
        # report goes through the RR channel.
        payloads = generator.integers(0, 2, size=(chunk, n), dtype=np.int8)
        truthful = generator.random(chunk) < randomizer.truth_probability
        payloads[:, victim] = np.where(truthful, victim_bit, 1 - victim_bit)
        holders = sampler.sample_tiled(chunk, generator)
        out[done:done + chunk] = statistic(payloads, holders.reshape(chunk, n))
    return out


def _looped_world_statistics(
    graph: GraphLike,
    randomizer: BinaryRandomizedResponse,
    rounds: int,
    trials: int,
    victim: int,
    victim_bit: int,
    statistic: AuditStatistic,
    laziness: float,
    generator: np.random.Generator,
) -> np.ndarray:
    """Reference per-trial loop (the pre-batching engine).

    Kept for the statistical-equivalence oracle and the speedup
    benchmark; same estimator and draw structure as the batched path,
    executed one trial at a time.
    """
    n = graph.num_nodes
    starts = np.arange(n, dtype=np.int64)
    dynamic = isinstance(graph, DynamicGraphSchedule)
    out = np.empty(trials, dtype=np.float64)
    for index in range(trials):
        bits = generator.integers(0, 2, size=n)
        bits[victim] = victim_bit
        payloads = randomizer.randomize_batch(bits, generator)
        if dynamic:
            holders = simulate_tokens_on_schedule(
                graph, starts, rounds, laziness=laziness, rng=generator
            )
        else:
            holders = simulate_token_walks(
                graph, starts, rounds, laziness=laziness, rng=generator
            )
        out[index] = statistic(payloads[np.newaxis, :], holders[np.newaxis, :])[0]
    return out


_AUDIT_METHODS = ("auto", "kernel", "tiled", "loop")

#: Largest graph whose dense ``t``-step kernel the auto method will
#: hold in memory (n^2 float64 = 32 MiB at the cap).
KERNEL_MAX_NODES = 2048
#: Rounds below which walks are too unmixed for rejection sampling to
#: pay off; the auto method step-simulates instead (cheap at small t).
_KERNEL_MIN_ROUNDS = 8


def resolve_method(method: str, graph: GraphLike, rounds: int) -> str:
    """The Monte Carlo engine ``audit_network_shuffle`` will actually run.

    Resolves ``"auto"`` against the graph and round count — ``"kernel"``
    for mixed walks on graphs small enough to hold the dense ``M^t``
    (:data:`KERNEL_MAX_NODES`), ``"tiled"`` otherwise; a dynamic
    schedule always step-simulates (``"tiled"``).  Explicit methods pass
    through unchanged, except ``"kernel"`` on a schedule, which is
    refused: a time-varying topology has no single ``t``-step kernel.

    This is the public planning hook: callers that want to pre-build or
    memoize kernel samplers (the scenario layer, the serving tier) ask
    here instead of duplicating the heuristic.
    """
    if method not in _AUDIT_METHODS:
        raise ValidationError(
            f"method must be one of {_AUDIT_METHODS}, got {method!r}"
        )
    if isinstance(graph, DynamicGraphSchedule):
        if method == "kernel":
            raise ScheduleRefusedError(
                "method='kernel' precomputes one dense t-step kernel "
                "M^t; a dynamic schedule has no single kernel — use "
                "method='tiled' (or 'auto'), which walks the schedule "
                "round by round"
            )
        return "tiled" if method == "auto" else method
    if method != "auto":
        return method
    if graph.num_nodes <= KERNEL_MAX_NODES and rounds >= _KERNEL_MIN_ROUNDS:
        return "kernel"
    return "tiled"


def should_memoize(graph: GraphLike) -> bool:
    """Whether a kernel sampler for ``graph`` is worth caching.

    True exactly when the auto heuristic would consider the kernel
    engine at all: a static graph within :data:`KERNEL_MAX_NODES`.
    Past the cap a sampler's dense stage tables run to hundreds of
    megabytes, so an explicitly requested kernel audit on a larger
    graph should build call-scoped (freed on return) instead of
    pinning them in a process-wide cache; a dynamic schedule has no
    kernel to memoize.
    """
    if isinstance(graph, DynamicGraphSchedule):
        return False
    return graph.num_nodes <= KERNEL_MAX_NODES


#: Deprecated private spellings -> public replacements (kept one
#: release so external reach-ins fail soft, with a pointer).
_DEPRECATED_NAMES = {
    "_resolve_method": "resolve_method",
    "_KERNEL_MAX_NODES": "KERNEL_MAX_NODES",
}


def __getattr__(name: str):
    public = _DEPRECATED_NAMES.get(name)
    if public is not None:
        import warnings

        warnings.warn(
            f"repro.auditing.auditor.{name} is deprecated; use the "
            f"public {public} instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return globals()[public]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def audit_network_shuffle(
    graph: GraphLike,
    epsilon0: float,
    rounds: int,
    *,
    trials: int = 2000,
    delta: float = DEFAULT_CONFIG.delta,
    laziness: float = 0.0,
    victim: int = 0,
    statistic: Optional[AuditStatistic] = None,
    confidence: float = 0.95,
    method: str = "auto",
    kernel_sampler: Optional[_KernelSampler] = None,
    label: Optional[str] = None,
    rng: RngLike = None,
) -> AuditResult:
    """Audit end-to-end ``A_all`` network shuffling with binary RR.

    Adjacent worlds: the ``victim`` user holds 0 (``D``) or 1 (``D'``);
    all other users hold i.i.d. fair coins (the adversary knows the
    protocol but not their values — the honest-majority population is
    the noise the victim hides in).  The default attacker statistic
    weighs each delivered payload by the victim's position distribution
    ``P^G(t)`` at its deliverer; pass any :data:`AuditStatistic` to
    model a different adversary (a custom statistic must target the
    same ``victim`` the game flips).

    Each world draws from its own SeedSequence child generator (``D``
    then ``D'``).  ``method`` selects the Monte Carlo engine (see the
    module docstring): ``"auto"`` picks ``"kernel"`` for mixed walks on
    graphs up to ``2048`` nodes and ``"tiled"`` otherwise;
    ``"loop"`` is the retained per-trial reference — statistically
    equivalent to both fast engines, not bit-identical (different draw
    granularity).

    ``kernel_sampler`` injects a pre-built (memoized) ``_KernelSampler``
    for the kernel engine — the scenario layer passes the graph
    bundle's, so audit sweeps stop rebuilding ``M^t`` per grid point.
    It must have been built for this exact ``(graph, rounds, laziness)``
    (the sampler build is deterministic, so a memoized instance is
    bit-identical to a cold one); ignored when the resolved method is
    not ``"kernel"``.
    """
    check_positive_int(trials, "trials")
    check_positive_int(rounds + 1, "rounds + 1")
    if not 0 <= victim < graph.num_nodes:
        raise ValidationError(
            f"victim {victim} out of range for {graph.num_nodes} users"
        )
    resolved = resolve_method(method, graph, rounds)
    generator = ensure_rng(rng)
    rng_d, rng_d_prime = spawn_rngs(generator, 2)
    randomizer = BinaryRandomizedResponse(epsilon0)
    if statistic is None:
        statistic = weighted_evidence_statistic(
            graph, rounds, laziness=laziness, victim=victim
        )

    if resolved == "kernel":
        sampler = (
            kernel_sampler if kernel_sampler is not None
            else _KernelSampler(graph, rounds, laziness)
        )

        def world_statistics(victim_bit: int, world_rng: np.random.Generator):
            return _kernel_world_statistics(
                sampler, randomizer, trials, victim, victim_bit, statistic,
                world_rng,
            )
    else:
        stepper = (
            _tiled_world_statistics if resolved == "tiled"
            else _looped_world_statistics
        )

        def world_statistics(victim_bit: int, world_rng: np.random.Generator):
            return stepper(
                graph, randomizer, rounds, trials, victim, victim_bit,
                statistic, laziness, world_rng,
            )

    stats_d = world_statistics(0, rng_d)
    stats_d_prime = world_statistics(1, rng_d_prime)
    eps, threshold = epsilon_lower_bound(
        stats_d, stats_d_prime, delta, confidence=confidence
    )
    return AuditResult(
        epsilon_lower_bound=eps,
        delta=delta,
        trials=trials,
        best_threshold=threshold,
        mechanism=label or f"network-shuffle:A_all:t={rounds}",
    )
