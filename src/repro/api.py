"""The documented public API surface of :mod:`repro`.

Everything a programmatic caller — a script, a notebook, or the serving
tier (:mod:`repro.serve`) — needs lives here, by name, with no reach-ins
into private modules:

Operations
    :func:`run`, :func:`bound`, :func:`stationary_bound`, :func:`audit`,
    :func:`sweep` — the five scenario entry points.
Payloads
    :func:`parse_scenario` (dict/JSON -> :class:`Scenario`, typed
    errors), :func:`bound_payload` / :func:`audit_payload` /
    :func:`run_payload` (outcome -> JSON-able dict), and
    :func:`run_summary_payload`, the one builder behind
    ``RunResult.summary()`` and ``RunDigest.summary()``.
Types
    :class:`Scenario`, :class:`RunResult`, :class:`RunDigest`,
    :class:`SweepResult`, :class:`AuditResult`,
    :class:`NetworkShuffleBound`.
Error taxonomy
    :class:`ReproError` and friends, plus :func:`http_status_for` /
    :func:`error_payload` — one exception -> HTTP status -> wire
    payload mapping shared by the CLI and the service.
Cache telemetry
    :func:`cache_stats` / :func:`sampler_stats` — the process-wide
    graph cache and kernel-sampler memo counters the serving tier's
    ``/stats`` reports; :func:`clear_graph_cache` to reset between
    tests.
Exchange backends
    :func:`backend_info` — which kernels the ``compiled`` engine
    resolves to in this process (numba JIT vs NumPy fallback);
    :func:`set_require_jit` to make a missing JIT raise
    :class:`BackendUnavailableError` (HTTP 501) instead of silently
    falling back.
Schedule accounting
    :class:`ProfilePolicy` plus :func:`get_profile_policy` /
    :func:`set_profile_policy` / :func:`profile_policy` — the
    process-wide memory budget that decides whether dynamic-schedule
    collision profiles evolve dense, blocked, or blocked-with-spill;
    :func:`profile_stats` / :func:`reset_profile_stats` for the
    out-of-core engine's counters.
Auditor planning
    :func:`resolve_method` / :func:`should_memoize` — the public
    replacements for the auditor's former private heuristics.
Campaign store
    :class:`ResultsStore` / :func:`open_store` — the persistent results
    database behind ``sweep(store=...)`` incremental re-runs;
    :func:`store_aggregate` / :func:`store_diff` for cross-campaign
    queries; :func:`code_version`, the fingerprint results are keyed by.

The scenario registries remain extensible through
:mod:`repro.scenario.builders`; this module is the *stable* surface, so
additions are fine but renames and removals are breaking changes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Union

from repro.amplification.network_shuffle import NetworkShuffleBound
from repro.auditing.auditor import (
    AuditResult,
    resolve_method,
    should_memoize,
)
from repro.exceptions import (
    BackendUnavailableError,
    ExecutionTimeoutError,
    InvalidScenarioError,
    JobNotFoundError,
    ReproError,
    ScheduleRefusedError,
    ValidationError,
    WorkerCrashError,
    error_payload,
    http_status_for,
)
from repro.netsim.kernels import backend_info, set_require_jit
from repro.scenario.auditing import audit
from repro.scenario.cache import GRAPH_CACHE, seed_streams
from repro.scenario.profile import (
    DEFAULT_MEMORY_BUDGET,
    ProfilePolicy,
    get_profile_policy,
    parse_memory_budget,
    profile_policy,
    profile_stats,
    reset_profile_stats,
    set_profile_policy,
)
from repro.scenario.runner import (
    RunResult,
    bound,
    clear_graph_cache,
    run,
    spill_graph,
    stationary_bound,
)
from repro.scenario.spec import Scenario
from repro.scenario.summary import run_summary_payload
from repro.scenario.sweep import (
    PointFailure,
    RunDigest,
    SweepResult,
    digest_run,
    sweep,
)
from repro.store import ResultsStore, code_version, open_store
from repro.store import aggregate as store_aggregate
from repro.store import diff as store_diff

__all__ = [
    "AuditResult",
    "BackendUnavailableError",
    "DEFAULT_MEMORY_BUDGET",
    "ExecutionTimeoutError",
    "InvalidScenarioError",
    "JobNotFoundError",
    "NetworkShuffleBound",
    "PointFailure",
    "ProfilePolicy",
    "ReproError",
    "ResultsStore",
    "RunDigest",
    "RunResult",
    "Scenario",
    "ScheduleRefusedError",
    "SweepResult",
    "ValidationError",
    "WorkerCrashError",
    "attach_spill",
    "audit",
    "audit_payload",
    "backend_info",
    "bound",
    "bound_payload",
    "cache_stats",
    "clear_graph_cache",
    "code_version",
    "digest_run",
    "error_payload",
    "get_profile_policy",
    "http_status_for",
    "open_store",
    "parse_memory_budget",
    "parse_scenario",
    "profile_policy",
    "profile_stats",
    "reset_profile_stats",
    "resolve_method",
    "run",
    "run_payload",
    "run_summary_payload",
    "sampler_stats",
    "seed_streams",
    "set_profile_policy",
    "set_require_jit",
    "should_memoize",
    "spill_graph",
    "stationary_bound",
    "store_aggregate",
    "store_diff",
    "sweep",
]


def parse_scenario(payload: Union[Scenario, str, Mapping[str, Any]]) -> Scenario:
    """Coerce a JSON string or mapping into a validated :class:`Scenario`.

    The one scenario-ingestion path every surface shares: malformed
    input raises :class:`InvalidScenarioError` (HTTP 400) with the same
    message whether it arrived as a CLI file, an HTTP body, or a
    library argument.
    """
    if isinstance(payload, Scenario):
        return payload
    try:
        if isinstance(payload, str):
            return Scenario.from_json(payload)
        if isinstance(payload, Mapping):
            return Scenario.from_dict(payload)
    except json.JSONDecodeError as error:
        raise InvalidScenarioError(
            f"scenario is not valid JSON: {error}"
        ) from None
    except InvalidScenarioError:
        raise
    except ReproError as error:
        raise InvalidScenarioError(f"invalid scenario: {error}") from None
    raise InvalidScenarioError(
        "a scenario must be a Scenario, a JSON object, or a JSON string; "
        f"got {type(payload).__name__}"
    )


def bound_payload(result: NetworkShuffleBound) -> Dict[str, Any]:
    """JSON-able rendering of a closed-form guarantee.

    ``accounting`` describes how ``sum_squared`` was computed for
    dynamic-schedule bounds (strategy, block size, truncation bound); it
    is ``None`` for stationary and single-graph bounds.
    """
    return {
        "epsilon": result.epsilon,
        "delta": result.delta,
        "theorem": result.theorem,
        "epsilon0": result.epsilon0,
        "sum_squared": result.sum_squared,
        "n": result.n,
        "amplification_ratio": result.amplification_ratio,
        "amplified": result.amplified,
        "accounting": (
            None if result.accounting is None else dict(result.accounting)
        ),
    }


def run_payload(result: Union[RunResult, RunDigest]) -> Dict[str, Any]:
    """JSON-able rendering of a run (full result or slim digest).

    Both shapes share one summary builder
    (:func:`run_summary_payload`), so this is the same dict either way.
    """
    return result.summary()


def audit_payload(result: AuditResult) -> Dict[str, Any]:
    """JSON-able rendering of a distinguishing-game audit."""
    return result.summary()


def cache_stats() -> Dict[str, int]:
    """Process-wide graph-cache counters (plus resident bundle count).

    ``builds`` counts generator runs, ``memory_hits``/``disk_hits`` the
    tiers that answered instead; under the single-flight contract a
    warm, repeated workload shows ``hits > builds``.
    """
    counters = GRAPH_CACHE.stats()
    return {
        "builds": counters.builds,
        "memory_hits": counters.memory_hits,
        "disk_hits": counters.disk_hits,
        "requests": counters.requests,
        "resident": len(GRAPH_CACHE),
    }


def sampler_stats() -> Dict[str, int]:
    """Kernel-sampler memo counters summed over resident bundles."""
    return GRAPH_CACHE.kernel_stats()


def attach_spill(directory: Union[str, Path]) -> Path:
    """Attach a standing on-disk graph tier to the process-wide cache.

    The sweep engine's spill machinery as a cache tier: graph builds
    consult ``directory`` for ``.npz`` CSR spills before running the
    generator, and :func:`spill_graph` writes new materializations
    there, so graphs survive process restarts.  Returns the (created)
    directory path.
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    GRAPH_CACHE.spill_dir = path
    return path
