"""The code-version fingerprint results are keyed by.

A stored result is only reusable while the code that produced it is
still the code that would produce it — a bound computed before a
theorem fix must not satisfy a lookup after it.  The fingerprint is the
package version plus a SHA-256 over every ``.py`` source file in the
installed :mod:`repro` package (paths and bytes, sorted), so *any*
source edit rotates the key and previously stored points simply stop
matching: incremental re-runs recompute exactly what a code change
could have invalidated, and ``results gc`` reclaims the rest.

Caveats (documented in the README): the fingerprint covers the repro
source tree only.  It does not see dependency versions (NumPy/SciPy
upgrades that change floating-point results keep the old key) or
anything outside the package — when that matters, pass an explicit
``code_version=`` override or ``gc`` the store.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional

__all__ = ["code_version", "source_tree_hash"]

_CACHED: Optional[str] = None


def source_tree_hash(root: Path) -> str:
    """SHA-256 over every ``.py`` file under ``root`` (name + bytes).

    Files are visited in sorted relative-path order so the digest is
    deterministic across filesystems; compiled artifacts
    (``__pycache__``) never participate because only ``*.py`` matches.
    """
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


def code_version(*, refresh: bool = False) -> str:
    """The fingerprint of the running repro code, cached per process.

    Format: ``"<version>+<16 hex chars>"`` — human-skimmable (the
    package version leads) and collision-resistant enough for a results
    key (the hex is a truncated SHA-256 of the whole source tree).
    ``refresh=True`` recomputes (tests that edit sources on disk).
    """
    global _CACHED
    if _CACHED is None or refresh:
        import repro

        root = Path(repro.__file__).resolve().parent
        _CACHED = f"{repro.__version__}+{source_tree_hash(root)[:16]}"
    return _CACHED
