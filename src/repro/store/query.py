"""Cross-campaign queries over the results store — aggregates as SQL.

The store keeps each point's grid coordinates (``axes``), full scenario
JSON, and outcome payload as JSON1 columns; this module maps friendly
axis/metric names onto ``json_extract`` expressions so questions like
"eps vs rounds for every graph kind we've ever run" compile to one
``GROUP BY`` instead of a nested-dict crawl:

* an **axis** (``x`` or ``group_by``) resolves through the axis map:
  real columns first (``graph_kind``, ``mode``, ``code_version``,
  ``scenario_hash``), then the recorded sweep coordinate
  (``json_extract(axes, '$."graph.degree"')``), then the scenario JSON
  itself (dotted names traverse ``graph.params.<tail>`` exactly the way
  ``Scenario.updated`` writes them) — so points recorded by different
  campaigns with different sweep axes still line up;
* a **metric** (``y``) extracts from the payload; ``epsilon`` (alias
  ``central_epsilon``) coalesces across the three outcome shapes
  (run digests, closed-form bounds, audit lower bounds), which is what
  makes one query span modes.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional, Union

from repro.exceptions import ValidationError
from repro.store.writer import ResultsStore

__all__ = [
    "aggregate",
    "axis_expression",
    "campaign_status",
    "diff",
    "diff_is_empty",
    "metric_expression",
]

#: Axis names that are real columns on ``points``.
_COLUMN_AXES = {"graph_kind", "mode", "code_version", "scenario_hash"}

#: Legal axis/metric names (guards the interpolated SQL expressions).
_NAME_PATTERN = re.compile(r"^[A-Za-z_][A-Za-z0-9_.]*$")


def _checked(name: str, what: str) -> str:
    if not _NAME_PATTERN.match(name):
        raise ValidationError(
            f"{what} {name!r} must match {_NAME_PATTERN.pattern}"
        )
    return name


def axis_expression(name: str) -> str:
    """The SQL expression an axis name resolves to (the axis map)."""
    _checked(name, "axis")
    if name in _COLUMN_AXES:
        return f"points.{name}"
    axes_path = f'$."{name}"'
    if "." in name:
        head, _, tail = name.partition(".")
        scenario_path = f"$.{head}.params.{tail}"
    else:
        scenario_path = f"$.{name}"
    return (
        f"COALESCE(json_extract(points.axes, '{axes_path}'), "
        f"json_extract(points.scenario, '{scenario_path}'))"
    )


def metric_expression(name: str) -> str:
    """The SQL expression a payload metric resolves to."""
    _checked(name, "metric")
    if name in ("epsilon", "central_epsilon"):
        return (
            "COALESCE(json_extract(points.payload, '$.central_epsilon'), "
            "json_extract(points.payload, '$.epsilon'), "
            "json_extract(points.payload, '$.epsilon_lower_bound'))"
        )
    return f"json_extract(points.payload, '$.{name}')"


def aggregate(
    store: ResultsStore,
    *,
    x: str = "rounds",
    y: str = "epsilon",
    group_by: str = "graph_kind",
    mode: Optional[str] = None,
    fingerprint: Optional[str] = None,
    campaign: Optional[Union[int, str]] = None,
) -> List[Dict[str, Any]]:
    """``y`` vs ``x`` grouped by ``group_by``, straight from SQL.

    One row per (group, x) cell with the mean/min/max of ``y`` and the
    number of contributing points, ordered by group then x.  Filters:
    ``mode`` restricts to one execution mode, ``fingerprint`` to one
    code version, ``campaign`` (id or name) to points one campaign
    observed.  Cells where ``y`` is absent are dropped.
    """
    x_expr = axis_expression(x)
    y_expr = metric_expression(y)
    group_expr = axis_expression(group_by)
    where = [f"{y_expr} IS NOT NULL", f"{x_expr} IS NOT NULL"]
    parameters: List[Any] = []
    joins = ""
    if mode is not None:
        where.append("points.mode = ?")
        parameters.append(str(mode))
    if fingerprint is not None:
        where.append("points.code_version = ?")
        parameters.append(str(fingerprint))
    if campaign is not None:
        joins = (
            " JOIN campaign_points cp ON cp.point_id = points.id"
        )
        where.append("cp.campaign_id = ?")
        parameters.append(store.campaign_id(campaign))
    sql = (
        f"SELECT {group_expr} AS grp, {x_expr} AS x,"
        f" AVG({y_expr}) AS mean, MIN({y_expr}) AS low,"
        f" MAX({y_expr}) AS high, COUNT(*) AS points"
        f" FROM points{joins} WHERE {' AND '.join(where)}"
        f" GROUP BY grp, x ORDER BY grp, x"
    )
    return [
        {
            "group": row["grp"],
            "x": row["x"],
            "mean": row["mean"],
            "min": row["low"],
            "max": row["high"],
            "points": int(row["points"]),
        }
        for row in store._read(sql, tuple(parameters))
    ]


def campaign_status(
    store: ResultsStore, reference: Union[int, str]
) -> str:
    """One campaign's lifecycle status (by id, or by name — latest wins).

    ``running`` on a campaign whose process no longer exists means the
    sweep died hard (SIGKILL, power loss); re-running it resumes from
    the checkpointed points and records a fresh campaign row.
    """
    rows = store._read(
        "SELECT status FROM campaigns WHERE id = ?",
        (store.campaign_id(reference),),
    )
    return str(rows[0]["status"])


def _campaign_points(
    store: ResultsStore, campaign_id: int
) -> Dict[tuple, Dict[str, Any]]:
    """(scenario_hash, mode) -> point row for one campaign's observations."""
    rows = store._read(
        """
        SELECT p.id, p.scenario_hash, p.mode, p.code_version, p.payload,
               cp.reused
        FROM campaign_points cp JOIN points p ON p.id = cp.point_id
        WHERE cp.campaign_id = ?
        """,
        (campaign_id,),
    )
    return {
        (row["scenario_hash"], row["mode"]): {
            "point_id": int(row["id"]),
            "code_version": row["code_version"],
            "payload": json.loads(row["payload"]),
            "reused": bool(row["reused"]),
        }
        for row in rows
    }


def _payload_changes(
    before: Dict[str, Any], after: Dict[str, Any], tolerance: float
) -> Dict[str, Any]:
    """Field-level differences between two stored payloads.

    Numeric fields compare within ``tolerance``; ``elapsed_seconds`` is
    wall-clock noise, never a regression, and is ignored.
    """
    changes: Dict[str, Any] = {}
    for key in sorted(set(before) | set(after)):
        if key == "elapsed_seconds":
            continue
        a, b = before.get(key), after.get(key)
        if isinstance(a, (int, float)) and isinstance(b, (int, float)) \
                and not isinstance(a, bool) and not isinstance(b, bool):
            if abs(float(a) - float(b)) <= tolerance:
                continue
        elif a == b:
            continue
        changes[key] = {"a": a, "b": b}
    return changes


def diff(
    store: ResultsStore,
    campaign_a: Union[int, str],
    campaign_b: Union[int, str],
    *,
    tolerance: float = 1e-9,
) -> Dict[str, Any]:
    """Compare two campaigns' observed points for regressions.

    Points pair up by ``(scenario_hash, mode)`` — the code-version part
    of the key is exactly what a regression diff must *not* match on.
    Returns ``only_a``/``only_b`` (scenarios one campaign observed and
    the other did not) and ``changed`` (paired points whose payloads
    differ beyond ``tolerance``, with the per-field values).  Two runs
    of an unchanged sweep under unchanged code share the same point
    rows, so their diff is empty by construction.
    """
    id_a = store.campaign_id(campaign_a)
    id_b = store.campaign_id(campaign_b)
    points_a = _campaign_points(store, id_a)
    points_b = _campaign_points(store, id_b)
    changed = []
    for key in sorted(set(points_a) & set(points_b)):
        a, b = points_a[key], points_b[key]
        if a["point_id"] == b["point_id"]:
            continue  # literally the same stored row
        changes = _payload_changes(a["payload"], b["payload"], tolerance)
        if changes:
            changed.append(
                {
                    "scenario_hash": key[0],
                    "mode": key[1],
                    "code_version_a": a["code_version"],
                    "code_version_b": b["code_version"],
                    "changes": changes,
                }
            )
    def _only(ours, theirs):
        return [
            {"scenario_hash": key[0], "mode": key[1]}
            for key in sorted(set(ours) - set(theirs))
        ]
    return {
        "campaign_a": id_a,
        "campaign_b": id_b,
        "matched": len(set(points_a) & set(points_b)),
        "only_a": _only(points_a, points_b),
        "only_b": _only(points_b, points_a),
        "changed": changed,
    }


def diff_is_empty(report: Dict[str, Any]) -> bool:
    """Whether a :func:`diff` report shows no differences at all."""
    return not (report["only_a"] or report["only_b"] or report["changed"])
