"""``repro.store`` — the queryable campaign store.

A SQLite-backed (stdlib ``sqlite3``, WAL mode, zero new dependencies)
results database keyed by the canonical scenario hash
(:func:`repro.scenario.cache.scenario_hash`) plus a code-version
fingerprint (:func:`code_version`).  Built from four modules:

:mod:`~repro.store.schema`
    Tables, indices, schema version, migrations.
:mod:`~repro.store.fingerprint`
    The code-version fingerprint stored results are keyed by.
:mod:`~repro.store.writer`
    :class:`ResultsStore` — open/record/probe/gc, plus the outcome
    codec that round-trips sweep outcomes through JSON.
:mod:`~repro.store.query`
    Cross-campaign aggregates (``json_extract`` + ``GROUP BY``) and
    campaign regression diffs.

Entry points: ``repro.sweep(store=...)`` for incremental sweeps,
``python -m repro results query|diff|gc`` on the CLI, and
``GET /results`` on the serving tier.
"""

from repro.store.fingerprint import code_version, source_tree_hash
from repro.store.query import aggregate, campaign_status, diff, diff_is_empty
from repro.store.schema import SCHEMA_VERSION
from repro.store.writer import (
    CAMPAIGN_STATUSES,
    ResultsStore,
    open_store,
    outcome_from_payload,
    outcome_payload,
)

__all__ = [
    "CAMPAIGN_STATUSES",
    "SCHEMA_VERSION",
    "ResultsStore",
    "aggregate",
    "campaign_status",
    "code_version",
    "diff",
    "diff_is_empty",
    "open_store",
    "outcome_from_payload",
    "outcome_payload",
    "source_tree_hash",
]
