"""The campaign store's relational schema (SQLite, stdlib only).

The design move — after DMR-XPath's encoding of tree structure into a
relational schema so queries become SQL — is to give every sweep point
a *flat* row whose identity is ``(scenario_hash, mode, code_version)``
and whose structure (grid coordinates, the full scenario, the outcome
payload) rides along as JSON1-queryable columns.  Cross-campaign
aggregates are then ``json_extract`` + ``GROUP BY`` instead of crawling
nested result dicts, and incremental re-runs are a unique-key probe.

Tables
------
``campaigns``
    One row per recorded run of a sweep or experiments campaign.
``points``
    One row per *distinct* computed result; the unique key is what
    makes re-runs incremental.
``campaign_points``
    Which points each campaign observed (computed or reused) — the
    relation ``results diff`` compares.
``artifacts``
    One row per paper artifact a campaign regenerated.
``bench_samples``
    The CI benchmark trajectory (mean seconds per bench per run).
``jobs``
    Serving-tier job outcomes, persisted across restarts.

Versioning lives in ``PRAGMA user_version``.  Opening a store written
by a newer schema refuses loudly; an older version with a registered
migration upgrades in place inside one transaction; anything else
(unknown version, a non-store SQLite file) refuses too.
"""

from __future__ import annotations

import sqlite3
from typing import Callable, Dict

from repro.exceptions import StoreVersionError

__all__ = ["SCHEMA_VERSION", "ensure_schema"]

#: Current on-disk schema version (PRAGMA user_version).
SCHEMA_VERSION = 3

#: DDL for a fresh store at :data:`SCHEMA_VERSION`.
_DDL = """
CREATE TABLE IF NOT EXISTS campaigns (
    id              INTEGER PRIMARY KEY,
    name            TEXT NOT NULL,
    preset          TEXT,
    code_version    TEXT NOT NULL,
    created_at      TEXT NOT NULL,
    meta            TEXT,
    status          TEXT NOT NULL DEFAULT 'complete'
);

CREATE TABLE IF NOT EXISTS points (
    id              INTEGER PRIMARY KEY,
    scenario_hash   TEXT NOT NULL,
    mode            TEXT NOT NULL,
    code_version    TEXT NOT NULL,
    graph_kind      TEXT NOT NULL,
    scenario        TEXT NOT NULL,
    axes            TEXT NOT NULL DEFAULT '{}',
    payload         TEXT NOT NULL,
    elapsed_seconds REAL,
    created_at      TEXT NOT NULL,
    UNIQUE (scenario_hash, mode, code_version)
);
CREATE INDEX IF NOT EXISTS idx_points_graph_kind ON points (graph_kind);
CREATE INDEX IF NOT EXISTS idx_points_mode ON points (mode);

CREATE TABLE IF NOT EXISTS campaign_points (
    campaign_id     INTEGER NOT NULL REFERENCES campaigns (id),
    point_id        INTEGER NOT NULL REFERENCES points (id),
    reused          INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (campaign_id, point_id)
);

CREATE TABLE IF NOT EXISTS artifacts (
    id              INTEGER PRIMARY KEY,
    campaign_id     INTEGER NOT NULL REFERENCES campaigns (id),
    name            TEXT NOT NULL,
    title           TEXT,
    preset          TEXT,
    path            TEXT,
    bytes           INTEGER,
    elapsed_seconds REAL,
    created_at      TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS bench_samples (
    id              INTEGER PRIMARY KEY,
    name            TEXT NOT NULL,
    mean_seconds    REAL NOT NULL,
    code_version    TEXT NOT NULL,
    source          TEXT,
    created_at      TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_bench_name ON bench_samples (name);

CREATE TABLE IF NOT EXISTS jobs (
    id              TEXT PRIMARY KEY,
    kind            TEXT NOT NULL,
    status          TEXT NOT NULL,
    scenario        TEXT,
    result          TEXT,
    error           TEXT,
    submitted       REAL,
    finished        REAL,
    code_version    TEXT
);
"""


def _migrate_1_to_2(connection: sqlite3.Connection) -> None:
    """v1 predates serving-tier job persistence: add the ``jobs`` table."""
    connection.execute(
        """
        CREATE TABLE IF NOT EXISTS jobs (
            id              TEXT PRIMARY KEY,
            kind            TEXT NOT NULL,
            status          TEXT NOT NULL,
            scenario        TEXT,
            result          TEXT,
            error           TEXT,
            submitted       REAL,
            finished        REAL,
            code_version    TEXT
        )
        """
    )


def _migrate_2_to_3(connection: sqlite3.Connection) -> None:
    """v2 campaigns had no lifecycle: add the ``status`` column.

    Existing campaigns predate fault-tolerant sweeps, so they all ended
    the only way a v2 sweep could persist anything — by finishing —
    hence the ``'complete'`` default.  Guarded by ``table_info`` so a
    half-applied upgrade (or a hand-patched store) migrates cleanly.
    """
    columns = {
        row[1]
        for row in connection.execute("PRAGMA table_info(campaigns)")
    }
    if "status" not in columns:
        connection.execute(
            "ALTER TABLE campaigns ADD COLUMN status TEXT NOT NULL"
            " DEFAULT 'complete'"
        )


#: version -> in-place migration to version + 1, applied successively.
MIGRATIONS: Dict[int, Callable[[sqlite3.Connection], None]] = {
    1: _migrate_1_to_2,
    2: _migrate_2_to_3,
}


def ensure_schema(connection: sqlite3.Connection) -> None:
    """Create, migrate, or refuse — leave ``connection`` at the current
    schema version.

    A fresh file (``user_version == 0`` and an empty ``sqlite_master``)
    gets the full DDL.  A known older version migrates step by step in
    one transaction.  A newer version, or a version-0 file that already
    has tables (some other application's database), raises
    :class:`~repro.exceptions.StoreVersionError` instead of guessing.
    """
    version = connection.execute("PRAGMA user_version").fetchone()[0]
    if version == SCHEMA_VERSION:
        return
    if version > SCHEMA_VERSION:
        raise StoreVersionError(
            f"results store schema version {version} is newer than this "
            f"code understands (version {SCHEMA_VERSION}); upgrade repro "
            "or use a fresh store file"
        )
    if version == 0:
        tables = connection.execute(
            "SELECT count(*) FROM sqlite_master WHERE type = 'table'"
        ).fetchone()[0]
        if tables:
            raise StoreVersionError(
                "file is a SQLite database but not a repro results store "
                "(it has tables yet no schema version); refusing to adopt it"
            )
        with connection:
            connection.executescript(_DDL)
            connection.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
        return
    if version not in MIGRATIONS:
        raise StoreVersionError(
            f"results store schema version {version} has no migration "
            f"path to {SCHEMA_VERSION}; export what you need and start a "
            "fresh store"
        )
    with connection:
        while version < SCHEMA_VERSION:
            MIGRATIONS[version](connection)
            version += 1
        connection.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
