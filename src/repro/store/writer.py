""":class:`ResultsStore` — the persistent, queryable campaign store.

One SQLite file holds every result a host has ever computed: sweep
points keyed by ``(scenario_hash, mode, code_version)``, the campaigns
that produced or reused them, regenerated paper artifacts, the CI
benchmark trajectory, and serving-tier job outcomes.  The store is the
substrate for three behaviors the JSON-pile output format could not
support:

* **incremental re-runs** — ``repro.sweep(store=...)`` probes the
  unique key before executing a grid point and re-runs only what is
  missing (a code edit rotates the fingerprint, so stale results never
  satisfy a lookup);
* **cross-campaign queries** — ``repro.store.query`` answers "eps vs
  rounds for every graph kind we've ever run" as one SQL aggregate;
* **regression diffs** — two campaigns' observed point sets compare
  row by row (``results diff``).

Concurrency: connections open in WAL mode with a busy timeout, every
write runs in its own immediate transaction under an in-process lock,
and point inserts are ``INSERT OR IGNORE`` on the unique key — two
processes sweeping into one store file interleave without losing
points (one wins the insert, the other adopts the existing row).
"""

from __future__ import annotations

import dataclasses
import json
import sqlite3
import threading
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.amplification.network_shuffle import NetworkShuffleBound
from repro.auditing.auditor import AuditResult
from repro.exceptions import StoreError, ValidationError
from repro.scenario.cache import scenario_hash
from repro.scenario.spec import Scenario
from repro.scenario.sweep import RunDigest
from repro.store.fingerprint import code_version
from repro.store.schema import ensure_schema

__all__ = [
    "CAMPAIGN_STATUSES",
    "ResultsStore",
    "open_store",
    "outcome_from_payload",
    "outcome_payload",
]

#: How long a connection waits on another writer before raising.
_BUSY_TIMEOUT_SECONDS = 30.0

#: How many times a write that still hits ``database is locked`` after
#: the busy timeout is retried before surfacing a :class:`StoreError`.
_LOCKED_RETRIES = 3

#: Base of the exponential sleep between locked-write retries.
_LOCKED_BACKOFF_SECONDS = 0.05

#: Campaign lifecycle states recorded in ``campaigns.status``.
CAMPAIGN_STATUSES = ("running", "complete", "interrupted")


def _is_locked(error: sqlite3.OperationalError) -> bool:
    """Whether an OperationalError is SQLite's lock/busy contention."""
    text = str(error).lower()
    return "database is locked" in text or "database is busy" in text


def _now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


# ----------------------------------------------------------------------
# Outcome <-> JSON payload codec
# ----------------------------------------------------------------------
#: mode -> the dataclass a stored payload reconstructs into.  All three
#: are flat frozen dataclasses of scalars, so ``asdict``/``cls(**d)``
#: round-trips exactly (``stationary_bound`` shares bound's shape).
_OUTCOME_TYPES = {
    "run": RunDigest,
    "bound": NetworkShuffleBound,
    "stationary_bound": NetworkShuffleBound,
    "audit": AuditResult,
}


def outcome_payload(outcome: Any) -> Dict[str, Any]:
    """JSON-able dict of a sweep outcome (digest/bound/audit)."""
    if not dataclasses.is_dataclass(outcome):
        raise ValidationError(
            f"cannot store outcome of type {type(outcome).__name__}; "
            "store-backed sweeps return digests (results='digest')"
        )
    return dataclasses.asdict(outcome)


def outcome_from_payload(mode: str, payload: Mapping[str, Any]) -> Any:
    """Rebuild the typed outcome a stored ``mode`` payload represents."""
    if mode not in _OUTCOME_TYPES:
        raise ValidationError(
            f"unknown stored mode {mode!r}; known: {sorted(_OUTCOME_TYPES)}"
        )
    return _OUTCOME_TYPES[mode](**payload)


class ResultsStore:
    """A SQLite-backed results database (see the module docstring).

    Open with a path (created on first use) and close explicitly or via
    ``with``; one instance is safe to share across threads (the serving
    tier's job workers write through one store under a lock).
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._connection = sqlite3.connect(
            str(self.path),
            timeout=_BUSY_TIMEOUT_SECONDS,
            check_same_thread=False,
            isolation_level=None,  # autocommit; writes use explicit BEGIN
        )
        self._connection.row_factory = sqlite3.Row
        try:
            self._connection.execute("PRAGMA journal_mode = WAL")
            self._connection.execute("PRAGMA synchronous = NORMAL")
            self._connection.execute("PRAGMA foreign_keys = ON")
            self._connection.execute(
                f"PRAGMA busy_timeout = {int(_BUSY_TIMEOUT_SECONDS * 1000)}"
            )
            ensure_schema(self._connection)
        except sqlite3.DatabaseError as error:
            self._connection.close()
            raise StoreError(
                f"cannot open results store {self.path}: {error}"
            ) from error
        except Exception:
            self._connection.close()
            raise

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            self._connection.close()

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- low-level helpers ---------------------------------------------
    def _transaction(self, body):
        """Run ``body(connection)`` in one immediate transaction.

        Lock contention that survives SQLite's own busy timeout (the
        30s ``busy_timeout`` PRAGMA) is retried a bounded number of
        times with exponential backoff, then surfaced as a
        :class:`StoreError` naming the store file — callers never see a
        raw ``sqlite3.OperationalError`` for a locked database.
        """
        for attempt in range(_LOCKED_RETRIES + 1):
            with self._lock:
                began = False
                try:
                    self._connection.execute("BEGIN IMMEDIATE")
                    began = True
                    result = body(self._connection)
                    self._connection.execute("COMMIT")
                    return result
                except sqlite3.OperationalError as error:
                    if began:
                        self._connection.execute("ROLLBACK")
                    if not _is_locked(error):
                        raise
                    if attempt >= _LOCKED_RETRIES:
                        raise StoreError(
                            f"results store {self.path} stayed locked "
                            f"through {_LOCKED_RETRIES} retries (another "
                            "long-running writer is holding it): "
                            f"{error}"
                        ) from error
                except BaseException:
                    if began:
                        self._connection.execute("ROLLBACK")
                    raise
            time.sleep(_LOCKED_BACKOFF_SECONDS * (2 ** attempt))

    def _write(self, sql: str, parameters: tuple = ()) -> sqlite3.Cursor:
        """One write statement in its own immediate transaction."""
        return self._transaction(
            lambda connection: connection.execute(sql, parameters)
        )

    def _read(self, sql: str, parameters: tuple = ()) -> List[sqlite3.Row]:
        with self._lock:
            return self._connection.execute(sql, parameters).fetchall()

    # -- campaigns -----------------------------------------------------
    def begin_campaign(
        self,
        name: str,
        *,
        preset: Optional[str] = None,
        meta: Optional[Mapping[str, Any]] = None,
        fingerprint: Optional[str] = None,
        status: str = "running",
    ) -> int:
        """Record a new campaign row (status ``running``); returns its id.

        The caller that began the campaign owns its lifecycle: call
        :meth:`finish_campaign` when it ends.  A campaign still
        ``running`` in a process that no longer exists died hard —
        which is exactly what the status column is for.
        """
        if status not in CAMPAIGN_STATUSES:
            raise ValidationError(
                f"campaign status must be one of {CAMPAIGN_STATUSES}, "
                f"got {status!r}"
            )
        cursor = self._write(
            "INSERT INTO campaigns (name, preset, code_version, created_at,"
            " meta, status) VALUES (?, ?, ?, ?, ?, ?)",
            (
                str(name),
                preset,
                fingerprint or code_version(),
                _now(),
                None if meta is None else json.dumps(meta, sort_keys=True),
                status,
            ),
        )
        return int(cursor.lastrowid)

    def finish_campaign(
        self, campaign_id: int, *, status: str = "complete"
    ) -> None:
        """Finalize a campaign's lifecycle status.

        ``complete`` means its sweep ran to the end (collected failures
        included); ``interrupted`` means it aborted with an error.
        """
        if status not in CAMPAIGN_STATUSES:
            raise ValidationError(
                f"campaign status must be one of {CAMPAIGN_STATUSES}, "
                f"got {status!r}"
            )
        self._write(
            "UPDATE campaigns SET status = ? WHERE id = ?",
            (status, int(campaign_id)),
        )

    def campaigns(self) -> List[Dict[str, Any]]:
        """Every campaign, newest first, with its observed point count."""
        rows = self._read(
            """
            SELECT c.id, c.name, c.preset, c.code_version, c.created_at,
                   c.meta, c.status,
                   (SELECT count(*) FROM campaign_points cp
                     WHERE cp.campaign_id = c.id) AS points,
                   (SELECT count(*) FROM artifacts a
                     WHERE a.campaign_id = c.id) AS artifacts
            FROM campaigns c ORDER BY c.id DESC
            """
        )
        result = []
        for row in rows:
            entry = dict(row)
            entry["meta"] = (
                None if entry["meta"] is None else json.loads(entry["meta"])
            )
            result.append(entry)
        return result

    def campaign_id(self, reference: Union[int, str]) -> int:
        """Resolve a campaign by id, or by name (latest wins)."""
        if isinstance(reference, int) or (
            isinstance(reference, str) and reference.isdigit()
        ):
            rows = self._read(
                "SELECT id FROM campaigns WHERE id = ?", (int(reference),)
            )
        else:
            rows = self._read(
                "SELECT id FROM campaigns WHERE name = ? "
                "ORDER BY id DESC LIMIT 1",
                (str(reference),),
            )
        if not rows:
            raise ValidationError(
                f"no campaign {reference!r} in store {self.path}"
            )
        return int(rows[0]["id"])

    # -- points --------------------------------------------------------
    def point_payload(
        self,
        scenario: Scenario,
        mode: str,
        *,
        fingerprint: Optional[str] = None,
    ) -> Optional[Dict[str, Any]]:
        """The stored payload for (scenario, mode) under the current
        (or given) code fingerprint — ``None`` on a miss.

        This is the incremental re-run probe: a hit means the exact
        scenario was already computed in this mode by this code.
        """
        rows = self._read(
            "SELECT payload FROM points WHERE scenario_hash = ? AND"
            " mode = ? AND code_version = ?",
            (scenario_hash(scenario), mode, fingerprint or code_version()),
        )
        if not rows:
            return None
        return json.loads(rows[0]["payload"])

    def record_point(
        self,
        scenario: Scenario,
        mode: str,
        payload: Mapping[str, Any],
        *,
        coordinates: Optional[Mapping[str, Any]] = None,
        campaign_id: Optional[int] = None,
        elapsed_seconds: Optional[float] = None,
        fingerprint: Optional[str] = None,
        reused: bool = False,
    ) -> int:
        """Record one result row (idempotent) and link its campaign.

        ``INSERT OR IGNORE`` on the unique key means concurrent writers
        of the same point both succeed: one inserts, the other adopts
        the existing row.  Returns the point id either way.
        """
        digest = scenario_hash(scenario)
        version = fingerprint or code_version()

        def body(connection: sqlite3.Connection) -> int:
            connection.execute(
                "INSERT OR IGNORE INTO points (scenario_hash, mode,"
                " code_version, graph_kind, scenario, axes, payload,"
                " elapsed_seconds, created_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    digest,
                    mode,
                    version,
                    scenario.graph.kind,
                    json.dumps(scenario.to_dict(), sort_keys=True),
                    json.dumps(dict(coordinates or {}), sort_keys=True),
                    json.dumps(dict(payload), sort_keys=True),
                    elapsed_seconds,
                    _now(),
                ),
            )
            point_id = int(
                connection.execute(
                    "SELECT id FROM points WHERE scenario_hash = ? AND"
                    " mode = ? AND code_version = ?",
                    (digest, mode, version),
                ).fetchone()["id"]
            )
            if campaign_id is not None:
                connection.execute(
                    "INSERT OR IGNORE INTO campaign_points (campaign_id,"
                    " point_id, reused) VALUES (?, ?, ?)",
                    (int(campaign_id), point_id, int(bool(reused))),
                )
            return point_id

        return self._transaction(body)

    def point_count(self) -> int:
        """Total distinct stored points."""
        return int(self._read("SELECT count(*) AS n FROM points")[0]["n"])

    # -- artifacts -----------------------------------------------------
    def record_artifact(
        self,
        campaign_id: int,
        *,
        name: str,
        title: Optional[str] = None,
        preset: Optional[str] = None,
        path: Optional[str] = None,
        size_bytes: Optional[int] = None,
        elapsed_seconds: Optional[float] = None,
    ) -> int:
        """Record one regenerated paper artifact under a campaign."""
        cursor = self._write(
            "INSERT INTO artifacts (campaign_id, name, title, preset, path,"
            " bytes, elapsed_seconds, created_at)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                int(campaign_id), str(name), title, preset, path,
                size_bytes, elapsed_seconds, _now(),
            ),
        )
        return int(cursor.lastrowid)

    def artifacts(self, campaign_id: Optional[int] = None) -> List[Dict[str, Any]]:
        """Artifact rows (optionally one campaign's), newest first."""
        if campaign_id is None:
            rows = self._read("SELECT * FROM artifacts ORDER BY id DESC")
        else:
            rows = self._read(
                "SELECT * FROM artifacts WHERE campaign_id = ?"
                " ORDER BY id DESC",
                (int(campaign_id),),
            )
        return [dict(row) for row in rows]

    # -- bench samples -------------------------------------------------
    def record_bench_samples(
        self,
        means: Mapping[str, float],
        *,
        source: Optional[str] = None,
        fingerprint: Optional[str] = None,
    ) -> int:
        """Append one run's benchmark means; returns rows written."""
        version = fingerprint or code_version()
        stamp = _now()

        def body(connection: sqlite3.Connection) -> None:
            for name, mean in means.items():
                connection.execute(
                    "INSERT INTO bench_samples (name, mean_seconds,"
                    " code_version, source, created_at)"
                    " VALUES (?, ?, ?, ?, ?)",
                    (str(name), float(mean), version, source, stamp),
                )

        self._transaction(body)
        return len(means)

    def bench_baseline(self) -> Dict[str, float]:
        """Latest recorded mean per benchmark name (the live baseline)."""
        rows = self._read(
            """
            SELECT name, mean_seconds FROM bench_samples
            WHERE id IN (SELECT max(id) FROM bench_samples GROUP BY name)
            """
        )
        return {row["name"]: float(row["mean_seconds"]) for row in rows}

    def bench_trajectory(
        self, name: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """The full sample history (optionally one benchmark's)."""
        if name is None:
            rows = self._read(
                "SELECT * FROM bench_samples ORDER BY name, id"
            )
        else:
            rows = self._read(
                "SELECT * FROM bench_samples WHERE name = ? ORDER BY id",
                (str(name),),
            )
        return [dict(row) for row in rows]

    # -- serving-tier jobs ---------------------------------------------
    def save_job(
        self,
        *,
        job_id: str,
        kind: str,
        status: str,
        scenario_json: Optional[str] = None,
        result: Optional[Mapping[str, Any]] = None,
        error: Optional[Mapping[str, Any]] = None,
        submitted: Optional[float] = None,
        finished: Optional[float] = None,
    ) -> None:
        """Upsert one job outcome (the serving tier calls this on
        completion, so restarts replay finished jobs, not queued ones)."""
        self._write(
            "INSERT OR REPLACE INTO jobs (id, kind, status, scenario,"
            " result, error, submitted, finished, code_version)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                str(job_id),
                str(kind),
                str(status),
                scenario_json,
                None if result is None else json.dumps(dict(result)),
                None if error is None else json.dumps(dict(error)),
                submitted if submitted is not None else time.time(),
                finished,
                code_version(),
            ),
        )

    def load_jobs(self) -> List[Dict[str, Any]]:
        """Every persisted job, oldest first, JSON members decoded."""
        rows = self._read("SELECT * FROM jobs ORDER BY submitted, id")
        jobs = []
        for row in rows:
            entry = dict(row)
            for member in ("result", "error"):
                if entry[member] is not None:
                    entry[member] = json.loads(entry[member])
            jobs.append(entry)
        return jobs

    # -- garbage collection --------------------------------------------
    def gc(
        self,
        *,
        keep_fingerprint: Optional[str] = None,
        dry_run: bool = False,
    ) -> Dict[str, int]:
        """Reclaim rows a code change stranded.

        Deletes points (and their campaign links) whose fingerprint is
        not ``keep_fingerprint`` (default: the running code's), then
        campaigns left with neither points nor artifacts, then bench
        samples that are no longer any benchmark's latest *or* from the
        kept fingerprint.  ``dry_run=True`` counts without deleting.
        Returns the per-table delete counts; vacuums after real work.
        """
        keep = keep_fingerprint or code_version()
        counts = {
            "points": int(self._read(
                "SELECT count(*) AS n FROM points WHERE code_version != ?",
                (keep,),
            )[0]["n"]),
            "campaign_links": int(self._read(
                "SELECT count(*) AS n FROM campaign_points WHERE point_id IN"
                " (SELECT id FROM points WHERE code_version != ?)",
                (keep,),
            )[0]["n"]),
            "campaigns": 0,
            "bench_samples": int(self._read(
                "SELECT count(*) AS n FROM bench_samples WHERE"
                " code_version != ? AND id NOT IN"
                " (SELECT max(id) FROM bench_samples GROUP BY name)",
                (keep,),
            )[0]["n"]),
            "jobs": int(self._read(
                "SELECT count(*) AS n FROM jobs WHERE code_version != ?",
                (keep,),
            )[0]["n"]),
        }
        empty_campaigns = (
            "SELECT c.id FROM campaigns c WHERE NOT EXISTS"
            " (SELECT 1 FROM campaign_points cp WHERE cp.campaign_id = c.id"
            "    AND cp.point_id IN (SELECT id FROM points"
            "                        WHERE code_version = ?))"
            " AND NOT EXISTS"
            " (SELECT 1 FROM artifacts a WHERE a.campaign_id = c.id)"
        )
        counts["campaigns"] = int(self._read(
            f"SELECT count(*) AS n FROM ({empty_campaigns})", (keep,)
        )[0]["n"])
        if dry_run:
            return counts

        def body(connection: sqlite3.Connection) -> None:
            connection.execute(
                "DELETE FROM campaign_points WHERE point_id IN"
                " (SELECT id FROM points WHERE code_version != ?)",
                (keep,),
            )
            connection.execute(
                "DELETE FROM points WHERE code_version != ?", (keep,)
            )
            connection.execute(
                f"DELETE FROM campaigns WHERE id IN ({empty_campaigns})",
                (keep,),
            )
            connection.execute(
                "DELETE FROM bench_samples WHERE code_version != ? AND"
                " id NOT IN (SELECT max(id) FROM bench_samples"
                " GROUP BY name)",
                (keep,),
            )
            connection.execute(
                "DELETE FROM jobs WHERE code_version != ?", (keep,)
            )

        self._transaction(body)
        with self._lock:
            self._connection.execute("VACUUM")
        return counts


def open_store(path: Union[str, Path, ResultsStore]) -> ResultsStore:
    """Coerce a path (or an already-open store) into a :class:`ResultsStore`."""
    if isinstance(path, ResultsStore):
        return path
    return ResultsStore(path)
