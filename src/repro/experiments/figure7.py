"""Figure 7 — ``A_all`` vs ``A_single`` central ``eps``.

The paper compares the two protocols on Twitch (n = 9,498) and Google
(n = 855,802) and observes that ``A_single`` achieves larger
amplification at large ``eps0`` (its amplification factor is
``e^{eps0}(e^{eps0}-1)`` versus ``A_all``'s ``e^{2 eps0}(e^{eps0}-1)``),
while at small ``eps0`` the two are comparable (where ``A_all``'s
Lemma 5.1 slack term actually matters more).

Each dataset is one full-scale ``dataset``-graph scenario priced at the
published ``(n, Gamma)`` stationary limit; the two curves are a single
``protocol x epsilon0`` sweep in ``stationary_bound`` mode — no graph
is ever materialized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.reporting import format_table
from repro.scenario import GraphSpec, Scenario, sweep

FIGURE7_DATASETS = ("twitch", "google")


@dataclass(frozen=True)
class ProtocolComparison:
    """eps-vs-eps0 curves for both protocols on one dataset."""

    dataset: str
    n: int
    gamma: float
    eps0_values: np.ndarray
    epsilon_all: np.ndarray
    epsilon_single: np.ndarray

    def crossover_eps0(self) -> Optional[float]:
        """Smallest grid ``eps0`` from which ``A_single`` stays better."""
        single_wins = self.epsilon_single < self.epsilon_all
        for start in range(len(single_wins)):
            if bool(np.all(single_wins[start:])):
                return float(self.eps0_values[start])
        return None


def run_figure7(
    *,
    eps0_values: Optional[Sequence[float]] = None,
    datasets: Sequence[str] = FIGURE7_DATASETS,
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> List[ProtocolComparison]:
    """Both protocol bounds at the stationary limit per dataset."""
    if eps0_values is None:
        eps0_values = np.linspace(0.2, 5.0, 25)
    eps0_array = np.asarray(eps0_values, dtype=np.float64)
    eps0_list = [float(eps0) for eps0 in eps0_array]

    comparisons: List[ProtocolComparison] = []
    for name in datasets:
        base = Scenario(
            graph=GraphSpec.of("dataset", name=name, scale=1.0),
            protocol="all",
            epsilon0=eps0_list[0],
            delta=config.delta,
            delta2=config.delta2,
            seed=config.seed,
        )
        # Grid order iterates the last axis fastest: all of A_all's
        # eps0 curve, then all of A_single's.
        curve = sweep(
            base,
            axis={"protocol": ["all", "single"], "epsilon0": eps0_list},
            mode="stationary_bound",
        )
        epsilons = np.asarray(curve.epsilons())
        outcome = curve.points[0].outcome
        comparisons.append(
            ProtocolComparison(
                dataset=name,
                n=outcome.n,
                gamma=outcome.n * outcome.sum_squared,
                eps0_values=eps0_array,
                epsilon_all=epsilons[: len(eps0_list)],
                epsilon_single=epsilons[len(eps0_list):],
            )
        )
    return comparisons


def render_figure7(comparisons: Sequence[ProtocolComparison]) -> str:
    """ASCII rendering with the A_single-wins crossover point."""
    probes = [0.2, 1.0, 2.0, 5.0]
    rows = []
    for c in comparisons:
        for protocol, curve in (("all", c.epsilon_all), ("single", c.epsilon_single)):
            values = [
                curve[int(np.argmin(np.abs(c.eps0_values - p)))] for p in probes
            ]
            rows.append((c.dataset, protocol, *[round(v, 4) for v in values]))
    table = format_table(
        ["dataset", "protocol"] + [f"eps @ eps0={p}" for p in probes], rows
    )
    crossings = "\n".join(
        f"{c.dataset}: A_single wins from eps0 ~= {c.crossover_eps0()}"
        for c in comparisons
    )
    return table + "\n" + crossings


def main() -> None:
    """Regenerate and print Figure 7's comparison (table + ASCII chart)."""
    comparisons = run_figure7()
    print(render_figure7(comparisons))
    from repro.experiments.plotting import Series, ascii_chart

    chart_series = []
    for c in comparisons:
        chart_series.append(
            Series(f"{c.dataset}/all", c.eps0_values, c.epsilon_all)
        )
        chart_series.append(
            Series(f"{c.dataset}/single", c.eps0_values, c.epsilon_single)
        )
    print()
    print(ascii_chart(
        chart_series, log_y=True,
        title="Figure 7 — A_all (continuous) vs A_single (dashed)",
        x_label="eps0", y_label="central eps",
    ))


if __name__ == "__main__":
    main()
