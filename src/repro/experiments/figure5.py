"""Figure 5 — exact tracking on k-regular graphs.

The paper traces the random walk *exactly* on k-regular graphs
(symmetric distribution, Theorem 5.4) and observes:

* larger ``k`` converges faster to the asymptotic ``eps``;
* early rounds are **non-monotone** — the walk "oscillates" between a
  node's neighborhood before spreading, unlike Figure 4's monotone
  upper bound.

Each degree is one declarative scenario (``analysis="symmetric"`` —
exact walk tracking, Theorem 5.4); the eps-vs-rounds curve is a
``rounds`` sweep in ``bound`` mode, so no protocol is simulated and the
graph is materialized once per degree via the scenario cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.reporting import format_table
from repro.scenario import GraphSpec, Scenario, graph_summary, sweep


@dataclass(frozen=True)
class KRegularSeries:
    """One degree's eps-vs-rounds curve (exact tracking)."""

    degree: int
    num_nodes: int
    epsilon0: float
    steps: np.ndarray
    epsilon: np.ndarray
    mixing_time: int

    @property
    def converged_step(self) -> int:
        """First step within 1% of the final value."""
        final = self.epsilon[-1]
        hits = np.flatnonzero(self.epsilon <= 1.01 * final)
        return int(self.steps[hits[0]]) if hits.size else int(self.steps[-1])

    @property
    def is_early_nonmonotone(self) -> bool:
        """Whether the curve wiggles upward somewhere before converging."""
        diffs = np.diff(self.epsilon)
        return bool(np.any(diffs > 1e-12))


def run_figure5(
    *,
    epsilon0: float = 1.0,
    degrees: Sequence[int] = (4, 8, 16, 32),
    num_nodes: int = 2048,
    max_steps: int = 30,
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> List[KRegularSeries]:
    """Exact eps(t) for k-regular graphs of several degrees."""
    steps = np.arange(1, max_steps + 1)
    series: List[KRegularSeries] = []
    for degree in degrees:
        scenario = Scenario(
            graph=GraphSpec.of("k_regular", degree=degree, num_nodes=num_nodes),
            protocol="all",
            analysis="symmetric",
            epsilon0=epsilon0,
            delta=config.delta,
            delta2=config.delta2,
            seed=config.seed,
        )
        curve = sweep(scenario, axis={"rounds": steps.tolist()}, mode="bound")
        series.append(
            KRegularSeries(
                degree=degree,
                num_nodes=num_nodes,
                epsilon0=epsilon0,
                steps=steps,
                epsilon=np.asarray(curve.epsilons()),
                mixing_time=graph_summary(scenario).mixing_time,
            )
        )
    return series


def render_figure5(series: Sequence[KRegularSeries]) -> str:
    """ASCII rendering of the k-regular convergence comparison."""
    table = format_table(
        ["k", "n", "mixing time", "converged at t", "final eps", "early wiggle"],
        [
            (
                s.degree,
                s.num_nodes,
                s.mixing_time,
                s.converged_step,
                round(float(s.epsilon[-1]), 4),
                "yes" if s.is_early_nonmonotone else "no",
            )
            for s in series
        ],
    )
    return table


def main() -> None:
    """Regenerate and print Figure 5's series (table + ASCII chart)."""
    series = run_figure5()
    print(render_figure5(series))
    from repro.experiments.plotting import Series, ascii_chart

    chart_series = [
        Series(f"k={s.degree}", s.steps, s.epsilon) for s in series
    ]
    print()
    print(ascii_chart(
        chart_series, log_y=True,
        title="Figure 5 — exact eps(t) on k-regular graphs",
        x_label="rounds t", y_label="central eps",
    ))


if __name__ == "__main__":
    main()
