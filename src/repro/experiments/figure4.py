"""Figure 4 — privacy vs. communication rounds (stationary bound).

The paper plots the Theorem 5.3 central ``eps`` of ``A_all`` against
the number of exchange rounds ``t`` for the three mid-size social
graphs (Facebook, Deezer, Enron), showing monotone convergence to the
asymptotic (stationary-distribution) value around the mixing time
``t ~= alpha^{-1} log n``.

The bound route uses Equation 7 — ``sum P^2 <= sum pi^2 + (1-alpha)^{2t}``
— so the curve decreases monotonically in ``t`` by construction, exactly
as the paper remarks (contrast Figure 5's exact tracking).

Each dataset is one declarative ``dataset``-graph scenario (wiring seed
pinned as spec data, so the stand-in matches the historical builds bit
for bit); the eps-vs-rounds curve is a ``rounds`` sweep in ``bound``
mode — the stand-in is materialized once per dataset via the scenario
graph cache — and the asymptote is the same scenario priced at
stationarity on the materialized graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.reporting import format_table
from repro.scenario import (
    GraphSpec,
    Scenario,
    graph_summary,
    stationary_bound,
    sweep,
)

#: The three datasets the paper uses for this figure (n ~= 2-3 x 1e4).
FIGURE4_DATASETS = ("facebook", "deezer", "enron")


@dataclass(frozen=True)
class ConvergenceSeries:
    """One dataset's eps-vs-rounds curve."""

    dataset: str
    epsilon0: float
    steps: np.ndarray
    epsilon: np.ndarray
    mixing_time: int
    asymptotic_epsilon: float

    @property
    def converged_step(self) -> int:
        """First step within 1% of the asymptotic value."""
        threshold = 1.01 * self.asymptotic_epsilon
        hits = np.flatnonzero(self.epsilon <= threshold)
        return int(self.steps[hits[0]]) if hits.size else int(self.steps[-1])


def figure4_scenario(
    dataset: str,
    *,
    epsilon0: float = 1.0,
    scale: Optional[float] = None,
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> Scenario:
    """The declarative scenario behind one Figure 4 curve."""
    return Scenario(
        graph=GraphSpec.of(
            "dataset", name=dataset, scale=scale, seed=config.seed
        ),
        protocol="all",
        epsilon0=epsilon0,
        delta=config.delta,
        delta2=config.delta2,
        seed=config.seed,
    )


def run_figure4(
    *,
    epsilon0: float = 1.0,
    datasets: Sequence[str] = FIGURE4_DATASETS,
    scale: Optional[float] = None,
    max_steps: Optional[int] = None,
    num_points: int = 40,
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> List[ConvergenceSeries]:
    """Compute the Theorem 5.3 bound across rounds for each dataset."""
    series: List[ConvergenceSeries] = []
    for name in datasets:
        scenario = figure4_scenario(
            name, epsilon0=epsilon0, scale=scale, config=config
        )
        summary = graph_summary(scenario)
        horizon = max_steps if max_steps is not None else 2 * summary.mixing_time
        steps = np.unique(
            np.round(np.linspace(0, horizon, num_points)).astype(int)
        )
        curve = sweep(scenario, axis={"rounds": steps.tolist()}, mode="bound")
        asymptotic = stationary_bound(scenario, materialize=True).epsilon
        series.append(
            ConvergenceSeries(
                dataset=name,
                epsilon0=epsilon0,
                steps=steps,
                epsilon=np.asarray(curve.epsilons()),
                mixing_time=summary.mixing_time,
                asymptotic_epsilon=asymptotic,
            )
        )
    return series


def render_figure4(series: Sequence[ConvergenceSeries]) -> str:
    """ASCII rendering: per-dataset convergence summary plus curves."""
    summary = format_table(
        ["dataset", "eps0", "mixing time", "asymptotic eps", "converged at t"],
        [
            (
                s.dataset,
                s.epsilon0,
                s.mixing_time,
                round(s.asymptotic_epsilon, 4),
                s.converged_step,
            )
            for s in series
        ],
    )
    curves = []
    for s in series:
        sampled = list(zip(s.steps, s.epsilon))[:: max(1, len(s.steps) // 8)]
        rendered = ", ".join(f"t={t}: {eps:.3f}" for t, eps in sampled)
        curves.append(f"{s.dataset}: {rendered}")
    return summary + "\n" + "\n".join(curves)


def main() -> None:
    """Regenerate and print Figure 4's series (table + ASCII chart)."""
    series = run_figure4()
    print(render_figure4(series))
    from repro.experiments.plotting import Series, ascii_chart

    chart_series = [
        Series(s.dataset, s.steps[1:], s.epsilon[1:]) for s in series
    ]
    print()
    print(ascii_chart(
        chart_series, log_y=True,
        title="Figure 4 — central eps vs communication rounds (A_all bound)",
        x_label="rounds t", y_label="central eps",
    ))


if __name__ == "__main__":
    main()
