"""Table 4 — real-world dataset statistics, reproduced on stand-ins.

For each of the five datasets: published ``(n, Gamma_G)`` versus the
values achieved by the calibrated synthetic stand-in's largest connected
component, plus the stand-in's spectral gap and mixing time (which the
paper reports in prose: ``alpha ~= 1e-2`` and mixing ``~1e3`` for the
real social graphs; configuration-model stand-ins are better expanders,
see DESIGN.md "Substitutions").

Each stand-in is one declarative ``dataset``-graph scenario (the wiring
seed pinned as spec data, so the graphs match the historical builds);
the achieved statistics read off the scenario cache's materialized
bundle — building Table 4 then pricing those same scenarios elsewhere
costs one materialization total.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.datasets.registry import dataset_names, get_dataset
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.reporting import format_table
from repro.scenario import (
    GraphSpec,
    Scenario,
    build_graph,
    graph_summary,
)


@dataclass(frozen=True)
class DatasetRow:
    """One Table 4 row: published vs achieved."""

    name: str
    category: str
    published_n: int
    achieved_n: int
    published_gamma: float
    achieved_gamma: float
    spectral_gap: float
    mixing_time: int
    scale: float

    @property
    def gamma_relative_error(self) -> float:
        """Relative Gamma calibration error."""
        return abs(self.achieved_gamma - self.published_gamma) / self.published_gamma


def table4_scenario(
    name: str,
    *,
    scale: Optional[float] = None,
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> Scenario:
    """The declarative scenario whose graph is one Table 4 stand-in."""
    return Scenario(
        graph=GraphSpec.of("dataset", name=name, scale=scale, seed=config.seed),
        seed=config.seed,
    )


def run_table4(
    *,
    names: Optional[Sequence[str]] = None,
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> List[DatasetRow]:
    """Build every stand-in and collect published-vs-achieved stats."""
    rows: List[DatasetRow] = []
    for name in names if names is not None else dataset_names():
        spec = get_dataset(name)
        scale = None if spec.default_scale != 1.0 else config.dataset_scale
        scenario = table4_scenario(name, scale=scale, config=config)
        graph = build_graph(scenario)
        summary = graph_summary(scenario)
        rows.append(
            DatasetRow(
                name=name,
                category=spec.category,
                published_n=spec.num_nodes,
                achieved_n=graph.num_nodes,
                published_gamma=spec.gamma,
                achieved_gamma=graph.num_nodes * summary.stationary_collision,
                spectral_gap=summary.spectral_gap,
                mixing_time=summary.mixing_time,
                scale=spec.default_scale if scale is None else scale,
            )
        )
    return rows


def render_table4(rows: Sequence[DatasetRow]) -> str:
    """ASCII rendering of the Table 4 reproduction."""
    return format_table(
        [
            "dataset", "category", "n (paper)", "n (ours)",
            "Gamma (paper)", "Gamma (ours)", "rel.err", "alpha", "mixing t", "scale",
        ],
        [
            (
                row.name,
                row.category,
                row.published_n,
                row.achieved_n,
                row.published_gamma,
                round(row.achieved_gamma, 4),
                f"{row.gamma_relative_error:.1%}",
                round(row.spectral_gap, 4),
                row.mixing_time,
                row.scale,
            )
            for row in rows
        ],
    )


def main() -> None:
    """Regenerate and print Table 4."""
    print(render_table4(run_table4()))


if __name__ == "__main__":
    main()
